# Empty compiler generated dependencies file for pps_sim.
# This may be replaced when dependencies are built.
