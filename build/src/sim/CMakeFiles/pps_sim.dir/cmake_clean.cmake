file(REMOVE_RECURSE
  "CMakeFiles/pps_sim.dir/bridge.cc.o"
  "CMakeFiles/pps_sim.dir/bridge.cc.o.d"
  "CMakeFiles/pps_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/pps_sim.dir/cluster_sim.cc.o.d"
  "libpps_sim.a"
  "libpps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
