file(REMOVE_RECURSE
  "libpps_sim.a"
)
