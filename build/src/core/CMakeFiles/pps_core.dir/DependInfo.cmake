
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/affine.cc" "src/core/CMakeFiles/pps_core.dir/affine.cc.o" "gcc" "src/core/CMakeFiles/pps_core.dir/affine.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/pps_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/pps_core.dir/partition.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/pps_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/pps_core.dir/plan.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/pps_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/pps_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/rate_limiter.cc" "src/core/CMakeFiles/pps_core.dir/rate_limiter.cc.o" "gcc" "src/core/CMakeFiles/pps_core.dir/rate_limiter.cc.o.d"
  "/root/repo/src/core/scaling.cc" "src/core/CMakeFiles/pps_core.dir/scaling.cc.o" "gcc" "src/core/CMakeFiles/pps_core.dir/scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pps_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pps_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pps_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pps_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/pps_bignum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
