# Empty compiler generated dependencies file for pps_core.
# This may be replaced when dependencies are built.
