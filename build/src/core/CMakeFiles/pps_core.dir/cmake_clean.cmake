file(REMOVE_RECURSE
  "CMakeFiles/pps_core.dir/affine.cc.o"
  "CMakeFiles/pps_core.dir/affine.cc.o.d"
  "CMakeFiles/pps_core.dir/partition.cc.o"
  "CMakeFiles/pps_core.dir/partition.cc.o.d"
  "CMakeFiles/pps_core.dir/plan.cc.o"
  "CMakeFiles/pps_core.dir/plan.cc.o.d"
  "CMakeFiles/pps_core.dir/protocol.cc.o"
  "CMakeFiles/pps_core.dir/protocol.cc.o.d"
  "CMakeFiles/pps_core.dir/rate_limiter.cc.o"
  "CMakeFiles/pps_core.dir/rate_limiter.cc.o.d"
  "CMakeFiles/pps_core.dir/scaling.cc.o"
  "CMakeFiles/pps_core.dir/scaling.cc.o.d"
  "libpps_core.a"
  "libpps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
