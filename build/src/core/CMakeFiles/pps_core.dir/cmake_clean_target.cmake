file(REMOVE_RECURSE
  "libpps_core.a"
)
