file(REMOVE_RECURSE
  "CMakeFiles/pps_crypto.dir/paillier.cc.o"
  "CMakeFiles/pps_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/pps_crypto.dir/permutation.cc.o"
  "CMakeFiles/pps_crypto.dir/permutation.cc.o.d"
  "CMakeFiles/pps_crypto.dir/secure_rng.cc.o"
  "CMakeFiles/pps_crypto.dir/secure_rng.cc.o.d"
  "CMakeFiles/pps_crypto.dir/sha256.cc.o"
  "CMakeFiles/pps_crypto.dir/sha256.cc.o.d"
  "libpps_crypto.a"
  "libpps_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
