# Empty dependencies file for pps_crypto.
# This may be replaced when dependencies are built.
