file(REMOVE_RECURSE
  "libpps_crypto.a"
)
