
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bignum/bigint.cc" "src/bignum/CMakeFiles/pps_bignum.dir/bigint.cc.o" "gcc" "src/bignum/CMakeFiles/pps_bignum.dir/bigint.cc.o.d"
  "/root/repo/src/bignum/montgomery.cc" "src/bignum/CMakeFiles/pps_bignum.dir/montgomery.cc.o" "gcc" "src/bignum/CMakeFiles/pps_bignum.dir/montgomery.cc.o.d"
  "/root/repo/src/bignum/prime.cc" "src/bignum/CMakeFiles/pps_bignum.dir/prime.cc.o" "gcc" "src/bignum/CMakeFiles/pps_bignum.dir/prime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
