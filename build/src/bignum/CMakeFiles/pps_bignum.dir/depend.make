# Empty dependencies file for pps_bignum.
# This may be replaced when dependencies are built.
