file(REMOVE_RECURSE
  "libpps_bignum.a"
)
