file(REMOVE_RECURSE
  "CMakeFiles/pps_bignum.dir/bigint.cc.o"
  "CMakeFiles/pps_bignum.dir/bigint.cc.o.d"
  "CMakeFiles/pps_bignum.dir/montgomery.cc.o"
  "CMakeFiles/pps_bignum.dir/montgomery.cc.o.d"
  "CMakeFiles/pps_bignum.dir/prime.cc.o"
  "CMakeFiles/pps_bignum.dir/prime.cc.o.d"
  "libpps_bignum.a"
  "libpps_bignum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_bignum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
