file(REMOVE_RECURSE
  "libpps_stream.a"
)
