file(REMOVE_RECURSE
  "CMakeFiles/pps_stream.dir/engine.cc.o"
  "CMakeFiles/pps_stream.dir/engine.cc.o.d"
  "CMakeFiles/pps_stream.dir/message.cc.o"
  "CMakeFiles/pps_stream.dir/message.cc.o.d"
  "CMakeFiles/pps_stream.dir/pipeline.cc.o"
  "CMakeFiles/pps_stream.dir/pipeline.cc.o.d"
  "CMakeFiles/pps_stream.dir/stage.cc.o"
  "CMakeFiles/pps_stream.dir/stage.cc.o.d"
  "libpps_stream.a"
  "libpps_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
