# Empty compiler generated dependencies file for pps_stream.
# This may be replaced when dependencies are built.
