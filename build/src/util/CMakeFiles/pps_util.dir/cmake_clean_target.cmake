file(REMOVE_RECURSE
  "libpps_util.a"
)
