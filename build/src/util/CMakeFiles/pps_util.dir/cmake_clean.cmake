file(REMOVE_RECURSE
  "CMakeFiles/pps_util.dir/logging.cc.o"
  "CMakeFiles/pps_util.dir/logging.cc.o.d"
  "CMakeFiles/pps_util.dir/rng.cc.o"
  "CMakeFiles/pps_util.dir/rng.cc.o.d"
  "CMakeFiles/pps_util.dir/status.cc.o"
  "CMakeFiles/pps_util.dir/status.cc.o.d"
  "CMakeFiles/pps_util.dir/thread_pool.cc.o"
  "CMakeFiles/pps_util.dir/thread_pool.cc.o.d"
  "libpps_util.a"
  "libpps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
