# Empty compiler generated dependencies file for pps_util.
# This may be replaced when dependencies are built.
