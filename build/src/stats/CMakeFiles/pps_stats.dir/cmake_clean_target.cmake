file(REMOVE_RECURSE
  "libpps_stats.a"
)
