file(REMOVE_RECURSE
  "CMakeFiles/pps_stats.dir/dcor.cc.o"
  "CMakeFiles/pps_stats.dir/dcor.cc.o.d"
  "libpps_stats.a"
  "libpps_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
