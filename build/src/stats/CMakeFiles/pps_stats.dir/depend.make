# Empty dependencies file for pps_stats.
# This may be replaced when dependencies are built.
