file(REMOVE_RECURSE
  "CMakeFiles/pps_mpc.dir/circuit.cc.o"
  "CMakeFiles/pps_mpc.dir/circuit.cc.o.d"
  "CMakeFiles/pps_mpc.dir/ezpc.cc.o"
  "CMakeFiles/pps_mpc.dir/ezpc.cc.o.d"
  "CMakeFiles/pps_mpc.dir/garbled.cc.o"
  "CMakeFiles/pps_mpc.dir/garbled.cc.o.d"
  "CMakeFiles/pps_mpc.dir/share.cc.o"
  "CMakeFiles/pps_mpc.dir/share.cc.o.d"
  "libpps_mpc.a"
  "libpps_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
