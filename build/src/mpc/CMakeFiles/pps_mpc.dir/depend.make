# Empty dependencies file for pps_mpc.
# This may be replaced when dependencies are built.
