file(REMOVE_RECURSE
  "libpps_mpc.a"
)
