# Empty compiler generated dependencies file for pps_nn.
# This may be replaced when dependencies are built.
