file(REMOVE_RECURSE
  "CMakeFiles/pps_nn.dir/dataset.cc.o"
  "CMakeFiles/pps_nn.dir/dataset.cc.o.d"
  "CMakeFiles/pps_nn.dir/layers.cc.o"
  "CMakeFiles/pps_nn.dir/layers.cc.o.d"
  "CMakeFiles/pps_nn.dir/model.cc.o"
  "CMakeFiles/pps_nn.dir/model.cc.o.d"
  "CMakeFiles/pps_nn.dir/model_zoo.cc.o"
  "CMakeFiles/pps_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/pps_nn.dir/trainer.cc.o"
  "CMakeFiles/pps_nn.dir/trainer.cc.o.d"
  "libpps_nn.a"
  "libpps_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
