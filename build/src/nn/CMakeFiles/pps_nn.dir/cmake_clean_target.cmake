file(REMOVE_RECURSE
  "libpps_nn.a"
)
