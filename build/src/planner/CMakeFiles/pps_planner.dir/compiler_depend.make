# Empty compiler generated dependencies file for pps_planner.
# This may be replaced when dependencies are built.
