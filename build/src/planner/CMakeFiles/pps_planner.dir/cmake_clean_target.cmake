file(REMOVE_RECURSE
  "libpps_planner.a"
)
