file(REMOVE_RECURSE
  "CMakeFiles/pps_planner.dir/allocation.cc.o"
  "CMakeFiles/pps_planner.dir/allocation.cc.o.d"
  "CMakeFiles/pps_planner.dir/profiler.cc.o"
  "CMakeFiles/pps_planner.dir/profiler.cc.o.d"
  "libpps_planner.a"
  "libpps_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
