# Empty dependencies file for pps_tensor.
# This may be replaced when dependencies are built.
