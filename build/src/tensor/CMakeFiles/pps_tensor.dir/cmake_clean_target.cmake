file(REMOVE_RECURSE
  "libpps_tensor.a"
)
