file(REMOVE_RECURSE
  "CMakeFiles/pps_tensor.dir/ops.cc.o"
  "CMakeFiles/pps_tensor.dir/ops.cc.o.d"
  "libpps_tensor.a"
  "libpps_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pps_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
