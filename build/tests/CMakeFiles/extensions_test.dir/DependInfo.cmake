
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/extensions_test.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/extensions_test.dir/extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/pps_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/pps_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pps_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pps_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/pps_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pps_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
