# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bignum_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/mpc_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
