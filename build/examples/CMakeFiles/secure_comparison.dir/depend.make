# Empty dependencies file for secure_comparison.
# This may be replaced when dependencies are built.
