
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/secure_comparison.cpp" "examples/CMakeFiles/secure_comparison.dir/secure_comparison.cpp.o" "gcc" "examples/CMakeFiles/secure_comparison.dir/secure_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/pps_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/pps_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mpc/CMakeFiles/pps_mpc.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pps_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pps_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/pps_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pps_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bignum/CMakeFiles/pps_bignum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
