file(REMOVE_RECURSE
  "CMakeFiles/secure_comparison.dir/secure_comparison.cpp.o"
  "CMakeFiles/secure_comparison.dir/secure_comparison.cpp.o.d"
  "secure_comparison"
  "secure_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
