file(REMOVE_RECURSE
  "CMakeFiles/medical_inference.dir/medical_inference.cpp.o"
  "CMakeFiles/medical_inference.dir/medical_inference.cpp.o.d"
  "medical_inference"
  "medical_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
