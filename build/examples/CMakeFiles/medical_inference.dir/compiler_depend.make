# Empty compiler generated dependencies file for medical_inference.
# This may be replaced when dependencies are built.
