# Empty compiler generated dependencies file for mnist_stream.
# This may be replaced when dependencies are built.
