file(REMOVE_RECURSE
  "CMakeFiles/mnist_stream.dir/mnist_stream.cpp.o"
  "CMakeFiles/mnist_stream.dir/mnist_stream.cpp.o.d"
  "mnist_stream"
  "mnist_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mnist_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
