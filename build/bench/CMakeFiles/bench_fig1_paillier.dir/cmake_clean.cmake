file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_paillier.dir/bench_fig1_paillier.cc.o"
  "CMakeFiles/bench_fig1_paillier.dir/bench_fig1_paillier.cc.o.d"
  "bench_fig1_paillier"
  "bench_fig1_paillier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
