file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_stream_effectiveness.dir/bench_fig8_stream_effectiveness.cc.o"
  "CMakeFiles/bench_fig8_stream_effectiveness.dir/bench_fig8_stream_effectiveness.cc.o.d"
  "bench_fig8_stream_effectiveness"
  "bench_fig8_stream_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_stream_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
