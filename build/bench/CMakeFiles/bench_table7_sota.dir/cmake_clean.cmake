file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_sota.dir/bench_table7_sota.cc.o"
  "CMakeFiles/bench_table7_sota.dir/bench_table7_sota.cc.o.d"
  "bench_table7_sota"
  "bench_table7_sota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
