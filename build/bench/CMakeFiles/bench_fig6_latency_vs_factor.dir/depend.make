# Empty dependencies file for bench_fig6_latency_vs_factor.
# This may be replaced when dependencies are built.
