file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_latency_vs_factor.dir/bench_fig6_latency_vs_factor.cc.o"
  "CMakeFiles/bench_fig6_latency_vs_factor.dir/bench_fig6_latency_vs_factor.cc.o.d"
  "bench_fig6_latency_vs_factor"
  "bench_fig6_latency_vs_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_latency_vs_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
