# Empty compiler generated dependencies file for bench_fig9_tensor_partition.
# This may be replaced when dependencies are built.
