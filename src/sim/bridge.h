// Glue from measured profiles + solved allocations to simulator inputs.

#pragma once

#include <vector>

#include "planner/allocation.h"
#include "planner/profiler.h"
#include "sim/cluster_sim.h"

namespace ppstream {

/// Builds simulator stages from a measured profile and a placement/thread
/// allocation (one entry per pipeline stage, aligned by index).
std::vector<SimStageSpec> BuildSimStages(const PlanProfile& profile,
                                         const Allocation& allocation,
                                         double parallel_fraction = 0.97);

/// Centralized single-thread variant of the same profile (for the
/// CipherBase baseline).
std::vector<SimStageSpec> BuildCentralizedStages(const PlanProfile& profile);

}  // namespace ppstream
