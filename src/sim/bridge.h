// Glue from measured profiles + solved allocations to simulator inputs.

#pragma once

#include <vector>

#include "core/plan.h"
#include "planner/allocation.h"
#include "planner/profiler.h"
#include "sim/cluster_sim.h"

namespace ppstream {

/// Builds simulator stages from a measured profile and a placement/thread
/// allocation (one entry per pipeline stage, aligned by index).
std::vector<SimStageSpec> BuildSimStages(const PlanProfile& profile,
                                         const Allocation& allocation,
                                         double parallel_fraction = 0.97);

/// Analytic variant for plans that have never run: derives the 2R stage
/// costs from the compiled plan's IR statistics — homomorphic scalar-mul
/// counts for linear stages, element counts for non-linear segments —
/// so what-if simulation reflects fusion (fused plans cost fewer muls).
/// Stage order is round-major (lin0, nonlin0, lin1, ...), matching
/// planner::PlanPlacement; when the plan carries a solved placement its
/// servers/threads are applied, otherwise everything runs single-threaded
/// on server 0 (linear) / 1 (non-linear). `bytes_per_ciphertext` sizes
/// inter-stage messages (128 B ~ a 512-bit-key Paillier ciphertext).
Result<std::vector<SimStageSpec>> BuildSimStagesFromPlan(
    const InferencePlan& plan, double seconds_per_scalar_mul,
    double seconds_per_element, uint64_t bytes_per_ciphertext = 128,
    double parallel_fraction = 0.97);

/// Centralized single-thread variant of the same profile (for the
/// CipherBase baseline).
std::vector<SimStageSpec> BuildCentralizedStages(const PlanProfile& profile);

}  // namespace ppstream
