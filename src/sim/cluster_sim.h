// Calibrated cluster simulator — the stand-in for the paper's 9-server
// testbed (Intel Xeon E5-2630 x9, 10 GbE).
//
// The scaling experiments (Exp#2-4) need 25-50 cores across machines; this
// sandbox has one. The simulator replays the pipeline mechanics exactly —
// FIFO stages, per-stage service times, inter-server transfers, queueing —
// using service-time constants measured on this host by the profiler
// (planner/profiler.h). Intra-stage speedup follows Amdahl's law, which
// yields the paper's observed diminishing returns when adding cores.
//
// A linear pipeline with single-FIFO stages admits an exact recurrence
// (no event queue needed):
//   ready(i, r) = done(i-1, r) + transfer(i-1)     [arrival for i = 0]
//   start(i, r) = max(ready(i, r), done(i, r-1))
//   done(i, r)  = start(i, r) + service(i)

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ppstream {

/// One simulated pipeline stage.
struct SimStageSpec {
  double single_thread_seconds = 0;  // measured T_i
  int threads = 1;                   // allocated y_i
  int server = 0;                    // placement (x)
  uint64_t bytes_out = 0;            // message size toward the next stage
  /// Amdahl parallel fraction of the stage's work.
  double parallel_fraction = 0.97;
  /// Serial overhead added after the Amdahl split — e.g. intra-stage
  /// distribution of per-thread messages, which does not parallelize.
  double fixed_overhead_seconds = 0;
  /// Per-attempt failure probability (fault model). Each failed attempt
  /// costs a full service time; the request is re-executed up to the
  /// workload's retry budget, then poisoned (it traverses the remaining
  /// stages as a tombstone with zero service cost).
  double failure_prob = 0;

  /// Effective service time with `threads` workers.
  double ServiceSeconds() const;

  /// Expected attempts per message under the fault model with
  /// `max_retries` re-executions: sum_{k=0..m} p^k = (1 - p^{m+1})/(1 - p).
  double ExpectedAttempts(int max_retries) const;
};

struct SimNetwork {
  double bandwidth_gbps = 10.0;      // paper testbed: Intel 82599ES 10 GbE
  double latency_seconds = 50e-6;
  /// Transfer time for a message of `bytes` between distinct servers.
  double TransferSeconds(uint64_t bytes) const;
};

struct SimWorkload {
  size_t num_requests = 20;
  /// 0 = all requests available at t=0 (a saturated stream).
  double interarrival_seconds = 0;
  /// Fault model: re-executions allowed per stage before a request is
  /// poisoned (mirrors RetryPolicy::max_retries in the real runtime).
  int max_retries = 0;
  /// Backoff charged before each re-execution (mirrors the runtime's
  /// retry backoff; the stage stays occupied while waiting).
  double retry_backoff_seconds = 0;
  /// Seed for the fault coin (reproducible degradation runs).
  uint64_t fault_seed = 0x5EEDFA17ULL;
};

struct SimReport {
  double avg_latency_seconds = 0;
  double max_latency_seconds = 0;
  double makespan_seconds = 0;
  double throughput_rps = 0;
  /// Busy time per stage (utilization diagnostics).
  std::vector<double> stage_busy_seconds;
  /// Fault model outcomes (zero when all failure_probs are 0).
  uint64_t failed_requests = 0;
  uint64_t total_retries = 0;
};

/// Pipelined execution: stages run concurrently, each FIFO over requests.
Result<SimReport> SimulatePipeline(const std::vector<SimStageSpec>& stages,
                                   const SimNetwork& network,
                                   const SimWorkload& workload);

/// Pipelined execution under a *sustainable* stream: the interarrival time
/// is set to `headroom` times the pipeline's bottleneck (slowest stage
/// expected occupancy — service × expected attempts under the fault model,
/// plus backoff and transfer), so queues stay bounded and the reported
/// latency is the steady-state per-request latency — the quantity the
/// paper's latency figures report. `fault_model` carries the retry budget,
/// backoff, and seed (num_requests/interarrival fields are overwritten);
/// the default is fault-free.
Result<SimReport> SimulateStablePipeline(
    const std::vector<SimStageSpec>& stages, const SimNetwork& network,
    size_t num_requests, double headroom = 1.05,
    const SimWorkload& fault_model = SimWorkload{});

/// Centralized execution (the CipherBase/PlainBase baselines): one server
/// processes each request through all stages before starting the next;
/// no pipeline parallelism, no transfers.
Result<SimReport> SimulateCentralized(const std::vector<SimStageSpec>& stages,
                                      const SimWorkload& workload);

}  // namespace ppstream
