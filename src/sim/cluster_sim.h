// Calibrated cluster simulator — the stand-in for the paper's 9-server
// testbed (Intel Xeon E5-2630 x9, 10 GbE).
//
// The scaling experiments (Exp#2-4) need 25-50 cores across machines; this
// sandbox has one. The simulator replays the pipeline mechanics exactly —
// FIFO stages, per-stage service times, inter-server transfers, queueing —
// using service-time constants measured on this host by the profiler
// (planner/profiler.h). Intra-stage speedup follows Amdahl's law, which
// yields the paper's observed diminishing returns when adding cores.
//
// A linear pipeline with single-FIFO stages admits an exact recurrence
// (no event queue needed):
//   ready(i, r) = done(i-1, r) + transfer(i-1)     [arrival for i = 0]
//   start(i, r) = max(ready(i, r), done(i, r-1))
//   done(i, r)  = start(i, r) + service(i)

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ppstream {

/// One simulated pipeline stage.
struct SimStageSpec {
  double single_thread_seconds = 0;  // measured T_i
  int threads = 1;                   // allocated y_i
  int server = 0;                    // placement (x)
  uint64_t bytes_out = 0;            // message size toward the next stage
  /// Amdahl parallel fraction of the stage's work.
  double parallel_fraction = 0.97;
  /// Serial overhead added after the Amdahl split — e.g. intra-stage
  /// distribution of per-thread messages, which does not parallelize.
  double fixed_overhead_seconds = 0;

  /// Effective service time with `threads` workers.
  double ServiceSeconds() const;
};

struct SimNetwork {
  double bandwidth_gbps = 10.0;      // paper testbed: Intel 82599ES 10 GbE
  double latency_seconds = 50e-6;
  /// Transfer time for a message of `bytes` between distinct servers.
  double TransferSeconds(uint64_t bytes) const;
};

struct SimWorkload {
  size_t num_requests = 20;
  /// 0 = all requests available at t=0 (a saturated stream).
  double interarrival_seconds = 0;
};

struct SimReport {
  double avg_latency_seconds = 0;
  double max_latency_seconds = 0;
  double makespan_seconds = 0;
  double throughput_rps = 0;
  /// Busy time per stage (utilization diagnostics).
  std::vector<double> stage_busy_seconds;
};

/// Pipelined execution: stages run concurrently, each FIFO over requests.
Result<SimReport> SimulatePipeline(const std::vector<SimStageSpec>& stages,
                                   const SimNetwork& network,
                                   const SimWorkload& workload);

/// Pipelined execution under a *sustainable* stream: the interarrival time
/// is set to `headroom` times the pipeline's bottleneck (slowest stage
/// service + its transfer), so queues stay bounded and the reported
/// latency is the steady-state per-request latency — the quantity the
/// paper's latency figures report.
Result<SimReport> SimulateStablePipeline(
    const std::vector<SimStageSpec>& stages, const SimNetwork& network,
    size_t num_requests, double headroom = 1.05);

/// Centralized execution (the CipherBase/PlainBase baselines): one server
/// processes each request through all stages before starting the next;
/// no pipeline parallelism, no transfers.
Result<SimReport> SimulateCentralized(const std::vector<SimStageSpec>& stages,
                                      const SimWorkload& workload);

}  // namespace ppstream
