#include "sim/bridge.h"

#include "util/logging.h"

namespace ppstream {

std::vector<SimStageSpec> BuildSimStages(const PlanProfile& profile,
                                         const Allocation& allocation,
                                         double parallel_fraction) {
  PPS_CHECK_EQ(profile.stage_seconds.size(),
               allocation.threads_of_layer.size());
  std::vector<SimStageSpec> stages(profile.stage_seconds.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    stages[i].single_thread_seconds = profile.stage_seconds[i];
    stages[i].threads = allocation.threads_of_layer[i];
    stages[i].server = allocation.server_of_layer[i];
    stages[i].bytes_out = profile.stage_bytes_out[i];
    stages[i].parallel_fraction = parallel_fraction;
  }
  return stages;
}

Result<std::vector<SimStageSpec>> BuildSimStagesFromPlan(
    const InferencePlan& plan, double seconds_per_scalar_mul,
    double seconds_per_element, uint64_t bytes_per_ciphertext,
    double parallel_fraction) {
  if (plan.is_data_provider_view) {
    return Status::InvalidArgument(
        "data-provider views carry no weights; simulate from the full plan");
  }
  const size_t rounds = plan.NumRounds();
  const bool placed =
      plan.placement.has_value() &&
      plan.placement->threads_of_stage.size() == 2 * rounds;
  std::vector<SimStageSpec> stages(2 * rounds);
  for (size_t r = 0; r < rounds; ++r) {
    const LinearStage& lin = plan.linear_stages[r];
    int64_t muls = 0;
    for (const IntegerAffineLayer& op : lin.ops) {
      muls += op.EncryptedScalarMuls();
    }
    SimStageSpec& mp = stages[2 * r];
    mp.single_thread_seconds =
        static_cast<double>(muls) * seconds_per_scalar_mul;
    mp.bytes_out = static_cast<uint64_t>(lin.output_shape.NumElements()) *
                   bytes_per_ciphertext;
    mp.server = placed ? plan.placement->server_of_stage[2 * r] : 0;
    mp.threads = placed ? plan.placement->threads_of_stage[2 * r] : 1;
    mp.parallel_fraction = parallel_fraction;

    const NonLinearSegment& seg = plan.nonlinear_segments[r];
    SimStageSpec& dp = stages[2 * r + 1];
    dp.single_thread_seconds =
        static_cast<double>(seg.shape.NumElements() *
                            static_cast<int64_t>(seg.layers.size())) *
        seconds_per_element;
    // The final segment returns plaintext logits; earlier segments
    // re-encrypt their activations toward the next linear stage.
    dp.bytes_out = seg.is_final
                       ? static_cast<uint64_t>(seg.shape.NumElements()) * 8
                       : static_cast<uint64_t>(seg.shape.NumElements()) *
                             bytes_per_ciphertext;
    dp.server = placed ? plan.placement->server_of_stage[2 * r + 1] : 1;
    dp.threads = placed ? plan.placement->threads_of_stage[2 * r + 1] : 1;
    dp.parallel_fraction = parallel_fraction;
  }
  return stages;
}

std::vector<SimStageSpec> BuildCentralizedStages(const PlanProfile& profile) {
  std::vector<SimStageSpec> stages(profile.stage_seconds.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    stages[i].single_thread_seconds = profile.stage_seconds[i];
    stages[i].threads = 1;
    stages[i].server = 0;
    stages[i].bytes_out = profile.stage_bytes_out[i];
  }
  return stages;
}

}  // namespace ppstream
