#include "sim/bridge.h"

#include "util/logging.h"

namespace ppstream {

std::vector<SimStageSpec> BuildSimStages(const PlanProfile& profile,
                                         const Allocation& allocation,
                                         double parallel_fraction) {
  PPS_CHECK_EQ(profile.stage_seconds.size(),
               allocation.threads_of_layer.size());
  std::vector<SimStageSpec> stages(profile.stage_seconds.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    stages[i].single_thread_seconds = profile.stage_seconds[i];
    stages[i].threads = allocation.threads_of_layer[i];
    stages[i].server = allocation.server_of_layer[i];
    stages[i].bytes_out = profile.stage_bytes_out[i];
    stages[i].parallel_fraction = parallel_fraction;
  }
  return stages;
}

std::vector<SimStageSpec> BuildCentralizedStages(const PlanProfile& profile) {
  std::vector<SimStageSpec> stages(profile.stage_seconds.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    stages[i].single_thread_seconds = profile.stage_seconds[i];
    stages[i].threads = 1;
    stages[i].server = 0;
    stages[i].bytes_out = profile.stage_bytes_out[i];
  }
  return stages;
}

}  // namespace ppstream
