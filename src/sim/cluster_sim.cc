#include "sim/cluster_sim.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace ppstream {

double SimStageSpec::ServiceSeconds() const {
  const int y = std::max(1, threads);
  const double f = std::clamp(parallel_fraction, 0.0, 1.0);
  return single_thread_seconds * ((1.0 - f) + f / static_cast<double>(y)) +
         fixed_overhead_seconds;
}

double SimStageSpec::ExpectedAttempts(int max_retries) const {
  const double p = std::clamp(failure_prob, 0.0, 1.0);
  if (p == 0) return 1.0;
  if (p == 1.0) return static_cast<double>(max_retries + 1);
  return (1.0 - std::pow(p, max_retries + 1)) / (1.0 - p);
}

double SimNetwork::TransferSeconds(uint64_t bytes) const {
  if (bandwidth_gbps <= 0) return latency_seconds;
  return latency_seconds +
         static_cast<double>(bytes) * 8.0 / (bandwidth_gbps * 1e9);
}

Result<SimReport> SimulatePipeline(const std::vector<SimStageSpec>& stages,
                                   const SimNetwork& network,
                                   const SimWorkload& workload) {
  if (stages.empty()) return Status::InvalidArgument("no stages");
  if (workload.num_requests == 0) {
    return Status::InvalidArgument("no requests");
  }
  const size_t s = stages.size();
  const size_t n = workload.num_requests;

  std::vector<double> service(s), transfer(s, 0);
  for (size_t i = 0; i < s; ++i) {
    service[i] = stages[i].ServiceSeconds();
    if (i + 1 < s && stages[i].server != stages[i + 1].server) {
      transfer[i] = network.TransferSeconds(stages[i].bytes_out);
    }
  }

  SimReport report;
  report.stage_busy_seconds.assign(s, 0);
  std::vector<double> prev_done(s, 0);  // done(i, r-1)
  double latency_sum = 0;
  Rng fault_rng(workload.fault_seed);

  for (size_t r = 0; r < n; ++r) {
    const double arrival =
        workload.interarrival_seconds * static_cast<double>(r);
    double upstream_done = arrival;
    bool poisoned = false;
    for (size_t i = 0; i < s; ++i) {
      // Fault model: each attempt fails independently with failure_prob;
      // retries re-occupy the stage (plus backoff). Once poisoned, the
      // request traverses the remaining stages as a free tombstone.
      double occupancy = 0;
      if (!poisoned) {
        const double p = std::clamp(stages[i].failure_prob, 0.0, 1.0);
        int attempts = 1;
        bool success = p == 0 || fault_rng.NextDouble() >= p;
        while (!success && attempts <= workload.max_retries) {
          ++attempts;
          ++report.total_retries;
          success = fault_rng.NextDouble() >= p;
        }
        occupancy = static_cast<double>(attempts) * service[i] +
                    static_cast<double>(attempts - 1) *
                        workload.retry_backoff_seconds;
        if (!success) {
          poisoned = true;
          ++report.failed_requests;
        }
      }
      const double ready =
          i == 0 ? arrival : upstream_done + transfer[i - 1];
      const double start = std::max(ready, prev_done[i]);
      const double done = start + occupancy;
      report.stage_busy_seconds[i] += occupancy;
      prev_done[i] = done;
      upstream_done = done;
    }
    const double latency = prev_done[s - 1] - arrival;
    latency_sum += latency;
    report.max_latency_seconds =
        std::max(report.max_latency_seconds, latency);
  }
  report.avg_latency_seconds = latency_sum / static_cast<double>(n);
  report.makespan_seconds = prev_done[s - 1];
  report.throughput_rps =
      static_cast<double>(n) / std::max(report.makespan_seconds, 1e-12);
  return report;
}

Result<SimReport> SimulateStablePipeline(
    const std::vector<SimStageSpec>& stages, const SimNetwork& network,
    size_t num_requests, double headroom, const SimWorkload& fault_model) {
  if (stages.empty()) return Status::InvalidArgument("no stages");
  double bottleneck = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    // Expected occupancy under the fault model (retries re-occupy the
    // stage), so the stream stays sustainable when faults are injected.
    const double attempts =
        stages[i].ExpectedAttempts(fault_model.max_retries);
    double cost = attempts * stages[i].ServiceSeconds() +
                  (attempts - 1.0) * fault_model.retry_backoff_seconds;
    if (i + 1 < stages.size() && stages[i].server != stages[i + 1].server) {
      cost += network.TransferSeconds(stages[i].bytes_out);
    }
    bottleneck = std::max(bottleneck, cost);
  }
  SimWorkload workload = fault_model;
  workload.num_requests = num_requests;
  workload.interarrival_seconds = headroom * bottleneck;
  return SimulatePipeline(stages, network, workload);
}

Result<SimReport> SimulateCentralized(const std::vector<SimStageSpec>& stages,
                                      const SimWorkload& workload) {
  if (stages.empty()) return Status::InvalidArgument("no stages");
  if (workload.num_requests == 0) {
    return Status::InvalidArgument("no requests");
  }
  double per_request = 0;
  for (const SimStageSpec& stage : stages) {
    per_request += stage.ServiceSeconds();
  }
  SimReport report;
  report.stage_busy_seconds.assign(stages.size(), 0);
  double clock = 0;
  double latency_sum = 0;
  for (size_t r = 0; r < workload.num_requests; ++r) {
    const double arrival =
        workload.interarrival_seconds * static_cast<double>(r);
    const double start = std::max(clock, arrival);
    clock = start + per_request;
    const double latency = clock - arrival;
    latency_sum += latency;
    report.max_latency_seconds =
        std::max(report.max_latency_seconds, latency);
    for (size_t i = 0; i < stages.size(); ++i) {
      report.stage_busy_seconds[i] += stages[i].ServiceSeconds();
    }
  }
  report.avg_latency_seconds =
      latency_sum / static_cast<double>(workload.num_requests);
  report.makespan_seconds = clock;
  report.throughput_rps =
      static_cast<double>(workload.num_requests) /
      std::max(report.makespan_seconds, 1e-12);
  return report;
}

}  // namespace ppstream
