// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the PRF/hash for garbled-circuit labels in src/mpc and for
// deriving permutation seeds. Streaming interface plus one-shot helpers.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace ppstream {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  /// Feeds more input; may be called any number of times.
  void Update(const uint8_t* data, size_t len);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }
  void Update(const std::string& s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finishes the hash. The hasher must not be reused afterwards
  /// (call Reset() to start a new message).
  Digest Finalize();

  void Reset();

  /// One-shot convenience.
  static Digest Hash(const uint8_t* data, size_t len);
  static Digest Hash(const std::vector<uint8_t>& data) {
    return Hash(data.data(), data.size());
  }
  static Digest Hash(const std::string& s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Hex string of a digest (lowercase, 64 chars).
  static std::string ToHex(const Digest& d);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace ppstream
