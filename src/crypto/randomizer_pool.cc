#include "crypto/randomizer_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace ppstream {

RandomizerPool::RandomizerPool(PaillierPublicKey pk, uint64_t seed)
    : RandomizerPool(std::move(pk), seed, Options()) {}

RandomizerPool::RandomizerPool(PaillierPublicKey pk, uint64_t seed,
                               Options options)
    : pk_(std::move(pk)),
      options_([&] {
        Options o = options;
        o.capacity = std::max<size_t>(o.capacity, 1);
        if (o.low_water == 0 || o.low_water > o.capacity) {
          o.low_water = o.capacity;
        }
        return o;
      }()),
      registry_([] {
        obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
        return RegistryHandles{r.GetCounter("crypto.pool.hits"),
                               r.GetCounter("crypto.pool.misses"),
                               r.GetCounter("crypto.pool.produced"),
                               r.GetCounter("crypto.pool.refills"),
                               r.GetGauge("crypto.pool.available")};
      }()),
      rng_(SecureRng::FromSeed(seed)) {}

RandomizerPool::~RandomizerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  refill_cv_.notify_all();
  if (refill_thread_.joinable()) refill_thread_.join();
}

BigInt RandomizerPool::NextRLocked() {
  ++stats_.produced;
  registry_.produced->Increment();
  return rng_.NextCoprimeBelow(pk_.n());
}

BigInt RandomizerPool::Raise(const BigInt& r) const {
  return pk_.ctx_n2().ModExp(r, pk_.n());
}

BigInt RandomizerPool::Take() {
  BigInt r;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ready_.empty()) {
      BigInt rn = std::move(ready_.front());
      ready_.pop_front();
      ++stats_.hits;
      registry_.hits->Increment();
      registry_.available->Set(static_cast<double>(ready_.size()));
      if (options_.background_refill && ready_.size() < options_.low_water) {
        EnsureRefillThreadLocked();
        refill_cv_.notify_one();
      }
      return rn;
    }
    ++stats_.misses;
    registry_.misses->Increment();
    r = NextRLocked();
    if (options_.background_refill) {
      EnsureRefillThreadLocked();
      refill_cv_.notify_one();
    }
  }
  // The expensive exponentiation happens outside the lock; concurrent
  // takers each raise their own r.
  return Raise(r);
}

std::vector<BigInt> RandomizerPool::TakeMany(size_t count, ThreadPool* pool) {
  std::vector<BigInt> out(count);
  std::vector<size_t> miss_positions;
  std::vector<BigInt> miss_r;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t i = 0;
    for (; i < count && !ready_.empty(); ++i) {
      out[i] = std::move(ready_.front());
      ready_.pop_front();
      ++stats_.hits;
      registry_.hits->Increment();
    }
    for (; i < count; ++i) {
      miss_positions.push_back(i);
      miss_r.push_back(NextRLocked());
      ++stats_.misses;
      registry_.misses->Increment();
    }
    registry_.available->Set(static_cast<double>(ready_.size()));
    if (options_.background_refill && ready_.size() < options_.low_water) {
      EnsureRefillThreadLocked();
      refill_cv_.notify_one();
    }
  }
  if (pool != nullptr && pool->num_threads() > 1 && miss_positions.size() > 1) {
    pool->ParallelFor(0, miss_positions.size(), [&](size_t j) {
      out[miss_positions[j]] = Raise(miss_r[j]);
    });
  } else {
    for (size_t j = 0; j < miss_positions.size(); ++j) {
      out[miss_positions[j]] = Raise(miss_r[j]);
    }
  }
  return out;
}

void RandomizerPool::Fill() {
  while (true) {
    BigInt r;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (ready_.size() >= options_.capacity) return;
      r = NextRLocked();
    }
    BigInt rn = Raise(r);
    std::lock_guard<std::mutex> lock(mutex_);
    ready_.push_back(std::move(rn));
    registry_.available->Set(static_cast<double>(ready_.size()));
  }
}

void RandomizerPool::EnsureRefillThreadLocked() {
  if (refill_running_ || stop_) return;
  refill_running_ = true;
  refill_thread_ = std::thread([this] { RefillLoop(); });
}

void RandomizerPool::RefillLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    refill_cv_.wait(lock, [this] {
      return stop_ || ready_.size() < options_.low_water;
    });
    if (stop_) return;
    bool topped_up = false;
    while (!stop_ && ready_.size() < options_.capacity) {
      BigInt r = NextRLocked();
      lock.unlock();
      BigInt rn = Raise(r);
      lock.lock();
      ready_.push_back(std::move(rn));
      registry_.available->Set(static_cast<double>(ready_.size()));
      topped_up = true;
    }
    if (topped_up) {
      ++stats_.refills;
      registry_.refills->Increment();
    }
  }
}

Result<Ciphertext> RandomizerPool::Encrypt(const BigInt& m) {
  return Paillier::EncryptWithRandomizer(pk_, m, Take());
}

Ciphertext RandomizerPool::Rerandomize(const Ciphertext& c) {
  return Paillier::RerandomizeWithRandomizer(pk_, c, Take());
}

size_t RandomizerPool::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ready_.size();
}

RandomizerPool::Stats RandomizerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ppstream
