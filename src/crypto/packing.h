// Paillier plaintext packing (Popcorn-style lane batching, DESIGN.md §13).
//
// A Paillier plaintext is ~key_bits wide but a quantized tensor element
// needs only a few dozen bits, so we pack `lanes` independent fixed-point
// values into one plaintext as balanced base-2^slot_bits digits:
//
//   P = sum_{i < lanes} v_i * 2^(i * slot_bits),    |v_i| <= 2^(slot_bits-1)-1
//
// Slot i of every packed word belongs to inference lane i. Homomorphic
// addition adds slot-wise and scalar multiplication scales every slot by
// the same weight, so an affine row evaluated over packed words computes
// the same dot product for all lanes at once — encrypts, decrypts,
// scalar-muls, and wire bytes all divide by `lanes`.
//
// Legality is a pure bound check: each slot must hold the stage's
// magnitude bound (including every intermediate partial sum, which the
// planner bounds by the stage's output magnitude bound) plus `guard_bits`
// of headroom. Decode is overflow-checked: a carry into a neighboring
// slot produces either the illegal balanced digit -2^(slot_bits-1) or a
// nonzero residue after the last slot, and both are reported as errors
// rather than silently corrupting a neighboring lane.

#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"
#include "util/buffer.h"
#include "util/status.h"

namespace ppstream {

/// Slot geometry for one packed plaintext. Value-semantic and serialized
/// into the DataProvider view so both parties agree per stage.
struct PackedLayout {
  int32_t lanes = 1;       // slots per plaintext (1 = unpacked)
  int32_t slot_bits = 0;   // width of one balanced digit
  int32_t guard_bits = 0;  // headroom included in slot_bits

  bool IsPacked() const { return lanes > 1; }

  /// Largest magnitude a slot can hold: 2^(slot_bits-1) - 1.
  BigInt SlotCapacity() const;

  /// sum_{i < lanes} 2^(i * slot_bits): multiplying a plaintext constant
  /// by this replicates it into every slot (used for biases).
  BigInt ReplicationConstant() const;

  int64_t TotalBits() const {
    return static_cast<int64_t>(lanes) * slot_bits;
  }

  bool operator==(const PackedLayout& o) const {
    return lanes == o.lanes && slot_bits == o.slot_bits &&
           guard_bits == o.guard_bits;
  }
  bool operator!=(const PackedLayout& o) const { return !(*this == o); }

  /// Rejects non-positive lanes, slot_bits < 2, or negative guard bits.
  Status Validate() const;

  void Serialize(BufferWriter* out) const;
  static Result<PackedLayout> Deserialize(BufferReader* in);
};

/// Picks the widest legal layout for a stage: slot_bits covers
/// |v| <= magnitude_bound plus sign plus guard_bits, and lanes fills the
/// key minus a 2-bit margin below the n/2 signed-encoding threshold.
/// Fails (kFailedPrecondition) when fewer than 2 lanes fit — the caller
/// falls back to the scalar path.
Result<PackedLayout> ChoosePackedLayout(int key_bits,
                                        const BigInt& magnitude_bound,
                                        int guard_bits, int max_lanes);

/// Packs up to layout.lanes signed values (missing slots are zero).
/// Fails if any |slots[i]| exceeds SlotCapacity().
Result<BigInt> PackSigned(const PackedLayout& layout,
                          const std::vector<BigInt>& slots);

/// Inverse of PackSigned: always returns exactly layout.lanes values.
/// Fails on any overflow witness (illegal digit or trailing residue).
Result<std::vector<BigInt>> UnpackSigned(const PackedLayout& layout,
                                         const BigInt& packed);

/// True iff a slot holds |v| <= magnitude_bound with guard_bits to spare.
Status CheckSlotFits(const PackedLayout& layout, const BigInt& magnitude_bound);

/// Slot-aligned hom-add legality: the sum bound must still fit a slot.
Status CheckAddLegal(const PackedLayout& layout, const BigInt& bound_a,
                     const BigInt& bound_b);

/// Slot-aligned scalar-mul legality: |weight| * bound must still fit.
Status CheckScalarMulLegal(const PackedLayout& layout, const BigInt& bound,
                           const BigInt& weight);

}  // namespace ppstream
