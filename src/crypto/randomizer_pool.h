// Pool of precomputed Paillier randomizers.
//
// Paillier::Encrypt's cost is dominated by r^n mod n^2 — a full-width
// modular exponentiation whose value is independent of the plaintext. The
// pool precomputes these randomizers ahead of need (eagerly via Fill(), or
// continuously on an optional background thread), so the request path of
// Encrypt/Rerandomize drops to a single modular multiplication.
//
// Determinism: randomizers derive from one seeded CSPRNG stream and
// production is serialized, so the k-th randomizer PRODUCED is a pure
// function of the seed — pool size, refill timing, and which thread did
// the work never change the sequence. (Under concurrent Take() the
// assignment of sequence elements to callers follows arrival order, as
// with any shared seeded RNG.) An exhausted pool computes on demand from
// the same stream — callers never block on a refill.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include <vector>

#include "crypto/paillier.h"
#include "crypto/secure_rng.h"
#include "obs/metrics.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ppstream {

class RandomizerPool {
 public:
  struct Options {
    /// Target number of ready randomizers.
    size_t capacity = 256;
    /// Background refill starts once the pool drops below this; 0 means
    /// capacity (top up after every take).
    size_t low_water = 0;
    /// Spawn a refill thread on first use. Off: the pool only holds what
    /// Fill() put there, then computes on demand.
    bool background_refill = true;
  };

  /// Per-instance counters. The same events are mirrored into the global
  /// MetricsRegistry under "crypto.pool.hits" / ".misses" / ".produced" /
  /// ".refills" (aggregated across pools), plus a "crypto.pool.available"
  /// gauge tracking the most recent ready-queue depth.
  struct Stats {
    uint64_t hits = 0;      // takes served from the pool
    uint64_t misses = 0;    // takes computed on demand
    uint64_t produced = 0;  // randomizers computed in total
    uint64_t refills = 0;   // background refill passes that topped up
  };

  /// `seed` derives the CSPRNG producing the r values.
  RandomizerPool(PaillierPublicKey pk, uint64_t seed);
  RandomizerPool(PaillierPublicKey pk, uint64_t seed, Options options);
  ~RandomizerPool();

  RandomizerPool(const RandomizerPool&) = delete;
  RandomizerPool& operator=(const RandomizerPool&) = delete;

  /// Next randomizer r^n mod n^2. Pool-served when available, computed
  /// on demand (same sequence) when not; never blocks on a refill.
  BigInt Take();

  /// Takes `count` randomizers at once, atomically with respect to the
  /// stream: position i always receives sequence element base + i, so a
  /// batch encrypt assigns randomizers to tensor slots deterministically
  /// no matter how full the pool was. Misses at the tail are raised after
  /// the lock is dropped, in parallel over `pool` when given.
  std::vector<BigInt> TakeMany(size_t count, ThreadPool* pool = nullptr);

  /// Synchronously fills the pool to capacity on the calling thread.
  void Fill();

  /// Pool-backed E(m): one ModMul on the request path.
  Result<Ciphertext> Encrypt(const BigInt& m);
  /// Pool-backed rerandomization: one ModMul.
  Ciphertext Rerandomize(const Ciphertext& c);

  size_t available() const;
  Stats stats() const;
  const PaillierPublicKey& public_key() const { return pk_; }

 private:
  /// Draws the next r from the stream. Caller must hold mutex_.
  BigInt NextRLocked() PPS_REQUIRES(mutex_);
  /// Computes r^n mod n^2 (expensive; never call with the lock held —
  /// every Take would stall behind the exponentiation).
  BigInt Raise(const BigInt& r) const PPS_EXCLUDES(mutex_);
  void EnsureRefillThreadLocked() PPS_REQUIRES(mutex_);
  /// unique_lock/cv juggling Clang's analysis cannot model; ppslint R6
  /// still checks it lexically.
  void RefillLoop() PPS_NO_THREAD_SAFETY_ANALYSIS;

  const PaillierPublicKey pk_;
  const Options options_;

  /// Aggregated process-wide mirrors of stats_ (see Stats doc).
  struct RegistryHandles {
    obs::Counter* hits;
    obs::Counter* misses;
    obs::Counter* produced;
    obs::Counter* refills;
    obs::Gauge* available;
  };
  const RegistryHandles registry_;

  mutable std::mutex mutex_;
  std::condition_variable refill_cv_;
  SecureRng rng_ PPS_GUARDED_BY(mutex_);
  std::deque<BigInt> ready_ PPS_GUARDED_BY(mutex_);
  Stats stats_ PPS_GUARDED_BY(mutex_);
  bool stop_ PPS_GUARDED_BY(mutex_) = false;
  bool refill_running_ PPS_GUARDED_BY(mutex_) = false;
  std::thread refill_thread_;
};

}  // namespace ppstream
