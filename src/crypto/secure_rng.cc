#include "crypto/secure_rng.h"

#include <cstring>
#include <random>

#include "util/logging.h"

namespace ppstream {

namespace {

inline uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl32(d ^ a, 16);
  c += d;
  b = Rotl32(b ^ c, 12);
  a += b;
  d = Rotl32(d ^ a, 8);
  c += d;
  b = Rotl32(b ^ c, 7);
}

}  // namespace

SecureRng::SecureRng(const Key& key) {
  // RFC 8439 state layout: constants, key, counter, nonce (zero).
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = static_cast<uint32_t>(key[i * 4]) |
                    (static_cast<uint32_t>(key[i * 4 + 1]) << 8) |
                    (static_cast<uint32_t>(key[i * 4 + 2]) << 16) |
                    (static_cast<uint32_t>(key[i * 4 + 3]) << 24);
  }
  state_[12] = 0;  // counter (maintained separately in counter_)
  state_[13] = state_[14] = state_[15] = 0;  // nonce
}

SecureRng SecureRng::FromEntropy() {
  // ppslint:allow(R2 the one audited OS-entropy source: it only keys the ChaCha20 stream, no engine state escapes this function)
  std::random_device rd;
  Key key;
  for (size_t i = 0; i < key.size(); i += 4) {
    uint32_t w = rd();
    key[i] = static_cast<uint8_t>(w);
    key[i + 1] = static_cast<uint8_t>(w >> 8);
    key[i + 2] = static_cast<uint8_t>(w >> 16);
    key[i + 3] = static_cast<uint8_t>(w >> 24);
  }
  return SecureRng(key);
}

SecureRng SecureRng::FromSeed(uint64_t seed) {
  Key key{};
  for (int i = 0; i < 8; ++i) key[i] = static_cast<uint8_t>(seed >> (8 * i));
  return SecureRng(key);
}

void SecureRng::RefillBlock() {
  std::array<uint32_t, 16> working = state_;
  working[12] = counter_;
  std::array<uint32_t, 16> x = working;
  for (int round = 0; round < 10; ++round) {  // 20 rounds = 10 double rounds
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t word = x[i] + working[i];
    block_[i * 4] = static_cast<uint8_t>(word);
    block_[i * 4 + 1] = static_cast<uint8_t>(word >> 8);
    block_[i * 4 + 2] = static_cast<uint8_t>(word >> 16);
    block_[i * 4 + 3] = static_cast<uint8_t>(word >> 24);
  }
  ++counter_;
  block_pos_ = 0;
}

uint8_t SecureRng::NextByte() {
  if (block_pos_ >= block_.size()) RefillBlock();
  return block_[block_pos_++];
}

uint64_t SecureRng::NextU64() {
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(NextByte()) << (8 * i);
  }
  return out;
}

uint64_t SecureRng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling over the smallest power-of-two mask >= bound.
  uint64_t mask = bound - 1;
  mask |= mask >> 1;
  mask |= mask >> 2;
  mask |= mask >> 4;
  mask |= mask >> 8;
  mask |= mask >> 16;
  mask |= mask >> 32;
  for (;;) {
    uint64_t v = NextU64() & mask;
    if (v < bound) return v;
  }
}

void SecureRng::Fill(uint8_t* out, size_t len) {
  for (size_t i = 0; i < len; ++i) out[i] = NextByte();
}

BigInt SecureRng::NextBigIntBelow(const BigInt& bound) {
  PPS_CHECK(!bound.IsZero() && !bound.IsNegative());
  const int bits = bound.BitLength();
  const size_t bytes = (static_cast<size_t>(bits) + 7) / 8;
  const int top_bits = bits % 8 == 0 ? 8 : bits % 8;
  std::vector<uint8_t> buf(bytes);
  for (;;) {
    Fill(buf.data(), buf.size());
    buf[0] &= static_cast<uint8_t>((1u << top_bits) - 1);
    BigInt cand = BigInt::FromBytes(buf);
    if (cand.Compare(bound) < 0) return cand;
  }
}

BigInt SecureRng::NextCoprimeBelow(const BigInt& n) {
  PPS_CHECK(n.Compare(BigInt(2)) > 0);
  for (;;) {
    BigInt r = NextBigIntBelow(n);
    if (r.IsZero()) continue;
    if (BigInt::Gcd(r, n).IsOne()) return r;
  }
}

}  // namespace ppstream
