// Cryptographically strong pseudo-random generator (ChaCha20 keystream).
//
// Used for Paillier blinding factors and obfuscation permutation seeds.
// Deterministic when constructed with an explicit 256-bit key, which keeps
// protocol tests reproducible; FromEntropy() seeds from std::random_device.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bignum/bigint.h"

namespace ppstream {

/// ChaCha20-based CSPRNG (RFC 8439 block function run in counter mode).
class SecureRng {
 public:
  using Key = std::array<uint8_t, 32>;

  /// Deterministic stream for the given key (nonce fixed to zero).
  explicit SecureRng(const Key& key);

  /// Seeds a fresh generator from the OS entropy source.
  static SecureRng FromEntropy();

  /// Deterministic generator derived from a 64-bit seed (tests only).
  static SecureRng FromSeed(uint64_t seed);

  uint8_t NextByte();
  uint64_t NextU64();

  /// Uniform in [0, bound), rejection-sampled (no modulo bias).
  uint64_t NextBounded(uint64_t bound);

  void Fill(uint8_t* out, size_t len);

  /// Uniform BigInt in [0, bound), bound > 0.
  BigInt NextBigIntBelow(const BigInt& bound);

  /// Uniform BigInt in [1, n) with gcd(r, n) == 1 — a Paillier blinding
  /// factor. `n` must be > 2.
  BigInt NextCoprimeBelow(const BigInt& n);

 private:
  void RefillBlock();

  std::array<uint32_t, 16> state_;
  std::array<uint8_t, 64> block_;
  size_t block_pos_ = 64;  // force refill on first use
  uint32_t counter_ = 0;
};

}  // namespace ppstream
