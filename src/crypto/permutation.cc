#include "crypto/permutation.h"

#include <numeric>

namespace ppstream {

Permutation Permutation::Identity(size_t n) {
  Permutation p;
  p.map_.resize(n);
  std::iota(p.map_.begin(), p.map_.end(), 0);
  return p;
}

Permutation Permutation::Random(size_t n, SecureRng& rng) {
  Permutation p = Identity(n);
  for (size_t i = n; i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(p.map_[i - 1], p.map_[j]);
  }
  return p;
}

Result<Permutation> Permutation::FromMapping(std::vector<uint32_t> mapping) {
  std::vector<bool> seen(mapping.size(), false);
  for (uint32_t v : mapping) {
    if (v >= mapping.size() || seen[v]) {
      return Status::InvalidArgument("mapping is not a bijection");
    }
    seen[v] = true;
  }
  Permutation p;
  p.map_ = std::move(mapping);
  return p;
}

Permutation Permutation::Compose(const Permutation& first) const {
  PPS_CHECK_EQ(map_.size(), first.map_.size());
  Permutation out;
  out.map_.resize(map_.size());
  // (this ∘ first): position i goes to first.map_[i], then to
  // map_[first.map_[i]].
  for (size_t i = 0; i < map_.size(); ++i) {
    out.map_[i] = map_[first.map_[i]];
  }
  return out;
}

Permutation Permutation::Inverse() const {
  Permutation out;
  out.map_.resize(map_.size());
  for (size_t i = 0; i < map_.size(); ++i) {
    out.map_[map_[i]] = static_cast<uint32_t>(i);
  }
  return out;
}

}  // namespace ppstream
