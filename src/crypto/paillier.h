// Paillier partially homomorphic public-key cryptosystem (Paillier, 1999).
//
// PP-Stream uses Paillier's PHE for privacy-preserving linear layers
// (paper Section III-B):
//   addition:               m1 + m2 = D(E(m1) * E(m2) mod n^2)
//   scalar multiplication:  w * m   = D(E(m)^w mod n^2)
//
// Implementation notes:
//  * g is fixed to n + 1, so E(m) = (1 + m n) * r^n mod n^2 — one modexp
//    per encryption instead of two.
//  * Decryption uses the CRT split mod p^2 / q^2 (about 4x faster than the
//    direct form at equal key size).
//  * Signed plaintexts are encoded into Z_n: values in (n/2, n) decode as
//    negatives. |m| must stay below n/2; linear layers guarantee this by
//    construction (parameter scaling bounds the dynamic range).
//  * Montgomery contexts for n^2, p^2, q^2 are precomputed per key.

#pragma once

#include <memory>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/fixed_base.h"
#include "bignum/montgomery.h"
#include "crypto/secure_rng.h"
#include "util/rng.h"
#include "util/status.h"

namespace ppstream {

/// A Paillier ciphertext: a unit of Z*_{n^2}. Value-semantic. Always
/// carries the canonical representative — this is the form that crosses
/// party and wire boundaries (the serialized encoding never changes).
struct Ciphertext {
  BigInt value;

  void Serialize(BufferWriter* out) const { value.Serialize(out); }
  static Result<Ciphertext> Deserialize(BufferReader* in) {
    PPS_ASSIGN_OR_RETURN(BigInt v, BigInt::Deserialize(in));
    return Ciphertext{std::move(v)};
  }
};

/// A ciphertext resident in the Montgomery domain of a key's n^2 context —
/// the stage-internal representation. Long Add/ScalarMul chains on
/// residents pay one Montgomery multiplication per op instead of a
/// ToMont/FromMont round trip each; convert back with
/// Paillier::FromMontResident at stage boundaries (serialization always
/// sees the canonical Ciphertext, so the wire format is unchanged).
struct MontCiphertext {
  MontgomeryContext::MontValue m;
};

/// Public key: everything the model provider needs for homomorphic ops.
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  explicit PaillierPublicKey(BigInt n);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }
  /// Half of n; the signed-encoding threshold.
  const BigInt& half_n() const { return half_n_; }
  int key_bits() const { return n_.BitLength(); }

  const MontgomeryContext& ctx_n2() const { return *ctx_n2_; }

  void Serialize(BufferWriter* out) const;
  static Result<PaillierPublicKey> Deserialize(BufferReader* in);

 private:
  BigInt n_;
  BigInt n_squared_;
  BigInt half_n_;
  std::shared_ptr<MontgomeryContext> ctx_n2_;
};

/// Private key: CRT decryption material. Held only by the data provider.
class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;
  /// Builds decryption material from the prime factorization of n.
  static Result<PaillierPrivateKey> FromPrimes(const BigInt& p,
                                               const BigInt& q);

  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }

  /// Raw decryption to the canonical representative in [0, n).
  Result<BigInt> DecryptRaw(const Ciphertext& c) const;

 private:
  BigInt p_, q_;
  BigInt p_squared_, q_squared_;
  BigInt n_;
  BigInt hp_, hq_;      // L_p(g^{p-1} mod p^2)^{-1} mod p, and q analog
  BigInt p_inv_q_;      // p^{-1} mod q, for CRT recombination
  std::shared_ptr<MontgomeryContext> ctx_p2_, ctx_q2_;
};

struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// Stateless Paillier operations.
class Paillier {
 public:
  /// Generates a key pair with an n of roughly `key_bits` bits
  /// (two primes of key_bits/2 each). key_bits must be >= 64 and even.
  static Result<PaillierKeyPair> GenerateKeyPair(int key_bits, Rng& rng);

  /// Encrypts a signed integer m with |m| < n/2.
  static Result<Ciphertext> Encrypt(const PaillierPublicKey& pk,
                                    const BigInt& m, SecureRng& rng);

  /// Decrypts to a signed integer (values above n/2 map to negatives).
  static Result<BigInt> Decrypt(const PaillierPublicKey& pk,
                                const PaillierPrivateKey& sk,
                                const Ciphertext& c);

  /// E(m1 + m2) from E(m1), E(m2).
  static Ciphertext Add(const PaillierPublicKey& pk, const Ciphertext& c1,
                        const Ciphertext& c2);

  /// E(m + k) from E(m) and plaintext k (signed).
  static Result<Ciphertext> AddPlain(const PaillierPublicKey& pk,
                                     const Ciphertext& c, const BigInt& k);

  /// E(w * m) from E(m) and signed scalar w.
  static Result<Ciphertext> ScalarMul(const PaillierPublicKey& pk,
                                      const Ciphertext& c, const BigInt& w);

  /// E(-m) from E(m).
  static Result<Ciphertext> Negate(const PaillierPublicKey& pk,
                                   const Ciphertext& c);

  /// Fresh randomization: multiplies by r^n, preserving the plaintext.
  static Result<Ciphertext> Rerandomize(const PaillierPublicKey& pk,
                                        const Ciphertext& c, SecureRng& rng);

  /// Encryption of zero with fixed randomness r = 1 (useful as an additive
  /// identity when accumulating dot products).
  static Ciphertext EncryptZeroDeterministic(const PaillierPublicKey& pk);

  // ---- Amortized hot-path API (DESIGN.md §8).

  /// E(m) with a precomputed randomizer rn = r^n mod n^2 (from a
  /// RandomizerPool): one ModMul on the request path instead of a
  /// full-width ModExp.
  static Result<Ciphertext> EncryptWithRandomizer(const PaillierPublicKey& pk,
                                                  const BigInt& m,
                                                  const BigInt& rn);

  /// Rerandomization with a precomputed rn: one ModMul.
  static Ciphertext RerandomizeWithRandomizer(const PaillierPublicKey& pk,
                                              const Ciphertext& c,
                                              const BigInt& rn);

  /// Builds the fixed-base exponent table for E(m), after which every
  /// ScalarMulPrecomputed against it is table lookups + MontMuls with zero
  /// squarings. `max_weight_bits` bounds |w|; `allow_negative` enables
  /// negative weights; `fan_out_hint` is the expected reuse count.
  static Result<FixedBaseExp> PrecomputeScalarMulBase(
      const PaillierPublicKey& pk, const Ciphertext& c, int max_weight_bits,
      bool allow_negative, int64_t fan_out_hint);

  /// E(w * m) through a table from PrecomputeScalarMulBase.
  static Result<Ciphertext> ScalarMulPrecomputed(const FixedBaseExp& base,
                                                 const BigInt& w);

  // ---- Montgomery-resident ops (stage-internal; see MontCiphertext).

  static MontCiphertext ToMontResident(const PaillierPublicKey& pk,
                                       const Ciphertext& c);
  static Ciphertext FromMontResident(const PaillierPublicKey& pk,
                                     const MontCiphertext& c);
  /// Resident E(0) with randomness r = 1, the accumulation identity.
  static MontCiphertext EncryptZeroMontResident(const PaillierPublicKey& pk);
  /// E(m1 + m2): one Montgomery multiplication.
  static MontCiphertext AddMont(const PaillierPublicKey& pk,
                                const MontCiphertext& c1,
                                const MontCiphertext& c2);
  /// E(m + k) for plaintext k (signed).
  static Result<MontCiphertext> AddPlainMont(const PaillierPublicKey& pk,
                                             const MontCiphertext& c,
                                             const BigInt& k);
  /// E(w * m) for signed scalar w, staying resident.
  static Result<MontCiphertext> ScalarMulMont(const PaillierPublicKey& pk,
                                              const MontCiphertext& c,
                                              const BigInt& w);

  /// Encodes a signed value into Z_n (fails if |m| >= n/2).
  static Result<BigInt> EncodeSigned(const PaillierPublicKey& pk,
                                     const BigInt& m);
  /// Decodes a canonical representative in [0, n) back to signed.
  static BigInt DecodeSigned(const PaillierPublicKey& pk, const BigInt& v);
};

}  // namespace ppstream
