#include "crypto/packing.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace ppstream {
namespace {

BigInt PowerOfTwo(int64_t bits) { return BigInt(1) << static_cast<int>(bits); }

}  // namespace

BigInt PackedLayout::SlotCapacity() const {
  return PowerOfTwo(slot_bits - 1) - BigInt(1);
}

BigInt PackedLayout::ReplicationConstant() const {
  BigInt r;
  for (int32_t i = 0; i < lanes; ++i) {
    r += PowerOfTwo(static_cast<int64_t>(i) * slot_bits);
  }
  return r;
}

Status PackedLayout::Validate() const {
  if (lanes < 1) return Status::InvalidArgument("packing: lanes must be >= 1");
  if (slot_bits < 2) {
    return Status::InvalidArgument("packing: slot_bits must be >= 2");
  }
  if (guard_bits < 0 || guard_bits >= slot_bits) {
    return Status::InvalidArgument("packing: guard_bits out of range");
  }
  return Status::OK();
}

void PackedLayout::Serialize(BufferWriter* out) const {
  out->WriteU32(static_cast<uint32_t>(lanes));
  out->WriteU32(static_cast<uint32_t>(slot_bits));
  out->WriteU32(static_cast<uint32_t>(guard_bits));
}

Result<PackedLayout> PackedLayout::Deserialize(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint32_t lanes, in->ReadU32());
  PPS_ASSIGN_OR_RETURN(uint32_t slot_bits, in->ReadU32());
  PPS_ASSIGN_OR_RETURN(uint32_t guard_bits, in->ReadU32());
  // Bound before trusting: a hostile view must not drive 2^slot_bits huge.
  if (lanes > 4096 || slot_bits > 65536 || guard_bits > 65536) {
    return Status::OutOfRange("packing: implausible layout in view");
  }
  PackedLayout layout{static_cast<int32_t>(lanes),
                      static_cast<int32_t>(slot_bits),
                      static_cast<int32_t>(guard_bits)};
  PPS_RETURN_IF_ERROR(layout.Validate());
  return layout;
}

Result<PackedLayout> ChoosePackedLayout(int key_bits,
                                        const BigInt& magnitude_bound,
                                        int guard_bits, int max_lanes) {
  if (guard_bits < 0) {
    return Status::InvalidArgument("packing: negative guard_bits");
  }
  if (max_lanes < 1) {
    return Status::InvalidArgument("packing: max_lanes must be >= 1");
  }
  if (magnitude_bound.IsNegative()) {
    return Status::InvalidArgument("packing: negative magnitude bound");
  }
  // Sign bit + value bits + guard headroom. BitLength(0) == 0 still needs
  // one value bit so the slot can represent +/-1 intermediates.
  const int value_bits = magnitude_bound.BitLength() > 0
                             ? magnitude_bound.BitLength()
                             : 1;
  const int slot_bits = value_bits + 1 + guard_bits;
  // Keep the packed total 2 bits under the key so |P| < n/2 (signed
  // encoding threshold) with margin for the top balanced digit's sign.
  const int budget = key_bits - 2;
  const int lanes = std::min(max_lanes, budget / slot_bits);
  if (lanes < 2) {
    return Status::FailedPrecondition(
        "packing: bound of " + std::to_string(value_bits) +
        " bits leaves < 2 lanes at " + std::to_string(key_bits) + "-bit key");
  }
  PackedLayout layout{static_cast<int32_t>(lanes),
                      static_cast<int32_t>(slot_bits),
                      static_cast<int32_t>(guard_bits)};
  PPS_RETURN_IF_ERROR(layout.Validate());
  return layout;
}

Result<BigInt> PackSigned(const PackedLayout& layout,
                          const std::vector<BigInt>& slots) {
  PPS_RETURN_IF_ERROR(layout.Validate());
  if (slots.size() > static_cast<size_t>(layout.lanes)) {
    return Status::InvalidArgument("packing: more values than lanes");
  }
  const BigInt capacity = layout.SlotCapacity();
  BigInt packed;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].CompareMagnitude(capacity) > 0) {
      return Status::OutOfRange("packing: slot " + std::to_string(i) +
                                " exceeds capacity of " +
                                std::to_string(layout.slot_bits) + "-bit slot");
    }
    packed += slots[i] << static_cast<int>(static_cast<int64_t>(i) *
                                           layout.slot_bits);
  }
  static obs::Counter* packs =
      obs::MetricsRegistry::Global().GetCounter("crypto.pack.packs");
  packs->Increment();
  return packed;
}

Result<std::vector<BigInt>> UnpackSigned(const PackedLayout& layout,
                                         const BigInt& packed) {
  PPS_RETURN_IF_ERROR(layout.Validate());
  if (packed.BitLength() > layout.TotalBits()) {
    return Status::OutOfRange("packing: packed value wider than layout");
  }
  const BigInt modulus = PowerOfTwo(layout.slot_bits);
  const BigInt half = PowerOfTwo(layout.slot_bits - 1);
  const BigInt capacity = layout.SlotCapacity();
  std::vector<BigInt> slots;
  slots.reserve(static_cast<size_t>(layout.lanes));
  BigInt rest = packed;
  for (int32_t i = 0; i < layout.lanes; ++i) {
    PPS_ASSIGN_OR_RETURN(BigInt digit, rest.Mod(modulus));
    if (digit >= half) digit -= modulus;
    // -2^(slot_bits-1) is not a legal balanced digit: it can only appear
    // when an overflow carried into this slot.
    if (digit.CompareMagnitude(capacity) > 0) {
      return Status::OutOfRange("packing: slot " + std::to_string(i) +
                                " overflowed (illegal balanced digit)");
    }
    rest = (rest - digit) >> layout.slot_bits;
    slots.push_back(std::move(digit));
  }
  if (!rest.IsZero()) {
    return Status::OutOfRange("packing: residue beyond last slot (overflow)");
  }
  static obs::Counter* unpacks =
      obs::MetricsRegistry::Global().GetCounter("crypto.pack.unpacks");
  unpacks->Increment();
  return slots;
}

Status CheckSlotFits(const PackedLayout& layout,
                     const BigInt& magnitude_bound) {
  PPS_RETURN_IF_ERROR(layout.Validate());
  // The bound must fit the value bits with the guard headroom untouched:
  // |v| < 2^(slot_bits - 1 - guard_bits).
  if (magnitude_bound >= PowerOfTwo(layout.slot_bits - 1 - layout.guard_bits)) {
    return Status::OutOfRange("packing: magnitude bound of " +
                              std::to_string(magnitude_bound.BitLength()) +
                              " bits does not fit slot");
  }
  return Status::OK();
}

Status CheckAddLegal(const PackedLayout& layout, const BigInt& bound_a,
                     const BigInt& bound_b) {
  PPS_RETURN_IF_ERROR(layout.Validate());
  if (bound_a + bound_b > layout.SlotCapacity()) {
    return Status::OutOfRange("packing: hom-add result would overflow slot");
  }
  return Status::OK();
}

Status CheckScalarMulLegal(const PackedLayout& layout, const BigInt& bound,
                           const BigInt& weight) {
  PPS_RETURN_IF_ERROR(layout.Validate());
  BigInt scaled = bound * weight;
  if (scaled.CompareMagnitude(layout.SlotCapacity()) > 0) {
    return Status::OutOfRange("packing: scalar-mul result would overflow slot");
  }
  return Status::OK();
}

}  // namespace ppstream
