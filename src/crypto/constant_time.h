// Constant-time equality for secret buffers (ppslint rule R4,
// DESIGN.md §10).
//
// A data-dependent early exit in a comparison over secret state (keys,
// digests, permutation mappings) is a timing oracle: the time to reject
// reveals the length of the matching prefix. These helpers touch every
// element and fold the difference into one accumulator, so the running
// time depends only on the (public) length.
//
// Length mismatch returns false immediately — container sizes are public
// in this codebase (tensor shapes and permutation sizes are part of the
// plan both parties hold).

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace ppstream {

/// Byte-wise constant-time compare of two equal-length buffers.
bool ConstantTimeEquals(const uint8_t* a, const uint8_t* b, size_t len);

/// Constant-time compare of two vectors of trivially copyable scalars.
template <typename T>
  requires std::is_trivially_copyable_v<T>
bool ConstantTimeEquals(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  return ConstantTimeEquals(reinterpret_cast<const uint8_t*>(a.data()),
                            reinterpret_cast<const uint8_t*>(b.data()),
                            a.size() * sizeof(T));
}

}  // namespace ppstream
