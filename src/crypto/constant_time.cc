#include "crypto/constant_time.h"

namespace ppstream {

bool ConstantTimeEquals(const uint8_t* a, const uint8_t* b, size_t len) {
  // The volatile accumulator keeps the compiler from strength-reducing
  // the loop into a memcmp (which may early-exit).
  volatile uint8_t acc = 0;
  for (size_t i = 0; i < len; ++i) {
    acc = acc | static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace ppstream
