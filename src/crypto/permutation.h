// Obfuscation by random permutation of tensor element positions
// (paper Section III-C).
//
// The model provider reshapes a tensor into a 1-d vector (lexicographic
// order — Tensor<T> is row-major, so its flat buffer already is that
// vector), applies a fresh random permutation before sending it to the
// data provider, and applies the inverse on the way back. Values are
// untouched; only positions move, so element-wise non-linear functions
// (ReLU, Sigmoid) commute with the permutation.

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/constant_time.h"
#include "crypto/secure_rng.h"
#include "util/logging.h"
#include "util/status.h"

namespace ppstream {

/// A one-to-one mapping of n positions.
///
/// Convention: Apply moves the element at input position i to output
/// position map_[i]; ApplyInverse undoes this.
class Permutation {
 public:
  Permutation() = default;

  /// Identity on n elements.
  static Permutation Identity(size_t n);

  /// Uniformly random permutation of n elements (Fisher–Yates driven by a
  /// CSPRNG — fresh randomness per round, per the paper).
  static Permutation Random(size_t n, SecureRng& rng);

  /// Builds from an explicit mapping; fails unless it is a bijection.
  static Result<Permutation> FromMapping(std::vector<uint32_t> mapping);

  size_t size() const { return map_.size(); }
  uint32_t MapIndex(size_t i) const { return map_[i]; }
  const std::vector<uint32_t>& mapping() const { return map_; }

  /// out[map_[i]] = in[i]. `in.size()` must equal size().
  template <typename T>
  std::vector<T> Apply(const std::vector<T>& in) const {
    PPS_CHECK_EQ(in.size(), map_.size());
    std::vector<T> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[map_[i]] = in[i];
    return out;
  }

  /// out[i] = in[map_[i]] — recovers the original order.
  template <typename T>
  std::vector<T> ApplyInverse(const std::vector<T>& in) const {
    PPS_CHECK_EQ(in.size(), map_.size());
    std::vector<T> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[i] = in[map_[i]];
    return out;
  }

  /// The permutation q with q.Apply(p.Apply(x)) == (q∘p).Apply(x).
  Permutation Compose(const Permutation& first) const;

  /// The inverse permutation as a standalone object.
  Permutation Inverse() const;

  /// Constant-time: the mapping is obfuscation state, and an early-exit
  /// compare would leak the length of the matching prefix (ppslint R4).
  bool operator==(const Permutation& o) const {
    return ConstantTimeEquals(map_, o.map_);
  }

 private:
  std::vector<uint32_t> map_;
};

}  // namespace ppstream
