#include "crypto/paillier.h"

#include "bignum/prime.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// Process-wide primitive-operation counters ("crypto.*"). Handles are
/// function-local statics so the hot path pays one relaxed atomic add.
obs::Counter& EncryptCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("crypto.encrypts");
  return *c;
}

obs::Counter& DecryptCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("crypto.decrypts");
  return *c;
}

obs::Counter& ScalarMulCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("crypto.scalar_muls");
  return *c;
}

}  // namespace

PaillierPublicKey::PaillierPublicKey(BigInt n)
    : n_(std::move(n)),
      n_squared_(n_ * n_),
      half_n_(n_ >> 1),
      ctx_n2_(std::make_shared<MontgomeryContext>(n_squared_)) {}

void PaillierPublicKey::Serialize(BufferWriter* out) const {
  n_.Serialize(out);
}

Result<PaillierPublicKey> PaillierPublicKey::Deserialize(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(BigInt n, BigInt::Deserialize(in));
  if (n.Compare(BigInt(3)) <= 0 || !n.IsOdd()) {
    return Status::CryptoError("deserialized Paillier modulus is invalid");
  }
  return PaillierPublicKey(std::move(n));
}

namespace {

/// L(x) = (x - 1) / d, the Paillier L-function (exact division).
Result<BigInt> LFunction(const BigInt& x, const BigInt& d) {
  BigInt q, r;
  PPS_RETURN_IF_ERROR(BigInt::DivMod(x - BigInt(1), d, &q, &r));
  if (!r.IsZero()) {
    return Status::CryptoError("L-function division is not exact");
  }
  return q;
}

}  // namespace

Result<PaillierPrivateKey> PaillierPrivateKey::FromPrimes(const BigInt& p,
                                                          const BigInt& q) {
  if (p == q) return Status::CryptoError("Paillier primes must differ");
  PaillierPrivateKey sk;
  sk.p_ = p;
  sk.q_ = q;
  sk.p_squared_ = p * p;
  sk.q_squared_ = q * q;
  sk.n_ = p * q;
  sk.ctx_p2_ = std::make_shared<MontgomeryContext>(sk.p_squared_);
  sk.ctx_q2_ = std::make_shared<MontgomeryContext>(sk.q_squared_);

  // With g = n + 1: hp = L_p(g^{p-1} mod p^2)^{-1} mod p.
  const BigInt g = sk.n_ + BigInt(1);
  PPS_ASSIGN_OR_RETURN(BigInt gp, g.Mod(sk.p_squared_));
  BigInt gp_pow = sk.ctx_p2_->ModExp(gp, p - BigInt(1));
  PPS_ASSIGN_OR_RETURN(BigInt lp, LFunction(gp_pow, p));
  PPS_ASSIGN_OR_RETURN(BigInt lp_mod, lp.Mod(p));
  PPS_ASSIGN_OR_RETURN(sk.hp_, BigInt::ModInverse(lp_mod, p));

  PPS_ASSIGN_OR_RETURN(BigInt gq, g.Mod(sk.q_squared_));
  BigInt gq_pow = sk.ctx_q2_->ModExp(gq, q - BigInt(1));
  PPS_ASSIGN_OR_RETURN(BigInt lq, LFunction(gq_pow, q));
  PPS_ASSIGN_OR_RETURN(BigInt lq_mod, lq.Mod(q));
  PPS_ASSIGN_OR_RETURN(sk.hq_, BigInt::ModInverse(lq_mod, q));

  PPS_ASSIGN_OR_RETURN(sk.p_inv_q_, BigInt::ModInverse(p, q));
  return sk;
}

Result<BigInt> PaillierPrivateKey::DecryptRaw(const Ciphertext& c) const {
  if (n_.IsZero()) {
    return Status::FailedPrecondition("private key is uninitialized");
  }
  // m_p = L_p(c^{p-1} mod p^2) * hp mod p.
  PPS_ASSIGN_OR_RETURN(BigInt cp, c.value.Mod(p_squared_));
  BigInt cp_pow = ctx_p2_->ModExp(cp, p_ - BigInt(1));
  PPS_ASSIGN_OR_RETURN(BigInt lp, LFunction(cp_pow, p_));
  PPS_ASSIGN_OR_RETURN(BigInt lp_mod, lp.Mod(p_));
  BigInt mp = BigInt::MulMod(lp_mod, hp_, p_);

  PPS_ASSIGN_OR_RETURN(BigInt cq, c.value.Mod(q_squared_));
  BigInt cq_pow = ctx_q2_->ModExp(cq, q_ - BigInt(1));
  PPS_ASSIGN_OR_RETURN(BigInt lq, LFunction(cq_pow, q_));
  PPS_ASSIGN_OR_RETURN(BigInt lq_mod, lq.Mod(q_));
  BigInt mq = BigInt::MulMod(lq_mod, hq_, q_);

  // CRT: m = m_p + p * ((m_q - m_p) * p^{-1} mod q).
  BigInt diff = BigInt::SubMod(mq, mp, q_);
  BigInt h = BigInt::MulMod(diff, p_inv_q_, q_);
  return mp + p_ * h;
}

Result<PaillierKeyPair> Paillier::GenerateKeyPair(int key_bits, Rng& rng) {
  if (key_bits < 64 || key_bits % 2 != 0) {
    return Status::InvalidArgument(
        internal::StrCat("key_bits must be even and >= 64, got ", key_bits));
  }
  BigInt p, q;
  PPS_RETURN_IF_ERROR(GeneratePaillierPrimes(rng, key_bits / 2, &p, &q));
  PaillierKeyPair pair;
  pair.public_key = PaillierPublicKey(p * q);
  PPS_ASSIGN_OR_RETURN(pair.private_key, PaillierPrivateKey::FromPrimes(p, q));
  return pair;
}

Result<BigInt> Paillier::EncodeSigned(const PaillierPublicKey& pk,
                                      const BigInt& m) {
  BigInt abs = m.IsNegative() ? -m : m;
  if (abs.Compare(pk.half_n()) >= 0) {
    return Status::OutOfRange(
        internal::StrCat("plaintext magnitude ", abs.ToDecimalString(),
                         " exceeds n/2; increase the key size"));
  }
  if (!m.IsNegative()) return m;
  return pk.n() + m;  // m in (-n/2, 0) maps to (n/2, n)
}

BigInt Paillier::DecodeSigned(const PaillierPublicKey& pk, const BigInt& v) {
  if (v.Compare(pk.half_n()) > 0) return v - pk.n();
  return v;
}

Result<Ciphertext> Paillier::Encrypt(const PaillierPublicKey& pk,
                                     const BigInt& m, SecureRng& rng) {
  EncryptCounter().Increment();
  PPS_ASSIGN_OR_RETURN(BigInt encoded, EncodeSigned(pk, m));
  // g^m = (1 + n)^m = 1 + m n (mod n^2) since g = n + 1.
  PPS_ASSIGN_OR_RETURN(BigInt gm,
                       (BigInt(1) + encoded * pk.n()).Mod(pk.n_squared()));
  BigInt r = rng.NextCoprimeBelow(pk.n());
  BigInt rn = pk.ctx_n2().ModExp(r, pk.n());
  return Ciphertext{pk.ctx_n2().ModMul(gm, rn)};
}

Result<BigInt> Paillier::Decrypt(const PaillierPublicKey& pk,
                                 const PaillierPrivateKey& sk,
                                 const Ciphertext& c) {
  DecryptCounter().Increment();
  PPS_ASSIGN_OR_RETURN(BigInt raw, sk.DecryptRaw(c));
  return DecodeSigned(pk, raw);
}

Ciphertext Paillier::Add(const PaillierPublicKey& pk, const Ciphertext& c1,
                         const Ciphertext& c2) {
  return Ciphertext{pk.ctx_n2().ModMul(c1.value, c2.value)};
}

Result<Ciphertext> Paillier::AddPlain(const PaillierPublicKey& pk,
                                      const Ciphertext& c, const BigInt& k) {
  PPS_ASSIGN_OR_RETURN(BigInt encoded, EncodeSigned(pk, k));
  PPS_ASSIGN_OR_RETURN(BigInt gk,
                       (BigInt(1) + encoded * pk.n()).Mod(pk.n_squared()));
  return Ciphertext{pk.ctx_n2().ModMul(c.value, gk)};
}

Result<Ciphertext> Paillier::ScalarMul(const PaillierPublicKey& pk,
                                       const Ciphertext& c, const BigInt& w) {
  ScalarMulCounter().Increment();
  if (w.IsZero()) return Ciphertext{BigInt(1)};  // E(0) with r = 1
  if (w.IsNegative()) {
    PPS_ASSIGN_OR_RETURN(BigInt inv,
                         BigInt::ModInverse(c.value, pk.n_squared()));
    return Ciphertext{pk.ctx_n2().ModExp(inv, -w)};
  }
  return Ciphertext{pk.ctx_n2().ModExp(c.value, w)};
}

Result<Ciphertext> Paillier::Negate(const PaillierPublicKey& pk,
                                    const Ciphertext& c) {
  return ScalarMul(pk, c, BigInt(-1));
}

Result<Ciphertext> Paillier::Rerandomize(const PaillierPublicKey& pk,
                                         const Ciphertext& c, SecureRng& rng) {
  BigInt r = rng.NextCoprimeBelow(pk.n());
  BigInt rn = pk.ctx_n2().ModExp(r, pk.n());
  return Ciphertext{pk.ctx_n2().ModMul(c.value, rn)};
}

Ciphertext Paillier::EncryptZeroDeterministic(const PaillierPublicKey& pk) {
  (void)pk;
  return Ciphertext{BigInt(1)};  // g^0 * 1^n = 1
}

Result<Ciphertext> Paillier::EncryptWithRandomizer(const PaillierPublicKey& pk,
                                                   const BigInt& m,
                                                   const BigInt& rn) {
  EncryptCounter().Increment();
  PPS_ASSIGN_OR_RETURN(BigInt encoded, EncodeSigned(pk, m));
  PPS_ASSIGN_OR_RETURN(BigInt gm,
                       (BigInt(1) + encoded * pk.n()).Mod(pk.n_squared()));
  return Ciphertext{pk.ctx_n2().ModMul(gm, rn)};
}

Ciphertext Paillier::RerandomizeWithRandomizer(const PaillierPublicKey& pk,
                                               const Ciphertext& c,
                                               const BigInt& rn) {
  return Ciphertext{pk.ctx_n2().ModMul(c.value, rn)};
}

Result<FixedBaseExp> Paillier::PrecomputeScalarMulBase(
    const PaillierPublicKey& pk, const Ciphertext& c, int max_weight_bits,
    bool allow_negative, int64_t fan_out_hint) {
  return FixedBaseExp::Create(pk.ctx_n2(), c.value, max_weight_bits,
                              allow_negative, fan_out_hint);
}

Result<Ciphertext> Paillier::ScalarMulPrecomputed(const FixedBaseExp& base,
                                                  const BigInt& w) {
  ScalarMulCounter().Increment();
  PPS_ASSIGN_OR_RETURN(BigInt v, base.Pow(w));
  return Ciphertext{std::move(v)};
}

MontCiphertext Paillier::ToMontResident(const PaillierPublicKey& pk,
                                        const Ciphertext& c) {
  return MontCiphertext{pk.ctx_n2().ToMontgomery(c.value)};
}

Ciphertext Paillier::FromMontResident(const PaillierPublicKey& pk,
                                      const MontCiphertext& c) {
  return Ciphertext{pk.ctx_n2().FromMontgomery(c.m)};
}

MontCiphertext Paillier::EncryptZeroMontResident(const PaillierPublicKey& pk) {
  return MontCiphertext{pk.ctx_n2().OneMont()};
}

MontCiphertext Paillier::AddMont(const PaillierPublicKey& pk,
                                 const MontCiphertext& c1,
                                 const MontCiphertext& c2) {
  MontCiphertext out;
  pk.ctx_n2().MulMont(c1.m, c2.m, &out.m);
  return out;
}

Result<MontCiphertext> Paillier::AddPlainMont(const PaillierPublicKey& pk,
                                              const MontCiphertext& c,
                                              const BigInt& k) {
  PPS_ASSIGN_OR_RETURN(BigInt encoded, EncodeSigned(pk, k));
  PPS_ASSIGN_OR_RETURN(BigInt gk,
                       (BigInt(1) + encoded * pk.n()).Mod(pk.n_squared()));
  MontCiphertext out;
  pk.ctx_n2().MulMont(c.m, pk.ctx_n2().ToMontgomery(gk), &out.m);
  return out;
}

Result<MontCiphertext> Paillier::ScalarMulMont(const PaillierPublicKey& pk,
                                               const MontCiphertext& c,
                                               const BigInt& w) {
  ScalarMulCounter().Increment();
  const MontgomeryContext& ctx = pk.ctx_n2();
  MontCiphertext out;
  if (w.IsZero()) {
    out.m = ctx.OneMont();  // E(0) with r = 1
    return out;
  }
  if (w.IsNegative()) {
    // Inversion happens on the canonical form; this is one extra
    // conversion per call, matching what the non-resident path pays.
    PPS_ASSIGN_OR_RETURN(
        BigInt inv, BigInt::ModInverse(ctx.FromMontgomery(c.m),
                                       pk.n_squared()));
    ctx.ExpMont(ctx.ToMontgomery(inv), -w, &out.m);
    return out;
  }
  ctx.ExpMont(c.m, w, &out.m);
  return out;
}

}  // namespace ppstream
