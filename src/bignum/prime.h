// Primality testing and random prime generation for Paillier key setup.

#pragma once

#include "bignum/bigint.h"
#include "util/rng.h"
#include "util/status.h"

namespace ppstream {

/// Miller–Rabin probabilistic primality test.
///
/// Performs trial division by small primes, then `rounds` Miller–Rabin
/// witnesses (random bases). Error probability <= 4^-rounds for composites.
bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds = 24);

/// Generates a random prime with exactly `bits` bits (top bit set).
/// `bits` must be >= 8.
Result<BigInt> GeneratePrime(Rng& rng, int bits, int mr_rounds = 24);

/// Generates two distinct primes p, q of `bits` bits each such that
/// gcd(p*q, (p-1)*(q-1)) == 1 — the precondition for Paillier keygen.
Status GeneratePaillierPrimes(Rng& rng, int bits, BigInt* p, BigInt* q,
                              int mr_rounds = 24);

}  // namespace ppstream
