#include "bignum/montgomery.h"

#include <algorithm>

#include "util/logging.h"

namespace ppstream {

namespace {
inline uint64_t Lo(__uint128_t v) { return static_cast<uint64_t>(v); }
inline uint64_t Hi(__uint128_t v) { return static_cast<uint64_t>(v >> 64); }

// -x^{-1} mod 2^64 for odd x, via Newton iteration (doubles precision each
// step; 6 steps reach 64 bits from the 2^3-correct seed x ≡ x^{-1} mod 8).
uint64_t NegInverse64(uint64_t x) {
  uint64_t inv = x;  // correct mod 2^3
  for (int i = 0; i < 6; ++i) inv *= 2 - x * inv;
  return ~inv + 1;
}
}  // namespace

MontgomeryContext::MontgomeryContext(const BigInt& modulus)
    : modulus_(modulus) {
  PPS_CHECK(modulus.IsOdd()) << "Montgomery modulus must be odd";
  PPS_CHECK(modulus.Compare(BigInt(1)) > 0) << "modulus must be > 1";
  k_ = modulus.LimbCount();
  n_.resize(k_);
  for (size_t i = 0; i < k_; ++i) n_[i] = modulus.Limb(i);
  n0_inv_ = NegInverse64(n_[0]);

  // R^2 mod n, computed once with a plain division.
  BigInt r2 = (BigInt(1) << static_cast<int>(128 * k_));
  auto reduced = r2.Mod(modulus_);
  PPS_CHECK(reduced.ok());
  const BigInt& rr = reduced.value();
  rr_.assign(k_, 0);
  for (size_t i = 0; i < k_; ++i) rr_[i] = rr.Limb(i);

  Limbs one(k_, 0);
  one[0] = 1;
  MontMul(one, rr_, &one_mont_);
}

int MontgomeryContext::WindowBitsForExp(int exp_bits) {
  // Thresholds minimize (2^w - 2) table-build multiplications plus the
  // expected (bits / w) * (1 - 2^-w) window multiplications (squaring
  // counts are window-independent to first order). Verified against the
  // BM_MontgomeryModExp sweep in bench_micro_crypto.
  if (exp_bits <= 5) return 1;
  if (exp_bits <= 20) return 2;
  if (exp_bits <= 96) return 3;
  if (exp_bits <= 512) return 4;
  if (exp_bits <= 1536) return 5;
  return 6;
}

void MontgomeryContext::MontMul(const Limbs& a, const Limbs& b,
                                Limbs* out) const {
  // CIOS (coarsely integrated operand scanning), Koç et al. The scratch
  // accumulator is thread-local so the inner loops of ModExp/ExpMont stop
  // allocating per call; `out` is only written after the last read of
  // `a`/`b`/`t`, so aliasing out with an input is safe.
  thread_local Limbs t;
  t.assign(k_ + 2, 0);
  for (size_t i = 0; i < k_; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < k_; ++j) {
      __uint128_t s = static_cast<__uint128_t>(ai) * b[j] + t[j] + carry;
      t[j] = Lo(s);
      carry = Hi(s);
    }
    __uint128_t s = static_cast<__uint128_t>(t[k_]) + carry;
    t[k_] = Lo(s);
    t[k_ + 1] = Hi(s);

    // m = t[0] * n0_inv mod 2^64; t += m * n; t >>= 64.
    const uint64_t m = t[0] * n0_inv_;
    s = static_cast<__uint128_t>(m) * n_[0] + t[0];
    carry = Hi(s);
    for (size_t j = 1; j < k_; ++j) {
      s = static_cast<__uint128_t>(m) * n_[j] + t[j] + carry;
      t[j - 1] = Lo(s);
      carry = Hi(s);
    }
    s = static_cast<__uint128_t>(t[k_]) + carry;
    t[k_ - 1] = Lo(s);
    t[k_] = t[k_ + 1] + Hi(s);
    t[k_ + 1] = 0;
  }

  // Conditional final subtraction: result = t - n if t >= n.
  bool ge = t[k_] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = k_; i-- > 0;) {
      if (t[i] != n_[i]) {
        ge = t[i] > n_[i];
        break;
      }
    }
  }
  out->assign(k_, 0);
  if (ge) {
    uint64_t borrow = 0;
    for (size_t i = 0; i < k_; ++i) {
      uint64_t d = t[i] - n_[i];
      uint64_t b1 = d > t[i];
      uint64_t d2 = d - borrow;
      uint64_t b2 = d2 > d;
      (*out)[i] = d2;
      borrow = b1 | b2;
    }
  } else {
    std::copy(t.begin(), t.begin() + k_, out->begin());
  }
}

MontgomeryContext::Limbs MontgomeryContext::ToMont(const BigInt& v) const {
  Limbs in(k_, 0);
  for (size_t i = 0; i < std::min(k_, v.LimbCount()); ++i) in[i] = v.Limb(i);
  Limbs out;
  MontMul(in, rr_, &out);
  return out;
}

BigInt MontgomeryContext::FromMont(const Limbs& v) const {
  Limbs one(k_, 0);
  one[0] = 1;
  Limbs out;
  MontMul(v, one, &out);
  // Assemble the BigInt directly from limbs (MontgomeryContext is a
  // friend; this path runs once per resident->canonical conversion).
  BigInt result;
  result.limbs_ = std::move(out);
  result.Normalize();
  return result;
}

MontgomeryContext::MontValue MontgomeryContext::ToMontgomery(
    const BigInt& v) const {
  return ToMont(v);
}

BigInt MontgomeryContext::FromMontgomery(const MontValue& v) const {
  return FromMont(v);
}

void MontgomeryContext::MulMont(const MontValue& a, const MontValue& b,
                                MontValue* out) const {
  MontMul(a, b, out);
}

BigInt MontgomeryContext::ModMul(const BigInt& a, const BigInt& b) const {
  Limbs am = ToMont(a);
  Limbs bm = ToMont(b);
  Limbs prod;
  MontMul(am, bm, &prod);
  return FromMont(prod);
}

void MontgomeryContext::ExpMont(const MontValue& base, const BigInt& exp,
                                MontValue* out) const {
  PPS_CHECK(!exp.IsNegative());
  if (exp.IsZero()) {
    *out = one_mont_;
    return;
  }
  if (exp.IsOne()) {
    *out = base;
    return;
  }

  const int bits = exp.BitLength();
  const int window = WindowBitsForExp(bits);
  // table[d] = base^d resident; entries 0 and 1 are free, so a 1-bit
  // window (tiny exponents) builds nothing at all.
  std::vector<Limbs> table(size_t{1} << window);
  table[0] = one_mont_;
  table[1] = base;
  for (size_t i = 2; i < table.size(); ++i) {
    MontMul(table[i - 1], table[1], &table[i]);
  }

  const int windows = (bits + window - 1) / window;
  Limbs acc = one_mont_;
  Limbs tmp;
  for (int w = windows - 1; w >= 0; --w) {
    for (int sq = 0; sq < window; ++sq) {
      MontMul(acc, acc, &tmp);
      acc.swap(tmp);
    }
    int digit = 0;
    for (int b = window - 1; b >= 0; --b) {
      digit = (digit << 1) | exp.GetBit(w * window + b);
    }
    if (digit != 0) {
      MontMul(acc, table[digit], &tmp);
      acc.swap(tmp);
    }
  }
  out->swap(acc);
}

BigInt MontgomeryContext::ModExp(const BigInt& base, const BigInt& exp) const {
  PPS_CHECK(!exp.IsNegative());
  if (exp.IsZero()) return BigInt(1);
  Limbs result;
  ExpMont(ToMont(base), exp, &result);
  return FromMont(result);
}

}  // namespace ppstream
