// Arbitrary-precision signed integers (the repo's GMP substitute).
//
// Representation: sign + magnitude, little-endian 64-bit limbs, normalized
// (no high zero limbs; zero has an empty limb vector and positive sign).
//
// Supports everything Paillier needs: +, -, *, divmod, shifts, modular
// exponentiation (Montgomery-accelerated for odd moduli — see
// bignum/montgomery.h), gcd / modular inverse, primality testing
// (bignum/prime.h), and byte/string conversions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/buffer.h"
#include "util/rng.h"
#include "util/status.h"

namespace ppstream {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// From native integers (implicit: literals read naturally in formulas).
  BigInt(int64_t v);   // NOLINT
  BigInt(uint64_t v);  // NOLINT
  BigInt(int v) : BigInt(static_cast<int64_t>(v)) {}  // NOLINT

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromDecimalString(const std::string& s);
  /// Parses a hexadecimal string (no 0x prefix) with optional leading '-'.
  static Result<BigInt> FromHexString(const std::string& s);
  /// Big-endian magnitude bytes; the result is non-negative.
  static BigInt FromBytes(const std::vector<uint8_t>& bytes);

  /// Uniformly random value with exactly `bits` bits (top bit set).
  static BigInt RandomBits(Rng& rng, int bits);
  /// Uniformly random value in [0, bound).
  static BigInt RandomBelow(Rng& rng, const BigInt& bound);

  std::string ToDecimalString() const;
  std::string ToHexString() const;
  /// Big-endian magnitude bytes (sign is dropped); empty for zero.
  std::vector<uint8_t> ToBytes() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool IsOne() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }

  /// Number of significant bits in the magnitude (0 for zero).
  int BitLength() const;
  /// Bit i of the magnitude (i >= 0); 0 beyond the top bit.
  int GetBit(int i) const;
  size_t LimbCount() const { return limbs_.size(); }
  uint64_t Limb(size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  /// Value as uint64_t; requires the magnitude to fit and be non-negative.
  Result<uint64_t> ToUint64() const;
  /// Value as int64_t; requires |v| <= INT64_MAX.
  Result<int64_t> ToInt64() const;
  /// Approximate conversion to double (may lose precision / overflow to inf).
  double ToDouble() const;

  // Comparison: -1, 0, +1.
  int Compare(const BigInt& other) const;
  /// Magnitude-only comparison, ignoring signs.
  int CompareMagnitude(const BigInt& other) const;

  bool operator==(const BigInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return Compare(o) >= 0; }

  BigInt operator-() const;
  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(int bits) const;
  BigInt operator>>(int bits) const;

  BigInt& operator+=(const BigInt& o) { return *this = *this + o; }
  BigInt& operator-=(const BigInt& o) { return *this = *this - o; }
  BigInt& operator*=(const BigInt& o) { return *this = *this * o; }

  /// Truncated division: quotient rounds toward zero, remainder has the
  /// sign of the dividend (C semantics). `divisor` must be non-zero.
  static Status DivMod(const BigInt& dividend, const BigInt& divisor,
                       BigInt* quotient, BigInt* remainder);

  /// this mod m, result always in [0, |m|). `m` must be non-zero.
  Result<BigInt> Mod(const BigInt& m) const;

  /// (a + b) mod m, with a, b already reduced into [0, m).
  static BigInt AddMod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (a - b) mod m, with a, b already reduced into [0, m).
  static BigInt SubMod(const BigInt& a, const BigInt& b, const BigInt& m);
  /// (a * b) mod m for arbitrary non-negative a, b.
  static BigInt MulMod(const BigInt& a, const BigInt& b, const BigInt& m);

  /// base^exp mod m (exp >= 0, m > 1). Montgomery-accelerated when m is odd.
  static Result<BigInt> ModExp(const BigInt& base, const BigInt& exp,
                               const BigInt& m);

  /// Greatest common divisor of magnitudes.
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple of magnitudes.
  static BigInt Lcm(const BigInt& a, const BigInt& b);

  /// a^{-1} mod m; fails if gcd(a, m) != 1.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  /// Serialization: sign byte + length-prefixed big-endian magnitude.
  /// Every PP-Stream type serializes through BufferWriter/BufferReader —
  /// there is deliberately no raw-byte-vector variant.
  void Serialize(BufferWriter* out) const;
  static Result<BigInt> Deserialize(BufferReader* in);

 private:
  friend class MontgomeryContext;

  void Normalize();
  static std::vector<uint64_t> AddMagnitudes(const std::vector<uint64_t>& a,
                                             const std::vector<uint64_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<uint64_t> SubMagnitudes(const std::vector<uint64_t>& a,
                                             const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulMagnitudes(const std::vector<uint64_t>& a,
                                             const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulSchoolbook(const std::vector<uint64_t>& a,
                                             const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulKaratsuba(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  static int CompareMagnitudes(const std::vector<uint64_t>& a,
                               const std::vector<uint64_t>& b);
  /// Knuth Algorithm D on magnitudes; q and r are outputs.
  static void DivModMagnitudes(const std::vector<uint64_t>& u,
                               const std::vector<uint64_t>& v,
                               std::vector<uint64_t>* q,
                               std::vector<uint64_t>* r);

  std::vector<uint64_t> limbs_;
  bool negative_ = false;
};

/// Stream output in decimal (for gtest failure messages).
std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace ppstream
