// Montgomery modular arithmetic for odd moduli.
//
// Precomputes R^2 mod n and -n^{-1} mod 2^64 once per modulus so repeated
// ModExp calls against the same modulus (the hot path in Paillier) avoid
// per-operation divisions. Word-level CIOS reduction.

#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"

namespace ppstream {

/// Reusable Montgomery domain for a fixed odd modulus n > 1.
class MontgomeryContext {
 public:
  /// `modulus` must be odd and > 1 (checked).
  explicit MontgomeryContext(const BigInt& modulus);

  /// base^exp mod n, with base in [0, n) and exp >= 0.
  /// Left-to-right 4-bit fixed-window exponentiation.
  BigInt ModExp(const BigInt& base, const BigInt& exp) const;

  /// (a * b) mod n with a, b in [0, n).
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  const BigInt& modulus() const { return modulus_; }

 private:
  using Limbs = std::vector<uint64_t>;

  /// REDC(a * b) with a, b in Montgomery form (< n); out < n.
  void MontMul(const Limbs& a, const Limbs& b, Limbs* out) const;
  Limbs ToMont(const BigInt& v) const;
  BigInt FromMont(const Limbs& v) const;

  BigInt modulus_;
  Limbs n_;          // modulus limbs, padded to k_, little-endian
  size_t k_;         // limb count of n
  uint64_t n0_inv_;  // -n^{-1} mod 2^64
  Limbs rr_;         // R^2 mod n, R = 2^(64 k_)
};

}  // namespace ppstream
