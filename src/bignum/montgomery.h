// Montgomery modular arithmetic for odd moduli.
//
// Precomputes R^2 mod n and -n^{-1} mod 2^64 once per modulus so repeated
// ModExp calls against the same modulus (the hot path in Paillier) avoid
// per-operation divisions. Word-level CIOS reduction.
//
// Besides the BigInt-in/BigInt-out API, the context exposes the Montgomery
// domain itself (`MontValue`): hot paths keep values resident across long
// Add/ScalarMul chains and convert only at stage boundaries, instead of
// paying a ToMont/FromMont round trip per operation. Residents of one
// context are meaningless in another.

#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"

namespace ppstream {

/// Reusable Montgomery domain for a fixed odd modulus n > 1.
class MontgomeryContext {
 public:
  /// A value resident in the Montgomery domain: exactly limb_count()
  /// little-endian 64-bit limbs, always < n.
  using MontValue = std::vector<uint64_t>;

  /// `modulus` must be odd and > 1 (checked).
  explicit MontgomeryContext(const BigInt& modulus);

  /// base^exp mod n, with base in [0, n) and exp >= 0.
  /// Left-to-right fixed-window exponentiation; the window size adapts to
  /// the exponent bit length (see WindowBitsForExp).
  BigInt ModExp(const BigInt& base, const BigInt& exp) const;

  /// (a * b) mod n with a, b in [0, n).
  BigInt ModMul(const BigInt& a, const BigInt& b) const;

  // ---- Montgomery-resident API.

  /// v * R mod n (v is truncated to limb_count() limbs; callers pass
  /// values already reduced below n).
  MontValue ToMontgomery(const BigInt& v) const;
  /// Canonical representative in [0, n) of a resident value.
  BigInt FromMontgomery(const MontValue& v) const;
  /// REDC(a * b) for residents a, b; out < n. `out` may alias `a` or `b`.
  void MulMont(const MontValue& a, const MontValue& b, MontValue* out) const;
  /// base^exp for a resident base and exp >= 0; *out is resident.
  void ExpMont(const MontValue& base, const BigInt& exp,
               MontValue* out) const;
  /// 1 in Montgomery form (R mod n) — the multiplicative identity.
  const MontValue& OneMont() const { return one_mont_; }

  size_t limb_count() const { return k_; }
  const BigInt& modulus() const { return modulus_; }

  /// Window size (bits) ExpMont uses for an `exp_bits`-bit exponent.
  /// Balances the 2^w - 2 table-build multiplications against the
  /// bits/w-ish saved multiplications, so tiny exponents (quantized
  /// weights, Negate's exponent 1) stop paying a 16-entry table build.
  /// Exposed for FixedBaseExp's cost model and for tests.
  static int WindowBitsForExp(int exp_bits);

 private:
  using Limbs = std::vector<uint64_t>;

  /// REDC(a * b) with a, b in Montgomery form (< n); out < n.
  void MontMul(const Limbs& a, const Limbs& b, Limbs* out) const;
  Limbs ToMont(const BigInt& v) const;
  BigInt FromMont(const Limbs& v) const;

  BigInt modulus_;
  Limbs n_;          // modulus limbs, padded to k_, little-endian
  size_t k_;         // limb count of n
  uint64_t n0_inv_;  // -n^{-1} mod 2^64
  Limbs rr_;         // R^2 mod n, R = 2^(64 k_)
  Limbs one_mont_;   // R mod n
};

}  // namespace ppstream
