#include "bignum/fixed_base.h"

#include <algorithm>

#include "util/logging.h"

namespace ppstream {

namespace {

int64_t WindowsFor(int bits, int window) {
  return (static_cast<int64_t>(bits) + window - 1) / window;
}

/// Table-build MontMuls at window w: every window holds 2^w - 1 digit
/// entries, each one multiplication from its predecessor; the first entry
/// of window 0 is the base itself (free).
int64_t BuildCostAt(int bits, int window) {
  return WindowsFor(bits, window) * ((int64_t{1} << window) - 1) - 1;
}

/// Expected per-call MontMuls at window w: one per non-zero digit.
double PerCallCostAt(int bits, int window) {
  const double nonzero = 1.0 - 1.0 / static_cast<double>(int64_t{1} << window);
  return static_cast<double>(WindowsFor(bits, window)) * nonzero;
}

}  // namespace

int FixedBaseExp::ChooseWindow(int max_exp_bits, int64_t fan_out_hint) {
  const int64_t calls = std::max<int64_t>(fan_out_hint, 1);
  int best = 1;
  double best_cost = 0;
  for (int w = 1; w <= 8; ++w) {
    const double cost = static_cast<double>(BuildCostAt(max_exp_bits, w)) +
                        static_cast<double>(calls) *
                            PerCallCostAt(max_exp_bits, w);
    if (w == 1 || cost < best_cost) {
      best = w;
      best_cost = cost;
    }
  }
  return best;
}

int64_t FixedBaseExp::BuildCostMontMuls(int max_exp_bits, bool allow_negative,
                                        int64_t fan_out_hint) {
  const int w = ChooseWindow(max_exp_bits, fan_out_hint);
  return BuildCostAt(max_exp_bits, w) * (allow_negative ? 2 : 1);
}

int64_t FixedBaseExp::PerCallMontMuls(int max_exp_bits,
                                      int64_t fan_out_hint) {
  const int w = ChooseWindow(max_exp_bits, fan_out_hint);
  return static_cast<int64_t>(PerCallCostAt(max_exp_bits, w)) + 1;
}

Status FixedBaseExp::BuildTable(const BigInt& base, Table* table) const {
  const size_t digits = (size_t{1} << window_) - 1;
  const int64_t windows = WindowsFor(max_exp_bits_, window_);
  table->assign(static_cast<size_t>(windows), {});

  MontValue base_j = ctx_->ToMontgomery(base);
  for (int64_t j = 0; j < windows; ++j) {
    std::vector<MontValue>& win = (*table)[static_cast<size_t>(j)];
    win.resize(digits);
    win[0] = base_j;
    for (size_t d = 1; d < digits; ++d) {
      ctx_->MulMont(win[d - 1], base_j, &win[d]);
    }
    if (j + 1 < windows) {
      // base_{j+1} = base_j^(2^w) = (last digit entry) * base_j.
      MontValue next;
      ctx_->MulMont(win[digits - 1], base_j, &next);
      base_j.swap(next);
    }
  }
  return Status::OK();
}

Result<FixedBaseExp> FixedBaseExp::Create(const MontgomeryContext& ctx,
                                          const BigInt& base,
                                          int max_exp_bits,
                                          bool allow_negative,
                                          int64_t fan_out_hint) {
  if (max_exp_bits < 1) {
    return Status::InvalidArgument("max_exp_bits must be >= 1");
  }
  if (base.IsNegative()) {
    return Status::InvalidArgument("fixed base must be non-negative");
  }
  FixedBaseExp out;
  out.ctx_ = &ctx;
  out.max_exp_bits_ = max_exp_bits;
  out.window_ = ChooseWindow(max_exp_bits, fan_out_hint);

  PPS_ASSIGN_OR_RETURN(BigInt reduced, base.Mod(ctx.modulus()));
  PPS_RETURN_IF_ERROR(out.BuildTable(reduced, &out.pos_));
  if (allow_negative) {
    PPS_ASSIGN_OR_RETURN(BigInt inv,
                         BigInt::ModInverse(reduced, ctx.modulus()));
    PPS_RETURN_IF_ERROR(out.BuildTable(inv, &out.neg_));
  }
  return out;
}

Status FixedBaseExp::PowMontFromTable(const Table& table,
                                      const BigInt& magnitude,
                                      MontValue* out) const {
  if (magnitude.BitLength() > max_exp_bits_) {
    return Status::InvalidArgument(internal::StrCat(
        "exponent has ", magnitude.BitLength(),
        " bits; fixed-base table covers ", max_exp_bits_));
  }
  MontValue acc = ctx_->OneMont();
  MontValue tmp;
  const int64_t windows = static_cast<int64_t>(table.size());
  for (int64_t j = 0; j < windows; ++j) {
    int digit = 0;
    for (int b = window_ - 1; b >= 0; --b) {
      digit = (digit << 1) |
              magnitude.GetBit(static_cast<int>(j) * window_ + b);
    }
    if (digit != 0) {
      ctx_->MulMont(acc, table[static_cast<size_t>(j)][
                        static_cast<size_t>(digit - 1)], &tmp);
      acc.swap(tmp);
    }
  }
  out->swap(acc);
  return Status::OK();
}

Status FixedBaseExp::PowMont(const BigInt& exp,
                             MontgomeryContext::MontValue* out) const {
  if (ctx_ == nullptr) {
    return Status::FailedPrecondition("FixedBaseExp is uninitialized");
  }
  if (exp.IsZero()) {
    *out = ctx_->OneMont();
    return Status::OK();
  }
  if (exp.IsNegative()) {
    if (neg_.empty()) {
      return Status::InvalidArgument(
          "negative exponent on a table built without allow_negative");
    }
    return PowMontFromTable(neg_, -exp, out);
  }
  return PowMontFromTable(pos_, exp, out);
}

Result<BigInt> FixedBaseExp::Pow(const BigInt& exp) const {
  if (exp.IsZero()) return BigInt(1);
  MontValue resident;
  PPS_RETURN_IF_ERROR(PowMont(exp, &resident));
  return ctx_->FromMontgomery(resident);
}

}  // namespace ppstream
