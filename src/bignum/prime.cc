#include "bignum/prime.h"

#include <array>

#include "bignum/montgomery.h"
#include "util/logging.h"

namespace ppstream {

namespace {

// Small primes for trial division before Miller–Rabin.
constexpr std::array<uint64_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

bool IsProbablePrime(const BigInt& n, Rng& rng, int rounds) {
  if (n.IsNegative() || n.IsZero()) return false;
  if (n.BitLength() <= 8) {
    auto v = n.ToUint64();
    PPS_CHECK(v.ok());
    for (uint64_t p : kSmallPrimes) {
      if (v.value() == p) return true;
    }
    // Values up to 255 not in the table are composite or 1.
    return false;
  }

  for (uint64_t p : kSmallPrimes) {
    BigInt r;
    PPS_CHECK_OK(BigInt::DivMod(n, BigInt(p), nullptr, &r));
    if (r.IsZero()) return false;
  }

  // Write n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  int s = 0;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++s;
  }

  MontgomeryContext ctx(n);
  const BigInt one(1);
  const BigInt two(2);
  const BigInt n_minus_3 = n - BigInt(3);

  for (int round = 0; round < rounds; ++round) {
    // a uniform in [2, n - 2].
    BigInt a = BigInt::RandomBelow(rng, n_minus_3) + two;
    BigInt x = ctx.ModExp(a, d);
    if (x == one || x == n_minus_1) continue;
    bool witness = true;
    for (int i = 0; i < s - 1; ++i) {
      x = ctx.ModMul(x, x);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

Result<BigInt> GeneratePrime(Rng& rng, int bits, int mr_rounds) {
  if (bits < 8) {
    return Status::InvalidArgument("prime bit length must be >= 8");
  }
  for (int attempt = 0; attempt < 100000; ++attempt) {
    BigInt cand = BigInt::RandomBits(rng, bits);
    // Force odd; RandomBits already set the top bit.
    if (!cand.IsOdd()) cand = cand + BigInt(1);
    if (cand.BitLength() != bits) continue;  // +1 overflowed the width
    if (IsProbablePrime(cand, rng, mr_rounds)) return cand;
  }
  return Status::Internal("prime generation exhausted attempts");
}

Status GeneratePaillierPrimes(Rng& rng, int bits, BigInt* p, BigInt* q,
                              int mr_rounds) {
  PPS_ASSIGN_OR_RETURN(*p, GeneratePrime(rng, bits, mr_rounds));
  for (int attempt = 0; attempt < 1000; ++attempt) {
    PPS_ASSIGN_OR_RETURN(*q, GeneratePrime(rng, bits, mr_rounds));
    if (*p == *q) continue;
    const BigInt n = *p * *q;
    const BigInt phi = (*p - BigInt(1)) * (*q - BigInt(1));
    if (BigInt::Gcd(n, phi).IsOne()) return Status::OK();
  }
  return Status::Internal("could not find a Paillier-compatible prime pair");
}

}  // namespace ppstream
