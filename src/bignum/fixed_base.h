// Fixed-base modular exponentiation tables.
//
// The Paillier hot path (paper Eq. 3: prod_i E(m_i)^{w_i} * E(b)) raises
// the SAME ciphertext to a different small exponent for every output row
// that taps it — every output neuron in Dense, every overlapping window in
// Conv2D. A per-call ModExp re-runs all squarings and rebuilds its window
// table each time. FixedBaseExp instead precomputes, once per base,
//
//   table[j][d] = base^(d << (window * j))   (Montgomery-resident)
//
// for every window position j and digit d in [1, 2^window), after which
// each exponentiation is at most ceil(bits/window) Montgomery
// multiplications — table lookups with ZERO squarings. The window size is
// chosen from the exponent width and the expected number of reuses
// (fan-out); break-even math lives in DESIGN.md §8.

#pragma once

#include <cstdint>
#include <vector>

#include "bignum/bigint.h"
#include "bignum/montgomery.h"
#include "util/status.h"

namespace ppstream {

class FixedBaseExp {
 public:
  FixedBaseExp() = default;

  /// Precomputes tables for `base` modulo ctx.modulus(), covering
  /// exponents of up to `max_exp_bits` bits. With `allow_negative`, also
  /// builds tables for base^{-1} (fails if base is not invertible), and
  /// Pow accepts negative exponents. `fan_out_hint` is the expected number
  /// of Pow calls; it steers the window choice (more reuse amortizes a
  /// bigger table). `ctx` must outlive the returned object.
  static Result<FixedBaseExp> Create(const MontgomeryContext& ctx,
                                     const BigInt& base, int max_exp_bits,
                                     bool allow_negative = false,
                                     int64_t fan_out_hint = 16);

  /// base^exp mod n. exp may be negative only if allow_negative was set;
  /// |exp| must fit in max_exp_bits bits.
  Result<BigInt> Pow(const BigInt& exp) const;

  /// Same, leaving the result resident in the Montgomery domain.
  Status PowMont(const BigInt& exp, MontgomeryContext::MontValue* out) const;

  int max_exp_bits() const { return max_exp_bits_; }
  int window_bits() const { return window_; }
  bool allows_negative() const { return !neg_.empty(); }

  // ---- Cost model (units: Montgomery multiplications), used for the
  //      window choice and by callers deciding whether a table is worth
  //      building at all (break-even fan-out).

  /// Table-build cost for the window Create would pick.
  static int64_t BuildCostMontMuls(int max_exp_bits, bool allow_negative,
                                   int64_t fan_out_hint);
  /// Expected per-Pow cost for the window Create would pick.
  static int64_t PerCallMontMuls(int max_exp_bits, int64_t fan_out_hint);

 private:
  using MontValue = MontgomeryContext::MontValue;
  using Table = std::vector<std::vector<MontValue>>;

  static int ChooseWindow(int max_exp_bits, int64_t fan_out_hint);
  Status BuildTable(const BigInt& base, Table* table) const;
  Status PowMontFromTable(const Table& table, const BigInt& magnitude,
                          MontValue* out) const;

  const MontgomeryContext* ctx_ = nullptr;
  int window_ = 0;
  int max_exp_bits_ = 0;
  Table pos_;  // pos_[j][d-1] = base^(d << (window_ j))
  Table neg_;  // same for base^{-1}; empty unless allow_negative
};

}  // namespace ppstream
