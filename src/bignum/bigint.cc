#include "bignum/bigint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>

#include "bignum/montgomery.h"
#include "util/logging.h"

namespace ppstream {

namespace {

constexpr size_t kKaratsubaThreshold = 24;  // limbs

inline uint64_t Lo(__uint128_t v) { return static_cast<uint64_t>(v); }
inline uint64_t Hi(__uint128_t v) { return static_cast<uint64_t>(v >> 64); }

}  // namespace

BigInt::BigInt(int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Avoid UB on INT64_MIN by negating in unsigned space.
  uint64_t mag =
      negative_ ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  limbs_.push_back(mag);
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return static_cast<int>((limbs_.size() - 1) * 64) +
         (64 - std::countl_zero(limbs_.back()));
}

int BigInt::GetBit(int i) const {
  if (i < 0) return 0;
  size_t limb = static_cast<size_t>(i) / 64;
  if (limb >= limbs_.size()) return 0;
  return (limbs_[limb] >> (i % 64)) & 1;
}

Result<uint64_t> BigInt::ToUint64() const {
  if (negative_) return Status::OutOfRange("negative value in ToUint64");
  if (limbs_.size() > 1) return Status::OutOfRange("value exceeds uint64");
  return limbs_.empty() ? 0ULL : limbs_[0];
}

Result<int64_t> BigInt::ToInt64() const {
  if (limbs_.empty()) return static_cast<int64_t>(0);
  if (limbs_.size() > 1) return Status::OutOfRange("value exceeds int64");
  uint64_t mag = limbs_[0];
  if (negative_) {
    if (mag > 0x8000000000000000ULL) {
      return Status::OutOfRange("value below int64 min");
    }
    return static_cast<int64_t>(~mag + 1);
  }
  if (mag > 0x7FFFFFFFFFFFFFFFULL) {
    return Status::OutOfRange("value exceeds int64 max");
  }
  return static_cast<int64_t>(mag);
}

double BigInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

int BigInt::CompareMagnitudes(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::CompareMagnitude(const BigInt& other) const {
  return CompareMagnitudes(limbs_, other.limbs_);
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitudes(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

std::vector<uint64_t> BigInt::AddMagnitudes(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  const auto& big = a.size() >= b.size() ? a : b;
  const auto& small = a.size() >= b.size() ? b : a;
  std::vector<uint64_t> out(big.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    __uint128_t s = static_cast<__uint128_t>(big[i]) + carry;
    if (i < small.size()) s += small[i];
    out[i] = Lo(s);
    carry = Hi(s);
  }
  out[big.size()] = carry;
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::SubMagnitudes(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  // Precondition: |a| >= |b|.
  std::vector<uint64_t> out(a.size(), 0);
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    uint64_t t = a[i] - bi;
    uint64_t borrow1 = t > a[i];
    uint64_t t2 = t - borrow;
    uint64_t borrow2 = t2 > t;
    out[i] = t2;
    borrow = borrow1 | borrow2;
  }
  PPS_CHECK_EQ(borrow, 0ULL) << "SubMagnitudes precondition violated";
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulSchoolbook(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      __uint128_t t =
          static_cast<__uint128_t>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = Lo(t);
      carry = Hi(t);
    }
    out[i + b.size()] = carry;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulKaratsuba(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  const size_t half = std::max(a.size(), b.size()) / 2;
  auto split = [half](const std::vector<uint64_t>& v)
      -> std::pair<std::vector<uint64_t>, std::vector<uint64_t>> {
    if (v.size() <= half) return {v, {}};
    std::vector<uint64_t> lo(v.begin(), v.begin() + half);
    std::vector<uint64_t> hi(v.begin() + half, v.end());
    while (!lo.empty() && lo.back() == 0) lo.pop_back();
    return {lo, hi};
  };
  auto [a_lo, a_hi] = split(a);
  auto [b_lo, b_hi] = split(b);

  std::vector<uint64_t> z0 = MulKaratsuba(a_lo, b_lo);
  std::vector<uint64_t> z2 = MulKaratsuba(a_hi, b_hi);
  std::vector<uint64_t> sum_a = AddMagnitudes(a_lo, a_hi);
  std::vector<uint64_t> sum_b = AddMagnitudes(b_lo, b_hi);
  std::vector<uint64_t> z1 = MulKaratsuba(sum_a, sum_b);
  z1 = SubMagnitudes(z1, AddMagnitudes(z0, z2));

  // out = z0 + (z1 << 64*half) + (z2 << 128*half)
  std::vector<uint64_t> out = z0;
  out.resize(std::max({out.size(), z1.size() + half, z2.size() + 2 * half}) + 1,
             0);
  auto add_shifted = [&out](const std::vector<uint64_t>& v, size_t shift) {
    uint64_t carry = 0;
    size_t i = 0;
    for (; i < v.size(); ++i) {
      __uint128_t s =
          static_cast<__uint128_t>(out[shift + i]) + v[i] + carry;
      out[shift + i] = Lo(s);
      carry = Hi(s);
    }
    for (; carry != 0; ++i) {
      __uint128_t s = static_cast<__uint128_t>(out[shift + i]) + carry;
      out[shift + i] = Lo(s);
      carry = Hi(s);
    }
  };
  add_shifted(z1, half);
  add_shifted(z2, 2 * half);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulMagnitudes(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b) {
  return MulKaratsuba(a, b);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  if (negative_ == o.negative_) {
    out.limbs_ = AddMagnitudes(limbs_, o.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CompareMagnitudes(limbs_, o.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMagnitudes(limbs_, o.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMagnitudes(o.limbs_, limbs_);
      out.negative_ = o.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  BigInt out;
  out.limbs_ = MulMagnitudes(limbs_, o.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != o.negative_);
  return out;
}

BigInt BigInt::operator<<(int bits) const {
  if (bits < 0) return *this >> (-bits);
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = static_cast<size_t>(bits) / 64;
  const int bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift)
                                            : limbs_[i];
    if (bit_shift) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(int bits) const {
  if (bits < 0) return *this << (-bits);
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = static_cast<size_t>(bits) / 64;
  const int bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

void BigInt::DivModMagnitudes(const std::vector<uint64_t>& u_in,
                              const std::vector<uint64_t>& v_in,
                              std::vector<uint64_t>* q,
                              std::vector<uint64_t>* r) {
  // Knuth TAOCP vol. 2, Algorithm D, base 2^64.
  PPS_CHECK(!v_in.empty()) << "division by zero";
  q->clear();
  r->clear();
  if (CompareMagnitudes(u_in, v_in) < 0) {
    *r = u_in;
    return;
  }
  const size_t n = v_in.size();
  const size_t m = u_in.size();

  if (n == 1) {
    const uint64_t d = v_in[0];
    q->assign(m, 0);
    uint64_t rem = 0;
    for (size_t i = m; i-- > 0;) {
      __uint128_t cur = (static_cast<__uint128_t>(rem) << 64) | u_in[i];
      (*q)[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    while (!q->empty() && q->back() == 0) q->pop_back();
    if (rem) r->push_back(rem);
    return;
  }

  // D1: normalize so the top limb of v has its high bit set.
  const int s = std::countl_zero(v_in.back());
  std::vector<uint64_t> v(n);
  for (size_t i = n; i-- > 1;) {
    v[i] = s ? ((v_in[i] << s) | (v_in[i - 1] >> (64 - s))) : v_in[i];
  }
  v[0] = v_in[0] << s;

  std::vector<uint64_t> u(m + 1, 0);
  u[m] = s ? (u_in[m - 1] >> (64 - s)) : 0;
  for (size_t i = m; i-- > 1;) {
    u[i] = s ? ((u_in[i] << s) | (u_in[i - 1] >> (64 - s))) : u_in[i];
  }
  u[0] = u_in[0] << s;

  q->assign(m - n + 1, 0);
  const uint64_t vn1 = v[n - 1];
  const uint64_t vn2 = v[n - 2];
  constexpr __uint128_t kBase = static_cast<__uint128_t>(1) << 64;

  for (size_t j = m - n + 1; j-- > 0;) {
    // D3: estimate qhat.
    __uint128_t num = (static_cast<__uint128_t>(u[j + n]) << 64) | u[j + n - 1];
    __uint128_t qhat = num / vn1;
    __uint128_t rhat = num % vn1;
    while (qhat >= kBase ||
           qhat * vn2 > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += vn1;
      if (rhat >= kBase) break;
    }

    // D4: multiply-subtract u[j..j+n] -= qhat * v.
    uint64_t qh = static_cast<uint64_t>(qhat);
    uint64_t mul_carry = 0;
    uint64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      __uint128_t p = static_cast<__uint128_t>(qh) * v[i] + mul_carry;
      mul_carry = Hi(p);
      uint64_t plo = Lo(p);
      uint64_t t = u[i + j] - plo;
      uint64_t b1 = t > u[i + j];
      uint64_t t2 = t - borrow;
      uint64_t b2 = t2 > t;
      u[i + j] = t2;
      borrow = b1 | b2;
    }
    // Top limb.
    __uint128_t top_sub = static_cast<__uint128_t>(mul_carry) + borrow;
    bool negative = u[j + n] < top_sub;
    u[j + n] = static_cast<uint64_t>(u[j + n] - static_cast<uint64_t>(top_sub));

    if (negative) {
      // D6: add back one multiple of v.
      --qh;
      uint64_t carry = 0;
      for (size_t i = 0; i < n; ++i) {
        __uint128_t sum = static_cast<__uint128_t>(u[i + j]) + v[i] + carry;
        u[i + j] = Lo(sum);
        carry = Hi(sum);
      }
      u[j + n] += carry;
    }
    (*q)[j] = qh;
  }

  while (!q->empty() && q->back() == 0) q->pop_back();

  // D8: denormalize the remainder.
  r->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    (*r)[i] = s ? ((u[i] >> s) | (i + 1 < n + 1 ? (u[i + 1] << (64 - s)) : 0))
                : u[i];
  }
  while (!r->empty() && r->back() == 0) r->pop_back();
}

Status BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                      BigInt* quotient, BigInt* remainder) {
  if (divisor.IsZero()) return Status::InvalidArgument("division by zero");
  BigInt q, r;
  DivModMagnitudes(dividend.limbs_, divisor.limbs_, &q.limbs_, &r.limbs_);
  q.negative_ = !q.limbs_.empty() && (dividend.negative_ != divisor.negative_);
  r.negative_ = !r.limbs_.empty() && dividend.negative_;
  if (quotient) *quotient = std::move(q);
  if (remainder) *remainder = std::move(r);
  return Status::OK();
}

Result<BigInt> BigInt::Mod(const BigInt& m) const {
  if (m.IsZero()) return Status::InvalidArgument("modulus is zero");
  BigInt r;
  PPS_RETURN_IF_ERROR(DivMod(*this, m, nullptr, &r));
  if (r.negative_) {
    BigInt mabs = m;
    mabs.negative_ = false;
    r = r + mabs;
  }
  return r;
}

BigInt BigInt::AddMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a + b;
  if (s.Compare(m) >= 0) s = s - m;
  return s;
}

BigInt BigInt::SubMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt s = a - b;
  if (s.IsNegative()) s = s + m;
  return s;
}

BigInt BigInt::MulMod(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt p = a * b;
  auto r = p.Mod(m);
  PPS_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

Result<BigInt> BigInt::ModExp(const BigInt& base, const BigInt& exp,
                              const BigInt& m) {
  if (m.IsZero() || m.IsNegative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  if (m.IsOne()) return BigInt();
  if (exp.IsNegative()) {
    return Status::InvalidArgument("negative exponent in ModExp");
  }
  PPS_ASSIGN_OR_RETURN(BigInt b, base.Mod(m));
  if (exp.IsZero()) return BigInt(1);
  if (m.IsOdd()) {
    MontgomeryContext ctx(m);
    return ctx.ModExp(b, exp);
  }
  // Even modulus: plain left-to-right square-and-multiply.
  BigInt result(1);
  for (int i = exp.BitLength() - 1; i >= 0; --i) {
    result = MulMod(result, result, m);
    if (exp.GetBit(i)) result = MulMod(result, b, m);
  }
  return result;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a, y = b;
  x.negative_ = false;
  y.negative_ = false;
  while (!y.IsZero()) {
    BigInt r;
    PPS_CHECK_OK(DivMod(x, y, nullptr, &r));
    r.negative_ = false;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  BigInt q;
  BigInt aa = a;
  aa.negative_ = false;
  PPS_CHECK_OK(DivMod(aa, g, &q, nullptr));
  BigInt bb = b;
  bb.negative_ = false;
  return q * bb;
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  if (m.IsZero() || m.IsNegative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  // Extended Euclid on (a mod m, m).
  PPS_ASSIGN_OR_RETURN(BigInt r0, a.Mod(m));
  BigInt r1 = m;
  BigInt s0(1), s1(0);
  while (!r1.IsZero()) {
    BigInt q, r;
    PPS_RETURN_IF_ERROR(DivMod(r0, r1, &q, &r));
    BigInt s = s0 - q * s1;
    r0 = std::move(r1);
    r1 = std::move(r);
    s0 = std::move(s1);
    s1 = std::move(s);
  }
  if (!r0.IsOne()) {
    return Status::InvalidArgument("ModInverse: operands not coprime");
  }
  return s0.Mod(m);
}

BigInt BigInt::RandomBits(Rng& rng, int bits) {
  PPS_CHECK_GT(bits, 0);
  BigInt out;
  const size_t limbs = (static_cast<size_t>(bits) + 63) / 64;
  out.limbs_.resize(limbs);
  for (auto& limb : out.limbs_) limb = rng.NextU64();
  const int top_bits = bits % 64 == 0 ? 64 : bits % 64;
  // Mask the top limb and force the highest requested bit to 1.
  if (top_bits < 64) {
    out.limbs_.back() &= (1ULL << top_bits) - 1;
  }
  out.limbs_.back() |= 1ULL << (top_bits - 1);
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(Rng& rng, const BigInt& bound) {
  PPS_CHECK(!bound.IsZero() && !bound.IsNegative());
  const int bits = bound.BitLength();
  const size_t limbs = bound.limbs_.size();
  const int top_bits = bits % 64 == 0 ? 64 : bits % 64;
  for (;;) {
    BigInt cand;
    cand.limbs_.resize(limbs);
    for (auto& limb : cand.limbs_) limb = rng.NextU64();
    if (top_bits < 64) cand.limbs_.back() &= (1ULL << top_bits) - 1;
    cand.Normalize();
    if (cand.Compare(bound) < 0) return cand;
  }
}

Result<BigInt> BigInt::FromDecimalString(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty decimal string");
  size_t pos = 0;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    pos = 1;
  }
  if (pos == s.size()) return Status::InvalidArgument("no digits");
  BigInt out;
  // Consume 19 digits (fits in uint64) at a time: out = out*10^k + chunk.
  while (pos < s.size()) {
    size_t take = std::min<size_t>(19, s.size() - pos);
    uint64_t chunk = 0;
    uint64_t scale = 1;
    for (size_t i = 0; i < take; ++i) {
      char c = s[pos + i];
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(
            internal::StrCat("invalid decimal character '", c, "'"));
      }
      chunk = chunk * 10 + static_cast<uint64_t>(c - '0');
      scale *= 10;
    }
    out = out * BigInt(scale) + BigInt(chunk);
    pos += take;
  }
  if (negative && !out.IsZero()) out.negative_ = true;
  return out;
}

Result<BigInt> BigInt::FromHexString(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("empty hex string");
  size_t pos = 0;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    pos = 1;
  }
  if (pos == s.size()) return Status::InvalidArgument("no hex digits");
  BigInt out;
  for (; pos < s.size(); ++pos) {
    char c = s[pos];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return Status::InvalidArgument(
          internal::StrCat("invalid hex character '", c, "'"));
    }
    out = (out << 4) + BigInt(static_cast<uint64_t>(digit));
  }
  if (negative && !out.IsZero()) out.negative_ = true;
  return out;
}

std::string BigInt::ToDecimalString() const {
  if (IsZero()) return "0";
  // Repeatedly divide by 10^19 and emit chunks.
  constexpr uint64_t kChunk = 10000000000000000000ULL;  // 10^19
  std::vector<uint64_t> chunks;
  std::vector<uint64_t> cur = limbs_;
  const std::vector<uint64_t> div{kChunk};
  while (!cur.empty()) {
    std::vector<uint64_t> q, r;
    DivModMagnitudes(cur, div, &q, &r);
    chunks.push_back(r.empty() ? 0 : r[0]);
    cur = std::move(q);
  }
  std::string out;
  if (negative_) out += '-';
  out += std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out += std::string(19 - part.size(), '0') + part;
  }
  return out;
}

std::string BigInt::ToHexString() const {
  if (IsZero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  if (negative_) out += '-';
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      int d = (limbs_[i] >> shift) & 0xF;
      if (leading && d == 0) continue;
      leading = false;
      out += kDigits[d];
    }
  }
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  if (IsZero()) return {};
  std::vector<uint8_t> out;
  out.reserve(limbs_.size() * 8);
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 56; shift >= 0; shift -= 8) {
      uint8_t b = static_cast<uint8_t>(limbs_[i] >> shift);
      if (leading && b == 0) continue;
      leading = false;
      out.push_back(b);
    }
  }
  return out;
}

BigInt BigInt::FromBytes(const std::vector<uint8_t>& bytes) {
  BigInt out;
  for (uint8_t b : bytes) {
    out = (out << 8) + BigInt(static_cast<uint64_t>(b));
  }
  return out;
}

void BigInt::Serialize(BufferWriter* out) const {
  out->WriteU8(negative_ ? 1 : 0);
  out->WriteBytes(ToBytes());
}

Result<BigInt> BigInt::Deserialize(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint8_t negative, in->ReadU8());
  PPS_ASSIGN_OR_RETURN(std::vector<uint8_t> mag, in->ReadBytes());
  BigInt out = FromBytes(mag);
  if (negative != 0 && !out.IsZero()) out.negative_ = true;
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimalString();
}

}  // namespace ppstream
