// Post-training model compression: magnitude pruning and k-bit weight
// quantization (DESIGN.md §13).
//
// Both transforms exist to feed the packed linear kernels: a packed row
// pays one homomorphic scalar-mul per (row, DISTINCT quantized weight
// value), so zeroing small weights removes terms outright and collapsing
// the weight distribution onto 2^k levels shrinks the group count — a
// direct crypto-cost lever rather than a storage optimization. Compression
// changes model outputs, so callers re-check accuracy (EvaluateAccuracy)
// and report the delta; the protocol itself stays bit-exact relative to
// whatever (compressed or not) model it was compiled from.

#pragma once

#include "nn/model.h"
#include "util/status.h"

namespace ppstream {

struct CompressionSpec {
  /// Fraction of smallest-|w| weights zeroed per linear layer, in [0, 1).
  /// 0 disables pruning. The threshold is per layer (weight scales differ
  /// across layers, so a global threshold would gut early layers).
  double prune_fraction = 0.0;
  /// Symmetric uniform quantization to at most 2^weight_bits - 1 distinct
  /// nonzero levels per layer (k-bit signed, zero preserved). 0 disables.
  int weight_bits = 0;
};

/// What compression did, for reporting and bench JSON.
struct CompressionReport {
  int64_t weights_total = 0;
  int64_t weights_pruned = 0;       // newly zeroed by pruning
  int64_t distinct_before = 0;      // distinct nonzero values, pre
  int64_t distinct_after = 0;       // distinct nonzero values, post
  int64_t layers_compressed = 0;    // Dense/Conv2D layers touched
};

/// Returns a compressed deep copy of `model`: every Dense/Conv2D layer's
/// weight tensor is pruned then quantized per `spec` (biases and other
/// layer kinds are untouched — they cost no encrypted scalar-muls).
/// Mirrors the report into the `nn.quant.*` counters.
Result<Model> CompressModel(const Model& model, const CompressionSpec& spec,
                            CompressionReport* report = nullptr);

}  // namespace ppstream
