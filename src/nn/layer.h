// Layer abstraction for neural-network inference and training.
//
// Each hidden layer is classified by its operations (paper Section II-A):
// linear (tensor addition / multiplication against model parameters),
// non-linear (activation / downsampling functions), or mixed (both). The
// protocol compiler (core/protocol) decomposes mixed layers and maps the
// result onto privacy domains: linear ops run at the model provider under
// Paillier, non-linear ops run at the data provider on obfuscated tensors.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/buffer.h"
#include "util/rng.h"
#include "util/status.h"

namespace ppstream {

enum class LayerKind : uint8_t {
  kDense = 0,
  kConv2D = 1,
  kBatchNorm = 2,
  kRelu = 3,
  kSigmoid = 4,
  kSoftmax = 5,
  kMaxPool2D = 6,
  kAvgPool2D = 7,
  kFlatten = 8,
  kScaledSigmoid = 9,  // mixed: y = sigmoid(alpha * x), alpha is a parameter
  kScalarScale = 10,   // linear primitive produced by decomposing the above
};

const char* LayerKindName(LayerKind kind);

/// Operation class of a layer (paper Figure 2).
enum class OpClass : uint8_t { kLinear = 0, kNonLinear = 1, kMixed = 2 };

const char* OpClassName(OpClass c);

/// Base class for all layers. Layers own their parameters and gradient
/// buffers; Backward() accumulates parameter gradients and returns the
/// gradient with respect to the layer input.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual LayerKind kind() const = 0;
  virtual OpClass op_class() const = 0;
  virtual std::string name() const { return LayerKindName(kind()); }

  /// Output shape for a given input shape (fails on incompatible input).
  virtual Result<Shape> OutputShape(const Shape& in) const = 0;

  virtual Result<DoubleTensor> Forward(const DoubleTensor& in) const = 0;

  /// `in` must be the tensor Forward was called with. Accumulates parameter
  /// gradients internally and returns dL/d(in).
  virtual Result<DoubleTensor> Backward(const DoubleTensor& in,
                                        const DoubleTensor& grad_out) = 0;

  virtual void ZeroGrads() {}
  /// SGD-with-momentum update: v = momentum*v + grad; param -= lr * v.
  /// momentum = 0 recovers plain SGD.
  virtual void SgdStep(double lr, double momentum) {
    (void)lr;
    (void)momentum;
  }

  /// Number of learnable parameters.
  virtual int64_t ParameterCount() const { return 0; }

  /// Applies fn to every parameter value (reads).
  virtual void VisitParameters(
      const std::function<void(double)>& fn) const {
    (void)fn;
  }
  /// Applies fn to every parameter value (mutates in place).
  virtual void MutateParameters(const std::function<double(double)>& fn) {
    (void)fn;
  }

  /// Serializes kind + configuration + parameters.
  virtual void Serialize(BufferWriter* out) const = 0;

  /// Deep copy.
  virtual std::unique_ptr<Layer> Clone() const = 0;

  /// Deployment introspection hook: the sequence of primitive layers this
  /// layer lowers to before protocol compilation (paper §III-C). Most
  /// layers are already primitive and return a single clone; MaxPool2D
  /// returns its stride-2 averaging conv + ReLU rewrite, and mixed layers
  /// (ScaledSigmoid) return their linear + non-linear decomposition. The
  /// planner's RewriteMaxPool / DecomposeMixed passes and
  /// Model::ReplaceMaxPooling all go through this hook.
  virtual Result<std::vector<std::unique_ptr<Layer>>> DecomposeForDeployment(
      const Shape& input_shape) const;
};

/// Deserializes any layer (dispatches on the kind tag written first).
Result<std::unique_ptr<Layer>> DeserializeLayer(BufferReader* in);

}  // namespace ppstream
