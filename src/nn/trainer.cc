#include "nn/trainer.h"

#include <cmath>
#include <numeric>

#include "tensor/ops.h"

#include "util/logging.h"
#include "util/rng.h"

namespace ppstream {

double CrossEntropyLoss(const DoubleTensor& probs, int64_t label) {
  PPS_CHECK_GE(label, 0);
  PPS_CHECK_LT(label, probs.NumElements());
  return -std::log(std::max(probs[label], 1e-12));
}

Result<TrainStats> TrainModel(Model* model, const Dataset& data,
                              const TrainConfig& config) {
  if (data.samples.empty()) {
    return Status::InvalidArgument("empty training set");
  }
  if (model->NumLayers() == 0 ||
      model->layer(model->NumLayers() - 1).kind() != LayerKind::kSoftmax) {
    return Status::FailedPrecondition(
        "TrainModel requires a SoftMax output layer");
  }

  Rng rng(config.shuffle_seed);
  std::vector<size_t> order(data.samples.size());
  std::iota(order.begin(), order.end(), 0);

  double lr = config.learning_rate;
  TrainStats stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0;
    size_t correct = 0;

    size_t pos = 0;
    while (pos < order.size()) {
      const size_t batch_end =
          std::min(order.size(), pos + config.batch_size);
      const double batch_n = static_cast<double>(batch_end - pos);
      for (size_t l = 0; l < model->NumLayers(); ++l) {
        model->layer(l).ZeroGrads();
      }
      for (size_t b = pos; b < batch_end; ++b) {
        const size_t idx = order[b];
        PPS_ASSIGN_OR_RETURN(std::vector<DoubleTensor> acts,
                             model->ForwardWithActivations(
                                 data.samples[idx]));
        const DoubleTensor& probs = acts.back();
        epoch_loss += CrossEntropyLoss(probs, data.labels[idx]);
        if (ArgMax(probs) == data.labels[idx]) ++correct;

        // dL/d(probs) for cross entropy: -onehot / probs. SoftMax::Backward
        // applies the full Jacobian, which reduces to probs - onehot.
        DoubleTensor grad{probs.shape()};
        grad[data.labels[idx]] =
            -1.0 / std::max(probs[data.labels[idx]], 1e-12);
        for (size_t l = model->NumLayers(); l-- > 0;) {
          PPS_ASSIGN_OR_RETURN(grad,
                               model->layer(l).Backward(acts[l], grad));
        }
      }
      for (size_t l = 0; l < model->NumLayers(); ++l) {
        model->layer(l).SgdStep(lr / batch_n, config.momentum);
      }
      pos = batch_end;
    }

    stats.final_loss = epoch_loss / static_cast<double>(order.size());
    stats.final_train_accuracy =
        static_cast<double>(correct) / static_cast<double>(order.size());
    if (config.verbose) {
      PPS_LOG(Info) << model->name() << " epoch " << epoch + 1 << "/"
                    << config.epochs << " loss=" << stats.final_loss
                    << " acc=" << stats.final_train_accuracy;
    }
    lr *= config.lr_decay;
  }
  return stats;
}

Result<double> EvaluateAccuracy(const Model& model, const Dataset& data) {
  if (data.samples.empty()) {
    return Status::InvalidArgument("empty evaluation set");
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.samples.size(); ++i) {
    PPS_ASSIGN_OR_RETURN(int64_t pred, model.Predict(data.samples[i]));
    if (pred == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace ppstream
