#include "nn/layers.h"

#include <cmath>

#include "util/logging.h"

namespace ppstream {

const char* LayerKindName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDense:
      return "Dense";
    case LayerKind::kConv2D:
      return "Conv2D";
    case LayerKind::kBatchNorm:
      return "BatchNorm";
    case LayerKind::kRelu:
      return "ReLU";
    case LayerKind::kSigmoid:
      return "Sigmoid";
    case LayerKind::kSoftmax:
      return "SoftMax";
    case LayerKind::kMaxPool2D:
      return "MaxPool2D";
    case LayerKind::kAvgPool2D:
      return "AvgPool2D";
    case LayerKind::kFlatten:
      return "Flatten";
    case LayerKind::kScaledSigmoid:
      return "ScaledSigmoid";
    case LayerKind::kScalarScale:
      return "ScalarScale";
  }
  return "Unknown";
}

const char* OpClassName(OpClass c) {
  switch (c) {
    case OpClass::kLinear:
      return "linear";
    case OpClass::kNonLinear:
      return "non-linear";
    case OpClass::kMixed:
      return "mixed";
  }
  return "?";
}

namespace {

void WriteDoubles(BufferWriter* out, const std::vector<double>& v) {
  out->WriteU64(v.size());
  for (double d : v) out->WriteDouble(d);
}

Result<std::vector<double>> ReadDoubles(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint64_t n, in->ReadU64());
  // A valid stream must still hold n doubles — checking before the
  // allocation keeps a corrupted length field from OOMing the receiver.
  if (n > in->Remaining() / sizeof(double)) {
    return Status::OutOfRange("vector size exceeds remaining payload");
  }
  std::vector<double> v(n);
  for (auto& d : v) {
    PPS_ASSIGN_OR_RETURN(d, in->ReadDouble());
  }
  return v;
}

}  // namespace

// --------------------------------------------------------------- Dense

DenseLayer::DenseLayer(int64_t in_features, int64_t out_features)
    : in_features_(in_features),
      out_features_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weights_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}),
      vel_weights_(Shape{out_features, in_features}),
      vel_bias_(Shape{out_features}) {
  PPS_CHECK_GT(in_features, 0);
  PPS_CHECK_GT(out_features, 0);
}

std::unique_ptr<DenseLayer> DenseLayer::Random(int64_t in_features,
                                               int64_t out_features,
                                               Rng& rng) {
  auto layer = std::make_unique<DenseLayer>(in_features, out_features);
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features));
  for (auto& w : layer->weights_.data()) w = rng.NextUniform(-bound, bound);
  return layer;
}

Result<Shape> DenseLayer::OutputShape(const Shape& in) const {
  if (in.NumElements() != in_features_) {
    return Status::InvalidArgument(
        internal::StrCat("Dense expects ", in_features_, " inputs, got ",
                         in.NumElements()));
  }
  return Shape{out_features_};
}

Result<DoubleTensor> DenseLayer::Forward(const DoubleTensor& in) const {
  return DenseForward(weights_, bias_, in.Flatten());
}

Result<DoubleTensor> DenseLayer::Backward(const DoubleTensor& in,
                                          const DoubleTensor& grad_out) {
  if (grad_out.NumElements() != out_features_ ||
      in.NumElements() != in_features_) {
    return Status::InvalidArgument("Dense backward shape mismatch");
  }
  DoubleTensor grad_in{Shape{in_features_}};
  for (int64_t o = 0; o < out_features_; ++o) {
    const double g = grad_out[o];
    grad_bias_[o] += g;
    const int64_t base = o * in_features_;
    for (int64_t i = 0; i < in_features_; ++i) {
      grad_weights_[base + i] += g * in[i];
      grad_in[i] += g * weights_[base + i];
    }
  }
  return grad_in.Reshape(in.shape());
}

void DenseLayer::ZeroGrads() {
  std::fill(grad_weights_.data().begin(), grad_weights_.data().end(), 0.0);
  std::fill(grad_bias_.data().begin(), grad_bias_.data().end(), 0.0);
}

void DenseLayer::SgdStep(double lr, double momentum) {
  for (int64_t i = 0; i < weights_.NumElements(); ++i) {
    vel_weights_[i] = momentum * vel_weights_[i] + grad_weights_[i];
    weights_[i] -= lr * vel_weights_[i];
  }
  for (int64_t i = 0; i < bias_.NumElements(); ++i) {
    vel_bias_[i] = momentum * vel_bias_[i] + grad_bias_[i];
    bias_[i] -= lr * vel_bias_[i];
  }
}

int64_t DenseLayer::ParameterCount() const {
  return weights_.NumElements() + bias_.NumElements();
}

void DenseLayer::VisitParameters(
    const std::function<void(double)>& fn) const {
  for (double w : weights_.data()) fn(w);
  for (double b : bias_.data()) fn(b);
}

void DenseLayer::MutateParameters(const std::function<double(double)>& fn) {
  for (auto& w : weights_.data()) w = fn(w);
  for (auto& b : bias_.data()) b = fn(b);
}

void DenseLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteI64(in_features_);
  out->WriteI64(out_features_);
  WriteDoubles(out, weights_.data());
  WriteDoubles(out, bias_.data());
}

std::unique_ptr<Layer> DenseLayer::Clone() const {
  auto copy = std::make_unique<DenseLayer>(in_features_, out_features_);
  copy->weights_ = weights_;
  copy->bias_ = bias_;
  return copy;
}

// --------------------------------------------------------------- Conv2D

Conv2DLayer::Conv2DLayer(const Conv2DGeometry& geom)
    : geom_(geom),
      filters_(Shape{geom.out_channels, geom.in_channels, geom.kernel_h,
                     geom.kernel_w}),
      bias_(Shape{geom.out_channels}),
      grad_filters_(filters_.shape()),
      grad_bias_(bias_.shape()),
      vel_filters_(filters_.shape()),
      vel_bias_(bias_.shape()) {
  PPS_CHECK_OK(geom.Validate());
}

std::unique_ptr<Conv2DLayer> Conv2DLayer::Random(const Conv2DGeometry& geom,
                                                 Rng& rng) {
  auto layer = std::make_unique<Conv2DLayer>(geom);
  const double fan_in = static_cast<double>(geom.in_channels * geom.kernel_h *
                                            geom.kernel_w);
  const double bound = std::sqrt(6.0 / fan_in);
  for (auto& w : layer->filters_.data()) w = rng.NextUniform(-bound, bound);
  return layer;
}

Result<Shape> Conv2DLayer::OutputShape(const Shape& in) const {
  const Shape expect{geom_.in_channels, geom_.in_height, geom_.in_width};
  if (in != expect) {
    return Status::InvalidArgument(
        internal::StrCat("Conv2D expects input ", expect.ToString(), ", got ",
                         in.ToString()));
  }
  return geom_.OutputShape();
}

Result<DoubleTensor> Conv2DLayer::Forward(const DoubleTensor& in) const {
  return Conv2DForward(geom_, filters_, bias_, in);
}

Result<DoubleTensor> Conv2DLayer::Backward(const DoubleTensor& in,
                                           const DoubleTensor& grad_out) {
  const int64_t oh = geom_.out_height(), ow = geom_.out_width();
  if (grad_out.shape() != geom_.OutputShape()) {
    return Status::InvalidArgument("Conv2D backward shape mismatch");
  }
  DoubleTensor grad_in{in.shape()};
  const int64_t h = geom_.in_height, w = geom_.in_width;
  for (int64_t oc = 0; oc < geom_.out_channels; ++oc) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const double g = grad_out[(oc * oh + oy) * ow + ox];
        if (g == 0.0) continue;
        grad_bias_[oc] += g;
        const int64_t iy0 = oy * geom_.stride - geom_.padding;
        const int64_t ix0 = ox * geom_.stride - geom_.padding;
        for (int64_t ic = 0; ic < geom_.in_channels; ++ic) {
          for (int64_t ky = 0; ky < geom_.kernel_h; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kx = 0; kx < geom_.kernel_w; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              const int64_t fidx =
                  ((oc * geom_.in_channels + ic) * geom_.kernel_h + ky) *
                      geom_.kernel_w +
                  kx;
              const int64_t iidx = (ic * h + iy) * w + ix;
              grad_filters_[fidx] += g * in[iidx];
              grad_in[iidx] += g * filters_[fidx];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2DLayer::ZeroGrads() {
  std::fill(grad_filters_.data().begin(), grad_filters_.data().end(), 0.0);
  std::fill(grad_bias_.data().begin(), grad_bias_.data().end(), 0.0);
}

void Conv2DLayer::SgdStep(double lr, double momentum) {
  for (int64_t i = 0; i < filters_.NumElements(); ++i) {
    vel_filters_[i] = momentum * vel_filters_[i] + grad_filters_[i];
    filters_[i] -= lr * vel_filters_[i];
  }
  for (int64_t i = 0; i < bias_.NumElements(); ++i) {
    vel_bias_[i] = momentum * vel_bias_[i] + grad_bias_[i];
    bias_[i] -= lr * vel_bias_[i];
  }
}

int64_t Conv2DLayer::ParameterCount() const {
  return filters_.NumElements() + bias_.NumElements();
}

void Conv2DLayer::VisitParameters(
    const std::function<void(double)>& fn) const {
  for (double w : filters_.data()) fn(w);
  for (double b : bias_.data()) fn(b);
}

void Conv2DLayer::MutateParameters(const std::function<double(double)>& fn) {
  for (auto& w : filters_.data()) w = fn(w);
  for (auto& b : bias_.data()) b = fn(b);
}

void Conv2DLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteI64(geom_.in_channels);
  out->WriteI64(geom_.in_height);
  out->WriteI64(geom_.in_width);
  out->WriteI64(geom_.out_channels);
  out->WriteI64(geom_.kernel_h);
  out->WriteI64(geom_.kernel_w);
  out->WriteI64(geom_.stride);
  out->WriteI64(geom_.padding);
  WriteDoubles(out, filters_.data());
  WriteDoubles(out, bias_.data());
}

std::unique_ptr<Layer> Conv2DLayer::Clone() const {
  auto copy = std::make_unique<Conv2DLayer>(geom_);
  copy->filters_ = filters_;
  copy->bias_ = bias_;
  return copy;
}

// ------------------------------------------------------------ BatchNorm

BatchNormLayer::BatchNormLayer(int64_t channels, double epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gamma_(channels, 1.0),
      beta_(channels, 0.0),
      mean_(channels, 0.0),
      var_(channels, 1.0),
      grad_gamma_(channels, 0.0),
      grad_beta_(channels, 0.0),
      vel_gamma_(channels, 0.0),
      vel_beta_(channels, 0.0) {
  PPS_CHECK_GT(channels, 0);
}

int64_t BatchNormLayer::ChannelOf(const Shape& shape, int64_t i) const {
  if (shape.rank() == 3) {
    // CHW: channel is the leading dimension.
    return i / (shape.dim(1) * shape.dim(2));
  }
  // Rank-1 (per-feature normalization).
  return i;
}

Result<Shape> BatchNormLayer::OutputShape(const Shape& in) const {
  const int64_t c = in.rank() == 3 ? in.dim(0) : in.NumElements();
  if (c != channels_) {
    return Status::InvalidArgument(
        internal::StrCat("BatchNorm expects ", channels_, " channels, got ",
                         c));
  }
  return in;
}

Result<DoubleTensor> BatchNormLayer::Forward(const DoubleTensor& in) const {
  PPS_RETURN_IF_ERROR(OutputShape(in.shape()).status());
  DoubleTensor out{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    const int64_t c = ChannelOf(in.shape(), i);
    out[i] = gamma_[c] * (in[i] - mean_[c]) / std::sqrt(var_[c] + epsilon_) +
             beta_[c];
  }
  return out;
}

Result<DoubleTensor> BatchNormLayer::Backward(const DoubleTensor& in,
                                              const DoubleTensor& grad_out) {
  PPS_RETURN_IF_ERROR(OutputShape(in.shape()).status());
  DoubleTensor grad_in{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    const int64_t c = ChannelOf(in.shape(), i);
    const double inv_std = 1.0 / std::sqrt(var_[c] + epsilon_);
    const double xhat = (in[i] - mean_[c]) * inv_std;
    grad_gamma_[c] += grad_out[i] * xhat;
    grad_beta_[c] += grad_out[i];
    grad_in[i] = grad_out[i] * gamma_[c] * inv_std;
  }
  return grad_in;
}

void BatchNormLayer::ZeroGrads() {
  std::fill(grad_gamma_.begin(), grad_gamma_.end(), 0.0);
  std::fill(grad_beta_.begin(), grad_beta_.end(), 0.0);
}

void BatchNormLayer::SgdStep(double lr, double momentum) {
  for (int64_t c = 0; c < channels_; ++c) {
    vel_gamma_[c] = momentum * vel_gamma_[c] + grad_gamma_[c];
    gamma_[c] -= lr * vel_gamma_[c];
    vel_beta_[c] = momentum * vel_beta_[c] + grad_beta_[c];
    beta_[c] -= lr * vel_beta_[c];
  }
}

int64_t BatchNormLayer::ParameterCount() const { return 2 * channels_; }

void BatchNormLayer::VisitParameters(
    const std::function<void(double)>& fn) const {
  for (double g : gamma_) fn(g);
  for (double b : beta_) fn(b);
}

void BatchNormLayer::MutateParameters(
    const std::function<double(double)>& fn) {
  for (auto& g : gamma_) g = fn(g);
  for (auto& b : beta_) b = fn(b);
}

void BatchNormLayer::SetAffine(std::vector<double> gamma,
                               std::vector<double> beta) {
  PPS_CHECK_EQ(gamma.size(), static_cast<size_t>(channels_));
  PPS_CHECK_EQ(beta.size(), static_cast<size_t>(channels_));
  gamma_ = std::move(gamma);
  beta_ = std::move(beta);
}

void BatchNormLayer::SetStatistics(std::vector<double> mean,
                                   std::vector<double> var) {
  PPS_CHECK_EQ(mean.size(), static_cast<size_t>(channels_));
  PPS_CHECK_EQ(var.size(), static_cast<size_t>(channels_));
  mean_ = std::move(mean);
  var_ = std::move(var);
}

void BatchNormLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteI64(channels_);
  out->WriteDouble(epsilon_);
  WriteDoubles(out, gamma_);
  WriteDoubles(out, beta_);
  WriteDoubles(out, mean_);
  WriteDoubles(out, var_);
}

std::unique_ptr<Layer> BatchNormLayer::Clone() const {
  auto copy = std::make_unique<BatchNormLayer>(channels_, epsilon_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->mean_ = mean_;
  copy->var_ = var_;
  return copy;
}

// ------------------------------------------------------------ Activations

Result<DoubleTensor> ReluLayer::Forward(const DoubleTensor& in) const {
  return Relu(in);
}

Result<DoubleTensor> ReluLayer::Backward(const DoubleTensor& in,
                                         const DoubleTensor& grad_out) {
  DoubleTensor grad_in{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    grad_in[i] = in[i] > 0 ? grad_out[i] : 0.0;
  }
  return grad_in;
}

void ReluLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
}

Result<DoubleTensor> SigmoidLayer::Forward(const DoubleTensor& in) const {
  return Sigmoid(in);
}

Result<DoubleTensor> SigmoidLayer::Backward(const DoubleTensor& in,
                                            const DoubleTensor& grad_out) {
  DoubleTensor grad_in{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    const double s = 1.0 / (1.0 + std::exp(-in[i]));
    grad_in[i] = grad_out[i] * s * (1.0 - s);
  }
  return grad_in;
}

void SigmoidLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
}

Result<DoubleTensor> SoftmaxLayer::Forward(const DoubleTensor& in) const {
  return Softmax(in);
}

Result<DoubleTensor> SoftmaxLayer::Backward(const DoubleTensor& in,
                                            const DoubleTensor& grad_out) {
  // Full softmax Jacobian: grad_in = p ⊙ (grad_out - <grad_out, p>).
  DoubleTensor p = Softmax(in);
  double dot = 0;
  for (int64_t i = 0; i < in.NumElements(); ++i) dot += grad_out[i] * p[i];
  DoubleTensor grad_in{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    grad_in[i] = p[i] * (grad_out[i] - dot);
  }
  return grad_in;
}

void SoftmaxLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
}

// --------------------------------------------------------------- Pooling

MaxPool2DLayer::MaxPool2DLayer(int64_t size, int64_t stride)
    : size_(size), stride_(stride) {
  PPS_CHECK_GT(size, 0);
  PPS_CHECK_GT(stride, 0);
}

Result<Shape> MaxPool2DLayer::OutputShape(const Shape& in) const {
  if (in.rank() != 3) {
    return Status::InvalidArgument("MaxPool2D expects a CHW tensor");
  }
  if (size_ > in.dim(1) || size_ > in.dim(2)) {
    return Status::InvalidArgument("pool window exceeds input");
  }
  return Shape{in.dim(0), (in.dim(1) - size_) / stride_ + 1,
               (in.dim(2) - size_) / stride_ + 1};
}

Result<DoubleTensor> MaxPool2DLayer::Forward(const DoubleTensor& in) const {
  return MaxPool2D(in, size_, stride_);
}

Result<DoubleTensor> MaxPool2DLayer::Backward(const DoubleTensor& in,
                                              const DoubleTensor& grad_out) {
  PPS_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(in.shape()));
  if (grad_out.shape() != out_shape) {
    return Status::InvalidArgument("MaxPool2D backward shape mismatch");
  }
  const int64_t c = in.shape().dim(0), h = in.shape().dim(1),
                w = in.shape().dim(2);
  const int64_t oh = out_shape.dim(1), ow = out_shape.dim(2);
  DoubleTensor grad_in{in.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        // Route the gradient to the argmax position.
        int64_t best = (ch * h + oy * stride_) * w + ox * stride_;
        for (int64_t ky = 0; ky < size_; ++ky) {
          for (int64_t kx = 0; kx < size_; ++kx) {
            const int64_t idx =
                (ch * h + oy * stride_ + ky) * w + ox * stride_ + kx;
            if (in[idx] > in[best]) best = idx;
          }
        }
        grad_in[best] += grad_out[(ch * oh + oy) * ow + ox];
      }
    }
  }
  return grad_in;
}

void MaxPool2DLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteI64(size_);
  out->WriteI64(stride_);
}

AvgPool2DLayer::AvgPool2DLayer(int64_t size, int64_t stride)
    : size_(size), stride_(stride) {
  PPS_CHECK_GT(size, 0);
  PPS_CHECK_GT(stride, 0);
}

Result<Shape> AvgPool2DLayer::OutputShape(const Shape& in) const {
  if (in.rank() != 3) {
    return Status::InvalidArgument("AvgPool2D expects a CHW tensor");
  }
  if (size_ > in.dim(1) || size_ > in.dim(2)) {
    return Status::InvalidArgument("pool window exceeds input");
  }
  return Shape{in.dim(0), (in.dim(1) - size_) / stride_ + 1,
               (in.dim(2) - size_) / stride_ + 1};
}

Result<DoubleTensor> AvgPool2DLayer::Forward(const DoubleTensor& in) const {
  return AvgPool2D(in, size_, stride_);
}

Result<DoubleTensor> AvgPool2DLayer::Backward(const DoubleTensor& in,
                                              const DoubleTensor& grad_out) {
  PPS_ASSIGN_OR_RETURN(Shape out_shape, OutputShape(in.shape()));
  if (grad_out.shape() != out_shape) {
    return Status::InvalidArgument("AvgPool2D backward shape mismatch");
  }
  const int64_t c = in.shape().dim(0), h = in.shape().dim(1),
                w = in.shape().dim(2);
  const int64_t oh = out_shape.dim(1), ow = out_shape.dim(2);
  const double scale = 1.0 / static_cast<double>(size_ * size_);
  DoubleTensor grad_in{in.shape()};
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        const double g = grad_out[(ch * oh + oy) * ow + ox] * scale;
        for (int64_t ky = 0; ky < size_; ++ky) {
          for (int64_t kx = 0; kx < size_; ++kx) {
            grad_in[(ch * h + oy * stride_ + ky) * w + ox * stride_ + kx] +=
                g;
          }
        }
      }
    }
  }
  return grad_in;
}

void AvgPool2DLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteI64(size_);
  out->WriteI64(stride_);
}

void FlattenLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
}

// --------------------------------------------------- ScaledSigmoid / Scale

ScaledSigmoidLayer::ScaledSigmoidLayer(double alpha) : alpha_(alpha) {}

Result<DoubleTensor> ScaledSigmoidLayer::Forward(
    const DoubleTensor& in) const {
  return in.Map<double>(
      [this](double v) { return 1.0 / (1.0 + std::exp(-alpha_ * v)); });
}

Result<DoubleTensor> ScaledSigmoidLayer::Backward(
    const DoubleTensor& in, const DoubleTensor& grad_out) {
  DoubleTensor grad_in{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    const double s = 1.0 / (1.0 + std::exp(-alpha_ * in[i]));
    const double ds = s * (1.0 - s);
    grad_in[i] = grad_out[i] * ds * alpha_;
    grad_alpha_ += grad_out[i] * ds * in[i];
  }
  return grad_in;
}

void ScaledSigmoidLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteDouble(alpha_);
}

ScalarScaleLayer::ScalarScaleLayer(double alpha) : alpha_(alpha) {}

Result<DoubleTensor> ScalarScaleLayer::Forward(const DoubleTensor& in) const {
  return Scale(in, alpha_);
}

Result<DoubleTensor> ScalarScaleLayer::Backward(const DoubleTensor& in,
                                                const DoubleTensor& grad_out) {
  DoubleTensor grad_in{in.shape()};
  for (int64_t i = 0; i < in.NumElements(); ++i) {
    grad_in[i] = grad_out[i] * alpha_;
    grad_alpha_ += grad_out[i] * in[i];
  }
  return grad_in;
}

void ScalarScaleLayer::Serialize(BufferWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind()));
  out->WriteDouble(alpha_);
}

// ---------------------------------------------------------- Deserialization

Result<std::unique_ptr<Layer>> DeserializeLayer(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint8_t tag, in->ReadU8());
  const auto kind = static_cast<LayerKind>(tag);
  switch (kind) {
    case LayerKind::kDense: {
      PPS_ASSIGN_OR_RETURN(int64_t in_f, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(int64_t out_f, in->ReadI64());
      if (in_f <= 0 || out_f <= 0) {
        return Status::OutOfRange("bad Dense dims");
      }
      // The constructor allocates in_f*out_f weights; a valid stream must
      // still hold that many doubles, so bound the dims before allocating.
      const uint64_t budget = in->Remaining() / sizeof(double);
      if (static_cast<uint64_t>(out_f) > budget ||
          static_cast<uint64_t>(in_f) > budget / static_cast<uint64_t>(out_f)) {
        return Status::OutOfRange("Dense dims exceed remaining payload");
      }
      auto layer = std::make_unique<DenseLayer>(in_f, out_f);
      PPS_ASSIGN_OR_RETURN(std::vector<double> w, ReadDoubles(in));
      PPS_ASSIGN_OR_RETURN(std::vector<double> b, ReadDoubles(in));
      if (w.size() != static_cast<size_t>(in_f * out_f) ||
          b.size() != static_cast<size_t>(out_f)) {
        return Status::OutOfRange("Dense parameter size mismatch");
      }
      layer->weights() = DoubleTensor(Shape{out_f, in_f}, std::move(w));
      layer->bias() = DoubleTensor(Shape{out_f}, std::move(b));
      return std::unique_ptr<Layer>(std::move(layer));
    }
    case LayerKind::kConv2D: {
      Conv2DGeometry g;
      PPS_ASSIGN_OR_RETURN(g.in_channels, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.in_height, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.in_width, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.out_channels, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.kernel_h, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.kernel_w, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.stride, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(g.padding, in->ReadI64());
      PPS_RETURN_IF_ERROR(g.Validate());
      // Same allocation guard as Dense: the filter tensor the constructor
      // allocates must fit in what the stream can still deliver.
      const uint64_t filter_budget = in->Remaining() / sizeof(double);
      uint64_t filter_elems = static_cast<uint64_t>(g.out_channels);
      for (int64_t d : {g.in_channels, g.kernel_h, g.kernel_w}) {
        if (filter_elems == 0 ||
            static_cast<uint64_t>(d) > filter_budget / filter_elems) {
          return Status::OutOfRange("Conv2D dims exceed remaining payload");
        }
        filter_elems *= static_cast<uint64_t>(d);
      }
      auto layer = std::make_unique<Conv2DLayer>(g);
      PPS_ASSIGN_OR_RETURN(std::vector<double> f, ReadDoubles(in));
      PPS_ASSIGN_OR_RETURN(std::vector<double> b, ReadDoubles(in));
      if (f.size() != static_cast<size_t>(layer->filters().NumElements()) ||
          b.size() != static_cast<size_t>(g.out_channels)) {
        return Status::OutOfRange("Conv2D parameter size mismatch");
      }
      layer->filters() = DoubleTensor(layer->filters().shape(), std::move(f));
      layer->bias() = DoubleTensor(Shape{g.out_channels}, std::move(b));
      return std::unique_ptr<Layer>(std::move(layer));
    }
    case LayerKind::kBatchNorm: {
      PPS_ASSIGN_OR_RETURN(int64_t channels, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(double eps, in->ReadDouble());
      if (channels <= 0) return Status::OutOfRange("bad BatchNorm channels");
      if (static_cast<uint64_t>(channels) >
          in->Remaining() / sizeof(double)) {
        return Status::OutOfRange("BatchNorm channels exceed payload");
      }
      auto layer = std::make_unique<BatchNormLayer>(channels, eps);
      PPS_ASSIGN_OR_RETURN(std::vector<double> gamma, ReadDoubles(in));
      PPS_ASSIGN_OR_RETURN(std::vector<double> beta, ReadDoubles(in));
      PPS_ASSIGN_OR_RETURN(std::vector<double> mean, ReadDoubles(in));
      PPS_ASSIGN_OR_RETURN(std::vector<double> var, ReadDoubles(in));
      if (gamma.size() != static_cast<size_t>(channels) ||
          beta.size() != static_cast<size_t>(channels) ||
          mean.size() != static_cast<size_t>(channels) ||
          var.size() != static_cast<size_t>(channels)) {
        return Status::OutOfRange("BatchNorm parameter size mismatch");
      }
      layer->SetAffine(std::move(gamma), std::move(beta));
      layer->SetStatistics(std::move(mean), std::move(var));
      return std::unique_ptr<Layer>(std::move(layer));
    }
    case LayerKind::kRelu:
      return std::unique_ptr<Layer>(std::make_unique<ReluLayer>());
    case LayerKind::kSigmoid:
      return std::unique_ptr<Layer>(std::make_unique<SigmoidLayer>());
    case LayerKind::kSoftmax:
      return std::unique_ptr<Layer>(std::make_unique<SoftmaxLayer>());
    case LayerKind::kMaxPool2D: {
      PPS_ASSIGN_OR_RETURN(int64_t size, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(int64_t stride, in->ReadI64());
      if (size <= 0 || stride <= 0) {
        return Status::OutOfRange("bad pool params");
      }
      return std::unique_ptr<Layer>(
          std::make_unique<MaxPool2DLayer>(size, stride));
    }
    case LayerKind::kAvgPool2D: {
      PPS_ASSIGN_OR_RETURN(int64_t size, in->ReadI64());
      PPS_ASSIGN_OR_RETURN(int64_t stride, in->ReadI64());
      if (size <= 0 || stride <= 0) {
        return Status::OutOfRange("bad pool params");
      }
      return std::unique_ptr<Layer>(
          std::make_unique<AvgPool2DLayer>(size, stride));
    }
    case LayerKind::kFlatten:
      return std::unique_ptr<Layer>(std::make_unique<FlattenLayer>());
    case LayerKind::kScaledSigmoid: {
      PPS_ASSIGN_OR_RETURN(double alpha, in->ReadDouble());
      return std::unique_ptr<Layer>(
          std::make_unique<ScaledSigmoidLayer>(alpha));
    }
    case LayerKind::kScalarScale: {
      PPS_ASSIGN_OR_RETURN(double alpha, in->ReadDouble());
      return std::unique_ptr<Layer>(
          std::make_unique<ScalarScaleLayer>(alpha));
    }
  }
  return Status::OutOfRange(
      internal::StrCat("unknown layer kind tag ", static_cast<int>(tag)));
}

// ------------------------------------------------- Deployment decomposition

Result<std::vector<std::unique_ptr<Layer>>> Layer::DecomposeForDeployment(
    const Shape& input_shape) const {
  PPS_RETURN_IF_ERROR(OutputShape(input_shape).status());
  std::vector<std::unique_ptr<Layer>> out;
  out.push_back(Clone());
  return out;
}

Result<std::vector<std::unique_ptr<Layer>>>
MaxPool2DLayer::DecomposeForDeployment(const Shape& input_shape) const {
  if (input_shape.rank() != 3) {
    return Status::InvalidArgument("MaxPool input must be CHW");
  }
  PPS_RETURN_IF_ERROR(OutputShape(input_shape).status());
  Conv2DGeometry geom;
  geom.in_channels = input_shape.dim(0);
  geom.in_height = input_shape.dim(1);
  geom.in_width = input_shape.dim(2);
  geom.out_channels = input_shape.dim(0);
  geom.kernel_h = size_;
  geom.kernel_w = size_;
  geom.stride = stride_;
  geom.padding = 0;
  auto conv = std::make_unique<Conv2DLayer>(geom);
  // Depthwise averaging kernels: channel c averages only channel c.
  const double w = 1.0 / static_cast<double>(size_ * size_);
  for (int64_t oc = 0; oc < geom.out_channels; ++oc) {
    for (int64_t ky = 0; ky < geom.kernel_h; ++ky) {
      for (int64_t kx = 0; kx < geom.kernel_w; ++kx) {
        conv->filters()[((oc * geom.in_channels + oc) * geom.kernel_h + ky) *
                            geom.kernel_w +
                        kx] = w;
      }
    }
  }
  std::vector<std::unique_ptr<Layer>> out;
  out.push_back(std::move(conv));
  out.push_back(std::make_unique<ReluLayer>());
  return out;
}

Result<std::vector<std::unique_ptr<Layer>>>
ScaledSigmoidLayer::DecomposeForDeployment(const Shape& input_shape) const {
  PPS_RETURN_IF_ERROR(OutputShape(input_shape).status());
  std::vector<std::unique_ptr<Layer>> out;
  out.push_back(std::make_unique<ScalarScaleLayer>(alpha_));
  out.push_back(std::make_unique<SigmoidLayer>());
  return out;
}

}  // namespace ppstream
