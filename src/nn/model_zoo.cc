#include "nn/model_zoo.h"

#include <algorithm>

#include "nn/layers.h"
#include "util/logging.h"

namespace ppstream {

namespace {

const std::vector<ZooInfo> kZoo = {
    {ZooModelId::kBreast, "Breast", "3FC", 456, 113, 2, 1},
    {ZooModelId::kHeart, "Heart", "3FC", 820, 205, 2, 1},
    {ZooModelId::kCardio, "Cardio", "3FC", 60000, 10000, 2, 1},
    {ZooModelId::kMnist1, "MNIST-1", "3FC", 60000, 10000, 2, 1},
    {ZooModelId::kMnist2, "MNIST-2", "1Conv+2FC", 60000, 10000, 2, 1},
    {ZooModelId::kMnist3, "MNIST-3", "2Conv+2FC", 60000, 10000, 2, 2},
    {ZooModelId::kCifar1, "CIFAR-10-1", "VGG13", 50000, 10000, 6, 3},
    {ZooModelId::kCifar2, "CIFAR-10-2", "VGG16", 50000, 10000, 6, 3},
    {ZooModelId::kCifar3, "CIFAR-10-3", "VGG19", 50000, 10000, 6, 3},
};

size_t Scaled(size_t paper_count, double scale, size_t floor_count) {
  const double scaled = static_cast<double>(paper_count) * scale;
  return std::max(floor_count, static_cast<size_t>(scaled));
}

Status AddDenseRelu(Model* model, int64_t in, int64_t out, Rng& rng) {
  PPS_RETURN_IF_ERROR(model->Add(DenseLayer::Random(in, out, rng)));
  return model->Add(std::make_unique<ReluLayer>());
}

/// 3FC: Dense -> ReLU -> Dense -> act -> Dense -> SoftMax.
/// `mixed_activation` swaps the middle ReLU for a ScaledSigmoid (a mixed
/// layer, to exercise the protocol's mixed-layer decomposition).
Result<Model> MakeTabular3Fc(const std::string& name, int64_t features,
                             bool mixed_activation, uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{features}, name);
  PPS_RETURN_IF_ERROR(AddDenseRelu(&model, features, 16, rng));
  PPS_RETURN_IF_ERROR(model.Add(DenseLayer::Random(16, 8, rng)));
  if (mixed_activation) {
    PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ScaledSigmoidLayer>(1.0)));
  } else {
    PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ReluLayer>()));
  }
  PPS_RETURN_IF_ERROR(model.Add(DenseLayer::Random(8, 2, rng)));
  PPS_RETURN_IF_ERROR(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

Conv2DGeometry MakeGeom(int64_t c_in, int64_t h, int64_t w, int64_t c_out,
                        int64_t k, int64_t stride, int64_t pad) {
  Conv2DGeometry g;
  g.in_channels = c_in;
  g.in_height = h;
  g.in_width = w;
  g.out_channels = c_out;
  g.kernel_h = k;
  g.kernel_w = k;
  g.stride = stride;
  g.padding = pad;
  return g;
}

/// VGG-style stack: 'M' entries are stride-2 downsampling layers, numbers
/// are 3x3 pad-1 convolutions (channel counts), each followed by ReLU.
///
/// Downsampling uses a learnable stride-2 2x2 convolution + ReLU rather
/// than MaxPool: this is exactly the rewrite PP-Stream applies before
/// deployment anyway (paper §III-C, following [62]), and it keeps
/// gradients flowing through the deep stack — five MaxPools route the
/// gradient to 4^-5 of the paths and stall from-scratch training at our
/// channel widths.
Result<Model> MakeVggStyle(const std::string& name,
                           const std::vector<int>& config, uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{3, 32, 32}, name);
  int64_t c = 3, h = 32, w = 32;
  bool first_conv = true;
  for (int entry : config) {
    if (entry < 0) {  // downsampling marker
      PPS_RETURN_IF_ERROR(model.Add(
          Conv2DLayer::Random(MakeGeom(c, h, w, c, 2, 2, 0), rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ReluLayer>()));
      h = (h - 2) / 2 + 1;
      w = (w - 2) / 2 + 1;
      continue;
    }
    PPS_RETURN_IF_ERROR(model.Add(
        Conv2DLayer::Random(MakeGeom(c, h, w, entry, 3, 1, 1), rng)));
    c = entry;
    if (first_conv) {
      // One BatchNorm to exercise the linear-affine path in the protocol.
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<BatchNormLayer>(c)));
      first_conv = false;
    }
    PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ReluLayer>()));
  }
  PPS_RETURN_IF_ERROR(model.Add(std::make_unique<FlattenLayer>()));
  const int64_t flat = c * h * w;
  PPS_RETURN_IF_ERROR(AddDenseRelu(&model, flat, 16, rng));
  PPS_RETURN_IF_ERROR(AddDenseRelu(&model, 16, 16, rng));
  PPS_RETURN_IF_ERROR(model.Add(DenseLayer::Random(16, 10, rng)));
  PPS_RETURN_IF_ERROR(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

constexpr int M = -1;  // max-pool marker in VGG configs

}  // namespace

const std::vector<ZooInfo>& AllZooInfos() { return kZoo; }

const ZooInfo& GetZooInfo(ZooModelId id) {
  return kZoo[static_cast<size_t>(id)];
}

DatasetSplit MakeZooDataset(ZooModelId id, double size_scale, uint64_t seed) {
  const ZooInfo& info = GetZooInfo(id);
  const size_t train = Scaled(info.paper_train_samples, size_scale, 120);
  const size_t test = Scaled(info.paper_test_samples, size_scale, 60);
  switch (id) {
    case ZooModelId::kBreast:
      return MakeTabularDataset("Breast", 30, train, test, 4.6, seed);
    case ZooModelId::kHeart:
      return MakeTabularDataset("Heart", 13, train, test, 5.4, seed);
    case ZooModelId::kCardio:
      // Low separation caps accuracy near the paper's ~71% ceiling.
      return MakeTabularDataset("Cardio", 11, train, test, 1.12, seed);
    case ZooModelId::kMnist1:
    case ZooModelId::kMnist2:
    case ZooModelId::kMnist3:
      return MakeImageDataset("MNIST", 1, 28, 28, 10, train, test, 3.8,
                              seed);
    case ZooModelId::kCifar1:
    case ZooModelId::kCifar2:
    case ZooModelId::kCifar3:
      return MakeImageDataset("CIFAR-10", 3, 32, 32, 10, train, test, 3.0,
                              seed);
  }
  PPS_CHECK(false) << "unreachable";
  return {};
}

Result<Model> MakeZooModel(ZooModelId id, uint64_t seed) {
  switch (id) {
    case ZooModelId::kBreast:
      return MakeTabular3Fc("Breast-3FC", 30, /*mixed_activation=*/false,
                            seed);
    case ZooModelId::kHeart:
      // Heart uses the mixed ScaledSigmoid activation (paper Figure 2
      // shows Sigmoid as the canonical mixed layer).
      return MakeTabular3Fc("Heart-3FC", 13, /*mixed_activation=*/true,
                            seed);
    case ZooModelId::kCardio:
      return MakeTabular3Fc("Cardio-3FC", 11, /*mixed_activation=*/false,
                            seed);
    case ZooModelId::kMnist1: {
      Rng rng(seed);
      Model model(Shape{1, 28, 28}, "MNIST1-3FC");
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<FlattenLayer>()));
      PPS_RETURN_IF_ERROR(AddDenseRelu(&model, 784, 64, rng));
      PPS_RETURN_IF_ERROR(AddDenseRelu(&model, 64, 32, rng));
      PPS_RETURN_IF_ERROR(model.Add(DenseLayer::Random(32, 10, rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<SoftmaxLayer>()));
      return model;
    }
    case ZooModelId::kMnist2: {
      Rng rng(seed);
      Model model(Shape{1, 28, 28}, "MNIST2-1Conv2FC");
      PPS_RETURN_IF_ERROR(model.Add(
          Conv2DLayer::Random(MakeGeom(1, 28, 28, 4, 5, 2, 0), rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ReluLayer>()));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<FlattenLayer>()));
      PPS_RETURN_IF_ERROR(AddDenseRelu(&model, 4 * 12 * 12, 32, rng));
      PPS_RETURN_IF_ERROR(model.Add(DenseLayer::Random(32, 10, rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<SoftmaxLayer>()));
      return model;
    }
    case ZooModelId::kMnist3: {
      Rng rng(seed);
      Model model(Shape{1, 28, 28}, "MNIST3-2Conv2FC");
      PPS_RETURN_IF_ERROR(model.Add(
          Conv2DLayer::Random(MakeGeom(1, 28, 28, 4, 5, 2, 0), rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ReluLayer>()));
      PPS_RETURN_IF_ERROR(model.Add(
          Conv2DLayer::Random(MakeGeom(4, 12, 12, 8, 3, 2, 0), rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ReluLayer>()));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<FlattenLayer>()));
      PPS_RETURN_IF_ERROR(AddDenseRelu(&model, 8 * 5 * 5, 32, rng));
      PPS_RETURN_IF_ERROR(model.Add(DenseLayer::Random(32, 10, rng)));
      PPS_RETURN_IF_ERROR(model.Add(std::make_unique<SoftmaxLayer>()));
      return model;
    }
    case ZooModelId::kCifar1:
      return MakeVggStyle("CIFAR1-VGG13",
                          {4, 4, M, 8, 8, M, 8, 8, M, 16, 16, M, 16, 16, M},
                          seed);
    case ZooModelId::kCifar2:
      return MakeVggStyle(
          "CIFAR2-VGG16",
          {4, 4, M, 8, 8, M, 8, 8, 8, M, 16, 16, 16, M, 16, 16, 16, M},
          seed);
    case ZooModelId::kCifar3:
      return MakeVggStyle("CIFAR3-VGG19",
                          {4, 4, M, 8, 8, M, 8, 8, 8, 8, M, 16, 16, 16, 16,
                           M, 16, 16, 16, 16, M},
                          seed);
  }
  return Status::InvalidArgument("unknown zoo model id");
}

TrainConfig DefaultTrainConfig(ZooModelId id) {
  TrainConfig config;
  switch (id) {
    case ZooModelId::kBreast:
    case ZooModelId::kHeart:
    case ZooModelId::kCardio:
      config.epochs = 40;
      config.learning_rate = 0.05;
      config.momentum = 0.0;  // plain SGD is robust for the shallow nets
      config.batch_size = 16;
      config.lr_decay = 0.97;
      break;
    case ZooModelId::kMnist1:
    case ZooModelId::kMnist2:
    case ZooModelId::kMnist3:
      config.epochs = 12;
      config.learning_rate = 0.05;
      config.momentum = 0.0;  // plain SGD is robust for the shallow nets
      config.batch_size = 16;
      config.lr_decay = 0.95;
      break;
    case ZooModelId::kCifar1:
    case ZooModelId::kCifar2:
    case ZooModelId::kCifar3:
      // The deeper VGG stacks need more passes to converge from scratch.
      // The deep stacks need momentum to escape early plateaus.
      config.epochs = 18;
      config.learning_rate = 0.006;
      config.momentum = 0.9;
      config.batch_size = 16;
      config.lr_decay = 0.97;
      break;
  }
  return config;
}

Result<Model> MakeTrainedZooModel(ZooModelId id, const Dataset& train,
                                  uint64_t seed) {
  PPS_ASSIGN_OR_RETURN(Model model, MakeZooModel(id, seed));
  PPS_RETURN_IF_ERROR(
      TrainModel(&model, train, DefaultTrainConfig(id)).status());
  return model;
}

}  // namespace ppstream
