// Synthetic dataset generators standing in for the paper's public datasets.
//
// This sandbox has no network access, so MNIST / CIFAR-10 / the Kaggle
// healthcare tables are replaced by deterministic generators with the same
// dimensionality and class structure (see DESIGN.md §2). Exp#1 measures the
// accuracy drop caused by rounding model parameters, which depends on the
// trained parameter distribution and decision margins — properties these
// generators reproduce — not on where the pixels came from.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace ppstream {

/// A labeled classification dataset.
struct Dataset {
  std::string name;
  std::vector<DoubleTensor> samples;
  std::vector<int64_t> labels;
  int64_t num_classes = 0;

  size_t size() const { return samples.size(); }
};

/// Train/test split of a dataset.
struct DatasetSplit {
  Dataset train;
  Dataset test;
};

/// Tabular binary-classification data: two Gaussian clusters per class in
/// `features` dimensions with controllable `separation` (cluster distance in
/// units of the noise sigma). Low separation caps achievable accuracy —
/// used to mimic the Cardio dataset's ~71% ceiling.
DatasetSplit MakeTabularDataset(const std::string& name, int64_t features,
                                size_t train_size, size_t test_size,
                                double separation, uint64_t seed);

/// Image-classification data shaped like MNIST ({1, 28, 28}, 10 classes) or
/// CIFAR ({3, 32, 32}, 10 classes): each class has a random smooth prototype
/// image; samples are prototypes plus Gaussian pixel noise.
DatasetSplit MakeImageDataset(const std::string& name, int64_t channels,
                              int64_t height, int64_t width,
                              int64_t num_classes, size_t train_size,
                              size_t test_size, double noise_sigma,
                              uint64_t seed);

/// Paper Table III sample counts, scaled by `scale` (1.0 = paper-sized).
/// The repo defaults to smaller datasets so training fits the sandbox.
struct DatasetSizes {
  size_t train;
  size_t test;
};

}  // namespace ppstream
