#include "nn/dataset.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace ppstream {

namespace {

/// Smooth a flat image in place with a 3x3 box blur (per channel), to give
/// class prototypes spatial structure (neighboring pixels correlate, as in
/// natural images).
void BoxBlur(std::vector<double>* img, int64_t c, int64_t h, int64_t w) {
  std::vector<double> out(img->size());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        double sum = 0;
        int count = 0;
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dx = -1; dx <= 1; ++dx) {
            const int64_t yy = y + dy, xx = x + dx;
            if (yy < 0 || yy >= h || xx < 0 || xx >= w) continue;
            sum += (*img)[(ch * h + yy) * w + xx];
            ++count;
          }
        }
        out[(ch * h + y) * w + x] = sum / count;
      }
    }
  }
  *img = std::move(out);
}

}  // namespace

DatasetSplit MakeTabularDataset(const std::string& name, int64_t features,
                                size_t train_size, size_t test_size,
                                double separation, uint64_t seed) {
  PPS_CHECK_GT(features, 0);
  Rng rng(seed);

  // Two class centroids at distance `separation` along a random direction.
  std::vector<double> direction(features);
  double norm = 0;
  for (auto& d : direction) {
    d = rng.NextGaussian();
    norm += d * d;
  }
  norm = std::sqrt(norm);
  for (auto& d : direction) d /= norm;

  auto make = [&](size_t count, Dataset* out) {
    out->name = name;
    out->num_classes = 2;
    out->samples.reserve(count);
    out->labels.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const int64_t label = static_cast<int64_t>(rng.NextBounded(2));
      DoubleTensor x{Shape{features}};
      const double sign = label == 0 ? -0.5 : 0.5;
      for (int64_t f = 0; f < features; ++f) {
        x[f] = sign * separation * direction[f] + rng.NextGaussian();
      }
      out->samples.push_back(std::move(x));
      out->labels.push_back(label);
    }
  };

  DatasetSplit split;
  make(train_size, &split.train);
  make(test_size, &split.test);
  split.train.name = name + "-train";
  split.test.name = name + "-test";
  return split;
}

DatasetSplit MakeImageDataset(const std::string& name, int64_t channels,
                              int64_t height, int64_t width,
                              int64_t num_classes, size_t train_size,
                              size_t test_size, double noise_sigma,
                              uint64_t seed) {
  PPS_CHECK_GT(num_classes, 1);
  Rng rng(seed);

  // One smooth prototype per class.
  std::vector<std::vector<double>> prototypes(num_classes);
  const size_t pixels = static_cast<size_t>(channels * height * width);
  for (auto& proto : prototypes) {
    proto.resize(pixels);
    for (auto& p : proto) p = rng.NextGaussian();
    // Three blur passes give prototypes the coarse spatial structure that
    // convolutional filters key on; the amplification keeps per-pixel
    // signal comparable to the noise floor.
    BoxBlur(&proto, channels, height, width);
    BoxBlur(&proto, channels, height, width);
    BoxBlur(&proto, channels, height, width);
    for (auto& p : proto) p *= 4.0;
  }

  const Shape shape{channels, height, width};
  auto make = [&](size_t count, Dataset* out) {
    out->name = name;
    out->num_classes = num_classes;
    out->samples.reserve(count);
    out->labels.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const int64_t label =
          static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(num_classes)));
      DoubleTensor x{shape};
      for (size_t p = 0; p < pixels; ++p) {
        x[static_cast<int64_t>(p)] =
            prototypes[label][p] + noise_sigma * rng.NextGaussian();
      }
      out->samples.push_back(std::move(x));
      out->labels.push_back(label);
    }
  };

  DatasetSplit split;
  make(train_size, &split.train);
  make(test_size, &split.test);
  split.train.name = name + "-train";
  split.test.name = name + "-test";
  return split;
}

}  // namespace ppstream
