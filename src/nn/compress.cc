#include "nn/compress.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "nn/layers.h"
#include "obs/metrics.h"

namespace ppstream {
namespace {

int64_t CountDistinctNonzero(const DoubleTensor& w) {
  std::set<double> values;
  for (int64_t i = 0; i < w.NumElements(); ++i) {
    if (w[i] != 0.0) values.insert(w[i]);
  }
  return static_cast<int64_t>(values.size());
}

/// Zeroes the `fraction` smallest-magnitude nonzero entries of `w`.
int64_t PruneTensor(DoubleTensor* w, double fraction) {
  if (fraction <= 0.0) return 0;
  std::vector<double> magnitudes;
  magnitudes.reserve(static_cast<size_t>(w->NumElements()));
  for (int64_t i = 0; i < w->NumElements(); ++i) {
    magnitudes.push_back(std::fabs((*w)[i]));
  }
  const size_t cut = std::min(
      magnitudes.size() - 1,
      static_cast<size_t>(fraction * static_cast<double>(magnitudes.size())));
  if (cut == 0) return 0;
  std::nth_element(magnitudes.begin(), magnitudes.begin() + (cut - 1),
                   magnitudes.end());
  const double threshold = magnitudes[cut - 1];
  int64_t pruned = 0;
  for (int64_t i = 0; i < w->NumElements(); ++i) {
    if ((*w)[i] != 0.0 && std::fabs((*w)[i]) <= threshold) {
      (*w)[i] = 0.0;
      ++pruned;
    }
  }
  return pruned;
}

/// Snaps every nonzero entry to the symmetric k-bit grid
/// {q * step : |q| <= 2^(bits-1) - 1}, step = max|w| / (2^(bits-1) - 1).
/// Entries that round to q == 0 become exact zeros (implicit extra prune).
void QuantizeTensor(DoubleTensor* w, int bits) {
  if (bits < 2) return;
  double max_mag = 0.0;
  for (int64_t i = 0; i < w->NumElements(); ++i) {
    max_mag = std::max(max_mag, std::fabs((*w)[i]));
  }
  if (max_mag == 0.0) return;
  const double levels =
      static_cast<double>((int64_t{1} << (bits - 1)) - 1);
  const double step = max_mag / levels;
  for (int64_t i = 0; i < w->NumElements(); ++i) {
    (*w)[i] = std::round((*w)[i] / step) * step;
  }
}

void CompressTensor(DoubleTensor* w, const CompressionSpec& spec,
                    CompressionReport* report) {
  report->weights_total += w->NumElements();
  report->distinct_before += CountDistinctNonzero(*w);
  report->weights_pruned += PruneTensor(w, spec.prune_fraction);
  QuantizeTensor(w, spec.weight_bits);
  report->distinct_after += CountDistinctNonzero(*w);
  ++report->layers_compressed;
}

}  // namespace

Result<Model> CompressModel(const Model& model, const CompressionSpec& spec,
                            CompressionReport* report) {
  if (spec.prune_fraction < 0.0 || spec.prune_fraction >= 1.0) {
    return Status::InvalidArgument(
        "compress: prune_fraction must be in [0, 1)");
  }
  if (spec.weight_bits < 0 || spec.weight_bits > 32) {
    return Status::InvalidArgument(
        "compress: weight_bits must be in [0, 32]");
  }
  if (spec.weight_bits == 1) {
    return Status::InvalidArgument(
        "compress: 1-bit quantization leaves no nonzero level");
  }
  Model out = model.Clone();
  CompressionReport local;
  for (size_t i = 0; i < out.NumLayers(); ++i) {
    Layer& layer = out.layer(i);
    if (auto* dense = dynamic_cast<DenseLayer*>(&layer)) {
      CompressTensor(&dense->weights(), spec, &local);
    } else if (auto* conv = dynamic_cast<Conv2DLayer*>(&layer)) {
      CompressTensor(&conv->filters(), spec, &local);
    }
  }
  static obs::Counter* pruned =
      obs::MetricsRegistry::Global().GetCounter("nn.quant.weights_pruned");
  static obs::Counter* layers =
      obs::MetricsRegistry::Global().GetCounter("nn.quant.layers_compressed");
  static obs::Counter* distinct_before = obs::MetricsRegistry::Global()
      .GetCounter("nn.quant.distinct_values_before");
  static obs::Counter* distinct_after = obs::MetricsRegistry::Global()
      .GetCounter("nn.quant.distinct_values_after");
  pruned->Increment(local.weights_pruned);
  layers->Increment(local.layers_compressed);
  distinct_before->Increment(local.distinct_before);
  distinct_after->Increment(local.distinct_after);
  if (report != nullptr) *report = local;
  return out;
}

}  // namespace ppstream
