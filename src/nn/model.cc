#include "nn/model.h"

#include <fstream>

#include "nn/layers.h"

namespace ppstream {

Status Model::Add(std::unique_ptr<Layer> layer) {
  PPS_ASSIGN_OR_RETURN(Shape current, OutputShape());
  PPS_RETURN_IF_ERROR(layer->OutputShape(current).status());
  layers_.push_back(std::move(layer));
  return Status::OK();
}

Result<Shape> Model::OutputShape() const {
  Shape shape = input_shape_;
  for (const auto& layer : layers_) {
    PPS_ASSIGN_OR_RETURN(shape, layer->OutputShape(shape));
  }
  return shape;
}

Result<DoubleTensor> Model::Forward(const DoubleTensor& input) const {
  if (input.shape() != input_shape_) {
    return Status::InvalidArgument(
        internal::StrCat("model ", name_, " expects input ",
                         input_shape_.ToString(), ", got ",
                         input.shape().ToString()));
  }
  DoubleTensor x = input;
  for (const auto& layer : layers_) {
    PPS_ASSIGN_OR_RETURN(x, layer->Forward(x));
  }
  return x;
}

Result<std::vector<DoubleTensor>> Model::ForwardWithActivations(
    const DoubleTensor& input) const {
  if (input.shape() != input_shape_) {
    return Status::InvalidArgument("input shape mismatch");
  }
  std::vector<DoubleTensor> acts;
  acts.reserve(layers_.size() + 1);
  acts.push_back(input);
  for (const auto& layer : layers_) {
    PPS_ASSIGN_OR_RETURN(DoubleTensor next, layer->Forward(acts.back()));
    acts.push_back(std::move(next));
  }
  return acts;
}

Result<int64_t> Model::Predict(const DoubleTensor& input) const {
  PPS_ASSIGN_OR_RETURN(DoubleTensor out, Forward(input));
  return ArgMax(out);
}

int64_t Model::ParameterCount() const {
  int64_t total = 0;
  for (const auto& layer : layers_) total += layer->ParameterCount();
  return total;
}

Model Model::Clone() const {
  Model copy(input_shape_, name_);
  for (const auto& layer : layers_) {
    copy.layers_.push_back(layer->Clone());
  }
  return copy;
}

Result<Model> Model::ReplaceMaxPooling() const {
  Model out(input_shape_, name_);
  Shape shape = input_shape_;
  for (const auto& layer : layers_) {
    if (layer->kind() == LayerKind::kMaxPool2D) {
      // The §III-C rewrite lives on the layer itself now.
      PPS_ASSIGN_OR_RETURN(auto replacements,
                           layer->DecomposeForDeployment(shape));
      for (auto& replacement : replacements) {
        PPS_RETURN_IF_ERROR(out.Add(std::move(replacement)));
      }
    } else {
      PPS_RETURN_IF_ERROR(out.Add(layer->Clone()));
    }
    PPS_ASSIGN_OR_RETURN(shape, layer->OutputShape(shape));
  }
  return out;
}

void Model::Serialize(BufferWriter* out) const {
  out->WriteString(name_);
  out->WriteU64(input_shape_.rank());
  for (int64_t d : input_shape_.dims()) out->WriteI64(d);
  out->WriteU64(layers_.size());
  for (const auto& layer : layers_) layer->Serialize(out);
}

Result<Model> Model::Deserialize(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(std::string name, in->ReadString());
  PPS_ASSIGN_OR_RETURN(uint64_t rank, in->ReadU64());
  if (rank > 8) return Status::OutOfRange("implausible input rank");
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) {
    PPS_ASSIGN_OR_RETURN(d, in->ReadI64());
    if (d <= 0) return Status::OutOfRange("non-positive input dim");
  }
  Model model(Shape(std::move(dims)), std::move(name));
  PPS_ASSIGN_OR_RETURN(uint64_t n_layers, in->ReadU64());
  if (n_layers > 4096) return Status::OutOfRange("implausible layer count");
  for (uint64_t i = 0; i < n_layers; ++i) {
    PPS_ASSIGN_OR_RETURN(std::unique_ptr<Layer> layer, DeserializeLayer(in));
    PPS_RETURN_IF_ERROR(model.Add(std::move(layer)));
  }
  return model;
}

Status Model::SaveToFile(const std::string& path) const {
  BufferWriter writer;
  Serialize(&writer);
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(writer.bytes().data()),
            static_cast<std::streamsize>(writer.size()));
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<Model> Model::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  BufferReader reader(bytes);
  return Deserialize(&reader);
}

std::string Model::Summary() const {
  std::string out = name_ + ": " + input_shape_.ToString();
  for (const auto& layer : layers_) {
    out += " -> ";
    out += layer->name();
  }
  return out;
}

}  // namespace ppstream
