// Concrete layer implementations.

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/layer.h"
#include "tensor/ops.h"

namespace ppstream {

/// Fully-connected layer: y = W x + b. Linear.
class DenseLayer : public Layer {
 public:
  DenseLayer(int64_t in_features, int64_t out_features);
  /// He-uniform initialization.
  static std::unique_ptr<DenseLayer> Random(int64_t in_features,
                                            int64_t out_features, Rng& rng);

  LayerKind kind() const override { return LayerKind::kDense; }
  OpClass op_class() const override { return OpClass::kLinear; }
  Result<Shape> OutputShape(const Shape& in) const override;
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void ZeroGrads() override;
  void SgdStep(double lr, double momentum) override;
  int64_t ParameterCount() const override;
  void VisitParameters(const std::function<void(double)>& fn) const override;
  void MutateParameters(const std::function<double(double)>& fn) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  DoubleTensor& weights() { return weights_; }
  const DoubleTensor& weights() const { return weights_; }
  DoubleTensor& bias() { return bias_; }
  const DoubleTensor& bias() const { return bias_; }

 private:
  int64_t in_features_, out_features_;
  DoubleTensor weights_;  // {out, in}
  DoubleTensor bias_;     // {out}
  DoubleTensor grad_weights_, grad_bias_;
  DoubleTensor vel_weights_, vel_bias_;  // momentum buffers
};

/// 2-d convolution layer. Linear.
class Conv2DLayer : public Layer {
 public:
  explicit Conv2DLayer(const Conv2DGeometry& geom);
  static std::unique_ptr<Conv2DLayer> Random(const Conv2DGeometry& geom,
                                             Rng& rng);

  LayerKind kind() const override { return LayerKind::kConv2D; }
  OpClass op_class() const override { return OpClass::kLinear; }
  Result<Shape> OutputShape(const Shape& in) const override;
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void ZeroGrads() override;
  void SgdStep(double lr, double momentum) override;
  int64_t ParameterCount() const override;
  void VisitParameters(const std::function<void(double)>& fn) const override;
  void MutateParameters(const std::function<double(double)>& fn) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override;

  const Conv2DGeometry& geometry() const { return geom_; }
  DoubleTensor& filters() { return filters_; }
  const DoubleTensor& filters() const { return filters_; }
  DoubleTensor& bias() { return bias_; }
  const DoubleTensor& bias() const { return bias_; }

 private:
  Conv2DGeometry geom_;
  DoubleTensor filters_;  // {OC, C, kh, kw}
  DoubleTensor bias_;     // {OC}
  DoubleTensor grad_filters_, grad_bias_;
  DoubleTensor vel_filters_, vel_bias_;  // momentum buffers
};

/// Batch normalization in inference form: per-channel affine transform
/// y = gamma * (x - mean) / sqrt(var + eps) + beta. Linear (the statistics
/// are fixed model parameters at inference time).
class BatchNormLayer : public Layer {
 public:
  explicit BatchNormLayer(int64_t channels, double epsilon = 1e-5);

  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  OpClass op_class() const override { return OpClass::kLinear; }
  Result<Shape> OutputShape(const Shape& in) const override;
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void ZeroGrads() override;
  void SgdStep(double lr, double momentum) override;
  int64_t ParameterCount() const override;
  void VisitParameters(const std::function<void(double)>& fn) const override;
  void MutateParameters(const std::function<double(double)>& fn) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override;

  /// Sets the frozen running statistics.
  void SetStatistics(std::vector<double> mean, std::vector<double> var);
  /// Sets the learnable affine parameters.
  void SetAffine(std::vector<double> gamma, std::vector<double> beta);
  int64_t channels() const { return channels_; }
  const std::vector<double>& gamma() const { return gamma_; }
  const std::vector<double>& beta() const { return beta_; }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& variance() const { return var_; }
  double epsilon() const { return epsilon_; }

 private:
  /// Channel index of flat element i for the given shape.
  int64_t ChannelOf(const Shape& shape, int64_t i) const;

  int64_t channels_;
  double epsilon_;
  std::vector<double> gamma_, beta_;  // learnable
  std::vector<double> mean_, var_;    // frozen statistics
  std::vector<double> grad_gamma_, grad_beta_;
  std::vector<double> vel_gamma_, vel_beta_;  // momentum buffers
};

/// Element-wise ReLU. Non-linear; commutes with permutation.
class ReluLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kRelu; }
  OpClass op_class() const override { return OpClass::kNonLinear; }
  Result<Shape> OutputShape(const Shape& in) const override { return in; }
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ReluLayer>();
  }
};

/// Element-wise sigmoid. Non-linear; commutes with permutation.
class SigmoidLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kSigmoid; }
  OpClass op_class() const override { return OpClass::kNonLinear; }
  Result<Shape> OutputShape(const Shape& in) const override { return in; }
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<SigmoidLayer>();
  }
};

/// Softmax over the flattened tensor. Non-linear; does NOT commute with
/// permutation — the protocol never obfuscates its input (paper §III-C).
class SoftmaxLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kSoftmax; }
  OpClass op_class() const override { return OpClass::kNonLinear; }
  Result<Shape> OutputShape(const Shape& in) const override { return in; }
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<SoftmaxLayer>();
  }
};

/// Max pooling. Non-linear; position-dependent, so the protocol replaces it
/// with stride-2 conv + ReLU (paper §III-C, [62]) before deployment.
class MaxPool2DLayer : public Layer {
 public:
  MaxPool2DLayer(int64_t size, int64_t stride);

  LayerKind kind() const override { return LayerKind::kMaxPool2D; }
  OpClass op_class() const override { return OpClass::kNonLinear; }
  Result<Shape> OutputShape(const Shape& in) const override;
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2DLayer>(size_, stride_);
  }
  /// The §III-C rewrite: a stride-`stride()` depthwise averaging
  /// convolution followed by ReLU (usable without retraining).
  Result<std::vector<std::unique_ptr<Layer>>> DecomposeForDeployment(
      const Shape& input_shape) const override;

  int64_t size() const { return size_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t size_, stride_;
};

/// Average pooling. Linear (a fixed convolution).
class AvgPool2DLayer : public Layer {
 public:
  AvgPool2DLayer(int64_t size, int64_t stride);

  LayerKind kind() const override { return LayerKind::kAvgPool2D; }
  OpClass op_class() const override { return OpClass::kLinear; }
  Result<Shape> OutputShape(const Shape& in) const override;
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<AvgPool2DLayer>(size_, stride_);
  }

  int64_t size() const { return size_; }
  int64_t stride() const { return stride_; }

 private:
  int64_t size_, stride_;
};

/// Reshape to rank-1. Linear (identity on values).
class FlattenLayer : public Layer {
 public:
  LayerKind kind() const override { return LayerKind::kFlatten; }
  OpClass op_class() const override { return OpClass::kLinear; }
  Result<Shape> OutputShape(const Shape& in) const override {
    return Shape{in.NumElements()};
  }
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override {
    return in.Flatten();
  }
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override {
    return grad_out.Reshape(in.shape());
  }
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<FlattenLayer>();
  }
};

/// Mixed layer: y = sigmoid(alpha * x) with a learnable scalar alpha
/// (paper Figure 2 classifies Sigmoid-with-parameters as mixed). The
/// protocol compiler decomposes it into ScalarScale (linear, model
/// provider) + Sigmoid (non-linear, data provider).
class ScaledSigmoidLayer : public Layer {
 public:
  explicit ScaledSigmoidLayer(double alpha = 1.0);

  LayerKind kind() const override { return LayerKind::kScaledSigmoid; }
  OpClass op_class() const override { return OpClass::kMixed; }
  Result<Shape> OutputShape(const Shape& in) const override { return in; }
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void ZeroGrads() override { grad_alpha_ = 0; }
  void SgdStep(double lr, double momentum) override {
    velocity_ = momentum * velocity_ + grad_alpha_;
    alpha_ -= lr * velocity_;
  }
  int64_t ParameterCount() const override { return 1; }
  void VisitParameters(const std::function<void(double)>& fn) const override {
    fn(alpha_);
  }
  void MutateParameters(const std::function<double(double)>& fn) override {
    alpha_ = fn(alpha_);
  }
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ScaledSigmoidLayer>(alpha_);
  }
  /// Mixed-layer decomposition: ScalarScale(alpha) + Sigmoid.
  Result<std::vector<std::unique_ptr<Layer>>> DecomposeForDeployment(
      const Shape& input_shape) const override;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double grad_alpha_ = 0;
  double velocity_ = 0;
};

/// Linear primitive: y = alpha * x (element-wise, scalar parameter).
class ScalarScaleLayer : public Layer {
 public:
  explicit ScalarScaleLayer(double alpha = 1.0);

  LayerKind kind() const override { return LayerKind::kScalarScale; }
  OpClass op_class() const override { return OpClass::kLinear; }
  Result<Shape> OutputShape(const Shape& in) const override { return in; }
  Result<DoubleTensor> Forward(const DoubleTensor& in) const override;
  Result<DoubleTensor> Backward(const DoubleTensor& in,
                                const DoubleTensor& grad_out) override;
  void ZeroGrads() override { grad_alpha_ = 0; }
  void SgdStep(double lr, double momentum) override {
    velocity_ = momentum * velocity_ + grad_alpha_;
    alpha_ -= lr * velocity_;
  }
  int64_t ParameterCount() const override { return 1; }
  void VisitParameters(const std::function<void(double)>& fn) const override {
    fn(alpha_);
  }
  void MutateParameters(const std::function<double(double)>& fn) override {
    alpha_ = fn(alpha_);
  }
  void Serialize(BufferWriter* out) const override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ScalarScaleLayer>(alpha_);
  }

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double grad_alpha_ = 0;
  double velocity_ = 0;
};

}  // namespace ppstream
