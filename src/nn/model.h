// Sequential neural-network model: an ordered list of layers.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace ppstream {

/// A sequential model with a fixed input shape.
class Model {
 public:
  Model() = default;
  explicit Model(Shape input_shape, std::string name = "model")
      : input_shape_(std::move(input_shape)), name_(std::move(name)) {}

  // Movable, non-copyable (use Clone()).
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  const std::string& name() const { return name_; }
  const Shape& input_shape() const { return input_shape_; }
  size_t NumLayers() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }
  const Layer& layer(size_t i) const { return *layers_[i]; }

  /// Appends a layer; fails if its input shape is incompatible with the
  /// current output shape.
  Status Add(std::unique_ptr<Layer> layer);

  /// Shape of the model output.
  Result<Shape> OutputShape() const;

  /// Runs inference; input shape must match input_shape().
  Result<DoubleTensor> Forward(const DoubleTensor& input) const;

  /// Runs inference and returns every intermediate activation
  /// (activations[0] is the input, activations[i+1] the output of layer i).
  Result<std::vector<DoubleTensor>> ForwardWithActivations(
      const DoubleTensor& input) const;

  /// Predicted class: argmax of the final output.
  Result<int64_t> Predict(const DoubleTensor& input) const;

  /// Total learnable parameters across layers.
  int64_t ParameterCount() const;

  /// Deep copy (layer parameters included).
  Model Clone() const;

  /// Replaces every MaxPool2D with a stride-2 convolution + ReLU
  /// (paper Section III-C, following [62]); the convolution filters are
  /// fixed averaging kernels so the rewrite is usable without retraining,
  /// and may then be fine-tuned. Returns the rewritten model.
  Result<Model> ReplaceMaxPooling() const;

  void Serialize(BufferWriter* out) const;
  static Result<Model> Deserialize(BufferReader* in);

  Status SaveToFile(const std::string& path) const;
  static Result<Model> LoadFromFile(const std::string& path);

  /// One-line structural summary ("Dense(30->16) -> ReLU -> ...").
  std::string Summary() const;

 private:
  Shape input_shape_;
  std::string name_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace ppstream
