// Minibatch SGD training with backpropagation.
//
// Only needed to produce trained float models for the experiments (the
// paper trains with Matlab/PyTorch); the privacy-preserving protocol
// consumes the trained model as-is.

#pragma once

#include "nn/dataset.h"
#include "nn/model.h"
#include "util/status.h"

namespace ppstream {

struct TrainConfig {
  int epochs = 20;
  double learning_rate = 0.05;
  /// Classical momentum (0 = plain SGD).
  double momentum = 0.9;
  size_t batch_size = 16;
  /// Decays the learning rate by this factor each epoch.
  double lr_decay = 1.0;
  uint64_t shuffle_seed = 1;
  /// If true, prints per-epoch loss/accuracy at INFO level.
  bool verbose = false;
};

struct TrainStats {
  double final_loss = 0;
  double final_train_accuracy = 0;
};

/// Cross-entropy of a softmax output against an integer label.
double CrossEntropyLoss(const DoubleTensor& probs, int64_t label);

/// Trains `model` in place. The model's last layer must be SoftMax.
Result<TrainStats> TrainModel(Model* model, const Dataset& data,
                              const TrainConfig& config);

/// Fraction of samples whose Predict() matches the label — the paper's
/// accuracy metric (Section IV-A) specialises to this for single-label
/// classification.
Result<double> EvaluateAccuracy(const Model& model, const Dataset& data);

}  // namespace ppstream
