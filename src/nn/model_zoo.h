// The nine dataset/model pairs of paper Table III.
//
// Architectures follow the paper: 3FC for the tabular datasets and
// MNIST-1, 1Conv+2FC / 2Conv+2FC for MNIST-2/3, and VGG-13/16/19-style
// stacks for CIFAR-10-1/2/3. The VGG stacks keep the paper's depth pattern
// but shrink channel widths so from-scratch training fits this sandbox
// (documented substitution, DESIGN.md §2).

#pragma once

#include <string>
#include <vector>

#include "nn/dataset.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "util/status.h"

namespace ppstream {

enum class ZooModelId {
  kBreast = 0,
  kHeart = 1,
  kCardio = 2,
  kMnist1 = 3,
  kMnist2 = 4,
  kMnist3 = 5,
  kCifar1 = 6,  // VGG-13 style
  kCifar2 = 7,  // VGG-16 style
  kCifar3 = 8,  // VGG-19 style
};

/// Static description of a zoo entry (paper Table III row).
struct ZooInfo {
  ZooModelId id;
  const char* dataset_name;
  const char* architecture;     // "3FC", "1Conv+2FC", "VGG13", ...
  size_t paper_train_samples;   // Table III "# Samples"
  size_t paper_test_samples;
  int paper_model_servers;      // Table III "# Servers Model/Data"
  int paper_data_servers;
};

/// All nine entries in Table III order.
const std::vector<ZooInfo>& AllZooInfos();
const ZooInfo& GetZooInfo(ZooModelId id);

/// Synthesizes the dataset for a zoo entry. `size_scale` scales the paper's
/// sample counts (1.0 = paper-sized; benches default well below that), with
/// a floor so splits never become degenerate.
DatasetSplit MakeZooDataset(ZooModelId id, double size_scale, uint64_t seed);

/// Builds the (untrained, randomly initialized) model for a zoo entry.
Result<Model> MakeZooModel(ZooModelId id, uint64_t seed);

/// Per-entry training hyperparameters tuned for the synthetic datasets.
TrainConfig DefaultTrainConfig(ZooModelId id);

/// Convenience: build + train in one call.
Result<Model> MakeTrainedZooModel(ZooModelId id, const Dataset& train,
                                  uint64_t seed);

}  // namespace ppstream
