// Plaintext tensor kernels: matmul, 2-d convolution, pooling, activations.
//
// Layout conventions:
//  * images are CHW ({channels, height, width});
//  * convolution filters are {out_channels, in_channels, kh, kw};
//  * dense weights are {out_features, in_features}.

#pragma once

#include "tensor/tensor.h"
#include "util/status.h"

namespace ppstream {

/// Parameters of a 2-d convolution (shared by plaintext and encrypted
/// execution paths, and by the tensor-partitioning planner).
struct Conv2DGeometry {
  int64_t in_channels = 0;
  int64_t in_height = 0;
  int64_t in_width = 0;
  int64_t out_channels = 0;
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t padding = 0;

  int64_t out_height() const {
    return (in_height + 2 * padding - kernel_h) / stride + 1;
  }
  int64_t out_width() const {
    return (in_width + 2 * padding - kernel_w) / stride + 1;
  }
  Shape OutputShape() const {
    return Shape{out_channels, out_height(), out_width()};
  }

  /// Validates that the geometry is internally consistent and produces a
  /// non-empty output.
  Status Validate() const;
};

/// out[i][j] = sum_k a[i][k] * b[k][j]; a is {m, k}, b is {k, n}.
Result<DoubleTensor> MatMul(const DoubleTensor& a, const DoubleTensor& b);

/// y = W x + b; W is {out, in}, x is rank-1 {in}, b is rank-1 {out}.
Result<DoubleTensor> DenseForward(const DoubleTensor& weights,
                                  const DoubleTensor& bias,
                                  const DoubleTensor& x);

/// 2-d convolution with the geometry above; input {C,H,W},
/// filters {OC,C,kh,kw}, bias rank-1 {OC}.
Result<DoubleTensor> Conv2DForward(const Conv2DGeometry& geom,
                                   const DoubleTensor& filters,
                                   const DoubleTensor& bias,
                                   const DoubleTensor& input);

/// Max pooling with square window `size` and stride `stride`; input {C,H,W}.
Result<DoubleTensor> MaxPool2D(const DoubleTensor& input, int64_t size,
                               int64_t stride);

/// Average pooling, same conventions as MaxPool2D.
Result<DoubleTensor> AvgPool2D(const DoubleTensor& input, int64_t size,
                               int64_t stride);

/// Element-wise ReLU.
DoubleTensor Relu(const DoubleTensor& x);
/// Element-wise logistic sigmoid.
DoubleTensor Sigmoid(const DoubleTensor& x);
/// Numerically stable softmax over the whole (flattened) tensor.
DoubleTensor Softmax(const DoubleTensor& x);

/// Element-wise a + b (shapes must match).
Result<DoubleTensor> Add(const DoubleTensor& a, const DoubleTensor& b);
/// Element-wise scalar multiply.
DoubleTensor Scale(const DoubleTensor& a, double s);

/// Index of the maximum element (ties broken toward the lower index).
int64_t ArgMax(const DoubleTensor& x);

}  // namespace ppstream
