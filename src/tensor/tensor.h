// Generic N-dimensional tensor over an arbitrary element type.
//
// Instantiated with double (plaintext inference/training), int64_t (scaled
// fixed-point values), BigInt (encoded plaintexts) and Ciphertext
// (Paillier-encrypted tensors flowing through the protocol).

#pragma once

#include <utility>
#include <vector>

#include "tensor/shape.h"
#include "util/logging.h"

namespace ppstream {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  /// Default-initialized elements (0 for arithmetic types).
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.NumElements())) {}

  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    PPS_CHECK_EQ(static_cast<size_t>(shape_.NumElements()), data_.size());
  }

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return shape_.NumElements(); }

  /// Flat (lexicographic) element access.
  T& operator[](int64_t i) {
    PPS_CHECK_GE(i, 0);
    PPS_CHECK_LT(i, static_cast<int64_t>(data_.size()));
    return data_[static_cast<size_t>(i)];
  }
  const T& operator[](int64_t i) const {
    PPS_CHECK_GE(i, 0);
    PPS_CHECK_LT(i, static_cast<int64_t>(data_.size()));
    return data_[static_cast<size_t>(i)];
  }

  /// Multi-index access.
  T& At(const std::vector<int64_t>& index) {
    return data_[static_cast<size_t>(shape_.FlatIndex(index))];
  }
  const T& At(const std::vector<int64_t>& index) const {
    return data_[static_cast<size_t>(shape_.FlatIndex(index))];
  }

  std::vector<T>& data() { return data_; }
  const std::vector<T>& data() const { return data_; }

  /// Same elements, different shape; element count must match.
  Tensor<T> Reshape(Shape new_shape) const {
    PPS_CHECK_EQ(new_shape.NumElements(), shape_.NumElements());
    return Tensor<T>(std::move(new_shape), data_);
  }

  /// Rank-1 view of the whole tensor (the paper's reshape-to-vector).
  Tensor<T> Flatten() const { return Reshape(Shape{shape_.NumElements()}); }

  /// Element-wise transform into a tensor of possibly different type.
  template <typename U, typename Fn>
  Tensor<U> Map(Fn&& fn) const {
    Tensor<U> out{shape_};
    for (size_t i = 0; i < data_.size(); ++i) out.data()[i] = fn(data_[i]);
    return out;
  }

  bool operator==(const Tensor<T>& o) const {
    return shape_ == o.shape_ && data_ == o.data_;
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using DoubleTensor = Tensor<double>;
using Int64Tensor = Tensor<int64_t>;

}  // namespace ppstream
