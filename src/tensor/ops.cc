#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ppstream {

Status Conv2DGeometry::Validate() const {
  if (in_channels <= 0 || in_height <= 0 || in_width <= 0 ||
      out_channels <= 0 || kernel_h <= 0 || kernel_w <= 0) {
    return Status::InvalidArgument("conv geometry has non-positive dims");
  }
  if (stride <= 0) return Status::InvalidArgument("stride must be positive");
  if (padding < 0) {
    return Status::InvalidArgument("padding must be non-negative");
  }
  if (out_height() <= 0 || out_width() <= 0) {
    return Status::InvalidArgument(
        internal::StrCat("conv output is empty: ", out_height(), "x",
                         out_width()));
  }
  return Status::OK();
}

Result<DoubleTensor> MatMul(const DoubleTensor& a, const DoubleTensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    return Status::InvalidArgument("MatMul expects rank-2 tensors");
  }
  const int64_t m = a.shape().dim(0), k = a.shape().dim(1);
  const int64_t k2 = b.shape().dim(0), n = b.shape().dim(1);
  if (k != k2) {
    return Status::InvalidArgument(
        internal::StrCat("MatMul inner dims mismatch: ", k, " vs ", k2));
  }
  DoubleTensor out{Shape{m, n}};
  // ikj loop order: streams through b row-wise for cache friendliness.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const double aik = a[i * k + kk];
      if (aik == 0.0) continue;
      for (int64_t j = 0; j < n; ++j) {
        out[i * n + j] += aik * b[kk * n + j];
      }
    }
  }
  return out;
}

Result<DoubleTensor> DenseForward(const DoubleTensor& weights,
                                  const DoubleTensor& bias,
                                  const DoubleTensor& x) {
  if (weights.shape().rank() != 2) {
    return Status::InvalidArgument("dense weights must be rank-2");
  }
  const int64_t out_f = weights.shape().dim(0);
  const int64_t in_f = weights.shape().dim(1);
  if (x.NumElements() != in_f) {
    return Status::InvalidArgument(
        internal::StrCat("dense input size ", x.NumElements(),
                         " != in_features ", in_f));
  }
  if (bias.NumElements() != out_f) {
    return Status::InvalidArgument("dense bias size mismatch");
  }
  DoubleTensor out{Shape{out_f}};
  for (int64_t o = 0; o < out_f; ++o) {
    double acc = bias[o];
    const int64_t base = o * in_f;
    for (int64_t i = 0; i < in_f; ++i) acc += weights[base + i] * x[i];
    out[o] = acc;
  }
  return out;
}

Result<DoubleTensor> Conv2DForward(const Conv2DGeometry& geom,
                                   const DoubleTensor& filters,
                                   const DoubleTensor& bias,
                                   const DoubleTensor& input) {
  PPS_RETURN_IF_ERROR(geom.Validate());
  const Shape expect_in{geom.in_channels, geom.in_height, geom.in_width};
  if (input.shape() != expect_in) {
    return Status::InvalidArgument(
        internal::StrCat("conv input shape ", input.shape().ToString(),
                         " != expected ", expect_in.ToString()));
  }
  const Shape expect_f{geom.out_channels, geom.in_channels, geom.kernel_h,
                       geom.kernel_w};
  if (filters.shape() != expect_f) {
    return Status::InvalidArgument(
        internal::StrCat("conv filter shape ", filters.shape().ToString(),
                         " != expected ", expect_f.ToString()));
  }
  if (bias.NumElements() != geom.out_channels) {
    return Status::InvalidArgument("conv bias size mismatch");
  }

  const int64_t oh = geom.out_height(), ow = geom.out_width();
  DoubleTensor out{Shape{geom.out_channels, oh, ow}};
  const int64_t h = geom.in_height, w = geom.in_width;
  for (int64_t oc = 0; oc < geom.out_channels; ++oc) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        double acc = bias[oc];
        const int64_t iy0 = oy * geom.stride - geom.padding;
        const int64_t ix0 = ox * geom.stride - geom.padding;
        for (int64_t ic = 0; ic < geom.in_channels; ++ic) {
          for (int64_t ky = 0; ky < geom.kernel_h; ++ky) {
            const int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            for (int64_t kx = 0; kx < geom.kernel_w; ++kx) {
              const int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              acc += filters[((oc * geom.in_channels + ic) * geom.kernel_h +
                              ky) *
                                 geom.kernel_w +
                             kx] *
                     input[(ic * h + iy) * w + ix];
            }
          }
        }
        out[(oc * oh + oy) * ow + ox] = acc;
      }
    }
  }
  return out;
}

namespace {

Result<DoubleTensor> Pool2D(const DoubleTensor& input, int64_t size,
                            int64_t stride, bool is_max) {
  if (input.shape().rank() != 3) {
    return Status::InvalidArgument("pooling expects a CHW tensor");
  }
  if (size <= 0 || stride <= 0) {
    return Status::InvalidArgument("pool size/stride must be positive");
  }
  const int64_t c = input.shape().dim(0);
  const int64_t h = input.shape().dim(1);
  const int64_t w = input.shape().dim(2);
  if (size > h || size > w) {
    return Status::InvalidArgument("pool window exceeds input");
  }
  const int64_t oh = (h - size) / stride + 1;
  const int64_t ow = (w - size) / stride + 1;
  DoubleTensor out{Shape{c, oh, ow}};
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        double acc = is_max ? -std::numeric_limits<double>::infinity() : 0.0;
        for (int64_t ky = 0; ky < size; ++ky) {
          for (int64_t kx = 0; kx < size; ++kx) {
            const double v =
                input[(ch * h + oy * stride + ky) * w + ox * stride + kx];
            if (is_max) {
              acc = std::max(acc, v);
            } else {
              acc += v;
            }
          }
        }
        out[(ch * oh + oy) * ow + ox] =
            is_max ? acc : acc / static_cast<double>(size * size);
      }
    }
  }
  return out;
}

}  // namespace

Result<DoubleTensor> MaxPool2D(const DoubleTensor& input, int64_t size,
                               int64_t stride) {
  return Pool2D(input, size, stride, /*is_max=*/true);
}

Result<DoubleTensor> AvgPool2D(const DoubleTensor& input, int64_t size,
                               int64_t stride) {
  return Pool2D(input, size, stride, /*is_max=*/false);
}

DoubleTensor Relu(const DoubleTensor& x) {
  return x.Map<double>([](double v) { return v > 0 ? v : 0.0; });
}

DoubleTensor Sigmoid(const DoubleTensor& x) {
  return x.Map<double>([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
}

DoubleTensor Softmax(const DoubleTensor& x) {
  double max_v = -std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < x.NumElements(); ++i) max_v = std::max(max_v, x[i]);
  DoubleTensor out{x.shape()};
  double sum = 0.0;
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    out[i] = std::exp(x[i] - max_v);
    sum += out[i];
  }
  for (int64_t i = 0; i < x.NumElements(); ++i) out[i] /= sum;
  return out;
}

Result<DoubleTensor> Add(const DoubleTensor& a, const DoubleTensor& b) {
  if (a.shape() != b.shape()) {
    return Status::InvalidArgument("Add shape mismatch");
  }
  DoubleTensor out{a.shape()};
  for (int64_t i = 0; i < a.NumElements(); ++i) out[i] = a[i] + b[i];
  return out;
}

DoubleTensor Scale(const DoubleTensor& a, double s) {
  return a.Map<double>([s](double v) { return v * s; });
}

int64_t ArgMax(const DoubleTensor& x) {
  PPS_CHECK_GT(x.NumElements(), 0);
  int64_t best = 0;
  for (int64_t i = 1; i < x.NumElements(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace ppstream
