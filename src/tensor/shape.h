// Tensor shapes: dimension lists with row-major (lexicographic) layout.

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/logging.h"

namespace ppstream {

/// An N-dimensional extent. Row-major: the last dimension varies fastest,
/// which makes the flat buffer exactly the paper's "lexicographic order"
/// vector used for obfuscation (Section III-C).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  size_t rank() const { return dims_.size(); }
  int64_t dim(size_t i) const {
    PPS_CHECK_LT(i, dims_.size());
    return dims_[i];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Product of all dimensions (1 for a scalar / rank-0 shape).
  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  /// Flat offset of a multi-index (row-major).
  int64_t FlatIndex(const std::vector<int64_t>& index) const {
    PPS_CHECK_EQ(index.size(), dims_.size());
    int64_t flat = 0;
    for (size_t i = 0; i < dims_.size(); ++i) {
      PPS_CHECK_GE(index[i], 0);
      PPS_CHECK_LT(index[i], dims_[i]);
      flat = flat * dims_[i] + index[i];
    }
    return flat;
  }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return dims_ != o.dims_; }

  /// "[2, 3, 4]"
  std::string ToString() const {
    std::string out = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void Validate() const {
    for (int64_t d : dims_) PPS_CHECK_GT(d, 0) << "dims must be positive";
  }

  std::vector<int64_t> dims_;
};

}  // namespace ppstream
