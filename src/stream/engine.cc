#include "stream/engine.h"

#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {

size_t NumPipelineStages(const InferencePlan& plan) {
  return 2 * plan.NumRounds() + 1;
}

PpStreamEngine::PpStreamEngine(std::shared_ptr<ModelProviderApi> mp,
                               std::shared_ptr<DataProviderApi> dp,
                               EngineConfig config)
    : mp_(std::move(mp)),
      dp_(std::move(dp)),
      config_(std::move(config)),
      pipeline_(config_.channel_capacity) {
  PPS_CHECK(mp_ != nullptr && dp_ != nullptr);
}

Status PpStreamEngine::Start() {
  if (started_) return Status::FailedPrecondition("engine already started");
  const InferencePlan& plan = mp_->plan();
  const size_t num_stages = NumPipelineStages(plan);
  std::vector<size_t> threads = config_.stage_threads;
  if (threads.empty()) threads.assign(num_stages, 1);
  if (threads.size() != num_stages) {
    return Status::InvalidArgument(internal::StrCat(
        "stage_threads has ", threads.size(), " entries; plan needs ",
        num_stages));
  }

  const size_t rounds = plan.NumRounds();
  auto mp = mp_;
  auto dp = dp_;
  const bool partition = config_.tensor_partitioning;

  // Stage 0: data provider encrypts the raw input.
  const RetryPolicy retries =
      config_.retry_policy.has_value()
          ? *config_.retry_policy
          : RetryPolicy::FromMaxRetries(config_.max_retries);
  if (config_.fault_injector != nullptr) {
    mp_->SetFaultInjector(config_.fault_injector);
    dp_->SetFaultInjector(config_.fault_injector);
    pipeline_.SetFaultInjector(config_.fault_injector);
  }
  pipeline_.AddStage(std::make_unique<Stage>(
      "dp-encrypt", threads[0],
      [dp](StreamMessage msg, ThreadPool& pool) -> Result<StreamMessage> {
        PPS_ASSIGN_OR_RETURN(DoubleTensor input,
                             DeserializeDoubleTensor(msg.payload));
        PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> enc,
                             dp->EncryptInputParallel(input, &pool));
        msg.payload = SerializeCiphertexts(enc);
        return msg;
      },
      retries));

  for (size_t r = 0; r < rounds; ++r) {
    // Model-provider stage for round r.
    pipeline_.AddStage(std::make_unique<Stage>(
        internal::StrCat("mp-linear-", r), threads[2 * r + 1],
        [mp, r, rounds, partition](StreamMessage msg, ThreadPool& pool)
            -> Result<StreamMessage> {
          PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> tensor,
                               DeserializeCiphertexts(msg.payload));
          if (r > 0) {
            PPS_ASSIGN_OR_RETURN(
                tensor,
                mp->InverseObfuscate(msg.request_id, r, std::move(tensor)));
          }
          PPS_ASSIGN_OR_RETURN(
              tensor, mp->ApplyLinearStage(r, tensor, &pool, partition));
          if (r + 1 < rounds) {
            PPS_ASSIGN_OR_RETURN(
                tensor, mp->Obfuscate(msg.request_id, r, std::move(tensor)));
          }
          msg.payload = SerializeCiphertexts(tensor);
          return msg;
        },
        retries));

    // Data-provider stage for round r.
    if (r + 1 < rounds) {
      pipeline_.AddStage(std::make_unique<Stage>(
          internal::StrCat("dp-nonlinear-", r), threads[2 * r + 2],
          [dp, r](StreamMessage msg, ThreadPool& pool)
              -> Result<StreamMessage> {
            PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> tensor,
                                 DeserializeCiphertexts(msg.payload));
            PPS_ASSIGN_OR_RETURN(
                tensor,
                dp->ProcessIntermediate(r, tensor, nullptr, &pool));
            msg.payload = SerializeCiphertexts(tensor);
            return msg;
          },
          retries));
    } else {
      pipeline_.AddStage(std::make_unique<Stage>(
          "dp-final", threads[2 * r + 2],
          [dp, mp](StreamMessage msg, ThreadPool& pool)
              -> Result<StreamMessage> {
            PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> tensor,
                                 DeserializeCiphertexts(msg.payload));
            PPS_ASSIGN_OR_RETURN(DoubleTensor result,
                                 dp->ProcessFinal(tensor, &pool));
            // Completion ACK: the model provider may drop this request's
            // obfuscation state. A failed release (e.g. a lost frame on a
            // remote transport) must not fail the finished inference.
            (void)mp->ReleaseRequestState(msg.request_id);
            msg.payload = SerializeDoubleTensor(result);
            return msg;
          },
          retries));
    }
  }

  PPS_RETURN_IF_ERROR(pipeline_.Start());
  started_ = true;
  PPS_SLOG(Debug, "engine.start")
      .Kv("stages", num_stages)
      .Kv("rounds", rounds);
  return Status::OK();
}

Status PpStreamEngine::Submit(uint64_t request_id,
                              const DoubleTensor& input) {
  StreamMessage msg;
  msg.request_id = request_id;
  msg.payload = SerializeDoubleTensor(input);
  msg.submit_time_seconds = StreamClockSeconds();
  obs::Tracer& tracer = obs::Tracer::Global();
  if (tracer.enabled()) {
    // Root the request's trace here; every stage span (and, over the wire,
    // every server-side rpc span) parents under this pair. The root span
    // record itself is emitted in NextResult when the duration is known.
    msg.trace_id = tracer.NewTraceId();
    msg.root_span_id = tracer.NewSpanId();
  }
  return pipeline_.Feed(std::move(msg));
}

Result<InferenceResult> PpStreamEngine::NextResult() {
  std::optional<StreamMessage> msg = pipeline_.NextResult();
  if (!msg.has_value()) {
    return Status::FailedPrecondition("pipeline drained");
  }
  if (msg->trace_id != 0) {
    // Close the request's root span now that the tail reached us.
    obs::SpanRecord root;
    root.trace_id = msg->trace_id;
    root.span_id = msg->root_span_id;
    root.parent_span_id = 0;
    root.name = "request";
    root.category = "request";
    root.request_id = msg->request_id;
    root.start_seconds = msg->submit_time_seconds;
    root.duration_seconds =
        obs::MonotonicSeconds() - msg->submit_time_seconds;
    obs::Tracer::Global().Record(std::move(root));
  }
  if (msg->poisoned()) {
    // The request died mid-pipeline; drop the model provider's per-request
    // obfuscation state (the success path releases it in dp-final).
    (void)mp_->ReleaseRequestState(msg->request_id);
    return Status(msg->status.code(),
                  internal::StrCat("request ", msg->request_id,
                                   " failed at stage ", msg->failed_stage,
                                   ": ", msg->status.message()));
  }
  InferenceResult result;
  result.request_id = msg->request_id;
  PPS_ASSIGN_OR_RETURN(result.output, DeserializeDoubleTensor(msg->payload));
  return result;
}

void PpStreamEngine::Shutdown() {
  pipeline_.Shutdown();
  PPS_SLOG(Debug, "engine.shutdown");
}

}  // namespace ppstream
