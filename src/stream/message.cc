#include "stream/message.h"

namespace ppstream {

std::vector<uint8_t> SerializeCiphertexts(const std::vector<Ciphertext>& v) {
  BufferWriter writer;
  WriteCiphertexts(&writer, v);
  return writer.TakeBytes();
}

Result<std::vector<Ciphertext>> DeserializeCiphertexts(
    const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes);
  PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> out, ReadCiphertexts(&reader));
  if (!reader.AtEnd()) {
    return Status::OutOfRange("trailing bytes after ciphertext vector");
  }
  return out;
}

void WriteCiphertexts(BufferWriter* out, const std::vector<Ciphertext>& v) {
  out->WriteU64(v.size());
  for (const Ciphertext& c : v) c.Serialize(out);
}

Result<std::vector<Ciphertext>> ReadCiphertexts(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint64_t count, in->ReadU64());
  if (count > (1ULL << 28)) {
    return Status::OutOfRange("implausible ciphertext count");
  }
  std::vector<Ciphertext> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PPS_ASSIGN_OR_RETURN(Ciphertext c, Ciphertext::Deserialize(in));
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<uint8_t> SerializeDoubleTensor(const DoubleTensor& t) {
  BufferWriter writer;
  writer.WriteU64(t.shape().rank());
  for (int64_t d : t.shape().dims()) writer.WriteI64(d);
  for (int64_t i = 0; i < t.NumElements(); ++i) writer.WriteDouble(t[i]);
  return writer.TakeBytes();
}

Result<DoubleTensor> DeserializeDoubleTensor(
    const std::vector<uint8_t>& bytes) {
  BufferReader reader(bytes);
  PPS_ASSIGN_OR_RETURN(uint64_t rank, reader.ReadU64());
  if (rank > 8) return Status::OutOfRange("implausible tensor rank");
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) {
    PPS_ASSIGN_OR_RETURN(d, reader.ReadI64());
    if (d <= 0) return Status::OutOfRange("non-positive dim");
  }
  Shape shape(std::move(dims));
  DoubleTensor out{shape};
  for (int64_t i = 0; i < out.NumElements(); ++i) {
    PPS_ASSIGN_OR_RETURN(out[i], reader.ReadDouble());
  }
  return out;
}

}  // namespace ppstream
