#include "stream/stage.h"

#include <chrono>
#include <functional>

#include "util/logging.h"

namespace ppstream {

Stage::Stage(std::string name, size_t num_threads, ProcessFn fn,
             RetryPolicy retry_policy)
    : name_(std::move(name)),
      pool_(std::max<size_t>(1, num_threads)),
      fn_(std::move(fn)),
      retry_(retry_policy),
      backoff_rng_(0x5746A6EULL ^ std::hash<std::string>{}(name_)) {}

Result<StreamMessage> Stage::Attempt(const StreamMessage& msg) {
  if (fault_ != nullptr && fault_->enabled()) {
    const std::string site = internal::StrCat("stage.", name_);
    PPS_RETURN_IF_ERROR(fault_->Fail(site));
    StreamMessage copy = msg;  // corrupt a copy so retries see clean bytes
    if (fault_->Corrupt(site, copy.payload)) {
      return fn_(std::move(copy), pool_);
    }
  }
  return fn_(msg, pool_);
}

Result<StreamMessage> Stage::ProcessWithRetries(const StreamMessage& msg) {
  const bool has_deadline =
      retry_.deadline_seconds > 0 && msg.submit_time_seconds > 0;
  const double deadline = msg.submit_time_seconds + retry_.deadline_seconds;
  for (int attempt = 0;; ++attempt) {
    if (has_deadline && StreamClockSeconds() > deadline) {
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(internal::StrCat(
          "request ", msg.request_id, " exceeded its ",
          retry_.deadline_seconds, "s deadline after ", attempt,
          " attempt(s)"));
    }
    WallTimer timer;
    Result<StreamMessage> result = Attempt(msg);
    counters_.busy_seconds.fetch_add(timer.ElapsedSeconds(),
                                     std::memory_order_relaxed);
    if (result.ok() || attempt >= retry_.max_retries) return result;
    counters_.retries.fetch_add(1, std::memory_order_relaxed);
    PPS_LOG(Warn) << "stage " << name_ << " retrying request "
                  << msg.request_id << " (attempt " << attempt + 2 << "/"
                  << retry_.max_retries + 1
                  << "): " << result.status().ToString();
    const double backoff = retry_.BackoffSeconds(attempt + 1, backoff_rng_);
    if (backoff > 0) {
      if (has_deadline && StreamClockSeconds() + backoff > deadline) {
        counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
        return Status::DeadlineExceeded(internal::StrCat(
            "request ", msg.request_id, " would exceed its ",
            retry_.deadline_seconds, "s deadline during backoff; last error: ",
            result.status().ToString()));
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

void Stage::Start(Channel<StreamMessage>* in, Channel<StreamMessage>* out) {
  PPS_CHECK(in != nullptr);
  PPS_CHECK(!consumer_.joinable()) << "stage already started";
  consumer_ = std::thread([this, in, out] {
    while (true) {
      std::optional<StreamMessage> msg = in->Recv();
      if (!msg.has_value()) break;
      if (msg->poisoned()) {
        // Tombstone from an upstream stage: forward as-is.
        counters_.poisoned_forwarded.fetch_add(1, std::memory_order_relaxed);
        if (out != nullptr) {
          if (!out->Send(std::move(*msg))) break;
        }
        continue;
      }
      counters_.bytes_in.fetch_add(msg->ByteSize(),
                                   std::memory_order_relaxed);
      Result<StreamMessage> result = ProcessWithRetries(*msg);
      counters_.messages_processed.fetch_add(1, std::memory_order_relaxed);
      if (!result.ok()) {
        counters_.errors.fetch_add(1, std::memory_order_relaxed);
        PPS_LOG(Error) << "stage " << name_ << " failed request "
                       << msg->request_id << ": "
                       << result.status().ToString();
        msg->Poison(name_, result.status());
        if (out != nullptr) {
          if (!out->Send(std::move(*msg))) break;
        }
        continue;
      }
      counters_.bytes_out.fetch_add(result.value().ByteSize(),
                                    std::memory_order_relaxed);
      if (out != nullptr) {
        if (!out->Send(std::move(result).value())) break;
      }
    }
    if (out != nullptr) out->Close();
  });
}

void Stage::Join() {
  if (consumer_.joinable()) consumer_.join();
}

StageMetrics Stage::metrics() const {
  StageMetrics snapshot;
  snapshot.messages_processed =
      counters_.messages_processed.load(std::memory_order_relaxed);
  snapshot.errors = counters_.errors.load(std::memory_order_relaxed);
  snapshot.retries = counters_.retries.load(std::memory_order_relaxed);
  snapshot.poisoned_forwarded =
      counters_.poisoned_forwarded.load(std::memory_order_relaxed);
  snapshot.deadline_exceeded =
      counters_.deadline_exceeded.load(std::memory_order_relaxed);
  snapshot.busy_seconds =
      counters_.busy_seconds.load(std::memory_order_relaxed);
  snapshot.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  snapshot.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace ppstream
