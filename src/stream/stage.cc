#include "stream/stage.h"

#include <chrono>
#include <functional>

#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {

Stage::Stage(std::string name, size_t num_threads, ProcessFn fn,
             RetryPolicy retry_policy)
    : name_(std::move(name)),
      pool_(std::max<size_t>(1, num_threads)),
      fn_(std::move(fn)),
      retry_(retry_policy),
      backoff_rng_(0x5746A6EULL ^ std::hash<std::string>{}(name_)),
      span_name_(internal::StrCat("stage.", name_)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string prefix = span_name_ + ".";
  counters_.messages_processed = registry.GetCounter(prefix + "messages");
  counters_.errors = registry.GetCounter(prefix + "errors");
  counters_.retries = registry.GetCounter(prefix + "retries");
  counters_.poisoned_forwarded =
      registry.GetCounter(prefix + "poisoned_forwarded");
  counters_.deadline_exceeded =
      registry.GetCounter(prefix + "deadline_exceeded");
  counters_.bytes_in = registry.GetCounter(prefix + "bytes_in");
  counters_.bytes_out = registry.GetCounter(prefix + "bytes_out");
  counters_.attempt_seconds = registry.GetHistogram(prefix + "attempt_seconds");
  baseline_ = RegistryTotals();
}

Result<StreamMessage> Stage::Attempt(const StreamMessage& msg) {
  if (fault_ != nullptr && fault_->enabled()) {
    PPS_RETURN_IF_ERROR(fault_->Fail(span_name_));
    StreamMessage copy = msg;  // corrupt a copy so retries see clean bytes
    if (fault_->Corrupt(span_name_, copy.payload)) {
      return fn_(std::move(copy), pool_);
    }
  }
  return fn_(msg, pool_);
}

Result<StreamMessage> Stage::ProcessWithRetries(const StreamMessage& msg) {
  const bool has_deadline =
      retry_.deadline_seconds > 0 && msg.submit_time_seconds > 0;
  const double deadline = msg.submit_time_seconds + retry_.deadline_seconds;
  for (int attempt = 0;; ++attempt) {
    if (has_deadline && StreamClockSeconds() > deadline) {
      counters_.deadline_exceeded->Increment();
      return Status::DeadlineExceeded(internal::StrCat(
          "request ", msg.request_id, " exceeded its ",
          retry_.deadline_seconds, "s deadline after ", attempt,
          " attempt(s)"));
    }
    WallTimer timer;
    Result<StreamMessage> result = Attempt(msg);
    counters_.attempt_seconds->Record(timer.ElapsedSeconds());
    if (result.ok() || attempt >= retry_.max_retries) return result;
    counters_.retries->Increment();
    PPS_SLOG(Warn, "stage.retry")
        .Kv("stage", name_)
        .Kv("request", msg.request_id)
        .Kv("attempt", attempt + 2)
        .Kv("max_attempts", retry_.max_retries + 1)
        .Kv("error", result.status().ToString());
    const double backoff = retry_.BackoffSeconds(attempt + 1, backoff_rng_);
    if (backoff > 0) {
      if (has_deadline && StreamClockSeconds() + backoff > deadline) {
        counters_.deadline_exceeded->Increment();
        return Status::DeadlineExceeded(internal::StrCat(
            "request ", msg.request_id, " would exceed its ",
            retry_.deadline_seconds, "s deadline during backoff; last error: ",
            result.status().ToString()));
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

void Stage::Start(Channel<StreamMessage>* in, Channel<StreamMessage>* out) {
  PPS_CHECK(in != nullptr);
  PPS_CHECK(!consumer_.joinable()) << "stage already started";
  consumer_ = std::thread([this, in, out] {
    while (true) {
      std::optional<StreamMessage> msg = in->Recv();
      if (!msg.has_value()) break;
      if (msg->poisoned()) {
        // Tombstone from an upstream stage: forward as-is.
        counters_.poisoned_forwarded->Increment();
        if (out != nullptr) {
          if (!out->Send(std::move(*msg))) break;
        }
        continue;
      }
      counters_.bytes_in->Increment(msg->ByteSize());
      // Parent the stage's work under the request's root span (no-op when
      // the message is untraced or tracing is off).
      obs::ScopedSpan span(
          obs::TraceContext{msg->trace_id, msg->root_span_id}, span_name_,
          "stage", msg->request_id);
      Result<StreamMessage> result = ProcessWithRetries(*msg);
      counters_.messages_processed->Increment();
      if (!result.ok()) {
        counters_.errors->Increment();
        PPS_SLOG(Error, "stage.failed")
            .Kv("stage", name_)
            .Kv("request", msg->request_id)
            .Kv("error", result.status().ToString());
        msg->Poison(name_, result.status());
        if (out != nullptr) {
          if (!out->Send(std::move(*msg))) break;
        }
        continue;
      }
      counters_.bytes_out->Increment(result.value().ByteSize());
      if (out != nullptr) {
        if (!out->Send(std::move(result).value())) break;
      }
    }
    if (out != nullptr) out->Close();
  });
}

void Stage::Join() {
  if (consumer_.joinable()) consumer_.join();
}

StageMetrics Stage::RegistryTotals() const {
  StageMetrics totals;
  totals.messages_processed = counters_.messages_processed->Value();
  totals.errors = counters_.errors->Value();
  totals.retries = counters_.retries->Value();
  totals.poisoned_forwarded = counters_.poisoned_forwarded->Value();
  totals.deadline_exceeded = counters_.deadline_exceeded->Value();
  totals.busy_seconds = counters_.attempt_seconds->Sum();
  totals.bytes_in = counters_.bytes_in->Value();
  totals.bytes_out = counters_.bytes_out->Value();
  return totals;
}

StageMetrics Stage::metrics() const {
  const StageMetrics now = RegistryTotals();
  StageMetrics delta;
  delta.messages_processed =
      now.messages_processed - baseline_.messages_processed;
  delta.errors = now.errors - baseline_.errors;
  delta.retries = now.retries - baseline_.retries;
  delta.poisoned_forwarded =
      now.poisoned_forwarded - baseline_.poisoned_forwarded;
  delta.deadline_exceeded =
      now.deadline_exceeded - baseline_.deadline_exceeded;
  delta.busy_seconds = now.busy_seconds - baseline_.busy_seconds;
  delta.bytes_in = now.bytes_in - baseline_.bytes_in;
  delta.bytes_out = now.bytes_out - baseline_.bytes_out;
  return delta;
}

}  // namespace ppstream
