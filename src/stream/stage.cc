#include "stream/stage.h"

#include "util/logging.h"

namespace ppstream {

Stage::Stage(std::string name, size_t num_threads, ProcessFn fn,
             int max_retries)
    : name_(std::move(name)),
      pool_(std::max<size_t>(1, num_threads)),
      fn_(std::move(fn)),
      max_retries_(max_retries) {}

void Stage::Start(Channel<StreamMessage>* in, Channel<StreamMessage>* out) {
  PPS_CHECK(in != nullptr);
  PPS_CHECK(!consumer_.joinable()) << "stage already started";
  consumer_ = std::thread([this, in, out] {
    while (true) {
      std::optional<StreamMessage> msg = in->Recv();
      if (!msg.has_value()) break;
      metrics_.bytes_in += msg->ByteSize();
      WallTimer timer;
      Result<StreamMessage> result = fn_(*msg, pool_);
      for (int attempt = 0; attempt < max_retries_ && !result.ok();
           ++attempt) {
        ++metrics_.retries;
        PPS_LOG(Warn) << "stage " << name_ << " retrying request "
                      << msg->request_id << ": "
                      << result.status().ToString();
        result = fn_(*msg, pool_);
      }
      metrics_.busy_seconds += timer.ElapsedSeconds();
      ++metrics_.messages_processed;
      if (!result.ok()) {
        ++metrics_.errors;
        PPS_LOG(Error) << "stage " << name_
                       << " failed: " << result.status().ToString();
        continue;  // drop the request; the pipeline stays alive
      }
      metrics_.bytes_out += result.value().ByteSize();
      if (out != nullptr) {
        if (!out->Send(std::move(result).value())) break;
      }
    }
    if (out != nullptr) out->Close();
  });
}

void Stage::Join() {
  if (consumer_.joinable()) consumer_.join();
}

}  // namespace ppstream
