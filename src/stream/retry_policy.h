// Retry policy for stage re-execution (AF-Stream-style at-least-once).
//
// The seed runtime retried failing messages immediately and without bound
// on attempt spacing; under correlated faults (an overloaded provider, a
// flaky link) immediate retries just hammer the failing dependency. The
// policy below spaces re-executions with capped exponential backoff plus
// decorrelating jitter, and bounds the total time a request may spend being
// retried via a per-request deadline measured from submission.

#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace ppstream {

struct RetryPolicy {
  /// Extra executions after the first failed attempt (0 = fail fast).
  int max_retries = 1;
  /// Backoff before the first retry. 0 keeps the seed's immediate-retry
  /// behaviour.
  double initial_backoff_seconds = 0;
  /// Backoff growth per retry (exponential).
  double backoff_multiplier = 2.0;
  /// Upper bound on a single backoff sleep.
  double max_backoff_seconds = 0.050;
  /// Fraction of the backoff randomized away: the sleep is drawn uniformly
  /// from [b * (1 - jitter), b], decorrelating retry storms across stages.
  double jitter = 0.5;
  /// Wall-clock budget per request measured from Submit(); once exceeded
  /// the request is failed (DeadlineExceeded) instead of retried further.
  /// 0 disables the deadline.
  double deadline_seconds = 0;

  /// Compatibility shim for the old `EngineConfig::max_retries` knob:
  /// immediate retries, no deadline — the seed semantics.
  static RetryPolicy FromMaxRetries(int max_retries) {
    RetryPolicy policy;
    policy.max_retries = max_retries;
    policy.initial_backoff_seconds = 0;
    return policy;
  }

  /// Backoff before retry number `retry` (1-based), jittered via `rng`.
  double BackoffSeconds(int retry, Rng& rng) const {
    if (initial_backoff_seconds <= 0) return 0;
    double backoff = initial_backoff_seconds;
    for (int i = 1; i < retry; ++i) backoff *= backoff_multiplier;
    backoff = std::min(backoff, max_backoff_seconds);
    const double j = std::clamp(jitter, 0.0, 1.0);
    return backoff * (1.0 - j * rng.NextDouble());
  }
};

}  // namespace ppstream
