// Messages flowing between pipeline stages.
//
// Every tensor is serialized to bytes before crossing a stage boundary —
// exactly what a real cross-server deployment puts on the wire — so the
// runtime observes true serialization cost and byte volumes (which the
// cluster simulator consumes for its NIC model).

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/paillier.h"
#include "tensor/tensor.h"
#include "util/buffer.h"
#include "util/status.h"

namespace ppstream {

/// One in-flight inference request at some stage of the pipeline.
struct StreamMessage {
  uint64_t request_id = 0;
  /// Serialized payload (encrypted tensor, raw input, or final result).
  std::vector<uint8_t> payload;

  size_t ByteSize() const { return payload.size() + sizeof(request_id); }
};

/// Serializes a ciphertext vector (an encrypted tensor in flight).
std::vector<uint8_t> SerializeCiphertexts(const std::vector<Ciphertext>& v);
Result<std::vector<Ciphertext>> DeserializeCiphertexts(
    const std::vector<uint8_t>& bytes);

/// Serializes a double tensor (raw input / final result).
std::vector<uint8_t> SerializeDoubleTensor(const DoubleTensor& t);
Result<DoubleTensor> DeserializeDoubleTensor(
    const std::vector<uint8_t>& bytes);

}  // namespace ppstream
