// Messages flowing between pipeline stages.
//
// Every tensor is serialized to bytes before crossing a stage boundary —
// exactly what a real cross-server deployment puts on the wire — so the
// runtime observes true serialization cost and byte volumes (which the
// cluster simulator consumes for its NIC model).

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/paillier.h"
#include "tensor/tensor.h"
#include "util/buffer.h"
#include "util/status.h"

namespace ppstream {

/// Monotonic clock reading in seconds, shared by Submit timestamps and the
/// stages' retry-deadline checks.
inline double StreamClockSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One in-flight inference request at some stage of the pipeline.
///
/// A message whose `status` is non-OK is *poisoned*: some stage exhausted
/// its retries (or hit the request deadline) and, instead of silently
/// dropping the request, forwarded this tombstone so the failure surfaces
/// at the pipeline tail. Downstream stages pass poisoned messages through
/// without processing them.
struct StreamMessage {
  uint64_t request_id = 0;
  /// Serialized payload (encrypted tensor, raw input, or final result).
  /// Cleared when the message is poisoned.
  std::vector<uint8_t> payload;
  /// OK while the request is healthy; the failing stage's error otherwise.
  Status status;
  /// Name of the stage that poisoned the message ("" while healthy).
  std::string failed_stage;
  /// StreamClockSeconds() at submission; 0 when unknown. Retry deadlines
  /// are measured from this point.
  double submit_time_seconds = 0;
  /// Distributed-trace ids allocated at Submit() when tracing is enabled
  /// (0 = untraced). Stages adopt the pair as their span parent, so every
  /// span of the request — across threads and, via the wire header's
  /// trace block, across processes — lands in one trace.
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;

  bool poisoned() const { return !status.ok(); }

  /// Marks the message failed at `stage` and drops the payload.
  void Poison(std::string stage, Status error) {
    failed_stage = std::move(stage);
    status = std::move(error);
    payload.clear();
    payload.shrink_to_fit();
  }

  size_t ByteSize() const { return payload.size() + sizeof(request_id); }
};

/// Serializes a ciphertext vector (an encrypted tensor in flight).
std::vector<uint8_t> SerializeCiphertexts(const std::vector<Ciphertext>& v);
Result<std::vector<Ciphertext>> DeserializeCiphertexts(
    const std::vector<uint8_t>& bytes);

/// Composable variants for embedding a ciphertext vector inside a larger
/// message (the wire frames in src/net/ use these directly).
void WriteCiphertexts(BufferWriter* out, const std::vector<Ciphertext>& v);
Result<std::vector<Ciphertext>> ReadCiphertexts(BufferReader* in);

/// Serializes a double tensor (raw input / final result).
std::vector<uint8_t> SerializeDoubleTensor(const DoubleTensor& t);
Result<DoubleTensor> DeserializeDoubleTensor(
    const std::vector<uint8_t>& bytes);

}  // namespace ppstream
