// Bounded blocking MPMC channel connecting pipeline stages.

#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "util/logging.h"
#include "util/thread_annotations.h"

namespace ppstream {

/// Blocking bounded queue. Send blocks while full; Recv blocks while empty
/// and returns nullopt once the channel is closed and drained. This is the
/// backpressure mechanism between pipeline stages.
template <typename T>
class Channel {
 public:
  explicit Channel(size_t capacity) : capacity_(capacity) {
    PPS_CHECK_GT(capacity, 0u);
  }

  /// Installs a hook invoked (outside the lock) on every Send entry and
  /// after every successful Recv — the fault-injection seam for link
  /// latency. Must be set before the channel is used concurrently.
  void SetFaultHook(std::function<void()> hook) {
    fault_hook_ = std::move(hook);
  }

  /// Returns false if the channel was closed (the item is dropped).
  /// (unique_lock/cv juggling; ppslint R6 still checks it lexically.)
  bool Send(T item) PPS_NO_THREAD_SAFETY_ANALYSIS {
    if (fault_hook_) fault_hook_();
    std::unique_lock<std::mutex> lock(mutex_);
    send_cv_.wait(lock,
                  [this] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(item));
    recv_cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and empty.
  /// (unique_lock/cv juggling; ppslint R6 still checks it lexically.)
  std::optional<T> Recv() PPS_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mutex_);
    recv_cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    send_cv_.notify_one();
    lock.unlock();
    if (fault_hook_) fault_hook_();
    return item;
  }

  /// Idempotent. Wakes all blocked senders and receivers.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    send_cv_.notify_all();
    recv_cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const size_t capacity_;
  // Set once before concurrent use (see SetFaultHook) and invoked outside
  // the lock; no mutex guards it by design.
  std::function<void()> fault_hook_;
  mutable std::mutex mutex_;
  std::condition_variable send_cv_, recv_cv_;
  std::deque<T> queue_ PPS_GUARDED_BY(mutex_);
  bool closed_ PPS_GUARDED_BY(mutex_) = false;
};

}  // namespace ppstream
