// PP-Stream engine: maps the collaborative protocol (Figure 3) onto the
// pipelined stage runtime (Figure 4).
//
// Stage layout for a plan with R rounds (2R+1 stages):
//   stage 0:        data provider   — quantize + encrypt the raw input
//   stage 2r+1:     model provider  — inverse obfuscation (r>0), linear
//                                     stage r under Paillier with tensor
//                                     partitioning, obfuscation (r<R-1)
//   stage 2r+2:     data provider   — decrypt, non-linear segment r,
//                                     re-encrypt (intermediate) or emit
//                                     the inference result (final)
//
// Each stage owns y_i threads for intra-stage tensor parallelism; requests
// stream through the stages, giving pipeline parallelism across requests.

#pragma once

#include <memory>
#include <optional>

#include "core/protocol.h"
#include "stream/pipeline.h"
#include "stream/retry_policy.h"
#include "util/fault.h"

namespace ppstream {

struct EngineConfig {
  /// Threads per pipeline stage. Size must be NumPipelineStages(plan) or
  /// empty (one thread per stage). This is the planner's y_i assignment.
  std::vector<size_t> stage_threads;
  /// Enables input tensor partitioning in linear stages (§IV-D).
  bool tensor_partitioning = true;
  size_t channel_capacity = 4;
  /// Per-stage transient-failure retries (AF-Stream-style re-execution).
  /// Compatibility knob: ignored when `retry_policy` is set.
  int max_retries = 1;
  /// Full retry policy (backoff, jitter, per-request deadline). When unset
  /// the engine uses RetryPolicy::FromMaxRetries(max_retries) — the seed's
  /// immediate-retry semantics.
  std::optional<RetryPolicy> retry_policy;
  /// Optional chaos hook: wired into every stage ("stage.<name>"), every
  /// inter-stage channel ("channel.<i>", latency only), and the providers'
  /// protocol entry points ("mp.*" / "dp.*"). Null disables injection.
  std::shared_ptr<FaultInjector> fault_injector;
};

/// 2 * NumRounds + 1 (see stage layout above).
size_t NumPipelineStages(const InferencePlan& plan);

/// A completed inference.
struct InferenceResult {
  uint64_t request_id = 0;
  DoubleTensor output;
};

class PpStreamEngine {
 public:
  /// The engine talks to the parties exclusively through the protocol
  /// interfaces: pass concrete ModelProvider/DataProvider for the
  /// single-process zero-copy deployment, or transport stubs
  /// (RemoteModelProvider / RemoteDataProvider from src/net/) to run the
  /// pipeline against parties living in other processes.
  PpStreamEngine(std::shared_ptr<ModelProviderApi> mp,
                 std::shared_ptr<DataProviderApi> dp, EngineConfig config);

  Status Start();

  /// Feeds one inference request (blocks under backpressure).
  Status Submit(uint64_t request_id, const DoubleTensor& input);

  /// Blocks for the next completed inference; error after Shutdown() when
  /// the pipeline has drained.
  ///
  /// Error contract: every Submit() yields exactly one NextResult()
  /// outcome. A request that exhausted its retries (or hit its deadline)
  /// surfaces here as a non-OK status naming the originating stage and
  /// error; its per-request obfuscation state at the model provider is
  /// released before the status is returned. FailedPrecondition
  /// "pipeline drained" marks the end of the stream after Shutdown().
  Result<InferenceResult> NextResult();

  /// Closes the input and drains in-flight requests; safe to call once.
  void Shutdown();

  const Pipeline& pipeline() const { return pipeline_; }

 private:
  std::shared_ptr<ModelProviderApi> mp_;
  std::shared_ptr<DataProviderApi> dp_;
  EngineConfig config_;
  Pipeline pipeline_;
  bool started_ = false;
};

}  // namespace ppstream
