// Per-endpoint circuit breaker: lets retry machinery distinguish a slow
// peer (keep waiting, RetryPolicy backoff applies) from a dead one (fail
// fast, stop hammering the endpoint while it restarts).
//
// Classic three-state machine:
//
//   kClosed    normal operation. `failure_threshold` consecutive
//              failures trip the breaker to kOpen.
//   kOpen      Allow() refuses immediately (callers surface
//              kUnavailable) until `open_seconds` have elapsed.
//   kHalfOpen  exactly one probe call is admitted; its success closes
//              the breaker, its failure re-opens it (and re-arms the
//              full open_seconds cooldown).
//
// State is exported through the metrics registry: a gauge
// "net.breaker.<name>.state" (0 closed, 1 half-open, 2 open) and a
// counter "net.breaker.opens" shared across breakers. The clock is
// injectable so tests drive the cooldown without sleeping.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/metrics.h"
#include "util/thread_annotations.h"

namespace ppstream {

struct CircuitBreakerOptions {
  /// Consecutive failures that trip a closed breaker.
  int failure_threshold = 3;
  /// Cooldown before an open breaker admits its half-open probe.
  double open_seconds = 0.5;
  /// Endpoint label for the state gauge ("net.breaker.<name>.state");
  /// empty uses "net.breaker.state".
  std::string name;
};

class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  using Options = CircuitBreakerOptions;

  /// Monotonic seconds; the default reads std::chrono::steady_clock.
  using Clock = std::function<double()>;

  explicit CircuitBreaker(Options options = {}, Clock clock = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when a call may proceed. An open breaker past its cooldown
  /// transitions to half-open and admits exactly one probe; concurrent
  /// callers are refused until that probe reports back.
  bool Allow();

  /// Reports the outcome of an admitted call.
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  /// Times the breaker has tripped open (including half-open → open).
  uint64_t opens() const;

 private:
  void TransitionLocked(State next) PPS_REQUIRES(mutex_);

  const Options options_;
  const Clock clock_;
  obs::Gauge* const state_gauge_;
  obs::Counter* const opens_counter_;

  mutable std::mutex mutex_;
  State state_ PPS_GUARDED_BY(mutex_) = State::kClosed;
  int consecutive_failures_ PPS_GUARDED_BY(mutex_) = 0;
  double opened_at_seconds_ PPS_GUARDED_BY(mutex_) = 0;
  bool probe_in_flight_ PPS_GUARDED_BY(mutex_) = false;
  uint64_t opens_ PPS_GUARDED_BY(mutex_) = 0;
};

}  // namespace ppstream
