#include "stream/circuit_breaker.h"

#include <chrono>
#include <utility>

#include "obs/flightrec.h"

namespace ppstream {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string StateGaugeName(const std::string& name) {
  if (name.empty()) return "net.breaker.state";
  return "net.breaker." + name + ".state";
}

}  // namespace

CircuitBreaker::CircuitBreaker(Options options, Clock clock)
    : options_(std::move(options)),
      clock_(clock ? std::move(clock) : Clock(&SteadyNowSeconds)),
      state_gauge_(obs::MetricsRegistry::Global().GetGauge(
          StateGaugeName(options_.name))),
      opens_counter_(
          obs::MetricsRegistry::Global().GetCounter("net.breaker.opens")) {
  state_gauge_->Set(0);
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_() - opened_at_seconds_ < options_.open_seconds) return false;
      TransitionLocked(State::kHalfOpen);
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  if (state_ != State::kClosed) TransitionLocked(State::kClosed);
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  probe_in_flight_ = false;
  consecutive_failures_++;
  const bool trip = state_ == State::kHalfOpen ||
                    (state_ == State::kClosed &&
                     consecutive_failures_ >= options_.failure_threshold);
  if (trip) {
    opened_at_seconds_ = clock_();
    opens_++;
    opens_counter_->Increment();
    TransitionLocked(State::kOpen);
    // Breaker-open is a flight-recorder trigger: the last few seconds of
    // spans and logs explain *why* the peer started failing.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (recorder.enabled()) {
      recorder.RecordEvent("breaker.open", options_.name);
      recorder.TriggerDump("breaker.open");
    }
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

uint64_t CircuitBreaker::opens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return opens_;
}

void CircuitBreaker::TransitionLocked(State next) {
  state_ = next;
  state_gauge_->Set(static_cast<double>(next));
}

}  // namespace ppstream
