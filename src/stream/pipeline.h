// A linear pipeline of stages connected by bounded channels.

#pragma once

#include <memory>
#include <vector>

#include "stream/stage.h"

namespace ppstream {

/// Builds and runs stage_0 -> chan -> stage_1 -> ... -> stage_{n-1}.
/// Feed() injects requests at the head; results are collected from the
/// tail in completion order (which equals submission order because every
/// stage is a single FIFO consumer). Poisoned messages (failed requests)
/// flow to the tail like healthy ones, so every fed request yields exactly
/// one NextResult().
class Pipeline {
 public:
  explicit Pipeline(size_t channel_capacity = 4)
      : channel_capacity_(channel_capacity) {}

  /// Adds a stage; must be called before Start().
  void AddStage(std::unique_ptr<Stage> stage);

  /// Wires `injector` into every stage (site "stage.<name>") and every
  /// inter-stage channel (site "channel.<i>", latency rules only). Must be
  /// called before Start().
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector);

  size_t NumStages() const { return stages_.size(); }
  const Stage& stage(size_t i) const { return *stages_[i]; }

  /// Wires the channels and starts every stage.
  Status Start();

  /// Injects a request; blocks under backpressure.
  Status Feed(StreamMessage msg);

  /// Receives the next completed result (nullopt once the pipeline has
  /// been shut down and drained).
  std::optional<StreamMessage> NextResult();

  /// Closes the input, drains all stages, and joins their threads.
  void Shutdown();

 private:
  size_t channel_capacity_;
  std::shared_ptr<FaultInjector> fault_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<std::unique_ptr<Channel<StreamMessage>>> channels_;
  bool started_ = false;
};

}  // namespace ppstream
