#include "stream/pipeline.h"

#include "util/logging.h"

namespace ppstream {

void Pipeline::AddStage(std::unique_ptr<Stage> stage) {
  PPS_CHECK(!started_) << "cannot add stages after Start()";
  stages_.push_back(std::move(stage));
}

void Pipeline::SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
  PPS_CHECK(!started_) << "cannot wire faults after Start()";
  fault_ = std::move(injector);
}

Status Pipeline::Start() {
  if (started_) return Status::FailedPrecondition("pipeline already started");
  if (stages_.empty()) {
    return Status::FailedPrecondition("pipeline has no stages");
  }
  // n stages need n+1 channels: head input ... tail output.
  channels_.reserve(stages_.size() + 1);
  for (size_t i = 0; i <= stages_.size(); ++i) {
    channels_.push_back(
        std::make_unique<Channel<StreamMessage>>(channel_capacity_));
    if (fault_ != nullptr) {
      channels_.back()->SetFaultHook(
          [injector = fault_, site = internal::StrCat("channel.", i)] {
            injector->Delay(site);
          });
    }
  }
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (fault_ != nullptr) stages_[i]->SetFaultInjector(fault_);
    stages_[i]->Start(channels_[i].get(), channels_[i + 1].get());
  }
  started_ = true;
  return Status::OK();
}

Status Pipeline::Feed(StreamMessage msg) {
  if (!started_) return Status::FailedPrecondition("pipeline not started");
  if (msg.submit_time_seconds == 0) {
    msg.submit_time_seconds = StreamClockSeconds();
  }
  if (!channels_.front()->Send(std::move(msg))) {
    return Status::FailedPrecondition("pipeline input is closed");
  }
  return Status::OK();
}

std::optional<StreamMessage> Pipeline::NextResult() {
  if (!started_) return std::nullopt;
  return channels_.back()->Recv();
}

void Pipeline::Shutdown() {
  if (!started_) return;
  channels_.front()->Close();
  for (auto& stage : stages_) stage->Join();
}

}  // namespace ppstream
