// Pipeline stages (the paper's operation encapsulation, §IV-B).
//
// Each stage is one worker process in AF-Stream terms: a consumer loop
// that pulls messages from its input channel, processes them — using an
// intra-stage thread pool of y_i threads for tensor parallelism — and
// pushes the result downstream. Requests stream through the stages, so
// stage k works on request r+1 while stage k+1 works on request r.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "stream/channel.h"
#include "stream/message.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ppstream {

/// Per-stage counters, read after Join().
struct StageMetrics {
  uint64_t messages_processed = 0;
  uint64_t errors = 0;   // messages dropped after exhausting retries
  uint64_t retries = 0;  // re-executions after transient failures
  double busy_seconds = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// One pipeline stage with `num_threads` intra-stage worker threads.
class Stage {
 public:
  /// The processing function: consumes a message, produces the downstream
  /// message. The pool has the stage's allocated threads.
  using ProcessFn =
      std::function<Result<StreamMessage>(StreamMessage, ThreadPool&)>;

  /// `max_retries`: AF-Stream-style at-least-once execution — a failing
  /// message is re-executed up to this many extra times before being
  /// dropped. Processing functions must therefore be idempotent (the
  /// protocol's per-request state is; see ModelProvider::InverseObfuscate).
  Stage(std::string name, size_t num_threads, ProcessFn fn,
        int max_retries = 0);

  const std::string& name() const { return name_; }
  size_t num_threads() const { return pool_.num_threads(); }

  /// Starts the consumer loop. `in` feeds the stage; results go to `out`
  /// (out may be null for a sink stage). When `in` drains (closed + empty),
  /// the stage closes `out` and exits.
  void Start(Channel<StreamMessage>* in, Channel<StreamMessage>* out);

  /// Blocks until the consumer loop has exited.
  void Join();

  const StageMetrics& metrics() const { return metrics_; }

 private:
  std::string name_;
  ThreadPool pool_;
  ProcessFn fn_;
  int max_retries_;
  std::thread consumer_;
  StageMetrics metrics_;
};

}  // namespace ppstream
