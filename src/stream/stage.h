// Pipeline stages (the paper's operation encapsulation, §IV-B).
//
// Each stage is one worker process in AF-Stream terms: a consumer loop
// that pulls messages from its input channel, processes them — using an
// intra-stage thread pool of y_i threads for tensor parallelism — and
// pushes the result downstream. Requests stream through the stages, so
// stage k works on request r+1 while stage k+1 works on request r.
//
// Failure model: a message whose processing fails is re-executed per the
// stage's RetryPolicy (capped exponential backoff + jitter, optional
// per-request deadline). When retries are exhausted the message is
// *poisoned* — payload dropped, Status and failing-stage name attached —
// and forwarded downstream so the failure surfaces at the pipeline tail
// instead of deadlocking the client. Poisoned messages pass through
// subsequent stages without processing. ProcessFns must be idempotent
// (the protocol's per-request state is; see ModelProvider::InverseObfuscate).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "stream/channel.h"
#include "stream/message.h"
#include "stream/retry_policy.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace ppstream {

/// Snapshot of a stage's counters. Safe to take mid-run (the live counters
/// are registry atomics); values are monotone while the stage runs and
/// final after Join().
///
/// The backing storage lives in MetricsRegistry::Global() under
/// "stage.<name>.*" (plus the "stage.<name>.attempt_seconds" latency
/// histogram); metrics() reports the delta since this Stage was
/// constructed, so sequential pipelines that reuse stage names still see
/// their own counts.
struct StageMetrics {
  uint64_t messages_processed = 0;
  uint64_t errors = 0;   // messages poisoned after exhausting retries
  uint64_t retries = 0;  // re-executions after transient failures
  uint64_t poisoned_forwarded = 0;  // upstream tombstones passed through
  uint64_t deadline_exceeded = 0;   // failures due to the request deadline
  /// Time spent executing attempts (including failed ones); backoff sleeps
  /// are excluded.
  double busy_seconds = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// One pipeline stage with `num_threads` intra-stage worker threads.
class Stage {
 public:
  /// The processing function: consumes a message, produces the downstream
  /// message. The pool has the stage's allocated threads.
  using ProcessFn =
      std::function<Result<StreamMessage>(StreamMessage, ThreadPool&)>;

  Stage(std::string name, size_t num_threads, ProcessFn fn,
        RetryPolicy retry_policy);

  /// Compatibility constructor: `max_retries` immediate re-executions
  /// (AF-Stream-style at-least-once), no backoff, no deadline.
  Stage(std::string name, size_t num_threads, ProcessFn fn,
        int max_retries = 0)
      : Stage(std::move(name), num_threads, std::move(fn),
              RetryPolicy::FromMaxRetries(max_retries)) {}

  const std::string& name() const { return name_; }
  size_t num_threads() const { return pool_.num_threads(); }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Wires a fault injector probed as "stage.<name>" before each attempt
  /// (error + latency rules) and against each attempt's input payload
  /// (corruption rules). Must be called before Start().
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
    fault_ = std::move(injector);
  }

  /// Starts the consumer loop. `in` feeds the stage; results go to `out`
  /// (out may be null for a sink stage). When `in` drains (closed + empty),
  /// the stage closes `out` and exits.
  void Start(Channel<StreamMessage>* in, Channel<StreamMessage>* out);

  /// Blocks until the consumer loop has exited.
  void Join();

  /// Thread-safe counter snapshot (valid mid-run and after Join()).
  StageMetrics metrics() const;

 private:
  /// Runs the message through fn_ with retries per retry_. On failure the
  /// returned status carries the final attempt's error.
  Result<StreamMessage> ProcessWithRetries(const StreamMessage& msg);

  /// One attempt: fault probes, then fn_.
  Result<StreamMessage> Attempt(const StreamMessage& msg);

  /// Current registry totals for this stage name (not baseline-adjusted).
  StageMetrics RegistryTotals() const;

  std::string name_;
  ThreadPool pool_;
  ProcessFn fn_;
  RetryPolicy retry_;
  std::shared_ptr<FaultInjector> fault_;
  Rng backoff_rng_;
  std::thread consumer_;

  /// Handles into MetricsRegistry::Global(), resolved once at
  /// construction; hot-path updates are relaxed atomic adds.
  struct Handles {
    obs::Counter* messages_processed;
    obs::Counter* errors;
    obs::Counter* retries;
    obs::Counter* poisoned_forwarded;
    obs::Counter* deadline_exceeded;
    obs::Counter* bytes_in;
    obs::Counter* bytes_out;
    obs::Histogram* attempt_seconds;
  };
  Handles counters_;
  /// Registry values at construction; metrics() subtracts these.
  StageMetrics baseline_;
  /// "stage.<name>", the per-message span name and fault site.
  std::string span_name_;
};

}  // namespace ppstream
