// Thin RAII wrappers over blocking POSIX TCP sockets, with poll-based
// timeouts so every operation has a bounded wait.
//
// Error mapping (consumed by the stream runtime's retry machinery):
//   timeout elapsed              → kDeadlineExceeded
//   peer closed / reset / error  → kIoError
//   cancel fd became readable    → kCancelled
// A clean end-of-stream before any byte of a read is reported as kIoError
// with message "connection closed" — the frame loop uses it to detect an
// orderly disconnect.
//
// WakeupPipe is the self-pipe half of prompt shutdown: a blocked
// Accept/WaitReadable that was given the pipe's read fd returns
// kCancelled the instant another thread calls Signal(), instead of
// waiting out its poll timeout. Signal() is sticky (the byte is never
// drained), so every wait after a shutdown signal cancels immediately.

#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace ppstream {

/// Self-pipe for waking poll-based waits from another thread (or from a
/// signal handler: Signal() is a single async-signal-safe write()).
/// Non-copyable, non-movable; waiters hold its read fd by value.
class WakeupPipe {
 public:
  WakeupPipe();
  ~WakeupPipe();
  WakeupPipe(const WakeupPipe&) = delete;
  WakeupPipe& operator=(const WakeupPipe&) = delete;

  /// Makes read_fd() readable forever (sticky). Idempotent, thread- and
  /// signal-safe.
  void Signal();

  /// True once Signal() has been called.
  bool signalled() const;

  /// Pollable fd for WaitReadable / Accept cancel parameters; -1 when
  /// pipe creation failed (waits then degrade to plain timeouts).
  int read_fd() const { return fds_[0]; }

 private:
  int fds_[2] = {-1, -1};
};

/// A connected TCP stream socket. Move-only; closes on destruction.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (numeric IPv4 or "localhost") within
  /// `timeout_seconds`. TCP_NODELAY is set: frames are latency-bound.
  static Result<TcpSocket> Connect(const std::string& host, uint16_t port,
                                   double timeout_seconds);

  /// Writes exactly `len` bytes or fails. The timeout bounds the total
  /// time spent blocked, not each individual write.
  Status SendAll(const uint8_t* data, size_t len, double timeout_seconds);

  /// Reads exactly `len` bytes or fails (see header for EOF semantics).
  Status RecvAll(uint8_t* data, size_t len, double timeout_seconds);

  /// Reads whatever is available, up to `max` bytes (at least one).
  /// Returns the byte count; kIoError "connection closed" on a clean
  /// EOF. The building block for delimiter-framed protocols (the admin
  /// endpoint's HTTP request line) where the length is not known up
  /// front.
  Result<size_t> RecvSome(uint8_t* data, size_t max, double timeout_seconds);

  /// Waits until at least one byte is readable (or the peer hung up),
  /// without consuming anything — lets a server slice a long idle wait
  /// into cancellable pieces before committing to a full frame read.
  /// kCancelled when `cancel_fd` (>= 0) became readable first.
  Status WaitReadable(double timeout_seconds, int cancel_fd = -1);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

/// A loopback listening socket. Move-only; closes on destruction.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back
  /// with port()) with SO_REUSEADDR set.
  static Result<TcpListener> Bind(uint16_t port);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Waits up to `timeout_seconds` for one connection. DeadlineExceeded
  /// when nothing arrived — callers poll in a loop to stay stoppable.
  /// kCancelled when `cancel_fd` (>= 0) became readable first, so a
  /// shutdown signal interrupts the wait instead of riding it out.
  Result<TcpSocket> Accept(double timeout_seconds, int cancel_fd = -1);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace ppstream
