// Thin RAII wrappers over blocking POSIX TCP sockets, with poll-based
// timeouts so every operation has a bounded wait.
//
// Error mapping (consumed by the stream runtime's retry machinery):
//   timeout elapsed              → kDeadlineExceeded
//   peer closed / reset / error  → kIoError
// A clean end-of-stream before any byte of a read is reported as kIoError
// with message "connection closed" — the frame loop uses it to detect an
// orderly disconnect.

#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace ppstream {

/// A connected TCP stream socket. Move-only; closes on destruction.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(int fd) : fd_(fd) {}
  ~TcpSocket();

  TcpSocket(TcpSocket&& other) noexcept;
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (numeric IPv4 or "localhost") within
  /// `timeout_seconds`. TCP_NODELAY is set: frames are latency-bound.
  static Result<TcpSocket> Connect(const std::string& host, uint16_t port,
                                   double timeout_seconds);

  /// Writes exactly `len` bytes or fails. The timeout bounds the total
  /// time spent blocked, not each individual write.
  Status SendAll(const uint8_t* data, size_t len, double timeout_seconds);

  /// Reads exactly `len` bytes or fails (see header for EOF semantics).
  Status RecvAll(uint8_t* data, size_t len, double timeout_seconds);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

/// A loopback listening socket. Move-only; closes on destruction.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — read it back
  /// with port()) with SO_REUSEADDR set.
  static Result<TcpListener> Bind(uint16_t port);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Waits up to `timeout_seconds` for one connection. DeadlineExceeded
  /// when nothing arrived — callers poll in a loop to stay stoppable.
  Result<TcpSocket> Accept(double timeout_seconds);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace ppstream
