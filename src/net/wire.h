// Versioned, length-prefixed wire format for the two-party protocol
// (DESIGN.md §7 "Transport layer & wire format").
//
// Every cross-party call is one request frame and one response frame with
// a fixed 34-byte header:
//
//   offset  size  field
//        0     4  magic        "PPS1" (0x31535050 as little-endian u32)
//        4     2  version      wire revision; peers reject mismatches
//        6     2  method       WireMethod of the call
//        8     1  flags        bit 0: response frame
//        9     1  status       StatusCode of a response (0 on requests)
//       10     8  request_id   inference request the call belongs to
//       18     8  round        protocol round (0 when not applicable)
//       26     8  payload_len  bytes of payload that follow
//       34     …  payload      method-specific bytes in BufferWriter
//                              format; UTF-8 error message when status != 0
//
// Wire revision 2 (traced frames) extends the header with a 16-byte
// trace block between payload_len and the payload; the 34-byte prefix is
// bit-identical to revision 1 (payload_len stays at offset 26):
//
//       34     8  trace_id        distributed trace the call belongs to
//       42     8  parent_span_id  caller-side span awaiting the response
//       50     …  payload
//
// EncodeFrame emits revision 2 only when the frame carries a nonzero
// trace id, so untraced deployments stay byte-identical to revision 1
// and interoperate with revision-1-only peers; decoders accept both.
// Responses echo the request's trace block.
//
// All integers are little-endian. Payload contents per method are encoded
// by the RemoteModelProvider / RemoteDataProvider stubs and decoded by the
// dispatchers in net/transport.h; ciphertext tensors reuse the stream
// substrate's WriteCiphertexts/ReadCiphertexts encoding, so a stage-
// boundary payload and a wire payload are byte-identical.

#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace ppstream {

/// "PPS1" when the u32 is written little-endian.
constexpr uint32_t kWireMagic = 0x31535050;
constexpr uint16_t kWireVersion = 1;
/// Revision 2: revision 1 plus the 16-byte trace block (see above).
constexpr uint16_t kWireVersionTraced = 2;
constexpr size_t kFrameHeaderBytes = 34;
constexpr size_t kFrameTraceBytes = 16;

/// Header size of a given wire revision.
constexpr size_t FrameHeaderBytesFor(uint16_t version) {
  return version >= kWireVersionTraced ? kFrameHeaderBytes + kFrameTraceBytes
                                       : kFrameHeaderBytes;
}

/// Sanity bound on payload_len, checked before any allocation: a
/// corrupted or hostile length field must not OOM the receiver.
constexpr uint64_t kMaxFramePayloadBytes = 1ULL << 31;

enum class WireMethod : uint16_t {
  /// Connection setup: request carries the data provider's public key;
  /// the response carries the weight-free plan view
  /// (InferencePlan::SerializeDataProviderView). Weights never cross.
  kHandshake = 1,

  // ---- ModelProviderApi (data provider → model provider).
  kMpProcessRound = 2,
  kMpInverseObfuscate = 3,
  kMpApplyLinearStage = 4,
  kMpObfuscate = 5,
  kMpReleaseRequestState = 6,

  // ---- DataProviderApi (model provider → data provider).
  kDpEncryptInput = 7,
  kDpProcessIntermediate = 8,
  kDpProcessFinal = 9,
};

/// Human-readable method name for logs and error messages.
const char* WireMethodToString(WireMethod method);

/// One decoded frame. `payload` is the method-specific body; for error
/// responses it holds the UTF-8 error message instead.
struct WireFrame {
  uint16_t version = kWireVersion;
  WireMethod method = WireMethod::kHandshake;
  bool is_response = false;
  StatusCode status = StatusCode::kOk;
  uint64_t request_id = 0;
  uint64_t round = 0;
  /// Distributed-trace position of the caller (0 = untraced; the frame
  /// encodes as revision 1 and is bit-identical to the pre-trace format).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<uint8_t> payload;

  bool traced() const { return trace_id != 0 || parent_span_id != 0; }

  /// Total encoded size (header + payload).
  size_t WireSize() const {
    return FrameHeaderBytesFor(traced() ? kWireVersionTraced : kWireVersion) +
           payload.size();
  }
};

WireFrame MakeRequestFrame(WireMethod method, uint64_t request_id,
                           uint64_t round, std::vector<uint8_t> payload);
/// Success response echoing the request's method/request_id/round.
WireFrame MakeResponseFrame(const WireFrame& request,
                            std::vector<uint8_t> payload);
/// Error response: carries `error`'s code and message.
WireFrame MakeErrorFrame(const WireFrame& request, const Status& error);

/// The Status a response frame carries (OK for success frames).
Status FrameStatus(const WireFrame& frame);

/// Encodes at revision 2 when the frame carries trace ids, revision 1
/// otherwise (frame.version is informational output of decode, not an
/// encode input).
std::vector<uint8_t> EncodeFrame(const WireFrame& frame);

/// EncodeFrame with the trace block stamped from `trace_id` /
/// `parent_span_id` instead of the frame's own (zero) fields — lets the
/// channel attach the ambient trace context without copying the payload.
std::vector<uint8_t> EncodeFrameWithTrace(const WireFrame& frame,
                                          uint64_t trace_id,
                                          uint64_t parent_span_id);

/// Validates the magic and version of a header prefix (>= 8 bytes) and
/// returns the wire revision — tells a streaming receiver how many more
/// header bytes to read before DecodeFrameHeader.
Result<uint16_t> PeekFrameVersion(const uint8_t* data, size_t size);

/// Decodes and validates the full header (magic, version, method, flags,
/// status, payload bound, trace block for revision 2). `size` must cover
/// FrameHeaderBytesFor(version). The returned frame has an empty payload;
/// `payload_len` receives the announced body size.
Result<WireFrame> DecodeFrameHeader(const uint8_t* data, size_t size,
                                    uint64_t* payload_len);

/// Decodes a whole frame from a contiguous buffer and rejects trailing
/// bytes (transports with their own framing read header + payload
/// separately via DecodeFrameHeader).
Result<WireFrame> DecodeFrame(const std::vector<uint8_t>& bytes);

}  // namespace ppstream
