// Versioned, length-prefixed wire format for the two-party protocol
// (DESIGN.md §7 "Transport layer & wire format").
//
// Every cross-party call is one request frame and one response frame with
// a fixed 34-byte header:
//
//   offset  size  field
//        0     4  magic        "PPS1" (0x31535050 as little-endian u32)
//        4     2  version      wire revision; peers reject mismatches
//        6     2  method       WireMethod of the call
//        8     1  flags        bit 0: response frame
//        9     1  status       StatusCode of a response (0 on requests)
//       10     8  request_id   inference request the call belongs to
//       18     8  round        protocol round (0 when not applicable)
//       26     8  payload_len  bytes of payload that follow
//       34     …  payload      method-specific bytes in BufferWriter
//                              format; UTF-8 error message when status != 0
//
// Wire revision 2 (traced frames) extends the header with a 16-byte
// trace block between payload_len and the payload; the 34-byte prefix is
// bit-identical to revision 1 (payload_len stays at offset 26):
//
//       34     8  trace_id        distributed trace the call belongs to
//       42     8  parent_span_id  caller-side span awaiting the response
//       50     …  payload
//
// EncodeFrame emits revision 2 only when the frame carries a nonzero
// trace id, so untraced deployments stay byte-identical to revision 1
// and interoperate with revision-1-only peers; decoders accept both.
// Responses echo the request's trace block.
//
// Wire revision 3 (sessioned frames) appends a 24-byte session block
// after the trace block (which is present but zero-filled when the frame
// is sessioned but untraced):
//
//       50     8  session_id      server-issued resume token (0 = none)
//       58     8  sequence        per-session idempotency sequence number
//       66     8  deadline_micros client's remaining per-request budget in
//                                 microseconds at send time (0 = none);
//                                 the server sheds work whose deadline
//                                 passed while the frame sat in flight
//       74     …  payload
//
// Like the trace block, the session block is opt-in per frame: EncodeFrame
// emits revision 3 only when the frame carries session state (nonzero
// session id / sequence / deadline, or the session-request flag), so
// session-off peers stay bit-identical to revisions 1 and 2. Flag bit 1
// marks a handshake that asks the server to open a resumable session.
// Responses echo the request's session id and sequence number.
//
// All integers are little-endian. Payload contents per method are encoded
// by the RemoteModelProvider / RemoteDataProvider stubs and decoded by the
// dispatchers in net/transport.h; ciphertext tensors reuse the stream
// substrate's WriteCiphertexts/ReadCiphertexts encoding, so a stage-
// boundary payload and a wire payload are byte-identical.

#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.h"
#include "util/status.h"

namespace ppstream {

/// "PPS1" when the u32 is written little-endian.
constexpr uint32_t kWireMagic = 0x31535050;
constexpr uint16_t kWireVersion = 1;
/// Revision 2: revision 1 plus the 16-byte trace block (see above).
constexpr uint16_t kWireVersionTraced = 2;
/// Revision 3: revision 2 plus the 24-byte session block (see above).
constexpr uint16_t kWireVersionSession = 3;
constexpr size_t kFrameHeaderBytes = 34;
constexpr size_t kFrameTraceBytes = 16;
constexpr size_t kFrameSessionBytes = 24;

/// Header size of a given wire revision.
constexpr size_t FrameHeaderBytesFor(uint16_t version) {
  size_t bytes = kFrameHeaderBytes;
  if (version >= kWireVersionTraced) bytes += kFrameTraceBytes;
  if (version >= kWireVersionSession) bytes += kFrameSessionBytes;
  return bytes;
}

/// Sanity bound on payload_len, checked before any allocation: a
/// corrupted or hostile length field must not OOM the receiver.
constexpr uint64_t kMaxFramePayloadBytes = 1ULL << 31;

enum class WireMethod : uint16_t {
  /// Connection setup: request carries the data provider's public key;
  /// the response carries the weight-free plan view
  /// (InferencePlan::SerializeDataProviderView). Weights never cross.
  kHandshake = 1,

  // ---- ModelProviderApi (data provider → model provider).
  kMpProcessRound = 2,
  kMpInverseObfuscate = 3,
  kMpApplyLinearStage = 4,
  kMpObfuscate = 5,
  kMpReleaseRequestState = 6,

  // ---- DataProviderApi (model provider → data provider).
  kDpEncryptInput = 7,
  kDpProcessIntermediate = 8,
  kDpProcessFinal = 9,

  /// Liveness probe: empty request, empty response, no session state
  /// touched. Served even before the handshake and while draining, so a
  /// client's circuit breaker can tell a slow peer from a dead one.
  kPing = 10,
};

/// Human-readable method name for logs and error messages.
const char* WireMethodToString(WireMethod method);

/// One decoded frame. `payload` is the method-specific body; for error
/// responses it holds the UTF-8 error message instead.
struct WireFrame {
  uint16_t version = kWireVersion;
  WireMethod method = WireMethod::kHandshake;
  bool is_response = false;
  StatusCode status = StatusCode::kOk;
  uint64_t request_id = 0;
  uint64_t round = 0;
  /// Distributed-trace position of the caller (0 = untraced; the frame
  /// encodes as revision 1 and is bit-identical to the pre-trace format).
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// Session block (0s = unsessioned; the frame encodes as revision 1/2
  /// and is bit-identical to the pre-session format).
  uint64_t session_id = 0;
  uint64_t sequence = 0;
  uint64_t deadline_micros = 0;
  /// Handshake-only flag: asks the server to issue a resumable session.
  bool session_request = false;
  std::vector<uint8_t> payload;

  bool traced() const { return trace_id != 0 || parent_span_id != 0; }
  bool sessioned() const {
    return session_id != 0 || sequence != 0 || deadline_micros != 0 ||
           session_request;
  }

  /// Wire revision this frame encodes at.
  uint16_t EncodedVersion() const {
    if (sessioned()) return kWireVersionSession;
    return traced() ? kWireVersionTraced : kWireVersion;
  }

  /// Total encoded size (header + payload).
  size_t WireSize() const {
    return FrameHeaderBytesFor(EncodedVersion()) + payload.size();
  }
};

/// Channel-stamped header fields: the transport attaches the ambient trace
/// context and its session state at encode time, without copying the
/// payload or mutating the caller's frame.
struct FrameStamp {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t session_id = 0;
  uint64_t sequence = 0;
  uint64_t deadline_micros = 0;
};

WireFrame MakeRequestFrame(WireMethod method, uint64_t request_id,
                           uint64_t round, std::vector<uint8_t> payload);
/// Success response echoing the request's method/request_id/round.
WireFrame MakeResponseFrame(const WireFrame& request,
                            std::vector<uint8_t> payload);
/// Error response: carries `error`'s code and message.
WireFrame MakeErrorFrame(const WireFrame& request, const Status& error);

/// The Status a response frame carries (OK for success frames).
Status FrameStatus(const WireFrame& frame);

/// Encodes at revision 2 when the frame carries trace ids, revision 1
/// otherwise (frame.version is informational output of decode, not an
/// encode input).
std::vector<uint8_t> EncodeFrame(const WireFrame& frame);

/// EncodeFrame with the trace block stamped from `trace_id` /
/// `parent_span_id` instead of the frame's own (zero) fields — lets the
/// channel attach the ambient trace context without copying the payload.
std::vector<uint8_t> EncodeFrameWithTrace(const WireFrame& frame,
                                          uint64_t trace_id,
                                          uint64_t parent_span_id);

/// EncodeFrame with the trace *and* session blocks taken from `stamp`
/// (the frame's own trace/session fields are ignored; its
/// session_request flag still participates). A zero stamp on an
/// unsessioned frame encodes bit-identically to revision 1.
std::vector<uint8_t> EncodeFrameStamped(const WireFrame& frame,
                                        const FrameStamp& stamp);

/// Validates the magic and version of a header prefix (>= 8 bytes) and
/// returns the wire revision — tells a streaming receiver how many more
/// header bytes to read before DecodeFrameHeader.
Result<uint16_t> PeekFrameVersion(const uint8_t* data, size_t size);

/// Decodes and validates the full header (magic, version, method, flags,
/// status, payload bound, trace block for revision 2, session block for
/// revision 3). `size` must cover FrameHeaderBytesFor(version). The returned frame has an empty payload;
/// `payload_len` receives the announced body size.
Result<WireFrame> DecodeFrameHeader(const uint8_t* data, size_t size,
                                    uint64_t* payload_len);

/// Decodes a whole frame from a contiguous buffer and rejects trailing
/// bytes (transports with their own framing read header + payload
/// separately via DecodeFrameHeader).
Result<WireFrame> DecodeFrame(const std::vector<uint8_t>& bytes);

}  // namespace ppstream
