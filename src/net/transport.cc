#include "net/transport.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/message.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppstream {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Channel-level registry metrics, shared by every FrameChannel in the
/// process (per-channel numbers stay available via FrameChannel::stats).
/// The resilience counters (reconnects, pings, restarts, replays) are
/// registered here too, so every process that opens a channel exports
/// the full family at 0 — chaos dashboards never miss a series.
struct NetMetrics {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Histogram* roundtrip_seconds;
  obs::Counter* reconnects;
  obs::Histogram* reconnect_seconds;
  obs::Counter* pings;
  obs::Counter* inference_restarts;
  /// Physical wire attempts by the resilient channel — one logical round
  /// trip can burn several. attempts / frames_sent is the retry-storm
  /// amplification the chaos bench reports.
  obs::Counter* exchange_attempts;

  static const NetMetrics& Get() {
    static const NetMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return NetMetrics{registry.GetCounter("net.frames_sent"),
                        registry.GetCounter("net.frames_received"),
                        registry.GetCounter("net.bytes_sent"),
                        registry.GetCounter("net.bytes_received"),
                        registry.GetHistogram("net.roundtrip_seconds"),
                        registry.GetCounter("net.reconnects"),
                        registry.GetHistogram("net.reconnect_seconds"),
                        registry.GetCounter("net.pings"),
                        registry.GetCounter("net.inference.restarts"),
                        registry.GetCounter("net.exchange.attempts")};
    }();
    return metrics;
  }
};

Status CheckPayloadConsumed(const BufferReader& reader, WireMethod method) {
  if (!reader.AtEnd()) {
    return Status::ProtocolError(internal::StrCat(
        "trailing bytes after ", WireMethodToString(method), " payload"));
  }
  return Status::OK();
}

std::vector<uint8_t> CiphertextPayload(const std::vector<Ciphertext>& v) {
  BufferWriter writer;
  WriteCiphertexts(&writer, v);
  return writer.TakeBytes();
}

/// Absolute monotonic deadline of the innermost active DeadlineScope on
/// this thread; 0 = none.
thread_local double tls_deadline_seconds = 0;

}  // namespace

// -------------------------------------------------------- deadline scope

DeadlineScope::DeadlineScope(double budget_seconds)
    : previous_deadline_(tls_deadline_seconds) {
  if (budget_seconds <= 0) return;  // inherit the enclosing scope
  const double candidate = MonotonicSeconds() + budget_seconds;
  tls_deadline_seconds = previous_deadline_ == 0
                             ? candidate
                             : std::min(previous_deadline_, candidate);
}

DeadlineScope::~DeadlineScope() { tls_deadline_seconds = previous_deadline_; }

bool DeadlineScope::active() { return tls_deadline_seconds != 0; }

double DeadlineScope::RemainingSeconds() {
  if (!active()) return std::numeric_limits<double>::infinity();
  return tls_deadline_seconds - MonotonicSeconds();
}

uint64_t DeadlineScope::RemainingMicros() {
  if (!active()) return 0;
  const double remaining = RemainingSeconds();
  if (remaining <= 1e-6) return 1;  // expired still reads as "a deadline"
  return static_cast<uint64_t>(remaining * 1e6);
}

bool DeadlineScope::Expired() { return active() && RemainingSeconds() <= 0; }

// -------------------------------------------------------------- channels

FrameStamp FrameChannel::Stamp(const WireFrame& request) {
  // Pass the frame's own session fields through; trace ids are resolved
  // by RoundTrip (ambient context wins over an untraced frame).
  return FrameStamp{0, 0, request.session_id, request.sequence,
                    request.deadline_micros};
}

Result<WireFrame> FrameChannel::RoundTrip(const WireFrame& request) {
  // The span is the caller-visible round trip; its (trace, span) pair is
  // stamped into the frame header, so the server's rpc.<Method> span
  // parents to it across the process boundary.
  obs::ScopedSpan span("net.", "net", request.request_id,
                       WireMethodToString(request.method));
  const NetMetrics& net = NetMetrics::Get();
  const double start = MonotonicSeconds();

  std::lock_guard<std::mutex> lock(mutex_);
  const obs::TraceContext ctx = span.context();
  FrameStamp stamp = Stamp(request);
  if (ctx.active() && !request.traced()) {
    stamp.trace_id = ctx.trace_id;
    stamp.parent_span_id = ctx.span_id;
  } else {
    stamp.trace_id = request.trace_id;
    stamp.parent_span_id = request.parent_span_id;
  }
  std::vector<uint8_t> encoded = EncodeFrameStamped(request, stamp);
  if (fault_ && fault_->enabled()) {
    PPS_RETURN_IF_ERROR(fault_->Fail("net.send"));
    fault_->Corrupt("net.send", encoded);
  }
  if (observer_) observer_(request, /*outbound=*/true);
  stats_.frames_sent++;
  stats_.bytes_sent += encoded.size();
  net.frames_sent->Increment();
  net.bytes_sent->Increment(encoded.size());

  // Deliberately blocking under the channel lock: a FrameChannel is one
  // logical wire, and serializing round trips end-to-end is what keeps
  // responses from interleaving across threads. Concurrency comes from
  // using multiple channels, not from pipelining one.
  PPS_ASSIGN_OR_RETURN(std::vector<uint8_t> response_bytes,
                       // ppslint:allow(R8 one in-flight exchange per channel by design; callers needing concurrency open more channels)
                       Exchange(std::move(encoded)));
  stats_.frames_received++;
  stats_.bytes_received += response_bytes.size();
  net.frames_received->Increment();
  net.bytes_received->Increment(response_bytes.size());
  net.roundtrip_seconds->Record(MonotonicSeconds() - start);
  if (fault_ && fault_->enabled()) {
    PPS_RETURN_IF_ERROR(fault_->Fail("net.recv"));
    fault_->Corrupt("net.recv", response_bytes);
  }

  PPS_ASSIGN_OR_RETURN(WireFrame response, DecodeFrame(response_bytes));
  if (observer_) observer_(response, /*outbound=*/false);
  if (!response.is_response || response.method != request.method ||
      response.request_id != request.request_id) {
    return Status::ProtocolError(internal::StrCat(
        "mismatched response: sent ", WireMethodToString(request.method),
        " for request ", request.request_id, ", got ",
        WireMethodToString(response.method), " for request ",
        response.request_id, response.is_response ? "" : " (a request frame)"));
  }
  return response;
}

TransportStats FrameChannel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<std::vector<uint8_t>> InProcessFrameChannel::Exchange(
    std::vector<uint8_t> encoded_request) {
  // The full wire path in memory: a corrupted request fails decode here,
  // exactly where a TCP server would reject it.
  PPS_ASSIGN_OR_RETURN(WireFrame request, DecodeFrame(encoded_request));
  return EncodeFrame(handler_(request));
}

namespace {

/// Reads one whole frame (revision 1 or 2 header + payload) into a
/// contiguous buffer: the fixed 34-byte prefix first, then — once the
/// validated version says so — the trace block, then the payload.
Result<std::vector<uint8_t>> RecvFrameBytes(TcpSocket& socket,
                                            double timeout_seconds) {
  std::vector<uint8_t> bytes(kFrameHeaderBytes);
  PPS_RETURN_IF_ERROR(
      socket.RecvAll(bytes.data(), kFrameHeaderBytes, timeout_seconds));
  PPS_ASSIGN_OR_RETURN(uint16_t version,
                       PeekFrameVersion(bytes.data(), bytes.size()));
  const size_t header_bytes = FrameHeaderBytesFor(version);
  if (header_bytes > kFrameHeaderBytes) {
    bytes.resize(header_bytes);
    PPS_RETURN_IF_ERROR(socket.RecvAll(bytes.data() + kFrameHeaderBytes,
                                       header_bytes - kFrameHeaderBytes,
                                       timeout_seconds));
  }
  uint64_t payload_len = 0;
  PPS_RETURN_IF_ERROR(
      DecodeFrameHeader(bytes.data(), bytes.size(), &payload_len).status());
  bytes.resize(header_bytes + payload_len);
  if (payload_len > 0) {
    PPS_RETURN_IF_ERROR(socket.RecvAll(bytes.data() + header_bytes,
                                       payload_len, timeout_seconds));
  }
  return bytes;
}

}  // namespace

Result<std::vector<uint8_t>> TcpFrameChannel::Exchange(
    std::vector<uint8_t> encoded_request) {
  {
    obs::ScopedSpan send_span("net.send", "net");
    PPS_RETURN_IF_ERROR(socket_.SendAll(encoded_request.data(),
                                        encoded_request.size(),
                                        io_timeout_seconds_));
  }
  obs::ScopedSpan recv_span("net.recv", "net");
  return RecvFrameBytes(socket_, io_timeout_seconds_);
}

// ---------------------------------------------------------------- server

Status SendFrameBytes(TcpSocket& socket, const std::vector<uint8_t>& bytes,
                      double timeout_seconds) {
  return socket.SendAll(bytes.data(), bytes.size(), timeout_seconds);
}

Result<WireFrame> RecvFrame(TcpSocket& socket, double timeout_seconds) {
  PPS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       RecvFrameBytes(socket, timeout_seconds));
  return DecodeFrame(bytes);
}

namespace {

Result<std::vector<uint8_t>> DispatchModelProviderPayload(
    ModelProviderApi& mp, const WireFrame& request, ThreadPool* pool) {
  BufferReader reader(request.payload);
  switch (request.method) {
    case WireMethod::kMpProcessRound: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          mp.ProcessRound(request.request_id, request.round, in));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpInverseObfuscate: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                           mp.InverseObfuscate(request.request_id,
                                               request.round, std::move(in)));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpApplyLinearStage: {
      PPS_ASSIGN_OR_RETURN(uint8_t partitioning, reader.ReadU8());
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          mp.ApplyLinearStage(request.round, in, pool, partitioning != 0));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpObfuscate: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          mp.Obfuscate(request.request_id, request.round, std::move(in)));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpReleaseRequestState: {
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_RETURN_IF_ERROR(mp.ReleaseRequestState(request.request_id));
      return std::vector<uint8_t>{};
    }
    default:
      // Includes every Dp* method: the model provider refuses calls that
      // would put plaintext tensors in its hands.
      return Status::ProtocolError(internal::StrCat(
          WireMethodToString(request.method),
          " is not served by a model provider"));
  }
}

Result<std::vector<uint8_t>> DispatchDataProviderPayload(
    DataProviderApi& dp, const WireFrame& request, ThreadPool* pool) {
  BufferReader reader(request.payload);
  switch (request.method) {
    case WireMethod::kDpEncryptInput: {
      PPS_ASSIGN_OR_RETURN(DoubleTensor input,
                           DeserializeDoubleTensor(request.payload));
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                           pool ? dp.EncryptInputParallel(input, pool)
                                : dp.EncryptInput(input));
      return CiphertextPayload(out);
    }
    case WireMethod::kDpProcessIntermediate: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          dp.ProcessIntermediate(request.round, in, nullptr, pool));
      return CiphertextPayload(out);
    }
    case WireMethod::kDpProcessFinal: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(DoubleTensor out, dp.ProcessFinal(in, pool));
      return SerializeDoubleTensor(out);
    }
    default:
      return Status::ProtocolError(internal::StrCat(
          WireMethodToString(request.method),
          " is not served by a data provider"));
  }
}

}  // namespace

WireFrame DispatchModelProviderFrame(ModelProviderApi& mp,
                                     const WireFrame& request,
                                     ThreadPool* pool) {
  if (request.is_response) {
    return MakeErrorFrame(request,
                          Status::ProtocolError("expected a request frame"));
  }
  // Resume the caller's trace from the wire-carried trace block: this
  // server-side span (and any crypto spans nested inside the provider)
  // parents to the client's in-flight net.<Method> span.
  obs::ScopedSpan span(
      obs::TraceContext{request.trace_id, request.parent_span_id}, "rpc.",
      "rpc", request.request_id, WireMethodToString(request.method));
  Result<std::vector<uint8_t>> payload =
      DispatchModelProviderPayload(mp, request, pool);
  if (!payload.ok()) return MakeErrorFrame(request, payload.status());
  return MakeResponseFrame(request, std::move(payload).value());
}

WireFrame DispatchDataProviderFrame(DataProviderApi& dp,
                                    const WireFrame& request,
                                    ThreadPool* pool) {
  if (request.is_response) {
    return MakeErrorFrame(request,
                          Status::ProtocolError("expected a request frame"));
  }
  obs::ScopedSpan span(
      obs::TraceContext{request.trace_id, request.parent_span_id}, "rpc.",
      "rpc", request.request_id, WireMethodToString(request.method));
  Result<std::vector<uint8_t>> payload =
      DispatchDataProviderPayload(dp, request, pool);
  if (!payload.ok()) return MakeErrorFrame(request, payload.status());
  return MakeResponseFrame(request, std::move(payload).value());
}

// ---------------------------------------------------------------- stubs

namespace {

/// Round-trips a request whose response payload is a ciphertext vector.
Result<std::vector<Ciphertext>> CallForCiphertexts(FrameChannel& channel,
                                                   WireFrame request) {
  PPS_ASSIGN_OR_RETURN(WireFrame response,
                       channel.RoundTrip(std::move(request)));
  PPS_RETURN_IF_ERROR(FrameStatus(response));
  return DeserializeCiphertexts(response.payload);
}

}  // namespace

RemoteModelProvider::RemoteModelProvider(
    std::shared_ptr<FrameChannel> channel,
    std::shared_ptr<const InferencePlan> view_plan)
    : channel_(std::move(channel)), view_plan_(std::move(view_plan)) {
  PPS_CHECK(channel_ != nullptr);
  PPS_CHECK(view_plan_ != nullptr);
}

Result<std::vector<Ciphertext>> RemoteModelProvider::ProcessRound(
    uint64_t request_id, size_t round, const std::vector<Ciphertext>& in) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpProcessRound, request_id,
                                  round, CiphertextPayload(in)));
}

Result<std::vector<Ciphertext>> RemoteModelProvider::InverseObfuscate(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpInverseObfuscate, request_id,
                                  round, CiphertextPayload(in)));
}

Result<std::vector<Ciphertext>> RemoteModelProvider::ApplyLinearStage(
    size_t round, const std::vector<Ciphertext>& in, ThreadPool* pool,
    bool input_partitioning) {
  // `pool` is the caller's local parallelism; the remote provider computes
  // with its own worker pool, so only the partitioning hint crosses.
  (void)pool;
  BufferWriter writer;
  writer.WriteU8(input_partitioning ? 1 : 0);
  WriteCiphertexts(&writer, in);
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpApplyLinearStage, 0, round,
                                  writer.TakeBytes()));
}

Result<std::vector<Ciphertext>> RemoteModelProvider::Obfuscate(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpObfuscate, request_id, round,
                                  CiphertextPayload(in)));
}

Status RemoteModelProvider::ReleaseRequestState(uint64_t request_id) {
  PPS_ASSIGN_OR_RETURN(
      WireFrame response,
      channel_->RoundTrip(MakeRequestFrame(WireMethod::kMpReleaseRequestState,
                                           request_id, 0, {})));
  return FrameStatus(response);
}

RemoteDataProvider::RemoteDataProvider(std::shared_ptr<FrameChannel> channel,
                                       PaillierPublicKey public_key)
    : channel_(std::move(channel)), pk_(std::move(public_key)) {
  PPS_CHECK(channel_ != nullptr);
}

Result<std::vector<Ciphertext>> RemoteDataProvider::EncryptInput(
    const DoubleTensor& input) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kDpEncryptInput, 0, 0,
                                  SerializeDoubleTensor(input)));
}

Result<std::vector<Ciphertext>> RemoteDataProvider::EncryptInputParallel(
    const DoubleTensor& input, ThreadPool* pool) {
  (void)pool;  // the remote data provider parallelizes with its own pool
  return EncryptInput(input);
}

Result<std::vector<Ciphertext>> RemoteDataProvider::ProcessIntermediate(
    size_t round, const std::vector<Ciphertext>& in,
    std::vector<double>* decrypted_view, ThreadPool* pool) {
  if (decrypted_view != nullptr) {
    return Status::InvalidArgument(
        "leakage views require an in-process data provider: plaintext "
        "never crosses the wire");
  }
  (void)pool;
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kDpProcessIntermediate, 0,
                                  round, CiphertextPayload(in)));
}

Result<DoubleTensor> RemoteDataProvider::ProcessFinal(
    const std::vector<Ciphertext>& in, ThreadPool* pool) {
  (void)pool;
  PPS_ASSIGN_OR_RETURN(
      WireFrame response,
      channel_->RoundTrip(MakeRequestFrame(WireMethod::kDpProcessFinal, 0, 0,
                                           CiphertextPayload(in))));
  PPS_RETURN_IF_ERROR(FrameStatus(response));
  return DeserializeDoubleTensor(response.payload);
}

// ------------------------------------------------------------- transport

InProcessTransport::InProcessTransport(std::shared_ptr<ModelProvider> mp)
    : mp_(std::move(mp)) {
  PPS_CHECK(mp_ != nullptr);
  // Round-trip the weight-free view even in-process, so both deployments
  // construct their DataProvider from byte-identical plans.
  BufferWriter writer;
  mp_->plan().SerializeDataProviderView(&writer);
  const std::vector<uint8_t> bytes = writer.TakeBytes();
  BufferReader reader(bytes);
  Result<InferencePlan> view = InferencePlan::DeserializeDataProviderView(
      &reader);
  PPS_CHECK(view.ok()) << view.status().ToString();
  view_plan_ =
      std::make_shared<const InferencePlan>(std::move(view).value());
}

Result<std::shared_ptr<const InferencePlan>> ParseDataProviderView(
    const std::vector<uint8_t>& payload) {
  BufferReader reader(payload);
  PPS_ASSIGN_OR_RETURN(InferencePlan view,
                       InferencePlan::DeserializeDataProviderView(&reader));
  PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, WireMethod::kHandshake));
  return std::make_shared<const InferencePlan>(std::move(view));
}

Result<std::shared_ptr<const InferencePlan>> HandshakeAsDataProvider(
    FrameChannel& channel, const PaillierPublicKey& pk) {
  BufferWriter writer;
  pk.Serialize(&writer);
  PPS_ASSIGN_OR_RETURN(
      WireFrame response,
      channel.RoundTrip(MakeRequestFrame(WireMethod::kHandshake, 0, 0,
                                         writer.TakeBytes())));
  PPS_RETURN_IF_ERROR(FrameStatus(response));
  return ParseDataProviderView(response.payload);
}

// ----------------------------------------------------- resilient channel

namespace {

std::vector<uint8_t> SerializePublicKey(const PaillierPublicKey& pk) {
  BufferWriter writer;
  pk.Serialize(&writer);
  return writer.TakeBytes();
}

/// Sleep bounded by the active DeadlineScope (never sleeps past it).
void BackoffSleep(double seconds) {
  seconds = std::min(seconds, std::max(0.0, DeadlineScope::RemainingSeconds()));
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

Result<std::shared_ptr<ResilientTcpChannel>> ResilientTcpChannel::Dial(
    const std::string& host, uint16_t port, const PaillierPublicKey& pk,
    const TcpTransportOptions& options) {
  std::shared_ptr<ResilientTcpChannel> channel(
      // ppslint:allow(R5 make_shared cannot reach the private ctor; ownership transfers to the shared_ptr on the same line)
      new ResilientTcpChannel(host, port, pk, options));
  if (options.fault) channel->SetFaultInjector(options.fault);

  // Initial dial, paced by connect_retry — lets a client start before
  // its server finishes binding (reconnect_retry takes over once a
  // connection has ever been established).
  Rng rng(options.retry_seed);
  const double start = MonotonicSeconds();
  Status status = channel->EnsureConnected();
  for (int retry = 1; !status.ok() && retry <= options.connect_retry.max_retries;
       ++retry) {
    if (options.connect_retry.deadline_seconds > 0 &&
        MonotonicSeconds() - start >= options.connect_retry.deadline_seconds) {
      return Status::DeadlineExceeded(internal::StrCat(
          "could not connect to ", host, ":", port, " within ",
          options.connect_retry.deadline_seconds, "s: ", status.message()));
    }
    const double backoff = options.connect_retry.BackoffSeconds(retry, rng);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    status = channel->EnsureConnected();
  }
  PPS_RETURN_IF_ERROR(status);
  return channel;
}

ResilientTcpChannel::ResilientTcpChannel(std::string host, uint16_t port,
                                         PaillierPublicKey pk,
                                         const TcpTransportOptions& options)
    : host_(std::move(host)),
      port_(port),
      pk_(std::move(pk)),
      options_(options),
      breaker_(options.breaker),
      backoff_rng_(options.retry_seed ^ 0x5E55C4A1ULL) {}

void ResilientTcpChannel::Close() {
  socket_.Close();
  connected_ = false;
}

FrameStamp ResilientTcpChannel::Stamp(const WireFrame& request) {
  FrameStamp stamp;
  stamp.session_id = session_id_;
  // Pings are liveness probes, not protocol calls: they skip the
  // sequence stream so they never occupy reply-cache slots.
  if (!request.is_response && request.method != WireMethod::kPing) {
    stamp.sequence = ++next_sequence_;
  }
  stamp.deadline_micros = DeadlineScope::RemainingMicros();
  return stamp;
}

Status ResilientTcpChannel::HandshakeOnSocket(bool initial_dial) {
  WireFrame hello =
      MakeRequestFrame(WireMethod::kHandshake, 0, 0, SerializePublicKey(pk_));
  hello.session_id = session_id_;
  hello.session_request = session_id_ == 0;
  PPS_RETURN_IF_ERROR(SendFrameBytes(socket_, EncodeFrame(hello),
                                     options_.io_timeout_seconds));
  PPS_ASSIGN_OR_RETURN(WireFrame response,
                       RecvFrame(socket_, options_.io_timeout_seconds));
  if (!response.is_response || response.method != WireMethod::kHandshake) {
    return Status::ProtocolError("peer did not answer the handshake");
  }
  const Status status = FrameStatus(response);
  if (!status.ok()) {
    if (status.code() == StatusCode::kNotFound && session_id_ != 0) {
      // The server no longer knows our session (restart or eviction):
      // its permutations and our sequence history are gone. Clear the id
      // so the next handshake starts fresh, and tell the caller to
      // restart the inference.
      session_id_ = 0;
      session_id_atomic_.store(0, std::memory_order_relaxed);
      obs::MetricsRegistry::Global()
          .GetCounter("net.session.lost")
          ->Increment();
      return Status::NotFound(internal::StrCat(
          "session lost, restart the inference: ", status.message()));
    }
    return status;
  }
  if (view_payload_.empty()) {
    view_payload_ = response.payload;
  } else if (view_payload_ != response.payload) {
    // A resumed or re-handshaken connection must serve the same model.
    return Status::ProtocolError(
        "plan view changed across reconnect; refusing to resume");
  }
  session_id_ = response.session_id;
  session_id_atomic_.store(session_id_, std::memory_order_relaxed);
  if (!initial_dial) {
    // The resume-gating session id stays out of logs; whether a session
    // was resumed at all is the operationally interesting bit.
    PPS_SLOG(Info, "net.reconnected")
        .Kv("resumed", response.session_id != 0);
  }
  return Status::OK();
}

Status ResilientTcpChannel::EnsureConnected() {
  if (connected_) return Status::OK();
  if (DeadlineScope::Expired()) {
    return Status::DeadlineExceeded("request deadline expired before redial");
  }
  const double start = MonotonicSeconds();
  const bool initial_dial = !ever_connected_;
  PPS_ASSIGN_OR_RETURN(
      socket_,
      TcpSocket::Connect(host_, port_, options_.connect_timeout_seconds));
  const Status handshake = HandshakeOnSocket(initial_dial);
  if (!handshake.ok()) {
    socket_.Close();
    return handshake;
  }
  connected_ = true;
  ever_connected_ = true;
  if (!initial_dial) {
    reconnects_atomic_.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::Get().reconnects->Increment();
    NetMetrics::Get().reconnect_seconds->Record(MonotonicSeconds() - start);
    // A successful reconnect marks the end of an incident window — worth
    // a flight-recorder breadcrumb next to the failure that caused it.
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (recorder.enabled()) {
      recorder.RecordEvent("net.reconnect", session_id_ != 0
                                                ? "session resumed"
                                                : "fresh handshake");
    }
  }
  return Status::OK();
}

bool ResilientTcpChannel::PeerAlive() {
  // Bounded and out-of-band: a throwaway connection and a ping frame.
  // The server answers pings before any handshake, so this works even
  // while our half-open session sits in its accept backlog.
  const double timeout = std::min(2.0, options_.connect_timeout_seconds);
  Result<TcpSocket> probe = TcpSocket::Connect(host_, port_, timeout);
  if (!probe.ok()) return false;
  NetMetrics::Get().pings->Increment();
  const WireFrame ping = MakeRequestFrame(WireMethod::kPing, 0, 0, {});
  if (!SendFrameBytes(*probe, EncodeFrame(ping),
                      std::min(2.0, options_.io_timeout_seconds))
           .ok()) {
    return false;
  }
  Result<WireFrame> pong =
      RecvFrame(*probe, std::min(2.0, options_.io_timeout_seconds));
  return pong.ok() && pong->is_response &&
         pong->method == WireMethod::kPing;
}

Status ResilientTcpChannel::Ping() {
  PPS_ASSIGN_OR_RETURN(
      WireFrame pong,
      RoundTrip(MakeRequestFrame(WireMethod::kPing, 0, 0, {})));
  NetMetrics::Get().pings->Increment();
  return FrameStatus(pong);
}

Result<std::vector<uint8_t>> ResilientTcpChannel::Exchange(
    std::vector<uint8_t> encoded_request) {
  Status last = Status::IoError("exchange never attempted");
  const int max_attempts = std::max(0, options_.reconnect_retry.max_retries);
  for (int attempt = 0; attempt <= max_attempts; ++attempt) {
    if (attempt > 0) {
      BackoffSleep(
          options_.reconnect_retry.BackoffSeconds(attempt, backoff_rng_));
    }
    if (DeadlineScope::Expired()) {
      return Status::DeadlineExceeded(internal::StrCat(
          "request deadline expired mid-call: ", last.message()));
    }
    if (!breaker_.Allow()) {
      return Status::Unavailable(internal::StrCat(
          "circuit breaker open to ", host_, ":", port_, " after: ",
          last.message()));
    }

    const Status conn = EnsureConnected();
    if (!conn.ok()) {
      if (conn.code() == StatusCode::kNotFound) {
        // Session lost is not retryable at this layer: the inference
        // must restart. The peer answered, so the breaker is healthy.
        breaker_.RecordSuccess();
        return conn;
      }
      breaker_.RecordFailure();
      last = conn;
      continue;
    }

    // Connected: everything past here is one physical wire attempt
    // (injected resets/truncations model that attempt dying on the wire).
    NetMetrics::Get().exchange_attempts->Increment();

    // Socket-level chaos, injected below the frame layer: stalls, RSTs,
    // and truncated frames the reconnect path must absorb.
    bool truncate = false;
    if (fault_ && fault_->enabled()) {
      fault_->Delay("net.sock.stall");
      const Status reset = fault_->Fail("net.sock.reset");
      if (!reset.ok()) {
        Close();
        breaker_.RecordFailure();
        last = Status::IoError(internal::StrCat(
            "injected connection reset: ", reset.message()));
        continue;
      }
      std::vector<uint8_t> coin{0};
      truncate = fault_->Corrupt("net.sock.truncate", coin);
    }
    if (truncate) {
      const size_t half = encoded_request.size() / 2;
      (void)socket_.SendAll(encoded_request.data(), half,
                            options_.io_timeout_seconds);
      Close();  // the peer sees a frame cut off mid-stream
      breaker_.RecordFailure();
      last = Status::IoError("injected truncated frame");
      continue;
    }

    const Status sent = SendFrameBytes(socket_, encoded_request,
                                       options_.io_timeout_seconds);
    if (!sent.ok()) {
      Close();
      breaker_.RecordFailure();
      last = sent;
      continue;
    }
    Result<std::vector<uint8_t>> response =
        RecvFrameBytes(socket_, options_.io_timeout_seconds);
    if (response.ok()) {
      breaker_.RecordSuccess();
      return response;
    }
    last = response.status();
    Close();
    if (last.code() == StatusCode::kDeadlineExceeded && PeerAlive()) {
      // Slow, not dead: keep the breaker closed and let the retry loop
      // (and the caller's deadline) decide how long to keep waiting.
      continue;
    }
    breaker_.RecordFailure();
  }
  return Status(last.code(),
                internal::StrCat(last.message(), " (after ", max_attempts + 1,
                                 " attempts)"));
}

// ------------------------------------------------------------- transport

TcpTransport::TcpTransport(std::shared_ptr<FrameChannel> channel,
                           std::shared_ptr<const InferencePlan> view_plan)
    : channel_(std::move(channel)), view_plan_(std::move(view_plan)) {
  mp_ = std::make_shared<RemoteModelProvider>(channel_, view_plan_);
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, const PaillierPublicKey& pk,
    const TcpTransportOptions& options) {
  if (options.enable_session_resume) {
    PPS_ASSIGN_OR_RETURN(std::shared_ptr<ResilientTcpChannel> channel,
                         ResilientTcpChannel::Dial(host, port, pk, options));
    PPS_ASSIGN_OR_RETURN(std::shared_ptr<const InferencePlan> view,
                         ParseDataProviderView(channel->view_payload()));
    return std::unique_ptr<TcpTransport>(
        // ppslint:allow(R5 make_unique cannot reach the private ctor; ownership transfers to the unique_ptr on the same line)
        new TcpTransport(std::move(channel), std::move(view)));
  }

  Rng rng(options.retry_seed);
  const double start = MonotonicSeconds();
  Result<TcpSocket> sock =
      TcpSocket::Connect(host, port, options.connect_timeout_seconds);
  for (int retry = 1;
       !sock.ok() && retry <= options.connect_retry.max_retries; ++retry) {
    if (options.connect_retry.deadline_seconds > 0 &&
        MonotonicSeconds() - start >= options.connect_retry.deadline_seconds) {
      return Status::DeadlineExceeded(internal::StrCat(
          "could not connect to ", host, ":", port, " within ",
          options.connect_retry.deadline_seconds, "s: ",
          sock.status().message()));
    }
    const double backoff = options.connect_retry.BackoffSeconds(retry, rng);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    sock = TcpSocket::Connect(host, port, options.connect_timeout_seconds);
  }
  if (!sock.ok()) return sock.status();

  auto channel = std::make_shared<TcpFrameChannel>(std::move(sock).value(),
                                                   options.io_timeout_seconds);
  if (options.fault) channel->SetFaultInjector(options.fault);
  PPS_ASSIGN_OR_RETURN(std::shared_ptr<const InferencePlan> view,
                       HandshakeAsDataProvider(*channel, pk));
  return std::unique_ptr<TcpTransport>(
      // ppslint:allow(R5 make_unique cannot reach the private ctor; ownership transfers to the unique_ptr on the same line)
      new TcpTransport(std::move(channel), std::move(view)));
}

// ----------------------------------------------------- resilient driver

namespace {

/// Failures worth a whole-inference restart: the transport (or the
/// peer's session state) died, not the computation itself.
bool RestartableFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIoError:      // connection died past resume retries
    case StatusCode::kUnavailable:  // breaker open / server draining
    case StatusCode::kNotFound:     // session lost (server restarted)
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<DoubleTensor> RunResilientInference(
    ModelProviderApi& mp, DataProviderApi& dp, uint64_t request_id,
    const DoubleTensor& input, const ResilientInferenceOptions& options) {
  Rng rng(options.retry_seed ^ request_id);
  const double start = MonotonicSeconds();
  Status last = Status::OK();
  const int max_restarts = std::max(0, options.restart.max_retries);
  for (int attempt = 0; attempt <= max_restarts; ++attempt) {
    if (attempt > 0) {
      NetMetrics::Get().inference_restarts->Increment();
      const double backoff = options.restart.BackoffSeconds(attempt, rng);
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
    double budget = 0;
    if (options.deadline_seconds > 0) {
      budget = options.deadline_seconds - (MonotonicSeconds() - start);
      if (budget <= 0) {
        return Status::DeadlineExceeded(internal::StrCat(
            "inference deadline of ", options.deadline_seconds,
            "s expired after ", attempt, " attempt(s): ", last.message()));
      }
    }
    DeadlineScope scope(budget);
    // Restarts run under a derived request id: the failed attempt may
    // have left per-request permutation state on a surviving server, and
    // the two must never alias. Bit-exactness is unaffected — the output
    // is invariant to permutation and randomizer choices.
    const uint64_t effective_id =
        attempt == 0 ? request_id
                     : request_id ^ (0xA77E000000000000ULL +
                                     (static_cast<uint64_t>(attempt) << 48));
    Result<DoubleTensor> out =
        RunProtocolInference(mp, dp, effective_id, input);
    if (out.ok()) return out;
    last = out.status();
    if (!RestartableFailure(last)) return last;
    // Best effort: drop any half-built state for the failed id so a
    // surviving server does not accumulate orphaned permutations.
    (void)mp.ReleaseRequestState(effective_id);
    PPS_SLOG(Warn, "net.inference_restart")
        .Kv("request", request_id)
        .Kv("attempt", attempt + 1)
        .Kv("error", last.ToString());
  }
  return Status(last.code(),
                internal::StrCat(last.message(), " (after ", max_restarts + 1,
                                 " inference attempts)"));
}

}  // namespace ppstream
