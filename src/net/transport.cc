#include "net/transport.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/message.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppstream {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Channel-level registry metrics, shared by every FrameChannel in the
/// process (per-channel numbers stay available via FrameChannel::stats).
struct NetMetrics {
  obs::Counter* frames_sent;
  obs::Counter* frames_received;
  obs::Counter* bytes_sent;
  obs::Counter* bytes_received;
  obs::Histogram* roundtrip_seconds;

  static const NetMetrics& Get() {
    static const NetMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return NetMetrics{registry.GetCounter("net.frames_sent"),
                        registry.GetCounter("net.frames_received"),
                        registry.GetCounter("net.bytes_sent"),
                        registry.GetCounter("net.bytes_received"),
                        registry.GetHistogram("net.roundtrip_seconds")};
    }();
    return metrics;
  }
};

Status CheckPayloadConsumed(const BufferReader& reader, WireMethod method) {
  if (!reader.AtEnd()) {
    return Status::ProtocolError(internal::StrCat(
        "trailing bytes after ", WireMethodToString(method), " payload"));
  }
  return Status::OK();
}

std::vector<uint8_t> CiphertextPayload(const std::vector<Ciphertext>& v) {
  BufferWriter writer;
  WriteCiphertexts(&writer, v);
  return writer.TakeBytes();
}

}  // namespace

// -------------------------------------------------------------- channels

Result<WireFrame> FrameChannel::RoundTrip(const WireFrame& request) {
  // The span is the caller-visible round trip; its (trace, span) pair is
  // stamped into the frame header, so the server's rpc.<Method> span
  // parents to it across the process boundary.
  obs::ScopedSpan span("net.", "net", request.request_id,
                       WireMethodToString(request.method));
  const NetMetrics& net = NetMetrics::Get();
  const double start = MonotonicSeconds();

  std::lock_guard<std::mutex> lock(mutex_);
  const obs::TraceContext ctx = span.context();
  std::vector<uint8_t> encoded =
      (ctx.active() && !request.traced())
          ? EncodeFrameWithTrace(request, ctx.trace_id, ctx.span_id)
          : EncodeFrame(request);
  if (fault_ && fault_->enabled()) {
    PPS_RETURN_IF_ERROR(fault_->Fail("net.send"));
    fault_->Corrupt("net.send", encoded);
  }
  if (observer_) observer_(request, /*outbound=*/true);
  stats_.frames_sent++;
  stats_.bytes_sent += encoded.size();
  net.frames_sent->Increment();
  net.bytes_sent->Increment(encoded.size());

  PPS_ASSIGN_OR_RETURN(std::vector<uint8_t> response_bytes,
                       Exchange(std::move(encoded)));
  stats_.frames_received++;
  stats_.bytes_received += response_bytes.size();
  net.frames_received->Increment();
  net.bytes_received->Increment(response_bytes.size());
  net.roundtrip_seconds->Record(MonotonicSeconds() - start);
  if (fault_ && fault_->enabled()) {
    PPS_RETURN_IF_ERROR(fault_->Fail("net.recv"));
    fault_->Corrupt("net.recv", response_bytes);
  }

  PPS_ASSIGN_OR_RETURN(WireFrame response, DecodeFrame(response_bytes));
  if (observer_) observer_(response, /*outbound=*/false);
  if (!response.is_response || response.method != request.method ||
      response.request_id != request.request_id) {
    return Status::ProtocolError(internal::StrCat(
        "mismatched response: sent ", WireMethodToString(request.method),
        " for request ", request.request_id, ", got ",
        WireMethodToString(response.method), " for request ",
        response.request_id, response.is_response ? "" : " (a request frame)"));
  }
  return response;
}

TransportStats FrameChannel::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<std::vector<uint8_t>> InProcessFrameChannel::Exchange(
    std::vector<uint8_t> encoded_request) {
  // The full wire path in memory: a corrupted request fails decode here,
  // exactly where a TCP server would reject it.
  PPS_ASSIGN_OR_RETURN(WireFrame request, DecodeFrame(encoded_request));
  return EncodeFrame(handler_(request));
}

namespace {

/// Reads one whole frame (revision 1 or 2 header + payload) into a
/// contiguous buffer: the fixed 34-byte prefix first, then — once the
/// validated version says so — the trace block, then the payload.
Result<std::vector<uint8_t>> RecvFrameBytes(TcpSocket& socket,
                                            double timeout_seconds) {
  std::vector<uint8_t> bytes(kFrameHeaderBytes);
  PPS_RETURN_IF_ERROR(
      socket.RecvAll(bytes.data(), kFrameHeaderBytes, timeout_seconds));
  PPS_ASSIGN_OR_RETURN(uint16_t version,
                       PeekFrameVersion(bytes.data(), bytes.size()));
  const size_t header_bytes = FrameHeaderBytesFor(version);
  if (header_bytes > kFrameHeaderBytes) {
    bytes.resize(header_bytes);
    PPS_RETURN_IF_ERROR(socket.RecvAll(bytes.data() + kFrameHeaderBytes,
                                       header_bytes - kFrameHeaderBytes,
                                       timeout_seconds));
  }
  uint64_t payload_len = 0;
  PPS_RETURN_IF_ERROR(
      DecodeFrameHeader(bytes.data(), bytes.size(), &payload_len).status());
  bytes.resize(header_bytes + payload_len);
  if (payload_len > 0) {
    PPS_RETURN_IF_ERROR(socket.RecvAll(bytes.data() + header_bytes,
                                       payload_len, timeout_seconds));
  }
  return bytes;
}

}  // namespace

Result<std::vector<uint8_t>> TcpFrameChannel::Exchange(
    std::vector<uint8_t> encoded_request) {
  {
    obs::ScopedSpan send_span("net.send", "net");
    PPS_RETURN_IF_ERROR(socket_.SendAll(encoded_request.data(),
                                        encoded_request.size(),
                                        io_timeout_seconds_));
  }
  obs::ScopedSpan recv_span("net.recv", "net");
  return RecvFrameBytes(socket_, io_timeout_seconds_);
}

// ---------------------------------------------------------------- server

Status SendFrameBytes(TcpSocket& socket, const std::vector<uint8_t>& bytes,
                      double timeout_seconds) {
  return socket.SendAll(bytes.data(), bytes.size(), timeout_seconds);
}

Result<WireFrame> RecvFrame(TcpSocket& socket, double timeout_seconds) {
  PPS_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       RecvFrameBytes(socket, timeout_seconds));
  return DecodeFrame(bytes);
}

namespace {

Result<std::vector<uint8_t>> DispatchModelProviderPayload(
    ModelProviderApi& mp, const WireFrame& request, ThreadPool* pool) {
  BufferReader reader(request.payload);
  switch (request.method) {
    case WireMethod::kMpProcessRound: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          mp.ProcessRound(request.request_id, request.round, in));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpInverseObfuscate: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                           mp.InverseObfuscate(request.request_id,
                                               request.round, std::move(in)));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpApplyLinearStage: {
      PPS_ASSIGN_OR_RETURN(uint8_t partitioning, reader.ReadU8());
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          mp.ApplyLinearStage(request.round, in, pool, partitioning != 0));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpObfuscate: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          mp.Obfuscate(request.request_id, request.round, std::move(in)));
      return CiphertextPayload(out);
    }
    case WireMethod::kMpReleaseRequestState: {
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_RETURN_IF_ERROR(mp.ReleaseRequestState(request.request_id));
      return std::vector<uint8_t>{};
    }
    default:
      // Includes every Dp* method: the model provider refuses calls that
      // would put plaintext tensors in its hands.
      return Status::ProtocolError(internal::StrCat(
          WireMethodToString(request.method),
          " is not served by a model provider"));
  }
}

Result<std::vector<uint8_t>> DispatchDataProviderPayload(
    DataProviderApi& dp, const WireFrame& request, ThreadPool* pool) {
  BufferReader reader(request.payload);
  switch (request.method) {
    case WireMethod::kDpEncryptInput: {
      PPS_ASSIGN_OR_RETURN(DoubleTensor input,
                           DeserializeDoubleTensor(request.payload));
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> out,
                           pool ? dp.EncryptInputParallel(input, pool)
                                : dp.EncryptInput(input));
      return CiphertextPayload(out);
    }
    case WireMethod::kDpProcessIntermediate: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(
          std::vector<Ciphertext> out,
          dp.ProcessIntermediate(request.round, in, nullptr, pool));
      return CiphertextPayload(out);
    }
    case WireMethod::kDpProcessFinal: {
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> in,
                           ReadCiphertexts(&reader));
      PPS_RETURN_IF_ERROR(CheckPayloadConsumed(reader, request.method));
      PPS_ASSIGN_OR_RETURN(DoubleTensor out, dp.ProcessFinal(in, pool));
      return SerializeDoubleTensor(out);
    }
    default:
      return Status::ProtocolError(internal::StrCat(
          WireMethodToString(request.method),
          " is not served by a data provider"));
  }
}

}  // namespace

WireFrame DispatchModelProviderFrame(ModelProviderApi& mp,
                                     const WireFrame& request,
                                     ThreadPool* pool) {
  if (request.is_response) {
    return MakeErrorFrame(request,
                          Status::ProtocolError("expected a request frame"));
  }
  // Resume the caller's trace from the wire-carried trace block: this
  // server-side span (and any crypto spans nested inside the provider)
  // parents to the client's in-flight net.<Method> span.
  obs::ScopedSpan span(
      obs::TraceContext{request.trace_id, request.parent_span_id}, "rpc.",
      "rpc", request.request_id, WireMethodToString(request.method));
  Result<std::vector<uint8_t>> payload =
      DispatchModelProviderPayload(mp, request, pool);
  if (!payload.ok()) return MakeErrorFrame(request, payload.status());
  return MakeResponseFrame(request, std::move(payload).value());
}

WireFrame DispatchDataProviderFrame(DataProviderApi& dp,
                                    const WireFrame& request,
                                    ThreadPool* pool) {
  if (request.is_response) {
    return MakeErrorFrame(request,
                          Status::ProtocolError("expected a request frame"));
  }
  obs::ScopedSpan span(
      obs::TraceContext{request.trace_id, request.parent_span_id}, "rpc.",
      "rpc", request.request_id, WireMethodToString(request.method));
  Result<std::vector<uint8_t>> payload =
      DispatchDataProviderPayload(dp, request, pool);
  if (!payload.ok()) return MakeErrorFrame(request, payload.status());
  return MakeResponseFrame(request, std::move(payload).value());
}

// ---------------------------------------------------------------- stubs

namespace {

/// Round-trips a request whose response payload is a ciphertext vector.
Result<std::vector<Ciphertext>> CallForCiphertexts(FrameChannel& channel,
                                                   WireFrame request) {
  PPS_ASSIGN_OR_RETURN(WireFrame response,
                       channel.RoundTrip(std::move(request)));
  PPS_RETURN_IF_ERROR(FrameStatus(response));
  return DeserializeCiphertexts(response.payload);
}

}  // namespace

RemoteModelProvider::RemoteModelProvider(
    std::shared_ptr<FrameChannel> channel,
    std::shared_ptr<const InferencePlan> view_plan)
    : channel_(std::move(channel)), view_plan_(std::move(view_plan)) {
  PPS_CHECK(channel_ != nullptr);
  PPS_CHECK(view_plan_ != nullptr);
}

Result<std::vector<Ciphertext>> RemoteModelProvider::ProcessRound(
    uint64_t request_id, size_t round, const std::vector<Ciphertext>& in) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpProcessRound, request_id,
                                  round, CiphertextPayload(in)));
}

Result<std::vector<Ciphertext>> RemoteModelProvider::InverseObfuscate(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpInverseObfuscate, request_id,
                                  round, CiphertextPayload(in)));
}

Result<std::vector<Ciphertext>> RemoteModelProvider::ApplyLinearStage(
    size_t round, const std::vector<Ciphertext>& in, ThreadPool* pool,
    bool input_partitioning) {
  // `pool` is the caller's local parallelism; the remote provider computes
  // with its own worker pool, so only the partitioning hint crosses.
  (void)pool;
  BufferWriter writer;
  writer.WriteU8(input_partitioning ? 1 : 0);
  WriteCiphertexts(&writer, in);
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpApplyLinearStage, 0, round,
                                  writer.TakeBytes()));
}

Result<std::vector<Ciphertext>> RemoteModelProvider::Obfuscate(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kMpObfuscate, request_id, round,
                                  CiphertextPayload(in)));
}

Status RemoteModelProvider::ReleaseRequestState(uint64_t request_id) {
  PPS_ASSIGN_OR_RETURN(
      WireFrame response,
      channel_->RoundTrip(MakeRequestFrame(WireMethod::kMpReleaseRequestState,
                                           request_id, 0, {})));
  return FrameStatus(response);
}

RemoteDataProvider::RemoteDataProvider(std::shared_ptr<FrameChannel> channel,
                                       PaillierPublicKey public_key)
    : channel_(std::move(channel)), pk_(std::move(public_key)) {
  PPS_CHECK(channel_ != nullptr);
}

Result<std::vector<Ciphertext>> RemoteDataProvider::EncryptInput(
    const DoubleTensor& input) {
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kDpEncryptInput, 0, 0,
                                  SerializeDoubleTensor(input)));
}

Result<std::vector<Ciphertext>> RemoteDataProvider::EncryptInputParallel(
    const DoubleTensor& input, ThreadPool* pool) {
  (void)pool;  // the remote data provider parallelizes with its own pool
  return EncryptInput(input);
}

Result<std::vector<Ciphertext>> RemoteDataProvider::ProcessIntermediate(
    size_t round, const std::vector<Ciphertext>& in,
    std::vector<double>* decrypted_view, ThreadPool* pool) {
  if (decrypted_view != nullptr) {
    return Status::InvalidArgument(
        "leakage views require an in-process data provider: plaintext "
        "never crosses the wire");
  }
  (void)pool;
  return CallForCiphertexts(
      *channel_, MakeRequestFrame(WireMethod::kDpProcessIntermediate, 0,
                                  round, CiphertextPayload(in)));
}

Result<DoubleTensor> RemoteDataProvider::ProcessFinal(
    const std::vector<Ciphertext>& in, ThreadPool* pool) {
  (void)pool;
  PPS_ASSIGN_OR_RETURN(
      WireFrame response,
      channel_->RoundTrip(MakeRequestFrame(WireMethod::kDpProcessFinal, 0, 0,
                                           CiphertextPayload(in))));
  PPS_RETURN_IF_ERROR(FrameStatus(response));
  return DeserializeDoubleTensor(response.payload);
}

// ------------------------------------------------------------- transport

InProcessTransport::InProcessTransport(std::shared_ptr<ModelProvider> mp)
    : mp_(std::move(mp)) {
  PPS_CHECK(mp_ != nullptr);
  // Round-trip the weight-free view even in-process, so both deployments
  // construct their DataProvider from byte-identical plans.
  BufferWriter writer;
  mp_->plan().SerializeDataProviderView(&writer);
  const std::vector<uint8_t> bytes = writer.TakeBytes();
  BufferReader reader(bytes);
  Result<InferencePlan> view = InferencePlan::DeserializeDataProviderView(
      &reader);
  PPS_CHECK(view.ok()) << view.status().ToString();
  view_plan_ =
      std::make_shared<const InferencePlan>(std::move(view).value());
}

Result<std::shared_ptr<const InferencePlan>> HandshakeAsDataProvider(
    FrameChannel& channel, const PaillierPublicKey& pk) {
  BufferWriter writer;
  pk.Serialize(&writer);
  PPS_ASSIGN_OR_RETURN(
      WireFrame response,
      channel.RoundTrip(MakeRequestFrame(WireMethod::kHandshake, 0, 0,
                                         writer.TakeBytes())));
  PPS_RETURN_IF_ERROR(FrameStatus(response));
  BufferReader reader(response.payload);
  PPS_ASSIGN_OR_RETURN(InferencePlan view,
                       InferencePlan::DeserializeDataProviderView(&reader));
  PPS_RETURN_IF_ERROR(
      CheckPayloadConsumed(reader, WireMethod::kHandshake));
  return std::make_shared<const InferencePlan>(std::move(view));
}

TcpTransport::TcpTransport(std::shared_ptr<FrameChannel> channel,
                           std::shared_ptr<const InferencePlan> view_plan)
    : channel_(std::move(channel)), view_plan_(std::move(view_plan)) {
  mp_ = std::make_shared<RemoteModelProvider>(channel_, view_plan_);
}

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, const PaillierPublicKey& pk,
    const TcpTransportOptions& options) {
  Rng rng(options.retry_seed);
  const double start = MonotonicSeconds();
  Result<TcpSocket> sock =
      TcpSocket::Connect(host, port, options.connect_timeout_seconds);
  for (int retry = 1;
       !sock.ok() && retry <= options.connect_retry.max_retries; ++retry) {
    if (options.connect_retry.deadline_seconds > 0 &&
        MonotonicSeconds() - start >= options.connect_retry.deadline_seconds) {
      return Status::DeadlineExceeded(internal::StrCat(
          "could not connect to ", host, ":", port, " within ",
          options.connect_retry.deadline_seconds, "s: ",
          sock.status().message()));
    }
    const double backoff = options.connect_retry.BackoffSeconds(retry, rng);
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    sock = TcpSocket::Connect(host, port, options.connect_timeout_seconds);
  }
  if (!sock.ok()) return sock.status();

  auto channel = std::make_shared<TcpFrameChannel>(std::move(sock).value(),
                                                   options.io_timeout_seconds);
  if (options.fault) channel->SetFaultInjector(options.fault);
  PPS_ASSIGN_OR_RETURN(std::shared_ptr<const InferencePlan> view,
                       HandshakeAsDataProvider(*channel, pk));
  return std::unique_ptr<TcpTransport>(
      // ppslint:allow(R5 make_unique cannot reach the private ctor; ownership transfers to the unique_ptr on the same line)
      new TcpTransport(std::move(channel), std::move(view)));
}

}  // namespace ppstream
