// Model-provider TCP server: the weight-owning half of a two-process
// PP-Stream deployment (examples/mp_server.cpp is a thin main over this).
//
// Connection lifecycle:
//   1. accept; the first frame must be a kHandshake request carrying the
//      client's Paillier public key (kPing frames are answered even
//      before the handshake so liveness probes never need credentials);
//   2. build a fresh ModelProvider for the connection (per-connection
//      obfuscation seed) and reply with the plan's weight-free
//      data-provider view — weights never leave the process. When the
//      hello asks for a session (wire v3, session_request flag) the
//      provider is parked in a SessionRegistry and the response carries
//      the server-issued session id;
//   3. serve kMp* request frames until the peer disconnects. Malformed
//      frames and provider failures become error frames; only an
//      unrecoverable socket error ends the connection.
//
// Resume: a reconnecting client re-handshakes with its session id; the
// registry restores the parked ModelProvider (same permutations, same
// randomizer state) and the request loop continues where it left off.
// Requests whose sequence number was already served are answered from
// the session's reply cache instead of being re-executed — see
// net/session.h for why re-execution is never safe.
//
// Deadline shedding: a request frame carrying deadline_micros that has
// already expired by the time the server would dispatch it gets an
// error frame (kDeadlineExceeded) instead of burning Paillier CPU on an
// answer the client stopped waiting for.
//
// Shutdown vs drain:
//   Shutdown()    makes Serve() return promptly — a self-pipe cancels a
//                 blocked accept instead of riding out the poll timeout.
//                 An established connection keeps being served until its
//                 peer hangs up (legacy semantics).
//   BeginDrain()  additionally bounds in-flight work: no new connections
//                 are accepted, and the current connection's idle waits
//                 are cut off at the drain deadline.
//
// The server is deliberately single-connection-at-a-time (the two-party
// protocol is one DP talking to one MP); linear stages parallelize across
// an internal worker pool instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/protocol.h"
#include "net/session.h"
#include "net/socket.h"
#include "obs/admin.h"
#include "util/thread_pool.h"

namespace ppstream {

struct ModelProviderServerOptions {
  /// Worker threads for linear-stage parallelism; 0 serves single-threaded.
  size_t worker_threads = 0;
  /// Per-socket-operation timeout while serving an established connection.
  double io_timeout_seconds = 30.0;
  /// Accept poll granularity; Serve() re-checks the stop flag this often.
  /// (With the wakeup pipe this is a fallback, not the shutdown latency.)
  double accept_poll_seconds = 0.2;
  /// Base obfuscation seed; connection k uses obf_seed + k so permutation
  /// streams never repeat across connections.
  uint64_t obf_seed = 0x0BF5EEDULL;
  /// Session-resume layer bounds (enable_sessions = false refuses
  /// sessioned handshakes and serves exactly like the pre-session wire).
  SessionLayerOptions session;
  /// Observability side port (DESIGN.md §14): -1 disables the admin
  /// endpoint, 0 binds an ephemeral port (read back with admin_port()),
  /// >0 binds that port. Served by its own thread; see obs/admin.h.
  int admin_port = -1;
  /// Connections served concurrently by Serve(). 1 (the default) keeps
  /// the legacy single-connection-at-a-time behavior; >1 dispatches each
  /// accepted connection to its own thread — the saturation regime
  /// bench_serving sweeps. Each connection still gets its own
  /// ModelProvider/session, and sessions are exclusively attached to one
  /// connection at a time (a resume against a still-attached session is
  /// refused and the holder kicked — see SessionRegistry::Resume), so
  /// protocol state never crosses threads.
  size_t max_concurrent_connections = 1;
  /// Cardinality cap for the per-session labeled metric series
  /// (serving.*{session=...}, cost.*{session=...}). Labeled series live
  /// in the process-wide registry forever, so labeling by raw ordinal
  /// would grow the registry without bound under session churn; instead
  /// the label is `ordinal % session_metric_labels`, recycling at most
  /// this many label values per family. 0 disables per-session labels
  /// entirely (the unlabeled families still record every request).
  size_t session_metric_labels = 32;
};

class ModelProviderTcpServer {
 public:
  /// `plan` must be a full plan (with weights): it is the model being
  /// served. `port` 0 binds an ephemeral port — read it back with port().
  ModelProviderTcpServer(std::shared_ptr<const InferencePlan> plan,
                         ModelProviderServerOptions options = {});
  ~ModelProviderTcpServer();

  /// Binds and listens on 127.0.0.1:`port`; also starts the admin
  /// endpoint when options.admin_port >= 0.
  Status Listen(uint16_t port);

  uint16_t port() const { return listener_.port(); }

  /// Bound admin port (0 when the admin endpoint is disabled).
  uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }

  /// The /statusz JSON body: non-secret serving state only (session
  /// ordinals, occupancy, in-flight count, plan shape, pool counters —
  /// never session ids, keys, or randomizer state). Public so tests can
  /// assert its contents without a socket.
  std::string StatusJson() const;

  /// Accepts one connection and serves it to completion (peer disconnect
  /// or fatal socket error). DeadlineExceeded when nothing connected
  /// within `accept_timeout_seconds`.
  Status ServeOne(double accept_timeout_seconds);

  /// Accept-serve loop until Shutdown()/BeginDrain(). Accept timeouts are
  /// not errors — the loop polls so the stop flag stays responsive.
  Status Serve();

  /// Makes Serve() return after its current connection, waking a blocked
  /// accept immediately. Safe from any thread and from signal handlers
  /// (the wakeup is a single async-signal-safe write()).
  void Shutdown() {
    // Release pairs with the serve loops' acquire loads: anything the
    // stopping thread wrote (e.g. BeginDrain's deadline) is visible once
    // a loop observes the flag.
    stopping_.store(true, std::memory_order_release);
    wake_.Signal();
  }

  /// Graceful drain: stop accepting new connections now; give the
  /// in-flight connection (if any) `grace_seconds` to finish, then cut
  /// off its idle waits so Serve() returns. Implies Shutdown(). Safe to
  /// call from a signal handler (atomic stores and one pipe write).
  void BeginDrain(double grace_seconds);

  /// True once Shutdown() or BeginDrain() was requested.
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  /// Connections accepted so far (smoke tests assert progress).
  uint64_t connections_served() const {
    return connections_.load(std::memory_order_relaxed);
  }

  /// Live resumable sessions (tests assert create/evict behavior).
  size_t sessions_live() const { return sessions_.size(); }

  /// Requests currently being dispatched (serving.inflight mirror).
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  /// Handshake + request loop for one established connection.
  Status ServeConnection(TcpSocket socket);

  /// Serve() body for max_concurrent_connections > 1: accepted sockets
  /// fan out to per-connection threads, bounded by the option.
  Status ServeConcurrent();

  /// Slices a long idle wait into cancellable pieces: returns OK when a
  /// frame is readable, kDeadlineExceeded after io_timeout_seconds idle,
  /// kUnavailable once the drain deadline passes or `session` (may be
  /// null) was kicked by a resuming connection.
  Status WaitForRequest(TcpSocket& socket, const ServerSession* session);

  std::shared_ptr<const InferencePlan> plan_;
  ModelProviderServerOptions options_;
  TcpListener listener_;
  std::unique_ptr<ThreadPool> pool_;
  SessionRegistry sessions_;
  WakeupPipe wake_;
  std::atomic<bool> stopping_{false};
  /// Monotonic deadline once draining; 0 = not draining.
  std::atomic<double> drain_deadline_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> inflight_{0};
  std::unique_ptr<obs::AdminServer> admin_;
};

}  // namespace ppstream
