// Model-provider TCP server: the weight-owning half of a two-process
// PP-Stream deployment (examples/mp_server.cpp is a thin main over this).
//
// Connection lifecycle:
//   1. accept; the first frame must be a kHandshake request carrying the
//      client's Paillier public key;
//   2. build a fresh ModelProvider for the connection (per-connection
//      obfuscation seed) and reply with the plan's weight-free
//      data-provider view — weights never leave the process;
//   3. serve kMp* request frames until the peer disconnects. Malformed
//      frames and provider failures become error frames; only an
//      unrecoverable socket error ends the connection.
//
// The server is deliberately single-connection-at-a-time (the two-party
// protocol is one DP talking to one MP); linear stages parallelize across
// an internal worker pool instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/protocol.h"
#include "net/socket.h"
#include "util/thread_pool.h"

namespace ppstream {

struct ModelProviderServerOptions {
  /// Worker threads for linear-stage parallelism; 0 serves single-threaded.
  size_t worker_threads = 0;
  /// Per-socket-operation timeout while serving an established connection.
  double io_timeout_seconds = 30.0;
  /// Accept poll granularity; Serve() re-checks the stop flag this often.
  double accept_poll_seconds = 0.2;
  /// Base obfuscation seed; connection k uses obf_seed + k so permutation
  /// streams never repeat across connections.
  uint64_t obf_seed = 0x0BF5EEDULL;
};

class ModelProviderTcpServer {
 public:
  /// `plan` must be a full plan (with weights): it is the model being
  /// served. `port` 0 binds an ephemeral port — read it back with port().
  ModelProviderTcpServer(std::shared_ptr<const InferencePlan> plan,
                         ModelProviderServerOptions options = {});

  /// Binds and listens on 127.0.0.1:`port`.
  Status Listen(uint16_t port);

  uint16_t port() const { return listener_.port(); }

  /// Accepts one connection and serves it to completion (peer disconnect
  /// or fatal socket error). DeadlineExceeded when nothing connected
  /// within `accept_timeout_seconds`.
  Status ServeOne(double accept_timeout_seconds);

  /// Accept-serve loop until Shutdown(). Accept timeouts are not errors —
  /// the loop polls so the stop flag stays responsive.
  Status Serve();

  /// Makes Serve() return after its current connection. Safe from any
  /// thread (the intended use: signal handler or controlling thread).
  void Shutdown() { stopping_.store(true); }

  /// Connections accepted so far (smoke tests assert progress).
  uint64_t connections_served() const { return connections_.load(); }

 private:
  /// Handshake + request loop for one established connection.
  Status ServeConnection(TcpSocket socket);

  std::shared_ptr<const InferencePlan> plan_;
  ModelProviderServerOptions options_;
  TcpListener listener_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_{0};
};

}  // namespace ppstream
