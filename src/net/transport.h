// The party boundary of the two-party protocol (tentpole of DESIGN.md §7).
//
// Layering, bottom up:
//
//   FrameChannel         blocking request/response exchange of WireFrames.
//                        Implementations: InProcessFrameChannel (encode →
//                        dispatch → decode in memory) and TcpFrameChannel
//                        (blocking sockets with timeouts). Both honour
//                        FaultInjector sites "net.send" / "net.recv"
//                        (error + corruption rules) and an optional frame
//                        observer for capture-based privacy tests.
//
//   Dispatch*Frame       server side: decode a request, invoke the local
//                        ModelProviderApi / DataProviderApi, encode the
//                        response. Shared by the TCP server and the
//                        in-process channel.
//
//   RemoteModelProvider  client side: ModelProviderApi / DataProviderApi
//   RemoteDataProvider   implementations that frame every call onto a
//                        channel. Drop-in replacements for the concrete
//                        providers in RunProtocolInference and
//                        PpStreamEngine.
//
//   Transport            a data-provider-side connection to a (possibly
//                        remote) model provider after the handshake.
//                        InProcessTransport keeps the seed's zero-copy
//                        direct calls (default for tests/benches);
//                        TcpTransport speaks the wire format over loopback
//                        or LAN sockets.

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/protocol.h"
#include "net/socket.h"
#include "net/wire.h"
#include "stream/circuit_breaker.h"
#include "stream/retry_policy.h"
#include "util/thread_annotations.h"
#include "util/fault.h"

namespace ppstream {

/// Thread-local request deadline, propagated down through every transport
/// call made while the scope is alive: the channel stamps the remaining
/// budget into each frame's deadline_micros so the server can shed work
/// the client has already given up on. Scopes nest (the effective
/// deadline is the tightest enclosing one); a budget of 0 inherits the
/// enclosing scope unchanged.
class DeadlineScope {
 public:
  explicit DeadlineScope(double budget_seconds);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

  /// True when some enclosing scope set a deadline on this thread.
  static bool active();
  /// Remaining budget; infinity when no scope is active.
  static double RemainingSeconds();
  /// Remaining budget for the wire (0 = no deadline; clamped to at least
  /// 1µs while a scope is active so "expired" never reads as "none").
  static uint64_t RemainingMicros();
  static bool Expired();

 private:
  double previous_deadline_;
};

/// Traffic counters of a frame channel (header + payload bytes).
struct TransportStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// Observes every frame crossing a channel, after send / before decode-
/// level validation. `outbound` is true for request frames leaving this
/// side. Used by tests to assert what the peer can see.
using FrameObserver =
    std::function<void(const WireFrame& frame, bool outbound)>;

/// A blocking request/response channel to the peer party. Thread-safe:
/// concurrent RoundTrip calls are serialized (the two-party protocol is
/// strictly request/response per connection).
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// Sends `request`, waits for the matching response. Transport-level
  /// failures surface as kIoError / kDeadlineExceeded; a peer-side call
  /// failure comes back as a successful round trip whose frame carries
  /// the error (unwrapped by the remote stubs).
  Result<WireFrame> RoundTrip(const WireFrame& request);

  /// Chaos hook, sites "net.send" (before transmit, error + corruption)
  /// and "net.recv" (before the response is decoded, error + corruption).
  void SetFaultInjector(std::shared_ptr<FaultInjector> fault) {
    std::lock_guard<std::mutex> lock(mutex_);
    fault_ = std::move(fault);
  }

  void SetFrameObserver(FrameObserver observer) {
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = std::move(observer);
  }

  TransportStats stats() const;

  virtual void Close() {}

 protected:
  /// Implementation: exchange the already-corrupted encoded request for
  /// an encoded response. Called with the channel lock held.
  virtual Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) = 0;

  /// Header fields stamped at encode time. The base channel attaches the
  /// ambient trace context (or the frame's own); session-aware channels
  /// extend the stamp with session id, sequence number, and the
  /// remaining DeadlineScope budget. Called with the channel lock held.
  virtual FrameStamp Stamp(const WireFrame& request);

  // Written under mutex_ (SetFaultInjector); read by RoundTrip under the
  // lock and by derived Exchange bodies, which run with the channel lock
  // already held (see Exchange's contract). That cross-class contract is
  // not expressible as a guarded_by a derived override could satisfy.
  // ppslint:allow(R6 derived Exchange reads run under the channel lock per the virtual's contract)
  std::shared_ptr<FaultInjector> fault_;

 private:
  mutable std::mutex mutex_;
  FrameObserver observer_ PPS_GUARDED_BY(mutex_);
  TransportStats stats_ PPS_GUARDED_BY(mutex_);
};

/// Frames round-trip through a local handler entirely in memory — the full
/// encode → dispatch → decode path without sockets. Exists for frame
/// capture, corruption hardening, and wire-overhead benchmarks; the
/// zero-copy in-process deployment passes concrete providers around
/// instead (see InProcessTransport).
class InProcessFrameChannel : public FrameChannel {
 public:
  using Handler = std::function<WireFrame(const WireFrame&)>;
  explicit InProcessFrameChannel(Handler handler)
      : handler_(std::move(handler)) {}

 protected:
  Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) override;

 private:
  Handler handler_;
};

/// Blocking sockets with per-operation timeouts. Timeouts surface as
/// kDeadlineExceeded so the engine's RetryPolicy machinery treats a slow
/// peer exactly like a slow stage.
class TcpFrameChannel : public FrameChannel {
 public:
  TcpFrameChannel(TcpSocket socket, double io_timeout_seconds)
      : socket_(std::move(socket)), io_timeout_seconds_(io_timeout_seconds) {}

  void Close() override { socket_.Close(); }

 protected:
  Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) override;

 private:
  TcpSocket socket_;
  double io_timeout_seconds_;
};

// ---------------------------------------------------------------- server

/// Sends one frame / receives one whole frame (header + payload) over a
/// socket. Building blocks of TcpFrameChannel and the TCP servers.
Status SendFrameBytes(TcpSocket& socket, const std::vector<uint8_t>& bytes,
                      double timeout_seconds);
Result<WireFrame> RecvFrame(TcpSocket& socket, double timeout_seconds);

/// Decodes a model-provider-bound request, invokes `mp`, encodes the
/// response. Any failure (malformed payload, provider error, non-MP
/// method) becomes an error frame — never a crash. `pool` parallelizes
/// linear stages with the server's own threads.
WireFrame DispatchModelProviderFrame(ModelProviderApi& mp,
                                     const WireFrame& request,
                                     ThreadPool* pool = nullptr);

/// Data-provider mirror of DispatchModelProviderFrame.
WireFrame DispatchDataProviderFrame(DataProviderApi& dp,
                                    const WireFrame& request,
                                    ThreadPool* pool = nullptr);

// ---------------------------------------------------------------- stubs

/// ModelProviderApi over a FrameChannel. plan() returns the weight-free
/// data-provider view shipped back by the handshake.
class RemoteModelProvider : public ModelProviderApi {
 public:
  RemoteModelProvider(std::shared_ptr<FrameChannel> channel,
                      std::shared_ptr<const InferencePlan> view_plan);

  const InferencePlan& plan() const override { return *view_plan_; }

  /// Injects at the channel ("net.*" sites) — provider-side "mp.*" rules
  /// belong to the remote process.
  void SetFaultInjector(std::shared_ptr<FaultInjector> fault) override {
    channel_->SetFaultInjector(std::move(fault));
  }

  Result<std::vector<Ciphertext>> ProcessRound(
      uint64_t request_id, size_t round,
      const std::vector<Ciphertext>& in) override;
  Result<std::vector<Ciphertext>> InverseObfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) override;
  Result<std::vector<Ciphertext>> ApplyLinearStage(
      size_t round, const std::vector<Ciphertext>& in, ThreadPool* pool,
      bool input_partitioning) override;
  Result<std::vector<Ciphertext>> Obfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) override;
  Status ReleaseRequestState(uint64_t request_id) override;

  FrameChannel& channel() { return *channel_; }

 private:
  std::shared_ptr<FrameChannel> channel_;
  std::shared_ptr<const InferencePlan> view_plan_;
};

/// DataProviderApi over a FrameChannel (the reverse deployment: the
/// engine colocated with the model drives a remote data provider).
/// Rejects leakage-measurement views: plaintext never crosses the wire.
class RemoteDataProvider : public DataProviderApi {
 public:
  RemoteDataProvider(std::shared_ptr<FrameChannel> channel,
                     PaillierPublicKey public_key);

  const PaillierPublicKey& public_key() const override { return pk_; }

  void SetFaultInjector(std::shared_ptr<FaultInjector> fault) override {
    channel_->SetFaultInjector(std::move(fault));
  }

  Result<std::vector<Ciphertext>> EncryptInput(
      const DoubleTensor& input) override;
  Result<std::vector<Ciphertext>> EncryptInputParallel(
      const DoubleTensor& input, ThreadPool* pool) override;
  Result<std::vector<Ciphertext>> ProcessIntermediate(
      size_t round, const std::vector<Ciphertext>& in,
      std::vector<double>* decrypted_view, ThreadPool* pool) override;
  Result<DoubleTensor> ProcessFinal(const std::vector<Ciphertext>& in,
                                    ThreadPool* pool) override;

  FrameChannel& channel() { return *channel_; }

 private:
  std::shared_ptr<FrameChannel> channel_;
  PaillierPublicKey pk_;
};

// ------------------------------------------------------------- transport

/// A data-provider-side connection to a model provider, post-handshake.
class Transport {
 public:
  virtual ~Transport() = default;

  /// The handle all model-provider calls go through.
  virtual std::shared_ptr<ModelProviderApi> model_provider() const = 0;

  /// The weight-free plan for constructing the local DataProvider.
  virtual std::shared_ptr<const InferencePlan> view_plan() const = 0;

  virtual TransportStats stats() const { return {}; }
  virtual void Close() {}
};

/// Single-process transport: model_provider() hands back the concrete
/// local object, so calls stay direct C++ calls with zero serialization —
/// the seed's behavior and the default for tests and benches. view_plan()
/// still round-trips SerializeDataProviderView, proving the weight-free
/// view alone can drive the data-provider side.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(std::shared_ptr<ModelProvider> mp);

  std::shared_ptr<ModelProviderApi> model_provider() const override {
    return mp_;
  }
  std::shared_ptr<const InferencePlan> view_plan() const override {
    return view_plan_;
  }

 private:
  std::shared_ptr<ModelProvider> mp_;
  std::shared_ptr<const InferencePlan> view_plan_;
};

struct TcpTransportOptions {
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 30.0;
  /// Connection attempts are spaced by this policy (deadline_seconds
  /// bounds the total time spent connecting when non-zero) — lets a
  /// client start before its server finishes binding.
  RetryPolicy connect_retry = RetryPolicy::FromMaxRetries(0);
  uint64_t retry_seed = 0x7C9A11EDULL;
  std::shared_ptr<FaultInjector> fault;

  /// Session resume (wire revision 3): the handshake asks the server for
  /// a resumable session, calls carry sequence numbers and deadlines, and
  /// a dropped connection is transparently redialed and resumed
  /// mid-inference. Disabled, the transport is the pre-session
  /// TcpFrameChannel — bit-identical to wire revisions 1/2 on the wire.
  bool enable_session_resume = true;
  /// Backoff between reconnect attempts after an established connection
  /// dies (distinct from connect_retry, which paces the initial dial).
  RetryPolicy reconnect_retry = {.max_retries = 4,
                                 .initial_backoff_seconds = 0.05,
                                 .max_backoff_seconds = 0.5};
  /// Per-endpoint circuit breaker (closed → open → half-open) consulted
  /// before every dial/exchange; an open breaker fails calls fast with
  /// kUnavailable instead of rewaiting io timeouts against a dead peer.
  CircuitBreaker::Options breaker;
};

/// Session-resuming TCP channel: a TcpFrameChannel that survives the
/// network. Dial() connects and performs a session-requesting handshake;
/// after that, every RoundTrip is stamped with the session id, a fresh
/// sequence number, and the remaining DeadlineScope budget, and a
/// connection loss mid-call transparently redials, resumes the session,
/// and re-sends the same encoded frame (the server's reply cache
/// deduplicates by sequence, so non-idempotent calls never re-execute).
///
/// Failure taxonomy surfaced to callers:
///   kUnavailable       circuit breaker open — peer looks dead, fail fast
///   kNotFound          session lost (server restarted / evicted) — the
///                      crypto state is gone; restart the inference
///                      (RunResilientInference does exactly that)
///   kDeadlineExceeded  DeadlineScope expired, or the peer is alive but
///                      slower than the io timeout (verified via a ping
///                      probe, which does NOT penalize the breaker)
///
/// Chaos sites probed per exchange attempt (socket-level faults, below
/// the "net.send"/"net.recv" frame sites of the base channel):
///   net.sock.stall     latency rule: delay before the send
///   net.sock.reset     error rule: the connection is torn down as if the
///                      peer sent RST; the call reconnects and resends
///   net.sock.truncate  corruption rule: half the frame is sent, then the
///                      connection closes — the peer sees a truncated
///                      frame mid-stream
class ResilientTcpChannel : public FrameChannel {
 public:
  static Result<std::shared_ptr<ResilientTcpChannel>> Dial(
      const std::string& host, uint16_t port, const PaillierPublicKey& pk,
      const TcpTransportOptions& options = {});

  void Close() override;

  /// Server-issued session id (0 when the server declined sessions).
  uint64_t session_id() const {
    return session_id_atomic_.load(std::memory_order_relaxed);
  }
  /// Successful re-dials after the initial connect.
  uint64_t reconnects() const {
    return reconnects_atomic_.load(std::memory_order_relaxed);
  }

  /// Liveness probe through the resilient path (kPing round trip).
  Status Ping();

  CircuitBreaker& breaker() { return breaker_; }

  /// The handshake response body (weight-free plan view bytes).
  const std::vector<uint8_t>& view_payload() const { return view_payload_; }

 protected:
  FrameStamp Stamp(const WireFrame& request) override;
  Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) override;

 private:
  ResilientTcpChannel(std::string host, uint16_t port, PaillierPublicKey pk,
                      const TcpTransportOptions& options);

  /// Dial + handshake when not connected. kNotFound means the server no
  /// longer knows our session; the local session id is cleared so the
  /// next attempt starts a fresh session.
  Status EnsureConnected();
  Status HandshakeOnSocket(bool initial_dial);
  /// Out-of-band liveness check on a throwaway connection: distinguishes
  /// a slow peer (alive: retry without penalizing the breaker) from a
  /// dead one after an io timeout.
  bool PeerAlive();

  const std::string host_;
  const uint16_t port_;
  const PaillierPublicKey pk_;
  const TcpTransportOptions options_;
  CircuitBreaker breaker_;

  // ---- guarded by the FrameChannel round-trip lock (Stamp/Exchange are
  // only called with it held).
  Rng backoff_rng_;
  TcpSocket socket_;
  bool connected_ = false;
  bool ever_connected_ = false;
  uint64_t session_id_ = 0;
  uint64_t next_sequence_ = 0;
  std::vector<uint8_t> view_payload_;

  // Mirrors for lock-free external reads.
  std::atomic<uint64_t> session_id_atomic_{0};
  std::atomic<uint64_t> reconnects_atomic_{0};
};

/// TCP client transport. Connect() dials host:port, performs the
/// version handshake (ships the public key, receives the weight-free
/// plan view), and exposes a RemoteModelProvider. With
/// enable_session_resume (the default) the underlying channel is a
/// ResilientTcpChannel; disabled, it is the plain TcpFrameChannel and
/// the wire stays bit-identical to revisions 1/2.
class TcpTransport : public Transport {
 public:
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port, const PaillierPublicKey& pk,
      const TcpTransportOptions& options = {});

  std::shared_ptr<ModelProviderApi> model_provider() const override {
    return mp_;
  }
  std::shared_ptr<const InferencePlan> view_plan() const override {
    return view_plan_;
  }
  TransportStats stats() const override { return channel_->stats(); }
  void Close() override { channel_->Close(); }

  FrameChannel& channel() { return *channel_; }

 private:
  TcpTransport(std::shared_ptr<FrameChannel> channel,
               std::shared_ptr<const InferencePlan> view_plan);

  std::shared_ptr<FrameChannel> channel_;
  std::shared_ptr<const InferencePlan> view_plan_;
  std::shared_ptr<RemoteModelProvider> mp_;
};

/// Runs the client half of the handshake on an established channel:
/// sends `pk`, returns the deserialized weight-free plan view.
Result<std::shared_ptr<const InferencePlan>> HandshakeAsDataProvider(
    FrameChannel& channel, const PaillierPublicKey& pk);

/// Parses a handshake response body into a plan view.
Result<std::shared_ptr<const InferencePlan>> ParseDataProviderView(
    const std::vector<uint8_t>& payload);

// ----------------------------------------------------- resilient driver

struct ResilientInferenceOptions {
  /// Whole-inference restarts after a non-resumable transport failure
  /// (session lost, connection refused, breaker open). Each restart uses
  /// a derived request id, so no per-request server state is shared
  /// between attempts.
  RetryPolicy restart = {.max_retries = 2,
                         .initial_backoff_seconds = 0.05,
                         .max_backoff_seconds = 0.5};
  /// End-to-end budget across all attempts (0 = none). Published to the
  /// server via DeadlineScope → frame deadline_micros.
  double deadline_seconds = 0;
  uint64_t retry_seed = 0x5E55105EULL;
};

/// RunProtocolInference hardened against the network: opens a
/// DeadlineScope, and when an attempt dies of a transport-level failure
/// (kIoError / kUnavailable / kNotFound session loss) restarts the whole
/// inference under a derived request id. The protocol output is a pure
/// function of (plan, input) — permutation and randomizer choices cancel
/// out — so a restarted inference is bit-exact with an undisturbed one.
Result<DoubleTensor> RunResilientInference(
    ModelProviderApi& mp, DataProviderApi& dp, uint64_t request_id,
    const DoubleTensor& input, const ResilientInferenceOptions& options = {});

}  // namespace ppstream
