// The party boundary of the two-party protocol (tentpole of DESIGN.md §7).
//
// Layering, bottom up:
//
//   FrameChannel         blocking request/response exchange of WireFrames.
//                        Implementations: InProcessFrameChannel (encode →
//                        dispatch → decode in memory) and TcpFrameChannel
//                        (blocking sockets with timeouts). Both honour
//                        FaultInjector sites "net.send" / "net.recv"
//                        (error + corruption rules) and an optional frame
//                        observer for capture-based privacy tests.
//
//   Dispatch*Frame       server side: decode a request, invoke the local
//                        ModelProviderApi / DataProviderApi, encode the
//                        response. Shared by the TCP server and the
//                        in-process channel.
//
//   RemoteModelProvider  client side: ModelProviderApi / DataProviderApi
//   RemoteDataProvider   implementations that frame every call onto a
//                        channel. Drop-in replacements for the concrete
//                        providers in RunProtocolInference and
//                        PpStreamEngine.
//
//   Transport            a data-provider-side connection to a (possibly
//                        remote) model provider after the handshake.
//                        InProcessTransport keeps the seed's zero-copy
//                        direct calls (default for tests/benches);
//                        TcpTransport speaks the wire format over loopback
//                        or LAN sockets.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/protocol.h"
#include "net/socket.h"
#include "net/wire.h"
#include "stream/retry_policy.h"
#include "util/fault.h"

namespace ppstream {

/// Traffic counters of a frame channel (header + payload bytes).
struct TransportStats {
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// Observes every frame crossing a channel, after send / before decode-
/// level validation. `outbound` is true for request frames leaving this
/// side. Used by tests to assert what the peer can see.
using FrameObserver =
    std::function<void(const WireFrame& frame, bool outbound)>;

/// A blocking request/response channel to the peer party. Thread-safe:
/// concurrent RoundTrip calls are serialized (the two-party protocol is
/// strictly request/response per connection).
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// Sends `request`, waits for the matching response. Transport-level
  /// failures surface as kIoError / kDeadlineExceeded; a peer-side call
  /// failure comes back as a successful round trip whose frame carries
  /// the error (unwrapped by the remote stubs).
  Result<WireFrame> RoundTrip(const WireFrame& request);

  /// Chaos hook, sites "net.send" (before transmit, error + corruption)
  /// and "net.recv" (before the response is decoded, error + corruption).
  void SetFaultInjector(std::shared_ptr<FaultInjector> fault) {
    fault_ = std::move(fault);
  }

  void SetFrameObserver(FrameObserver observer) {
    observer_ = std::move(observer);
  }

  TransportStats stats() const;

  virtual void Close() {}

 protected:
  /// Implementation: exchange the already-corrupted encoded request for
  /// an encoded response. Called with the channel lock held.
  virtual Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) = 0;

  std::shared_ptr<FaultInjector> fault_;

 private:
  mutable std::mutex mutex_;
  FrameObserver observer_;
  TransportStats stats_;
};

/// Frames round-trip through a local handler entirely in memory — the full
/// encode → dispatch → decode path without sockets. Exists for frame
/// capture, corruption hardening, and wire-overhead benchmarks; the
/// zero-copy in-process deployment passes concrete providers around
/// instead (see InProcessTransport).
class InProcessFrameChannel : public FrameChannel {
 public:
  using Handler = std::function<WireFrame(const WireFrame&)>;
  explicit InProcessFrameChannel(Handler handler)
      : handler_(std::move(handler)) {}

 protected:
  Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) override;

 private:
  Handler handler_;
};

/// Blocking sockets with per-operation timeouts. Timeouts surface as
/// kDeadlineExceeded so the engine's RetryPolicy machinery treats a slow
/// peer exactly like a slow stage.
class TcpFrameChannel : public FrameChannel {
 public:
  TcpFrameChannel(TcpSocket socket, double io_timeout_seconds)
      : socket_(std::move(socket)), io_timeout_seconds_(io_timeout_seconds) {}

  void Close() override { socket_.Close(); }

 protected:
  Result<std::vector<uint8_t>> Exchange(
      std::vector<uint8_t> encoded_request) override;

 private:
  TcpSocket socket_;
  double io_timeout_seconds_;
};

// ---------------------------------------------------------------- server

/// Sends one frame / receives one whole frame (header + payload) over a
/// socket. Building blocks of TcpFrameChannel and the TCP servers.
Status SendFrameBytes(TcpSocket& socket, const std::vector<uint8_t>& bytes,
                      double timeout_seconds);
Result<WireFrame> RecvFrame(TcpSocket& socket, double timeout_seconds);

/// Decodes a model-provider-bound request, invokes `mp`, encodes the
/// response. Any failure (malformed payload, provider error, non-MP
/// method) becomes an error frame — never a crash. `pool` parallelizes
/// linear stages with the server's own threads.
WireFrame DispatchModelProviderFrame(ModelProviderApi& mp,
                                     const WireFrame& request,
                                     ThreadPool* pool = nullptr);

/// Data-provider mirror of DispatchModelProviderFrame.
WireFrame DispatchDataProviderFrame(DataProviderApi& dp,
                                    const WireFrame& request,
                                    ThreadPool* pool = nullptr);

// ---------------------------------------------------------------- stubs

/// ModelProviderApi over a FrameChannel. plan() returns the weight-free
/// data-provider view shipped back by the handshake.
class RemoteModelProvider : public ModelProviderApi {
 public:
  RemoteModelProvider(std::shared_ptr<FrameChannel> channel,
                      std::shared_ptr<const InferencePlan> view_plan);

  const InferencePlan& plan() const override { return *view_plan_; }

  /// Injects at the channel ("net.*" sites) — provider-side "mp.*" rules
  /// belong to the remote process.
  void SetFaultInjector(std::shared_ptr<FaultInjector> fault) override {
    channel_->SetFaultInjector(std::move(fault));
  }

  Result<std::vector<Ciphertext>> ProcessRound(
      uint64_t request_id, size_t round,
      const std::vector<Ciphertext>& in) override;
  Result<std::vector<Ciphertext>> InverseObfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) override;
  Result<std::vector<Ciphertext>> ApplyLinearStage(
      size_t round, const std::vector<Ciphertext>& in, ThreadPool* pool,
      bool input_partitioning) override;
  Result<std::vector<Ciphertext>> Obfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) override;
  Status ReleaseRequestState(uint64_t request_id) override;

  FrameChannel& channel() { return *channel_; }

 private:
  std::shared_ptr<FrameChannel> channel_;
  std::shared_ptr<const InferencePlan> view_plan_;
};

/// DataProviderApi over a FrameChannel (the reverse deployment: the
/// engine colocated with the model drives a remote data provider).
/// Rejects leakage-measurement views: plaintext never crosses the wire.
class RemoteDataProvider : public DataProviderApi {
 public:
  RemoteDataProvider(std::shared_ptr<FrameChannel> channel,
                     PaillierPublicKey public_key);

  const PaillierPublicKey& public_key() const override { return pk_; }

  void SetFaultInjector(std::shared_ptr<FaultInjector> fault) override {
    channel_->SetFaultInjector(std::move(fault));
  }

  Result<std::vector<Ciphertext>> EncryptInput(
      const DoubleTensor& input) override;
  Result<std::vector<Ciphertext>> EncryptInputParallel(
      const DoubleTensor& input, ThreadPool* pool) override;
  Result<std::vector<Ciphertext>> ProcessIntermediate(
      size_t round, const std::vector<Ciphertext>& in,
      std::vector<double>* decrypted_view, ThreadPool* pool) override;
  Result<DoubleTensor> ProcessFinal(const std::vector<Ciphertext>& in,
                                    ThreadPool* pool) override;

  FrameChannel& channel() { return *channel_; }

 private:
  std::shared_ptr<FrameChannel> channel_;
  PaillierPublicKey pk_;
};

// ------------------------------------------------------------- transport

/// A data-provider-side connection to a model provider, post-handshake.
class Transport {
 public:
  virtual ~Transport() = default;

  /// The handle all model-provider calls go through.
  virtual std::shared_ptr<ModelProviderApi> model_provider() const = 0;

  /// The weight-free plan for constructing the local DataProvider.
  virtual std::shared_ptr<const InferencePlan> view_plan() const = 0;

  virtual TransportStats stats() const { return {}; }
  virtual void Close() {}
};

/// Single-process transport: model_provider() hands back the concrete
/// local object, so calls stay direct C++ calls with zero serialization —
/// the seed's behavior and the default for tests and benches. view_plan()
/// still round-trips SerializeDataProviderView, proving the weight-free
/// view alone can drive the data-provider side.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(std::shared_ptr<ModelProvider> mp);

  std::shared_ptr<ModelProviderApi> model_provider() const override {
    return mp_;
  }
  std::shared_ptr<const InferencePlan> view_plan() const override {
    return view_plan_;
  }

 private:
  std::shared_ptr<ModelProvider> mp_;
  std::shared_ptr<const InferencePlan> view_plan_;
};

struct TcpTransportOptions {
  double connect_timeout_seconds = 5.0;
  double io_timeout_seconds = 30.0;
  /// Connection attempts are spaced by this policy (deadline_seconds
  /// bounds the total time spent connecting when non-zero) — lets a
  /// client start before its server finishes binding.
  RetryPolicy connect_retry = RetryPolicy::FromMaxRetries(0);
  uint64_t retry_seed = 0x7C9A11EDULL;
  std::shared_ptr<FaultInjector> fault;
};

/// TCP client transport. Connect() dials host:port, performs the
/// version handshake (ships the public key, receives the weight-free
/// plan view), and exposes a RemoteModelProvider.
class TcpTransport : public Transport {
 public:
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port, const PaillierPublicKey& pk,
      const TcpTransportOptions& options = {});

  std::shared_ptr<ModelProviderApi> model_provider() const override {
    return mp_;
  }
  std::shared_ptr<const InferencePlan> view_plan() const override {
    return view_plan_;
  }
  TransportStats stats() const override { return channel_->stats(); }
  void Close() override { channel_->Close(); }

  FrameChannel& channel() { return *channel_; }

 private:
  TcpTransport(std::shared_ptr<FrameChannel> channel,
               std::shared_ptr<const InferencePlan> view_plan);

  std::shared_ptr<FrameChannel> channel_;
  std::shared_ptr<const InferencePlan> view_plan_;
  std::shared_ptr<RemoteModelProvider> mp_;
};

/// Runs the client half of the handshake on an established channel:
/// sends `pk`, returns the deserialized weight-free plan view.
Result<std::shared_ptr<const InferencePlan>> HandshakeAsDataProvider(
    FrameChannel& channel, const PaillierPublicKey& pk);

}  // namespace ppstream
