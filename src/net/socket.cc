#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

namespace ppstream {

namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget in whole milliseconds for poll(); at least 1ms while
/// budget remains so we never busy-spin.
int RemainingMillis(double deadline) {
  const double remaining = deadline - MonotonicSeconds();
  if (remaining <= 0) return 0;
  return std::max(1, static_cast<int>(remaining * 1e3));
}

Status Errno(const char* what) {
  return Status::IoError(internal::StrCat(what, ": ", std::strerror(errno)));
}

/// Polls `fd` for `events` until the deadline. OK when ready; kCancelled
/// when `cancel_fd` (>= 0) turned readable first — the self-pipe wakeup
/// used by ModelProviderTcpServer::Shutdown for prompt termination.
Status PollFor(int fd, short events, double deadline, int cancel_fd = -1) {
  for (;;) {
    const int millis = RemainingMillis(deadline);
    if (millis == 0) return Status::DeadlineExceeded("socket wait timed out");
    struct pollfd pfds[2];
    pfds[0].fd = fd;
    pfds[0].events = events;
    pfds[0].revents = 0;
    nfds_t nfds = 1;
    if (cancel_fd >= 0) {
      pfds[1].fd = cancel_fd;
      pfds[1].events = POLLIN;
      pfds[1].revents = 0;
      nfds = 2;
    }
    const int rc = ::poll(pfds, nfds, millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) continue;
    // Deliver pending socket readiness even when cancelled in the same
    // poll: the cancel only wins when the socket has nothing to say.
    if (pfds[0].revents != 0) return Status::OK();
    if (nfds == 2 && pfds[1].revents != 0) {
      return Status::Cancelled("socket wait cancelled");
    }
  }
}

Status ResolveLoopbackOrNumeric(const std::string& host,
                                struct in_addr* out) {
  if (host.empty() || host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return Status::OK();
  }
  if (::inet_pton(AF_INET, host.c_str(), out) == 1) return Status::OK();
  return Status::InvalidArgument(internal::StrCat(
      "cannot resolve host '", host, "' (numeric IPv4 or 'localhost' only)"));
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

WakeupPipe::WakeupPipe() {
  if (::pipe(fds_) != 0) {
    fds_[0] = fds_[1] = -1;
    return;
  }
  for (int fd : fds_) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
}

WakeupPipe::~WakeupPipe() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void WakeupPipe::Signal() {
  if (fds_[1] < 0) return;
  // The byte is intentionally never drained: once signalled, every
  // current and future wait on read_fd() cancels immediately. A full
  // pipe (EAGAIN) already means "sticky-readable", so the result of the
  // write is irrelevant.
  const uint8_t byte = 1;
  [[maybe_unused]] ssize_t rc = ::write(fds_[1], &byte, 1);
}

bool WakeupPipe::signalled() const {
  if (fds_[0] < 0) return false;
  struct pollfd pfd;
  pfd.fd = fds_[0];
  pfd.events = POLLIN;
  pfd.revents = 0;
  return ::poll(&pfd, 1, 0) > 0;
}

TcpSocket::~TcpSocket() { Close(); }

TcpSocket::TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpSocket::Connect(const std::string& host, uint16_t port,
                                     double timeout_seconds) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  PPS_RETURN_IF_ERROR(ResolveLoopbackOrNumeric(host, &addr.sin_addr));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpSocket sock(fd);  // owns fd from here on

  // Non-blocking connect + poll gives a bounded connection attempt.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const double deadline = MonotonicSeconds() + timeout_seconds;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    PPS_RETURN_IF_ERROR(PollFor(fd, POLLOUT, deadline));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Errno("getsockopt");
    }
    if (err != 0) {
      return Status::IoError(
          internal::StrCat("connect: ", std::strerror(err)));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; IO uses poll timeouts
  SetNoDelay(fd);
  return sock;
}

Status TcpSocket::SendAll(const uint8_t* data, size_t len,
                          double timeout_seconds) {
  if (!valid()) return Status::FailedPrecondition("socket is closed");
  const double deadline = MonotonicSeconds() + timeout_seconds;
  size_t sent = 0;
  while (sent < len) {
    PPS_RETURN_IF_ERROR(PollFor(fd_, POLLOUT, deadline));
    // MSG_NOSIGNAL: a vanished peer must surface as a Status, not SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status TcpSocket::RecvAll(uint8_t* data, size_t len,
                          double timeout_seconds) {
  if (!valid()) return Status::FailedPrecondition("socket is closed");
  const double deadline = MonotonicSeconds() + timeout_seconds;
  size_t received = 0;
  while (received < len) {
    PPS_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
    const ssize_t n = ::recv(fd_, data + received, len - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Errno("recv");
    }
    if (n == 0) {
      return received == 0
                 ? Status::IoError("connection closed")
                 : Status::IoError("connection closed mid-message");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> TcpSocket::RecvSome(uint8_t* data, size_t max,
                                   double timeout_seconds) {
  if (!valid()) return Status::FailedPrecondition("socket is closed");
  if (max == 0) return size_t{0};
  const double deadline = MonotonicSeconds() + timeout_seconds;
  for (;;) {
    PPS_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline));
    const ssize_t n = ::recv(fd_, data, max, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Errno("recv");
    }
    if (n == 0) return Status::IoError("connection closed");
    return static_cast<size_t>(n);
  }
}

Status TcpSocket::WaitReadable(double timeout_seconds, int cancel_fd) {
  if (!valid()) return Status::FailedPrecondition("socket is closed");
  return PollFor(fd_, POLLIN, MonotonicSeconds() + timeout_seconds,
                 cancel_fd);
}

TcpListener::~TcpListener() { Close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Bind(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpListener listener;
  listener.fd_ = fd;

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  // Deep enough for a saturation bench's burst of concurrent dials plus
  // admin scrapes; pre-PR-9 the backlog was 4, sized for one client.
  if (::listen(fd, /*backlog=*/64) < 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::Accept(double timeout_seconds,
                                      int cancel_fd) {
  if (!valid()) return Status::FailedPrecondition("listener is closed");
  const double deadline = MonotonicSeconds() + timeout_seconds;
  PPS_RETURN_IF_ERROR(PollFor(fd_, POLLIN, deadline, cancel_fd));
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  SetNoDelay(fd);
  return TcpSocket(fd);
}

}  // namespace ppstream
