// Server-side session layer: the state that lets a data provider
// reconnect mid-inference and resume instead of starting over
// (DESIGN.md §11 "Distributed failure model").
//
// A session owns exactly the per-connection state the pre-session server
// kept on the stack: the connection's ModelProvider (and with it the
// request-scoped permutations and the key-bound randomizer machinery)
// plus the serialized weight-free plan view sent back by the handshake.
// Holding it in a registry keyed by a server-issued id decouples that
// state's lifetime from any one TCP connection.
//
// Idempotent resume relies on two mechanisms:
//   - a bounded reply cache keyed by the client's per-session sequence
//     number: a re-sent request whose reply was already computed is
//     answered from the cache, never re-executed (ModelProvider::Obfuscate
//     draws fresh permutations per call, so re-execution would desync the
//     two parties);
//   - stale-sequence detection: a sequence at or below the session's
//     high-water mark whose reply has been evicted is refused with
//     kProtocolError — the client restarts the inference rather than
//     risking divergent state.
//
// Session ids come from the process entropy pool (SecureRng::FromEntropy):
// they gate access to key-bound crypto state, so they must not be
// guessable from previous ids. Nothing else about a session is secret —
// the id only ever protects ciphertext state, never plaintext.
//
// Thread-safety: SessionRegistry is fully locked. ServerSession's cache
// accessors are NOT internally synchronized — they rely on exclusive
// attachment instead: Create/Resume attach the session to the acquiring
// connection under the registry lock, and Resume refuses (kUnavailable,
// after kicking the holder) while another connection is still attached.
// With concurrent connections a crashed client's half-open connection
// may outlive its socket; without the attach gate a resume would put two
// threads on the same provider and reply map. The owning connection
// Detach()es when it stops serving (the release/acquire pair on the
// attach flag orders its last cache writes before the next owner's
// reads), and the registry hands out shared_ptrs so eviction during use
// stays safe.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/protocol.h"
#include "crypto/secure_rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace ppstream {

/// Bounds and knobs of the server's session layer.
struct SessionLayerOptions {
  /// Master switch; disabled servers reject sessioned handshakes.
  bool enable_sessions = true;
  /// Live sessions kept; creating one more evicts the least recently
  /// resumed (its crypto state drops, so a client holding that id must
  /// restart its inference from scratch).
  size_t max_sessions = 32;
  /// Cached replies per session. The protocol is strictly sequential per
  /// session, so a handful covers every reconnect pattern short of a
  /// client replaying ancient history (which should be refused anyway).
  size_t reply_cache_entries = 4;
  /// Byte bound across one session's cached replies; the largest protocol
  /// replies are ciphertext vectors of one stage boundary. Exceeding the
  /// bound evicts oldest-first but always keeps the newest reply.
  size_t reply_cache_bytes = 64 * 1024 * 1024;
};

/// One resumable connection's worth of server state.
class ServerSession {
 public:
  ServerSession(uint64_t id, uint64_t ordinal,
                std::unique_ptr<ModelProvider> provider,
                std::vector<uint8_t> view_payload);

  uint64_t id() const { return id_; }
  /// Registry-assigned creation ordinal (1, 2, 3, ...). The *public*
  /// name of the session: status pages, logs, and metric labels use the
  /// ordinal so the entropy-derived id (which gates resume) never leaks
  /// through an observability surface.
  uint64_t ordinal() const { return ordinal_; }
  ModelProvider& provider() { return *provider_; }
  /// The handshake response body (weight-free plan view), re-sent
  /// verbatim on every resume so reconnecting clients can verify they
  /// are talking to the same model.
  const std::vector<uint8_t>& view_payload() const { return view_payload_; }

  /// The cached encoded reply for `sequence`, or nullptr.
  const std::vector<uint8_t>* CachedReply(uint64_t sequence) const;

  /// True when `sequence` was already served but its reply is gone from
  /// the cache — replaying it would re-execute a non-idempotent call.
  bool IsStaleSequence(uint64_t sequence) const;

  /// Records the encoded reply for `sequence` and advances the
  /// high-water mark, evicting oldest entries past the bounds.
  void StoreReply(uint64_t sequence, std::vector<uint8_t> encoded,
                  const SessionLayerOptions& bounds);

  /// Highest sequence number served (0 before the first sessioned call).
  /// Atomic so a concurrent /statusz scrape reads a torn-free value
  /// while the owning connection is mid-StoreReply.
  uint64_t last_sequence() const {
    return max_sequence_.load(std::memory_order_relaxed);
  }

  /// Reply-cache occupancy, readable concurrently with StoreReply.
  uint64_t cached_replies() const {
    return cached_entries_.load(std::memory_order_relaxed);
  }
  uint64_t cached_bytes() const {
    return cached_bytes_.load(std::memory_order_relaxed);
  }

  /// Claims exclusive ownership of the session's provider and reply
  /// cache for one connection; false when another connection still holds
  /// it. Clears any pending kick on success. Called by the registry
  /// (under its lock) from Create and Resume.
  bool TryAttach();

  /// Releases the attachment so a later Resume can re-attach. The store
  /// is a release, pairing with TryAttach's acquire: every cache write
  /// by this owner happens-before the next owner's first read.
  void Detach() { attached_.store(false, std::memory_order_release); }

  /// Asks the attached connection to stop serving (a newer connection is
  /// trying to resume). The server's idle-wait loop polls kicked() and
  /// closes the old connection, which then detaches.
  void Kick() { kicked_.store(true, std::memory_order_release); }
  bool kicked() const { return kicked_.load(std::memory_order_acquire); }
  bool attached() const { return attached_.load(std::memory_order_acquire); }

 private:
  const uint64_t id_;
  const uint64_t ordinal_;
  // Owned by whichever connection holds the attach flag: TryAttach's
  // acquire / Detach's release CAS protocol — not a mutex — orders one
  // owner's writes before the next owner's reads (ppslint R7 enforces
  // that every non-atomic sibling of the CAS flag carries this marker).
  std::unique_ptr<ModelProvider> provider_ PPS_CAS_GUARDED_BY(attached_);
  const std::vector<uint8_t> view_payload_;
  std::map<uint64_t, std::vector<uint8_t>> replies_
      PPS_CAS_GUARDED_BY(attached_);  // sequence → reply
  // The map is only touched by the owning connection; these mirrors are
  // atomic solely so the admin thread's StatusSnapshot can read them.
  std::atomic<uint64_t> cached_bytes_{0};
  std::atomic<uint64_t> cached_entries_{0};
  std::atomic<uint64_t> max_sequence_{0};
  std::atomic<bool> attached_{false};
  std::atomic<bool> kicked_{false};
};

/// Non-secret status row for one live session (/statusz). Deliberately
/// excludes the session id: ordinals order and name sessions publicly,
/// ids authenticate resumes.
struct SessionStatusEntry {
  uint64_t ordinal = 0;
  uint64_t last_sequence = 0;
  uint64_t cached_replies = 0;
  uint64_t cached_bytes = 0;
  /// Seconds since the session was created / last resumed.
  double age_seconds = 0;
  double idle_seconds = 0;
};

/// Registry of live sessions with LRU eviction; owned by the TCP server.
class SessionRegistry {
 public:
  explicit SessionRegistry(SessionLayerOptions options = {});

  const SessionLayerOptions& options() const { return options_; }

  /// Issues a fresh session around `provider`, already attached to the
  /// creating connection. Evicts the least recently resumed session when
  /// full.
  std::shared_ptr<ServerSession> Create(
      std::unique_ptr<ModelProvider> provider,
      std::vector<uint8_t> view_payload);

  /// Looks up a session by id, attaches it to the calling connection,
  /// and marks it most recently used. kNotFound when the id is unknown
  /// or was evicted — the client's cue to restart the inference on a
  /// fresh session. kUnavailable when another connection is still
  /// attached (its half-open socket has not timed out yet): the holder
  /// is kicked and the client should retry, by which time the old
  /// connection has detached.
  Result<std::shared_ptr<ServerSession>> Resume(uint64_t id);

  /// Drops a session (no-op when absent).
  void Remove(uint64_t id);

  size_t size() const;

  /// Non-secret rows for every live session, ages measured against
  /// `now_seconds` (obs::MonotonicSeconds). Takes the registry lock
  /// briefly; per-session fields come from the sessions' atomics, so a
  /// snapshot during active inference never tears.
  std::vector<SessionStatusEntry> StatusSnapshot(double now_seconds) const;

 private:
  struct Entry {
    std::shared_ptr<ServerSession> session;
    uint64_t used_tick = 0;  // registry-local LRU clock
    double created_seconds = 0;  // MonotonicSeconds at Create
    double used_seconds = 0;     // MonotonicSeconds at Create/last Resume
  };

  const SessionLayerOptions options_;
  mutable std::mutex mutex_;
  SecureRng id_rng_ PPS_GUARDED_BY(mutex_);
  std::map<uint64_t, Entry> sessions_ PPS_GUARDED_BY(mutex_);
  uint64_t tick_ PPS_GUARDED_BY(mutex_) = 0;
  uint64_t next_ordinal_ PPS_GUARDED_BY(mutex_) = 0;
};

/// True when a request's propagated deadline (header deadline_micros,
/// measured from `received_seconds` — the moment the frame arrived) has
/// already passed at `now_seconds`. Deadline-free frames never expire.
bool RequestDeadlinePassed(uint64_t deadline_micros, double received_seconds,
                           double now_seconds);

}  // namespace ppstream
