#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <list>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "obs/cost.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// An orderly peer disconnect, as documented on TcpSocket::RecvAll.
bool IsCleanDisconnect(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message() == "connection closed";
}

struct ServerMetrics {
  obs::Counter* pings_served;
  obs::Counter* deadline_shed;
  obs::Counter* replays_served;
  obs::Counter* requests_completed;  // serving.requests
  obs::Counter* frames;              // serving.frames
  obs::Histogram* request_seconds;   // serving.request_seconds
  obs::Gauge* inflight;              // serving.inflight

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return ServerMetrics{r.GetCounter("net.pings.served"),
                           r.GetCounter("net.deadline.shed"),
                           r.GetCounter("net.session.replays"),
                           r.GetCounter("serving.requests"),
                           r.GetCounter("serving.frames"),
                           r.GetHistogram("serving.request_seconds"),
                           r.GetGauge("serving.inflight")};
    }();
    return metrics;
  }
};

/// Records a flight-recorder event and triggers a dump when the recorder
/// is armed; trigger sites are the moments worth explaining post-hoc.
void FlightRecordIncident(std::string_view kind, std::string_view detail,
                          uint64_t request_id) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  if (!recorder.enabled()) return;
  recorder.RecordEvent(kind, detail, request_id);
  recorder.TriggerDump(kind);
}

/// Tracks one in-progress request across its frames on a connection:
/// dispatch deltas accumulate until kMpReleaseRequestState reconciles
/// them against the plan-priced budget.
struct RequestCostTracker {
  uint64_t request_id = 0;
  bool active = false;
  uint32_t contended_mask = 0;
  double start_seconds = 0;
  obs::CryptoCostSnapshot accumulated;

  void BeginIfNew(uint64_t id, double now) {
    if (active && request_id == id) return;
    request_id = id;
    active = true;
    contended_mask = 0;
    start_seconds = now;
    accumulated = obs::CryptoCostSnapshot{};
  }

  void Accumulate(const obs::CryptoCostSnapshot& delta, uint32_t contended) {
    accumulated.encrypts += delta.encrypts;
    accumulated.decrypts += delta.decrypts;
    accumulated.scalar_muls += delta.scalar_muls;
    accumulated.pack_hom_adds += delta.pack_hom_adds;
    contended_mask |= contended;
  }
};

}  // namespace

ModelProviderTcpServer::ModelProviderTcpServer(
    std::shared_ptr<const InferencePlan> plan,
    ModelProviderServerOptions options)
    : plan_(std::move(plan)),
      options_(options),
      sessions_(options_.session) {
  PPS_CHECK(plan_ != nullptr);
  PPS_CHECK(!plan_->is_data_provider_view)
      << "a model-provider server needs the full plan (with weights)";
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  // Touch the metric singletons up front so every serving process exports
  // the resilience families (at zero) even before the first incident.
  (void)ServerMetrics::Get();
}

ModelProviderTcpServer::~ModelProviderTcpServer() {
  if (admin_) admin_->Stop();
}

Status ModelProviderTcpServer::Listen(uint16_t port) {
  PPS_ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  if (options_.admin_port >= 0 && !admin_) {
    auto admin = std::make_unique<obs::AdminServer>();
    obs::AdminState state;
    // metrics_text stays unset: the endpoint's default is the shared
    // CheckedPrometheusText path (validated exposition or a 500).
    state.statusz_json = [this] { return StatusJson(); };
    state.healthy = [this] { return !stopping(); };
    state.flightrec_json = [] {
      return obs::FlightRecorder::Global().DumpJson();
    };
    PPS_RETURN_IF_ERROR(admin->Start(
        static_cast<uint16_t>(options_.admin_port), std::move(state)));
    admin_ = std::move(admin);
  }
  return Status::OK();
}

std::string ModelProviderTcpServer::StatusJson() const {
  // Everything below is non-secret by construction: session rows carry
  // registry ordinals (never the entropy-derived resume ids), and the
  // plan section is shape/count data already public in the DP view.
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  const double now = obs::MonotonicSeconds();
  std::ostringstream out;
  out << "{";
  out << "\"serving\":{"
      << "\"connections_served\":"
      << connections_.load(std::memory_order_relaxed)
      << ",\"inflight\":" << inflight_.load(std::memory_order_relaxed)
      << ",\"draining\":"
      << (drain_deadline_.load(std::memory_order_acquire) > 0 ? "true"
                                                              : "false")
      << ",\"stopping\":"
      << (stopping_.load(std::memory_order_acquire) ? "true" : "false")
      << ",\"max_concurrent_connections\":"
      << options_.max_concurrent_connections << "},";
  out << "\"plan\":{"
      << "\"rounds\":" << plan_->NumRounds()
      << ",\"encryptions_per_request\":" << plan_->EncryptionsPerRequest()
      << ",\"packed_lanes\":" << plan_->PackedBatchLanes()
      << ",\"expected_scalar_muls\":" << ExpectedRequestCost(*plan_).scalar_muls
      << "},";
  out << "\"sessions\":{"
      << "\"live\":" << sessions_.size()
      << ",\"max\":" << sessions_.options().max_sessions << ",\"entries\":[";
  const std::vector<SessionStatusEntry> rows = sessions_.StatusSnapshot(now);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"ordinal\":" << rows[i].ordinal
        << ",\"last_sequence\":" << rows[i].last_sequence
        << ",\"cached_replies\":" << rows[i].cached_replies
        << ",\"cached_bytes\":" << rows[i].cached_bytes
        << ",\"age_seconds\":" << rows[i].age_seconds
        << ",\"idle_seconds\":" << rows[i].idle_seconds << "}";
  }
  out << "]},";
  out << "\"randomizer_pool\":{"
      << "\"hits\":" << r.GetCounter("crypto.pool.hits")->Value()
      << ",\"misses\":" << r.GetCounter("crypto.pool.misses")->Value()
      << ",\"produced\":" << r.GetCounter("crypto.pool.produced")->Value()
      << ",\"refills\":" << r.GetCounter("crypto.pool.refills")->Value()
      << ",\"available\":" << r.GetGauge("crypto.pool.available")->Value()
      << "},";
  out << "\"breaker\":{"
      << "\"opens\":" << r.GetCounter("net.breaker.opens")->Value()
      << ",\"state\":" << r.GetGauge("net.breaker.state")->Value() << "},";
  out << "\"wire\":{\"version\":" << kWireVersionSession << "}";
  out << "}";
  return out.str();
}

void ModelProviderTcpServer::BeginDrain(double grace_seconds) {
  // Async-signal-safe on purpose (atomic stores + one pipe write): the
  // intended caller is a SIGTERM handler. No logging here.
  // Release so Shutdown's flag (also release) and WaitForRequest's
  // acquire load agree on the deadline value.
  drain_deadline_.store(
      obs::MonotonicSeconds() + std::max(0.0, grace_seconds),
      std::memory_order_release);
  Shutdown();
}

Status ModelProviderTcpServer::ServeOne(double accept_timeout_seconds) {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("server is not listening (call Listen)");
  }
  PPS_ASSIGN_OR_RETURN(TcpSocket socket,
                       listener_.Accept(accept_timeout_seconds));
  return ServeConnection(std::move(socket));
}

Status ModelProviderTcpServer::Serve() {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("server is not listening (call Listen)");
  }
  if (options_.max_concurrent_connections > 1) return ServeConcurrent();
  while (!stopping_.load(std::memory_order_acquire)) {
    Result<TcpSocket> socket =
        listener_.Accept(options_.accept_poll_seconds, wake_.read_fd());
    if (!socket.ok()) {
      const StatusCode code = socket.status().code();
      // Timeout: routine poll tick. Cancelled: Shutdown()/BeginDrain()
      // woke the accept — the loop condition notices stopping_ and exits
      // without waiting out the poll interval.
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kCancelled) {
        continue;
      }
      return socket.status();
    }
    const Status status = ServeConnection(std::move(socket).value());
    if (!status.ok()) {
      // A misbehaving client must not take the server down; log and keep
      // accepting.
      PPS_SLOG(Warn, "server.connection_error")
          .Kv("error", status.ToString());
    }
  }
  return Status::OK();
}

Status ModelProviderTcpServer::ServeConcurrent() {
  // One thread per established connection, bounded by the option. Each
  // connection owns its ModelProvider (or resumed session), so the only
  // cross-thread state is the locked registry, the atomic counters, and
  // the shared linear-stage worker pool.
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::list<Worker> workers;
  const size_t max_conns = options_.max_concurrent_connections;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Reap finished threads so a long-lived server stays bounded.
    for (auto it = workers.begin(); it != workers.end();) {
      // Acquire pairs with the worker's release store; join() then
      // provides the full synchronization for the reaped thread.
      if (it->done->load(std::memory_order_acquire)) {
        it->thread.join();
        it = workers.erase(it);
      } else {
        ++it;
      }
    }
    if (workers.size() >= max_conns) {
      // Saturated: let an in-flight connection finish before accepting.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      continue;
    }
    Result<TcpSocket> socket =
        listener_.Accept(options_.accept_poll_seconds, wake_.read_fd());
    if (!socket.ok()) {
      const StatusCode code = socket.status().code();
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kCancelled) {
        continue;
      }
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    Worker worker;
    worker.done = done;
    worker.thread = std::thread(
        [this, done](TcpSocket conn) {
          const Status status = ServeConnection(std::move(conn));
          if (!status.ok()) {
            PPS_SLOG(Warn, "server.connection_error")
                .Kv("error", status.ToString());
          }
          done->store(true, std::memory_order_release);
        },
        std::move(socket).value());
    workers.push_back(std::move(worker));
  }
  for (Worker& worker : workers) worker.thread.join();
  return Status::OK();
}

Status ModelProviderTcpServer::WaitForRequest(TcpSocket& socket,
                                              const ServerSession* session) {
  const double idle_deadline =
      obs::MonotonicSeconds() + options_.io_timeout_seconds;
  for (;;) {
    if (session != nullptr && session->kicked()) {
      return Status::Unavailable(
          "session kicked: a newer connection is resuming it");
    }
    const double drain = drain_deadline_.load(std::memory_order_acquire);
    const double now = obs::MonotonicSeconds();
    if (drain > 0 && now >= drain) {
      return Status::Unavailable("server draining: connection grace expired");
    }
    if (now >= idle_deadline) {
      return Status::DeadlineExceeded("socket wait timed out");
    }
    double wait_deadline = idle_deadline;
    if (drain > 0) wait_deadline = std::min(wait_deadline, drain);
    double slice = wait_deadline - now;
    // The wakeup pipe is sticky and fires on plain Shutdown() too, where
    // the established connection keeps its legacy serve-until-disconnect
    // semantics. Once signalled, stop passing the fd and fall back to
    // short polled slices so a later BeginDrain() still cuts us off.
    // Sessioned connections always poll in short slices: a kick has no
    // fd to cancel the wait, so it must be noticed within one slice.
    const int cancel_fd = wake_.signalled() ? -1 : wake_.read_fd();
    if (cancel_fd < 0 || session != nullptr) {
      slice = std::min(slice, options_.accept_poll_seconds);
    }
    const Status ready = socket.WaitReadable(slice, cancel_fd);
    if (ready.code() == StatusCode::kCancelled ||
        ready.code() == StatusCode::kDeadlineExceeded) {
      continue;  // re-evaluate drain/idle deadlines, then wait again
    }
    return ready;  // readable (OK) or a real socket error
  }
}

Status ModelProviderTcpServer::ServeConnection(TcpSocket socket) {
  const uint64_t conn = connections_.fetch_add(1, std::memory_order_relaxed);
  const double timeout = options_.io_timeout_seconds;
  PPS_SLOG(Debug, "server.connection_accepted").Kv("connection", conn);

  // ---- Pre-handshake: liveness probes are answered without credentials
  // so a circuit-breaker health check never needs a Paillier key.
  WireFrame hello;
  for (;;) {
    Result<WireFrame> recv = RecvFrame(socket, timeout);
    if (!recv.ok()) {
      // A probe connection (ping, port scan) hanging up before the
      // handshake is routine, not a connection error worth a warning.
      if (IsCleanDisconnect(recv.status())) return Status::OK();
      return recv.status();
    }
    WireFrame frame = std::move(recv).value();
    if (!frame.is_response && frame.method == WireMethod::kPing) {
      ServerMetrics::Get().pings_served->Increment();
      PPS_RETURN_IF_ERROR(SendFrameBytes(
          socket, EncodeFrame(MakeResponseFrame(frame, {})), timeout));
      continue;
    }
    hello = std::move(frame);
    break;
  }
  if (hello.is_response || hello.method != WireMethod::kHandshake) {
    const Status error = Status::ProtocolError(
        "connection must start with a handshake request");
    (void)SendFrameBytes(socket, EncodeFrame(MakeErrorFrame(hello, error)),
                         timeout);
    return error;
  }

  std::shared_ptr<ServerSession> session;
  std::unique_ptr<ModelProvider> local_mp;

  // While attached, this connection is the session's sole owner: the
  // registry refuses to hand it to a resuming connection until the guard
  // detaches on every exit path below (net/session.h).
  struct AttachGuard {
    std::shared_ptr<ServerSession> session;
    ~AttachGuard() {
      if (session) session->Detach();
    }
  } attached;

  if (hello.session_id != 0) {
    // ---- Resume: restore the parked provider, replay the plan view.
    if (!options_.session.enable_sessions) {
      const Status error = Status::ProtocolError(
          "server does not accept sessioned handshakes");
      (void)SendFrameBytes(socket, EncodeFrame(MakeErrorFrame(hello, error)),
                           timeout);
      return error;
    }
    Result<std::shared_ptr<ServerSession>> resumed =
        sessions_.Resume(hello.session_id);
    if (!resumed.ok()) {
      // kNotFound after a restart or LRU eviction (client starts over),
      // kUnavailable while the previous connection is still attached
      // (client retries once it detaches). Neither is a server-side
      // failure. The id stays out of the log: on the busy path it still
      // gates a live session.
      PPS_SLOG(Info, "server.session_resume_refused")
          .Kv("code", static_cast<int>(resumed.status().code()));
      (void)SendFrameBytes(
          socket, EncodeFrame(MakeErrorFrame(hello, resumed.status())),
          timeout);
      return Status::OK();
    }
    session = std::move(resumed).value();
    attached.session = session;
    PPS_RETURN_IF_ERROR(SendFrameBytes(
        socket,
        EncodeFrame(MakeResponseFrame(hello, session->view_payload())),
        timeout));
    PPS_SLOG(Debug, "server.session_resumed")
        .Kv("session", session->id())
        .Kv("last_sequence", session->last_sequence());
  } else {
    // ---- Fresh handshake: public key in, weight-free plan view out.
    BufferReader reader(hello.payload);
    Result<PaillierPublicKey> pk = PaillierPublicKey::Deserialize(&reader);
    if (pk.ok() && !reader.AtEnd()) {
      pk = Status::ProtocolError("trailing bytes after handshake public key");
    }
    if (pk.ok()) {
      const Status fits = plan_->CheckFitsKey(pk->n());
      if (!fits.ok()) pk = fits;
    }
    if (!pk.ok()) {
      (void)SendFrameBytes(socket,
                           EncodeFrame(MakeErrorFrame(hello, pk.status())),
                           timeout);
      return pk.status();
    }

    local_mp = std::make_unique<ModelProvider>(plan_, std::move(pk).value(),
                                               options_.obf_seed + conn);
    BufferWriter view;
    plan_->SerializeDataProviderView(&view);
    std::vector<uint8_t> view_bytes = view.TakeBytes();
    if (hello.session_request && options_.session.enable_sessions) {
      session = sessions_.Create(std::move(local_mp), view_bytes);
      attached.session = session;
    }
    WireFrame response = MakeResponseFrame(hello, std::move(view_bytes));
    if (session) response.session_id = session->id();
    PPS_RETURN_IF_ERROR(
        SendFrameBytes(socket, EncodeFrame(response), timeout));
  }

  ModelProvider& mp = session ? session->provider() : *local_mp;

  // Serving-path attribution state for this connection: the plan prices
  // the model provider's own work (scalar muls; encrypts are the data
  // provider's side of the split), and the session ordinal labels the
  // per-tenant metric series.
  const obs::RequestCostBudget mp_budget{
      0, ExpectedRequestCost(*plan_).scalar_muls};
  // Label recycled modulo the configured cap so session churn can't grow
  // the registry's labeled-series set without bound (server.h).
  const std::string session_label =
      session && options_.session_metric_labels > 0
          ? std::to_string(session->ordinal() %
                           options_.session_metric_labels)
          : std::string();
  RequestCostTracker cost_tracker;

  // ---- Request loop until the peer hangs up (or drain cuts it off).
  for (;;) {
    const Status wait = WaitForRequest(socket, session.get());
    if (!wait.ok()) {
      if (wait.code() == StatusCode::kUnavailable) {
        if (session && session->kicked()) {
          // A resuming connection wants this session; yield it. The
          // registry refused the resume while we were attached, so the
          // provider and reply cache never crossed threads — once the
          // attach guard detaches, the client's retry succeeds.
          PPS_SLOG(Info, "server.session_yielded")
              .Kv("connection", conn)
              .Kv("session", session->ordinal());
          FlightRecordIncident("session.yield",
                               "kicked by a resuming connection",
                               cost_tracker.request_id);
          return Status::OK();
        }
        // Drain grace expired; the session (if any) stays in the
        // registry so a client of a merely-draining server can resume
        // against a replacement process... or this one, if drain is
        // cancelled. Closing the socket is enough to unblock Serve().
        PPS_SLOG(Info, "server.drain_cutoff").Kv("connection", conn);
        FlightRecordIncident("drain.cutoff", "connection grace expired",
                             cost_tracker.request_id);
        return Status::OK();
      }
      return wait;  // idle timeout or a real socket error
    }
    const double received = obs::MonotonicSeconds();
    Result<WireFrame> request = RecvFrame(socket, timeout);
    if (!request.ok()) {
      if (IsCleanDisconnect(request.status())) return Status::OK();
      return request.status();
    }
    if (!request->is_response && request->method == WireMethod::kPing) {
      ServerMetrics::Get().pings_served->Increment();
      PPS_RETURN_IF_ERROR(SendFrameBytes(
          socket, EncodeFrame(MakeResponseFrame(*request, {})), timeout));
      continue;
    }
    if (RequestDeadlinePassed(request->deadline_micros, received,
                              obs::MonotonicSeconds())) {
      // The client stopped waiting for this answer; don't burn Paillier
      // CPU producing it.
      ServerMetrics::Get().deadline_shed->Increment();
      FlightRecordIncident("deadline.shed",
                           WireMethodToString(request->method),
                           request->request_id);
      const Status expired = Status::DeadlineExceeded(
          "request deadline expired before dispatch; shedding");
      PPS_RETURN_IF_ERROR(SendFrameBytes(
          socket, EncodeFrame(MakeErrorFrame(*request, expired)), timeout));
      continue;
    }
    if (session && request->sequence != 0) {
      if (const std::vector<uint8_t>* cached =
              session->CachedReply(request->sequence)) {
        ServerMetrics::Get().replays_served->Increment();
        PPS_SLOG(Debug, "server.reply_replayed")
            .Kv("session", session->id())
            .Kv("sequence", request->sequence);
        PPS_RETURN_IF_ERROR(SendFrameBytes(socket, *cached, timeout));
        continue;
      }
      if (session->IsStaleSequence(request->sequence)) {
        FlightRecordIncident("replay.refused",
                             "stale sequence: reply evicted",
                             request->request_id);
        const Status stale = Status::ProtocolError(
            "stale sequence: reply already served and evicted");
        PPS_RETURN_IF_ERROR(SendFrameBytes(
            socket, EncodeFrame(MakeErrorFrame(*request, stale)), timeout));
        continue;
      }
    }
    // ---- Dispatch, attributing the crypto-counter delta to the frame's
    // request. The interval declares scalar muls as this side's mutation
    // set, so a loopback client's encrypt-side ledger never contends it.
    const double dispatch_start = obs::MonotonicSeconds();
    if (request->request_id != 0) {
      cost_tracker.BeginIfNew(request->request_id, dispatch_start);
    }
    ServerMetrics::Get().frames->Increment();
    ServerMetrics::Get().inflight->Set(
        static_cast<double>(
            inflight_.fetch_add(1, std::memory_order_relaxed) + 1));
    WireFrame response;
    {
      obs::CostInterval interval(obs::kCostScalarMuls);
      response = DispatchModelProviderFrame(mp, *request, pool_.get());
      interval.End();
      if (request->request_id != 0) {
        cost_tracker.Accumulate(interval.Delta(), interval.contended_mask());
      }
    }
    ServerMetrics::Get().inflight->Set(
        static_cast<double>(
            inflight_.fetch_sub(1, std::memory_order_relaxed) - 1));
    if (cost_tracker.active &&
        request->method == WireMethod::kMpReleaseRequestState &&
        response.status == StatusCode::kOk) {
      // End of the request: reconcile the accumulated dispatch deltas
      // against the plan's price and publish the serving-path series.
      const double elapsed =
          obs::MonotonicSeconds() - cost_tracker.start_seconds;
      ServerMetrics::Get().requests_completed->Increment();
      ServerMetrics::Get().request_seconds->Record(elapsed);
      if (!session_label.empty()) {
        obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
        r.GetCounter(obs::LabeledMetricName("serving.requests",
                                            {{"session", session_label}}))
            ->Increment();
        r.GetHistogram(obs::LabeledMetricName(
                           "serving.request_seconds",
                           {{"session", session_label}}))
            ->Record(elapsed);
      }
      obs::ReconcileRequestCost(cost_tracker.request_id, mp_budget,
                                cost_tracker.accumulated,
                                cost_tracker.contended_mask, session_label);
      cost_tracker.active = false;
    }
    const std::vector<uint8_t> encoded = EncodeFrame(response);
    if (session && request->sequence != 0) {
      // Cache before sending: a reply lost in flight must be replayed
      // from the cache on resend, never re-executed (net/session.h).
      session->StoreReply(request->sequence, encoded, options_.session);
    }
    PPS_RETURN_IF_ERROR(SendFrameBytes(socket, encoded, timeout));
  }
}

}  // namespace ppstream
