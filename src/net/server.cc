#include "net/server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// An orderly peer disconnect, as documented on TcpSocket::RecvAll.
bool IsCleanDisconnect(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message() == "connection closed";
}

struct ServerMetrics {
  obs::Counter* pings_served;
  obs::Counter* deadline_shed;
  obs::Counter* replays_served;

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return ServerMetrics{r.GetCounter("net.pings.served"),
                           r.GetCounter("net.deadline.shed"),
                           r.GetCounter("net.session.replays")};
    }();
    return metrics;
  }
};

}  // namespace

ModelProviderTcpServer::ModelProviderTcpServer(
    std::shared_ptr<const InferencePlan> plan,
    ModelProviderServerOptions options)
    : plan_(std::move(plan)),
      options_(options),
      sessions_(options_.session) {
  PPS_CHECK(plan_ != nullptr);
  PPS_CHECK(!plan_->is_data_provider_view)
      << "a model-provider server needs the full plan (with weights)";
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  // Touch the metric singletons up front so every serving process exports
  // the resilience families (at zero) even before the first incident.
  (void)ServerMetrics::Get();
}

Status ModelProviderTcpServer::Listen(uint16_t port) {
  PPS_ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  return Status::OK();
}

void ModelProviderTcpServer::BeginDrain(double grace_seconds) {
  // Async-signal-safe on purpose (atomic stores + one pipe write): the
  // intended caller is a SIGTERM handler. No logging here.
  drain_deadline_.store(obs::MonotonicSeconds() +
                        std::max(0.0, grace_seconds));
  Shutdown();
}

Status ModelProviderTcpServer::ServeOne(double accept_timeout_seconds) {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("server is not listening (call Listen)");
  }
  PPS_ASSIGN_OR_RETURN(TcpSocket socket,
                       listener_.Accept(accept_timeout_seconds));
  return ServeConnection(std::move(socket));
}

Status ModelProviderTcpServer::Serve() {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("server is not listening (call Listen)");
  }
  while (!stopping_.load()) {
    Result<TcpSocket> socket =
        listener_.Accept(options_.accept_poll_seconds, wake_.read_fd());
    if (!socket.ok()) {
      const StatusCode code = socket.status().code();
      // Timeout: routine poll tick. Cancelled: Shutdown()/BeginDrain()
      // woke the accept — the loop condition notices stopping_ and exits
      // without waiting out the poll interval.
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kCancelled) {
        continue;
      }
      return socket.status();
    }
    const Status status = ServeConnection(std::move(socket).value());
    if (!status.ok()) {
      // A misbehaving client must not take the server down; log and keep
      // accepting.
      PPS_SLOG(Warn, "server.connection_error")
          .Kv("error", status.ToString());
    }
  }
  return Status::OK();
}

Status ModelProviderTcpServer::WaitForRequest(TcpSocket& socket) {
  const double idle_deadline =
      obs::MonotonicSeconds() + options_.io_timeout_seconds;
  for (;;) {
    const double drain = drain_deadline_.load();
    const double now = obs::MonotonicSeconds();
    if (drain > 0 && now >= drain) {
      return Status::Unavailable("server draining: connection grace expired");
    }
    if (now >= idle_deadline) {
      return Status::DeadlineExceeded("socket wait timed out");
    }
    double wait_deadline = idle_deadline;
    if (drain > 0) wait_deadline = std::min(wait_deadline, drain);
    double slice = wait_deadline - now;
    // The wakeup pipe is sticky and fires on plain Shutdown() too, where
    // the established connection keeps its legacy serve-until-disconnect
    // semantics. Once signalled, stop passing the fd and fall back to
    // short polled slices so a later BeginDrain() still cuts us off.
    const int cancel_fd = wake_.signalled() ? -1 : wake_.read_fd();
    if (cancel_fd < 0) slice = std::min(slice, options_.accept_poll_seconds);
    const Status ready = socket.WaitReadable(slice, cancel_fd);
    if (ready.code() == StatusCode::kCancelled ||
        ready.code() == StatusCode::kDeadlineExceeded) {
      continue;  // re-evaluate drain/idle deadlines, then wait again
    }
    return ready;  // readable (OK) or a real socket error
  }
}

Status ModelProviderTcpServer::ServeConnection(TcpSocket socket) {
  const uint64_t conn = connections_.fetch_add(1);
  const double timeout = options_.io_timeout_seconds;
  PPS_SLOG(Debug, "server.connection_accepted").Kv("connection", conn);

  // ---- Pre-handshake: liveness probes are answered without credentials
  // so a circuit-breaker health check never needs a Paillier key.
  WireFrame hello;
  for (;;) {
    Result<WireFrame> recv = RecvFrame(socket, timeout);
    if (!recv.ok()) {
      // A probe connection (ping, port scan) hanging up before the
      // handshake is routine, not a connection error worth a warning.
      if (IsCleanDisconnect(recv.status())) return Status::OK();
      return recv.status();
    }
    WireFrame frame = std::move(recv).value();
    if (!frame.is_response && frame.method == WireMethod::kPing) {
      ServerMetrics::Get().pings_served->Increment();
      PPS_RETURN_IF_ERROR(SendFrameBytes(
          socket, EncodeFrame(MakeResponseFrame(frame, {})), timeout));
      continue;
    }
    hello = std::move(frame);
    break;
  }
  if (hello.is_response || hello.method != WireMethod::kHandshake) {
    const Status error = Status::ProtocolError(
        "connection must start with a handshake request");
    (void)SendFrameBytes(socket, EncodeFrame(MakeErrorFrame(hello, error)),
                         timeout);
    return error;
  }

  std::shared_ptr<ServerSession> session;
  std::unique_ptr<ModelProvider> local_mp;

  if (hello.session_id != 0) {
    // ---- Resume: restore the parked provider, replay the plan view.
    if (!options_.session.enable_sessions) {
      const Status error = Status::ProtocolError(
          "server does not accept sessioned handshakes");
      (void)SendFrameBytes(socket, EncodeFrame(MakeErrorFrame(hello, error)),
                           timeout);
      return error;
    }
    Result<std::shared_ptr<ServerSession>> resumed =
        sessions_.Resume(hello.session_id);
    if (!resumed.ok()) {
      // Expected after a restart or an LRU eviction: tell the client to
      // start over; not a server-side failure.
      PPS_SLOG(Info, "server.session_unknown")
          .Kv("session", hello.session_id);
      (void)SendFrameBytes(
          socket, EncodeFrame(MakeErrorFrame(hello, resumed.status())),
          timeout);
      return Status::OK();
    }
    session = std::move(resumed).value();
    PPS_RETURN_IF_ERROR(SendFrameBytes(
        socket,
        EncodeFrame(MakeResponseFrame(hello, session->view_payload())),
        timeout));
    PPS_SLOG(Debug, "server.session_resumed")
        .Kv("session", session->id())
        .Kv("last_sequence", session->last_sequence());
  } else {
    // ---- Fresh handshake: public key in, weight-free plan view out.
    BufferReader reader(hello.payload);
    Result<PaillierPublicKey> pk = PaillierPublicKey::Deserialize(&reader);
    if (pk.ok() && !reader.AtEnd()) {
      pk = Status::ProtocolError("trailing bytes after handshake public key");
    }
    if (pk.ok()) {
      const Status fits = plan_->CheckFitsKey(pk->n());
      if (!fits.ok()) pk = fits;
    }
    if (!pk.ok()) {
      (void)SendFrameBytes(socket,
                           EncodeFrame(MakeErrorFrame(hello, pk.status())),
                           timeout);
      return pk.status();
    }

    local_mp = std::make_unique<ModelProvider>(plan_, std::move(pk).value(),
                                               options_.obf_seed + conn);
    BufferWriter view;
    plan_->SerializeDataProviderView(&view);
    std::vector<uint8_t> view_bytes = view.TakeBytes();
    if (hello.session_request && options_.session.enable_sessions) {
      session = sessions_.Create(std::move(local_mp), view_bytes);
    }
    WireFrame response = MakeResponseFrame(hello, std::move(view_bytes));
    if (session) response.session_id = session->id();
    PPS_RETURN_IF_ERROR(
        SendFrameBytes(socket, EncodeFrame(response), timeout));
  }

  ModelProvider& mp = session ? session->provider() : *local_mp;

  // ---- Request loop until the peer hangs up (or drain cuts it off).
  for (;;) {
    const Status wait = WaitForRequest(socket);
    if (!wait.ok()) {
      if (wait.code() == StatusCode::kUnavailable) {
        // Drain grace expired; the session (if any) stays in the
        // registry so a client of a merely-draining server can resume
        // against a replacement process... or this one, if drain is
        // cancelled. Closing the socket is enough to unblock Serve().
        PPS_SLOG(Info, "server.drain_cutoff").Kv("connection", conn);
        return Status::OK();
      }
      return wait;  // idle timeout or a real socket error
    }
    const double received = obs::MonotonicSeconds();
    Result<WireFrame> request = RecvFrame(socket, timeout);
    if (!request.ok()) {
      if (IsCleanDisconnect(request.status())) return Status::OK();
      return request.status();
    }
    if (!request->is_response && request->method == WireMethod::kPing) {
      ServerMetrics::Get().pings_served->Increment();
      PPS_RETURN_IF_ERROR(SendFrameBytes(
          socket, EncodeFrame(MakeResponseFrame(*request, {})), timeout));
      continue;
    }
    if (RequestDeadlinePassed(request->deadline_micros, received,
                              obs::MonotonicSeconds())) {
      // The client stopped waiting for this answer; don't burn Paillier
      // CPU producing it.
      ServerMetrics::Get().deadline_shed->Increment();
      const Status expired = Status::DeadlineExceeded(
          "request deadline expired before dispatch; shedding");
      PPS_RETURN_IF_ERROR(SendFrameBytes(
          socket, EncodeFrame(MakeErrorFrame(*request, expired)), timeout));
      continue;
    }
    if (session && request->sequence != 0) {
      if (const std::vector<uint8_t>* cached =
              session->CachedReply(request->sequence)) {
        ServerMetrics::Get().replays_served->Increment();
        PPS_SLOG(Debug, "server.reply_replayed")
            .Kv("session", session->id())
            .Kv("sequence", request->sequence);
        PPS_RETURN_IF_ERROR(SendFrameBytes(socket, *cached, timeout));
        continue;
      }
      if (session->IsStaleSequence(request->sequence)) {
        const Status stale = Status::ProtocolError(
            "stale sequence: reply already served and evicted");
        PPS_RETURN_IF_ERROR(SendFrameBytes(
            socket, EncodeFrame(MakeErrorFrame(*request, stale)), timeout));
        continue;
      }
    }
    const WireFrame response =
        DispatchModelProviderFrame(mp, *request, pool_.get());
    const std::vector<uint8_t> encoded = EncodeFrame(response);
    if (session && request->sequence != 0) {
      // Cache before sending: a reply lost in flight must be replayed
      // from the cache on resend, never re-executed (net/session.h).
      session->StoreReply(request->sequence, encoded, options_.session);
    }
    PPS_RETURN_IF_ERROR(SendFrameBytes(socket, encoded, timeout));
  }
}

}  // namespace ppstream
