#include "net/server.h"

#include <utility>

#include "net/transport.h"
#include "net/wire.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// An orderly peer disconnect, as documented on TcpSocket::RecvAll.
bool IsCleanDisconnect(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message() == "connection closed";
}

}  // namespace

ModelProviderTcpServer::ModelProviderTcpServer(
    std::shared_ptr<const InferencePlan> plan,
    ModelProviderServerOptions options)
    : plan_(std::move(plan)), options_(options) {
  PPS_CHECK(plan_ != nullptr);
  PPS_CHECK(!plan_->is_data_provider_view)
      << "a model-provider server needs the full plan (with weights)";
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
}

Status ModelProviderTcpServer::Listen(uint16_t port) {
  PPS_ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  return Status::OK();
}

Status ModelProviderTcpServer::ServeOne(double accept_timeout_seconds) {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("server is not listening (call Listen)");
  }
  PPS_ASSIGN_OR_RETURN(TcpSocket socket,
                       listener_.Accept(accept_timeout_seconds));
  return ServeConnection(std::move(socket));
}

Status ModelProviderTcpServer::Serve() {
  if (!listener_.valid()) {
    return Status::FailedPrecondition("server is not listening (call Listen)");
  }
  while (!stopping_.load()) {
    Result<TcpSocket> socket = listener_.Accept(options_.accept_poll_seconds);
    if (!socket.ok()) {
      if (socket.status().code() == StatusCode::kDeadlineExceeded) continue;
      return socket.status();
    }
    const Status status = ServeConnection(std::move(socket).value());
    if (!status.ok()) {
      // A misbehaving client must not take the server down; log and keep
      // accepting.
      PPS_SLOG(Warn, "server.connection_error")
          .Kv("error", status.ToString());
    }
  }
  return Status::OK();
}

Status ModelProviderTcpServer::ServeConnection(TcpSocket socket) {
  const uint64_t conn = connections_.fetch_add(1);
  const double timeout = options_.io_timeout_seconds;
  PPS_SLOG(Debug, "server.connection_accepted").Kv("connection", conn);

  // ---- Handshake: public key in, weight-free plan view out.
  PPS_ASSIGN_OR_RETURN(WireFrame hello, RecvFrame(socket, timeout));
  if (hello.is_response || hello.method != WireMethod::kHandshake) {
    const Status error = Status::ProtocolError(
        "connection must start with a handshake request");
    (void)SendFrameBytes(socket, EncodeFrame(MakeErrorFrame(hello, error)),
                         timeout);
    return error;
  }
  BufferReader reader(hello.payload);
  Result<PaillierPublicKey> pk = PaillierPublicKey::Deserialize(&reader);
  if (pk.ok() && !reader.AtEnd()) {
    pk = Status::ProtocolError("trailing bytes after handshake public key");
  }
  if (pk.ok()) {
    const Status fits = plan_->CheckFitsKey(pk->n());
    if (!fits.ok()) pk = fits;
  }
  if (!pk.ok()) {
    (void)SendFrameBytes(socket,
                         EncodeFrame(MakeErrorFrame(hello, pk.status())),
                         timeout);
    return pk.status();
  }

  ModelProvider mp(plan_, std::move(pk).value(), options_.obf_seed + conn);
  BufferWriter view;
  plan_->SerializeDataProviderView(&view);
  PPS_RETURN_IF_ERROR(SendFrameBytes(
      socket, EncodeFrame(MakeResponseFrame(hello, view.TakeBytes())),
      timeout));

  // ---- Request loop until the peer hangs up.
  for (;;) {
    Result<WireFrame> request = RecvFrame(socket, timeout);
    if (!request.ok()) {
      if (IsCleanDisconnect(request.status())) return Status::OK();
      return request.status();
    }
    const WireFrame response =
        DispatchModelProviderFrame(mp, *request, pool_.get());
    PPS_RETURN_IF_ERROR(
        SendFrameBytes(socket, EncodeFrame(response), timeout));
  }
}

}  // namespace ppstream
