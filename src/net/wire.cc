#include "net/wire.h"

namespace ppstream {

namespace {

constexpr uint8_t kFlagResponse = 0x01;
constexpr uint8_t kFlagSessionRequest = 0x02;
constexpr uint8_t kKnownFlags = kFlagResponse | kFlagSessionRequest;

bool ValidMethod(uint16_t m) {
  return m >= static_cast<uint16_t>(WireMethod::kHandshake) &&
         m <= static_cast<uint16_t>(WireMethod::kPing);
}

bool ValidStatusCode(uint8_t c) {
  return c <= static_cast<uint8_t>(StatusCode::kCancelled);
}

bool ValidVersion(uint16_t v) {
  return v >= kWireVersion && v <= kWireVersionSession;
}

Status UnsupportedVersion(uint16_t v) {
  return Status::ProtocolError(internal::StrCat(
      "unsupported wire version ", v, " (speaking ", kWireVersion, "-",
      kWireVersionSession, ")"));
}

}  // namespace

const char* WireMethodToString(WireMethod method) {
  switch (method) {
    case WireMethod::kHandshake: return "Handshake";
    case WireMethod::kMpProcessRound: return "Mp.ProcessRound";
    case WireMethod::kMpInverseObfuscate: return "Mp.InverseObfuscate";
    case WireMethod::kMpApplyLinearStage: return "Mp.ApplyLinearStage";
    case WireMethod::kMpObfuscate: return "Mp.Obfuscate";
    case WireMethod::kMpReleaseRequestState: return "Mp.ReleaseRequestState";
    case WireMethod::kDpEncryptInput: return "Dp.EncryptInput";
    case WireMethod::kDpProcessIntermediate: return "Dp.ProcessIntermediate";
    case WireMethod::kDpProcessFinal: return "Dp.ProcessFinal";
    case WireMethod::kPing: return "Ping";
  }
  return "Unknown";
}

WireFrame MakeRequestFrame(WireMethod method, uint64_t request_id,
                           uint64_t round, std::vector<uint8_t> payload) {
  WireFrame frame;
  frame.method = method;
  frame.request_id = request_id;
  frame.round = round;
  frame.payload = std::move(payload);
  return frame;
}

WireFrame MakeResponseFrame(const WireFrame& request,
                            std::vector<uint8_t> payload) {
  WireFrame frame;
  frame.method = request.method;
  frame.is_response = true;
  frame.request_id = request.request_id;
  frame.round = request.round;
  frame.trace_id = request.trace_id;
  frame.parent_span_id = request.parent_span_id;
  frame.session_id = request.session_id;
  frame.sequence = request.sequence;
  frame.payload = std::move(payload);
  return frame;
}

WireFrame MakeErrorFrame(const WireFrame& request, const Status& error) {
  WireFrame frame;
  frame.method = request.method;
  frame.is_response = true;
  frame.status = error.ok() ? StatusCode::kInternal : error.code();
  frame.request_id = request.request_id;
  frame.round = request.round;
  frame.trace_id = request.trace_id;
  frame.parent_span_id = request.parent_span_id;
  frame.session_id = request.session_id;
  frame.sequence = request.sequence;
  const std::string& msg = error.message();
  frame.payload.assign(msg.begin(), msg.end());
  return frame;
}

Status FrameStatus(const WireFrame& frame) {
  if (frame.status == StatusCode::kOk) return Status::OK();
  return Status(frame.status,
                std::string(frame.payload.begin(), frame.payload.end()));
}

std::vector<uint8_t> EncodeFrame(const WireFrame& frame) {
  return EncodeFrameStamped(
      frame, FrameStamp{frame.trace_id, frame.parent_span_id,
                        frame.session_id, frame.sequence,
                        frame.deadline_micros});
}

std::vector<uint8_t> EncodeFrameWithTrace(const WireFrame& frame,
                                          uint64_t trace_id,
                                          uint64_t parent_span_id) {
  return EncodeFrameStamped(
      frame, FrameStamp{trace_id, parent_span_id, frame.session_id,
                        frame.sequence, frame.deadline_micros});
}

std::vector<uint8_t> EncodeFrameStamped(const WireFrame& frame,
                                        const FrameStamp& stamp) {
  const bool traced = stamp.trace_id != 0 || stamp.parent_span_id != 0;
  const bool sessioned = stamp.session_id != 0 || stamp.sequence != 0 ||
                         stamp.deadline_micros != 0 || frame.session_request;
  uint16_t version = kWireVersion;
  if (traced) version = kWireVersionTraced;
  if (sessioned) version = kWireVersionSession;
  BufferWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU32(static_cast<uint32_t>(version) |
                  (static_cast<uint32_t>(frame.method) << 16));
  uint8_t flags = frame.is_response ? kFlagResponse : 0;
  if (frame.session_request) flags |= kFlagSessionRequest;
  writer.WriteU8(flags);
  writer.WriteU8(static_cast<uint8_t>(frame.status));
  writer.WriteU64(frame.request_id);
  writer.WriteU64(frame.round);
  writer.WriteU64(frame.payload.size());
  if (version >= kWireVersionTraced) {
    writer.WriteU64(stamp.trace_id);
    writer.WriteU64(stamp.parent_span_id);
  }
  if (version >= kWireVersionSession) {
    writer.WriteU64(stamp.session_id);
    writer.WriteU64(stamp.sequence);
    writer.WriteU64(stamp.deadline_micros);
  }
  std::vector<uint8_t> out = writer.TakeBytes();
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

Result<uint16_t> PeekFrameVersion(const uint8_t* data, size_t size) {
  BufferReader reader(data, size);
  PPS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kWireMagic) {
    return Status::ProtocolError("bad frame magic (not a PPS peer?)");
  }
  PPS_ASSIGN_OR_RETURN(uint32_t version_method, reader.ReadU32());
  const uint16_t version = static_cast<uint16_t>(version_method & 0xFFFF);
  if (!ValidVersion(version)) return UnsupportedVersion(version);
  return version;
}

Result<WireFrame> DecodeFrameHeader(const uint8_t* data, size_t size,
                                    uint64_t* payload_len) {
  BufferReader reader(data, size);
  PPS_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kWireMagic) {
    return Status::ProtocolError("bad frame magic (not a PPS peer?)");
  }
  PPS_ASSIGN_OR_RETURN(uint32_t version_method, reader.ReadU32());
  WireFrame frame;
  frame.version = static_cast<uint16_t>(version_method & 0xFFFF);
  const uint16_t method = static_cast<uint16_t>(version_method >> 16);
  if (!ValidVersion(frame.version)) return UnsupportedVersion(frame.version);
  if (!ValidMethod(method)) {
    return Status::ProtocolError(
        internal::StrCat("unknown wire method ", method));
  }
  frame.method = static_cast<WireMethod>(method);
  PPS_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadU8());
  // The session-request bit only exists in revision 3: older revisions
  // keep their original strict flag set.
  const uint8_t known = frame.version >= kWireVersionSession
                            ? kKnownFlags
                            : kFlagResponse;
  if ((flags & ~known) != 0) {
    return Status::ProtocolError(
        internal::StrCat("unknown frame flags ", int{flags}));
  }
  frame.is_response = (flags & kFlagResponse) != 0;
  frame.session_request = (flags & kFlagSessionRequest) != 0;
  if (frame.session_request &&
      (frame.is_response || frame.method != WireMethod::kHandshake)) {
    return Status::ProtocolError(
        "session-request flag outside a handshake request");
  }
  PPS_ASSIGN_OR_RETURN(uint8_t status, reader.ReadU8());
  if (!ValidStatusCode(status)) {
    return Status::ProtocolError(
        internal::StrCat("unknown status code ", int{status}));
  }
  frame.status = static_cast<StatusCode>(status);
  if (!frame.is_response && frame.status != StatusCode::kOk) {
    return Status::ProtocolError("request frame carries a status code");
  }
  PPS_ASSIGN_OR_RETURN(frame.request_id, reader.ReadU64());
  PPS_ASSIGN_OR_RETURN(frame.round, reader.ReadU64());
  PPS_ASSIGN_OR_RETURN(uint64_t len, reader.ReadU64());
  if (len > kMaxFramePayloadBytes) {
    return Status::OutOfRange(internal::StrCat(
        "frame payload of ", len, " bytes exceeds the ",
        kMaxFramePayloadBytes, "-byte bound"));
  }
  if (frame.version >= kWireVersionTraced) {
    PPS_ASSIGN_OR_RETURN(frame.trace_id, reader.ReadU64());
    PPS_ASSIGN_OR_RETURN(frame.parent_span_id, reader.ReadU64());
  }
  if (frame.version >= kWireVersionSession) {
    PPS_ASSIGN_OR_RETURN(frame.session_id, reader.ReadU64());
    PPS_ASSIGN_OR_RETURN(frame.sequence, reader.ReadU64());
    PPS_ASSIGN_OR_RETURN(frame.deadline_micros, reader.ReadU64());
    if (frame.is_response && frame.deadline_micros != 0) {
      return Status::ProtocolError("response frame carries a deadline");
    }
  }
  *payload_len = len;
  return frame;
}

Result<WireFrame> DecodeFrame(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::OutOfRange("truncated frame header");
  }
  PPS_ASSIGN_OR_RETURN(uint16_t version,
                       PeekFrameVersion(bytes.data(), bytes.size()));
  const size_t header_bytes = FrameHeaderBytesFor(version);
  if (bytes.size() < header_bytes) {
    return Status::OutOfRange("truncated frame header");
  }
  uint64_t payload_len = 0;
  PPS_ASSIGN_OR_RETURN(
      WireFrame frame,
      DecodeFrameHeader(bytes.data(), header_bytes, &payload_len));
  if (bytes.size() - header_bytes < payload_len) {
    return Status::OutOfRange(internal::StrCat(
        "frame payload truncated: header announces ", payload_len,
        " bytes, buffer holds ", bytes.size() - header_bytes));
  }
  if (bytes.size() - header_bytes > payload_len) {
    return Status::ProtocolError("trailing bytes after frame payload");
  }
  frame.payload.assign(
      bytes.begin() + static_cast<std::ptrdiff_t>(header_bytes), bytes.end());
  return frame;
}

}  // namespace ppstream
