#include "net/session.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {

namespace {

struct SessionMetrics {
  obs::Counter* created;
  obs::Counter* resumed;
  obs::Counter* lost;
  obs::Counter* evicted;
  obs::Counter* resume_busy;
  obs::Gauge* active;

  static const SessionMetrics& Get() {
    static const SessionMetrics metrics = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return SessionMetrics{r.GetCounter("net.session.created"),
                            r.GetCounter("net.session.resumed"),
                            r.GetCounter("net.session.lost"),
                            r.GetCounter("net.session.evicted"),
                            r.GetCounter("net.session.resume_busy"),
                            r.GetGauge("net.session.active")};
    }();
    return metrics;
  }
};

}  // namespace

ServerSession::ServerSession(uint64_t id, uint64_t ordinal,
                             std::unique_ptr<ModelProvider> provider,
                             std::vector<uint8_t> view_payload)
    : id_(id),
      ordinal_(ordinal),
      provider_(std::move(provider)),
      view_payload_(std::move(view_payload)) {
  PPS_CHECK(provider_ != nullptr);
}

const std::vector<uint8_t>* ServerSession::CachedReply(
    uint64_t sequence) const {
  const auto it = replies_.find(sequence);
  if (it == replies_.end()) return nullptr;
  return &it->second;
}

bool ServerSession::TryAttach() {
  bool expected = false;
  if (!attached_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return false;
  }
  kicked_.store(false, std::memory_order_release);
  return true;
}

bool ServerSession::IsStaleSequence(uint64_t sequence) const {
  return sequence <= last_sequence() && replies_.count(sequence) == 0;
}

void ServerSession::StoreReply(uint64_t sequence,
                               std::vector<uint8_t> encoded,
                               const SessionLayerOptions& bounds) {
  if (sequence > last_sequence()) {
    max_sequence_.store(sequence, std::memory_order_relaxed);
  }
  uint64_t bytes = cached_bytes_.load(std::memory_order_relaxed);
  bytes += encoded.size();
  replies_[sequence] = std::move(encoded);
  // Evict oldest-first past either bound, but never the entry just
  // stored: the reply most likely to be replayed is the newest one.
  while (replies_.size() > 1 &&
         (replies_.size() > bounds.reply_cache_entries ||
          bytes > bounds.reply_cache_bytes)) {
    const auto oldest = replies_.begin();
    bytes -= oldest->second.size();
    replies_.erase(oldest);
  }
  cached_bytes_.store(bytes, std::memory_order_relaxed);
  cached_entries_.store(replies_.size(), std::memory_order_relaxed);
}

SessionRegistry::SessionRegistry(SessionLayerOptions options)
    : options_(options), id_rng_(SecureRng::FromEntropy()) {}

std::shared_ptr<ServerSession> SessionRegistry::Create(
    std::unique_ptr<ModelProvider> provider,
    std::vector<uint8_t> view_payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = 0;
  while (id == 0 || sessions_.count(id) != 0) id = id_rng_.NextU64();
  if (options_.max_sessions > 0 &&
      sessions_.size() >= options_.max_sessions) {
    auto victim = sessions_.begin();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second.used_tick < victim->second.used_tick) victim = it;
    }
    // Log the public ordinal, never the resume-gating id.
    PPS_SLOG(Debug, "session.evicted")
        .Kv("session", victim->second.session->ordinal());
    SessionMetrics::Get().evicted->Increment();
    sessions_.erase(victim);
  }
  const double now = obs::MonotonicSeconds();
  auto session = std::make_shared<ServerSession>(
      id, ++next_ordinal_, std::move(provider), std::move(view_payload));
  PPS_CHECK(session->TryAttach());  // the creating connection owns it
  sessions_[id] = Entry{session, ++tick_, now, now};
  SessionMetrics::Get().created->Increment();
  SessionMetrics::Get().active->Set(static_cast<double>(sessions_.size()));
  return session;
}

Result<std::shared_ptr<ServerSession>> SessionRegistry::Resume(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    SessionMetrics::Get().lost->Increment();
    return Status::NotFound("unknown or expired session");
  }
  if (!it->second.session->TryAttach()) {
    // Another connection still owns this session (typically a half-open
    // socket whose idle timeout has not hit). Handing the session out
    // anyway would put two threads on the same provider and reply map,
    // so kick the holder off its idle wait and make the client retry:
    // by its next redial the old connection has detached.
    it->second.session->Kick();
    SessionMetrics::Get().resume_busy->Increment();
    PPS_SLOG(Info, "session.resume_busy")
        .Kv("session", it->second.session->ordinal());
    return Status::Unavailable(
        "session still attached to another connection; retry");
  }
  it->second.used_tick = ++tick_;
  it->second.used_seconds = obs::MonotonicSeconds();
  SessionMetrics::Get().resumed->Increment();
  return it->second.session;
}

void SessionRegistry::Remove(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(id);
  SessionMetrics::Get().active->Set(static_cast<double>(sessions_.size()));
}

size_t SessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

std::vector<SessionStatusEntry> SessionRegistry::StatusSnapshot(
    double now_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SessionStatusEntry> rows;
  rows.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) {
    (void)id;  // deliberately unused: status rows carry ordinals only
    SessionStatusEntry row;
    row.ordinal = entry.session->ordinal();
    row.last_sequence = entry.session->last_sequence();
    row.cached_replies = entry.session->cached_replies();
    row.cached_bytes = entry.session->cached_bytes();
    row.age_seconds = now_seconds - entry.created_seconds;
    row.idle_seconds = now_seconds - entry.used_seconds;
    rows.push_back(row);
  }
  return rows;
}

bool RequestDeadlinePassed(uint64_t deadline_micros, double received_seconds,
                           double now_seconds) {
  if (deadline_micros == 0) return false;
  return now_seconds - received_seconds >
         static_cast<double>(deadline_micros) * 1e-6;
}

}  // namespace ppstream
