// The collaborative privacy-preserving inference workflow (paper §III-A,
// Figure 3).
//
// Per request:
//   first round:        DP encrypts the input tensor and sends it; MP runs
//                       linear stage 0 under Paillier, obfuscates the
//                       result (random permutation of ciphertext slots),
//                       and sends it back.
//   intermediate round: DP decrypts the (permuted) tensor, applies the
//                       element-wise non-linear segment, re-encrypts and
//                       sends; MP inverse-obfuscates, runs the next linear
//                       stage, obfuscates with a FRESH permutation, sends.
//   last round:         MP sends the linear result without obfuscation;
//                       DP decrypts and applies the final non-linear
//                       segment (typically SoftMax) to get the result.
//
// The two parties talk exclusively through the pure-virtual
// ModelProviderApi / DataProviderApi interfaces below. In a single
// process the concrete ModelProvider / DataProvider implement them with
// direct (zero-copy) calls; in a two-process deployment the src/net/
// transport layer provides RemoteModelProvider / RemoteDataProvider
// stubs that frame every call onto a versioned wire format. The only
// state ever shipped to the data provider is the plan's weight-free
// non-linear view plus the public key. Tests assert the separation (the
// model provider never sees plaintext tensors; the data provider never
// sees weights).

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/plan.h"
#include "crypto/paillier.h"
#include "crypto/permutation.h"
#include "crypto/randomizer_pool.h"
#include "nn/dataset.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ppstream {

/// Captured obfuscation pairs for the Exp#5 leakage measurement: the
/// stage output in original order and in permuted order, as real values.
struct LeakageTranscript {
  struct Round {
    std::vector<double> before_obfuscation;
    std::vector<double> after_obfuscation;
  };
  std::vector<Round> rounds;
};

/// Every cross-party call the data-provider side may issue against the
/// model provider. ModelProvider implements it in-process;
/// RemoteModelProvider (src/net/) frames each call over a Transport.
class ModelProviderApi {
 public:
  virtual ~ModelProviderApi() = default;

  /// The plan driving the protocol. A remote stub returns the weight-free
  /// data-provider view received during the handshake; only round counts,
  /// shapes, and scale powers may be read through this accessor.
  virtual const InferencePlan& plan() const = 0;

  /// Chaos hook (sites "mp.<Method>"). Default: no-op — remote stubs
  /// inject at the transport layer ("net.send"/"net.recv") instead.
  virtual void SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
    (void)injector;
  }

  /// Full round processing: inverse obfuscation (round > 0), linear stage
  /// `round`, obfuscation (round < last).
  virtual Result<std::vector<Ciphertext>> ProcessRound(
      uint64_t request_id, size_t round,
      const std::vector<Ciphertext>& in) = 0;

  // ---- Fine-grained steps (used by the streaming engine's stages, and by
  //      ProcessRound above).

  /// Inverse obfuscation using the permutation stored for (request,
  /// round - 1). Idempotent until ReleaseRequestState.
  virtual Result<std::vector<Ciphertext>> InverseObfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) = 0;

  /// Applies linear stage `round`. `pool` / `input_partitioning` steer
  /// intra-stage parallelism and are advisory: a remote model provider
  /// parallelizes with its own resources and ignores them.
  virtual Result<std::vector<Ciphertext>> ApplyLinearStage(
      size_t round, const std::vector<Ciphertext>& in,
      ThreadPool* pool = nullptr, bool input_partitioning = true) = 0;

  /// Obfuscates with a fresh random permutation, stored under
  /// (request, round).
  virtual Result<std::vector<Ciphertext>> Obfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) = 0;

  /// Drops all per-request state (stored permutations). Called when the
  /// request completes or fails; stands in for a completion ACK on the
  /// wire. Failure is non-fatal for the inference result.
  virtual Status ReleaseRequestState(uint64_t request_id) = 0;
};

/// Every cross-party call the model-provider side may issue against the
/// data provider (the reverse deployment: an engine colocated with the
/// model driving a remote data provider).
class DataProviderApi {
 public:
  virtual ~DataProviderApi() = default;

  /// The data provider's Paillier public key.
  virtual const PaillierPublicKey& public_key() const = 0;

  /// Chaos hook (sites "dp.<Method>"). Default: no-op, as above.
  virtual void SetFaultInjector(std::shared_ptr<FaultInjector> injector) {
    (void)injector;
  }

  /// Round-0 send: quantize the raw input at F and encrypt element-wise.
  virtual Result<std::vector<Ciphertext>> EncryptInput(
      const DoubleTensor& input) = 0;

  /// Round-0 send with optional intra-stage parallelism (advisory, see
  /// ApplyLinearStage).
  virtual Result<std::vector<Ciphertext>> EncryptInputParallel(
      const DoubleTensor& input, ThreadPool* pool) = 0;

  /// Intermediate round `round`: decrypt, dequantize by F^k, apply
  /// non-linear segment `round` element-wise, re-quantize at F, encrypt.
  /// `decrypted_view` (leakage measurement) requires an in-process data
  /// provider; remote stubs reject a non-null view rather than pull
  /// plaintext across the wire.
  virtual Result<std::vector<Ciphertext>> ProcessIntermediate(
      size_t round, const std::vector<Ciphertext>& in,
      std::vector<double>* decrypted_view = nullptr,
      ThreadPool* pool = nullptr) = 0;

  /// Last round: decrypt, dequantize, apply the final segment, return the
  /// inference result.
  virtual Result<DoubleTensor> ProcessFinal(const std::vector<Ciphertext>& in,
                                            ThreadPool* pool = nullptr) = 0;
};

/// The model provider: owns the model (as integer linear stages), executes
/// all linear operations homomorphically, and manages obfuscation.
class ModelProvider : public ModelProviderApi {
 public:
  struct Options {
    /// Rerandomize stage outputs (pool-backed, one ModMul each) before
    /// permuting in Obfuscate, so the ciphertext bits leaving the model
    /// provider carry fresh randomness. Off by default: the permutation
    /// alone is the paper's obfuscation, and the default keeps the
    /// protocol output bits unchanged.
    bool rerandomize_outputs = false;
    /// Randomizer pool capacity when rerandomize_outputs is set.
    size_t randomizer_pool_capacity = 256;
  };

  /// `obf_seed` seeds the permutation CSPRNG (fresh randomness per round)
  /// and, when enabled, the rerandomizer pool.
  ModelProvider(std::shared_ptr<const InferencePlan> plan,
                PaillierPublicKey pk, uint64_t obf_seed);
  ModelProvider(std::shared_ptr<const InferencePlan> plan,
                PaillierPublicKey pk, uint64_t obf_seed, Options options);

  const InferencePlan& plan() const override { return *plan_; }
  const PaillierPublicKey& public_key() const { return pk_; }

  /// Chaos hook: every protocol entry point probes `injector` (sites
  /// "mp.<Method>") before doing real work, so injected errors exercise
  /// the runtime's retry path exactly like genuine provider failures.
  /// Null disables. Set before serving requests.
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector) override {
    fault_ = std::move(injector);
  }

  Result<std::vector<Ciphertext>> ProcessRound(
      uint64_t request_id, size_t round,
      const std::vector<Ciphertext>& in) override;

  /// Idempotent: the permutation stays stored until ReleaseRequestState,
  /// so a failed/retried stage can reprocess the same message
  /// (AF-Stream-style at-least-once execution).
  Result<std::vector<Ciphertext>> InverseObfuscate(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in) override;

  /// Always OK in-process; the Status return exists for remote stubs.
  Status ReleaseRequestState(uint64_t request_id) override;

  /// Number of requests with live permutation state (leak check).
  size_t PendingRequestsForTesting() const;

  /// With a pool, rows are partitioned across its threads (output tensor
  /// partitioning); `input_partitioning` additionally ships each thread
  /// only its receptive-field sub-tensor (paper §IV-D).
  Result<std::vector<Ciphertext>> ApplyLinearStage(
      size_t round, const std::vector<Ciphertext>& in,
      ThreadPool* pool = nullptr, bool input_partitioning = true) override;

  Result<std::vector<Ciphertext>> Obfuscate(
      uint64_t request_id, size_t round,
      std::vector<Ciphertext> in) override;

  /// Test/experiment hook: the permutation used at (request, round), if
  /// still stored. NOT part of the protocol surface.
  Result<Permutation> GetStoredPermutationForTesting(uint64_t request_id,
                                                     size_t round) const;

  // ---- Packed-batch path (DESIGN.md §13). Not on the virtual API yet:
  //      lane batching is an in-process engine feature in this revision.

  /// Lane-batched round processing. `in` carries stage `round`'s input in
  /// the round's wire representation: one packed word per tensor element
  /// (packed round) or `lanes` interleaved scalar lanes, element-major —
  /// position p * lanes + i is element p of lane i (scalar-fallback
  /// round). Obfuscation always permutes tensor ELEMENTS: packed rounds
  /// permute words directly, fallback rounds expand the stored element
  /// permutation blockwise, so lanes never mix and the data provider can
  /// re-pack across representation changes. Note the leakage granularity:
  /// on packed rounds a word's `lanes` values move together (positions
  /// are still shuffled; lane-to-slot binding is not hidden).
  Result<std::vector<Ciphertext>> ProcessRoundPackedBatch(
      uint64_t request_id, size_t round, const std::vector<Ciphertext>& in,
      int64_t lanes, ThreadPool* pool = nullptr);

  /// Applies linear stage `round` over packed words via the stage's
  /// weight-value-dedup kernels, or — when the round fell back to scalar
  /// — de-interleaves the lanes, applies the scalar stage per lane, and
  /// re-interleaves. Decoded outputs are bit-exact with `lanes`
  /// independent scalar inferences either way.
  Result<std::vector<Ciphertext>> ApplyLinearStagePacked(
      size_t round, const std::vector<Ciphertext>& in, int64_t lanes,
      ThreadPool* pool = nullptr);

 private:
  /// Obfuscate/InverseObfuscate for the packed-batch path: permutations
  /// are stored at element granularity and expanded blockwise when the
  /// wire representation is interleaved scalars.
  Result<std::vector<Ciphertext>> ObfuscatePackedBatch(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in,
      int64_t lanes);
  Result<std::vector<Ciphertext>> InverseObfuscatePackedBatch(
      uint64_t request_id, size_t round, std::vector<Ciphertext> in,
      int64_t lanes);

  std::shared_ptr<const InferencePlan> plan_;
  PaillierPublicKey pk_;
  Options options_;
  std::shared_ptr<FaultInjector> fault_;
  mutable std::mutex mutex_;
  SecureRng obf_rng_;
  std::map<std::pair<uint64_t, size_t>, Permutation> permutations_;
  /// Precomputed r^n values for output rerandomization; null unless
  /// options_.rerandomize_outputs.
  std::unique_ptr<RandomizerPool> rerand_pool_;
};

/// The data provider: owns the key pair and the raw input, executes all
/// non-linear operations on decrypted (permuted) values.
class DataProvider : public DataProviderApi {
 public:
  struct Options {
    /// Requests expected in flight at once. The randomizer pool is sized
    /// for `expected_concurrency` simultaneous requests' encryptions (the
    /// old per-request sizing starved 8-way benches into ~48% misses).
    int expected_concurrency = 1;
    /// Synchronously fill the pool at construction so the first burst is
    /// served from precomputed randomizers instead of computing on
    /// demand. Off by default: construction stays cheap for tests; the
    /// serving path and benches opt in.
    bool prefill = false;
  };

  DataProvider(std::shared_ptr<const InferencePlan> plan,
               PaillierKeyPair keys, uint64_t enc_seed);
  DataProvider(std::shared_ptr<const InferencePlan> plan,
               PaillierKeyPair keys, uint64_t enc_seed, Options options);

  const PaillierPublicKey& public_key() const override {
    return keys_.public_key;
  }

  /// Chaos hook, mirror of ModelProvider::SetFaultInjector (sites
  /// "dp.<Method>").
  void SetFaultInjector(std::shared_ptr<FaultInjector> injector) override {
    fault_ = std::move(injector);
  }

  Result<std::vector<Ciphertext>> EncryptInput(
      const DoubleTensor& input) override;

  /// If `decrypted_view` is non-null it receives the permuted plaintext
  /// values the data provider observed (for leakage measurement). With a
  /// pool, decryption and re-encryption parallelize across its threads.
  Result<std::vector<Ciphertext>> ProcessIntermediate(
      size_t round, const std::vector<Ciphertext>& in,
      std::vector<double>* decrypted_view = nullptr,
      ThreadPool* pool = nullptr) override;

  Result<DoubleTensor> ProcessFinal(const std::vector<Ciphertext>& in,
                                    ThreadPool* pool = nullptr) override;

  Result<std::vector<Ciphertext>> EncryptInputParallel(
      const DoubleTensor& input, ThreadPool* pool) override;

  // ---- Packed-batch path (DESIGN.md §13), mirror of the ModelProvider
  //      methods: `lanes` independent inferences ride one wire vector.

  /// Lane-batched round-0 send: element t of every lane packs into word t
  /// under stage 0's slot layout (or interleaves element-major when stage
  /// 0 fell back to scalar). All inputs must match the plan input shape,
  /// and `inputs.size()` must not exceed plan->PackedBatchLanes() when
  /// any stage packs.
  Result<std::vector<Ciphertext>> EncryptInputPackedBatch(
      const std::vector<DoubleTensor>& inputs, ThreadPool* pool = nullptr);

  /// Lane-batched intermediate round: decode stage `round`'s wire
  /// representation (unpack words / de-interleave lanes), apply the
  /// non-linear segment per lane, and re-encode in stage `round + 1`'s
  /// representation — this is where packed<->scalar representation
  /// changes happen, because only the data provider can re-pack.
  Result<std::vector<Ciphertext>> ProcessIntermediatePackedBatch(
      size_t round, const std::vector<Ciphertext>& in, int64_t lanes,
      ThreadPool* pool = nullptr);

  /// Lane-batched last round: one inference result per lane.
  Result<std::vector<DoubleTensor>> ProcessFinalPackedBatch(
      const std::vector<Ciphertext>& in, int64_t lanes,
      ThreadPool* pool = nullptr);

  /// Pool statistics (hit/miss accounting for bench assertions).
  RandomizerPool::Stats PoolStatsForTesting() const;

 private:
  /// Applies segment `round` to real values element-wise.
  Result<DoubleTensor> ApplySegment(size_t round,
                                    const DoubleTensor& values) const;

  /// Decrypts stage `round`'s output wire vector into per-lane real
  /// values of `shape` (dequantized by the stage's scale power).
  Result<std::vector<DoubleTensor>> DecodeStageOutput(
      size_t round, const std::vector<Ciphertext>& in, int64_t lanes,
      const Shape& shape, ThreadPool* pool) const;

  /// Quantizes per-lane values at F and encrypts them in stage `round`'s
  /// wire representation (packed words or interleaved scalars).
  Result<std::vector<Ciphertext>> EncodeForRound(
      size_t round, const std::vector<DoubleTensor>& values,
      ThreadPool* pool);

  std::shared_ptr<const InferencePlan> plan_;
  PaillierKeyPair keys_;
  std::shared_ptr<FaultInjector> fault_;
  // Precomputed r^n randomizers, sized for Options::expected_concurrency
  // requests' worth of encryptions (plan->EncryptionsPerRequest() each)
  // and refilled by the pool's background thread between requests — the
  // request path pays one ModMul per element. Batch takes assign
  // randomizers to tensor slots in stream order, and the pool serializes
  // production internally, so concurrent pipeline stages never race on
  // RNG state.
  std::unique_ptr<RandomizerPool> enc_pool_;
};

/// Drives the full synchronous protocol for one input (the streaming
/// engine pipelines exactly these steps across stages). Works against any
/// ModelProviderApi / DataProviderApi pair — local objects or remote
/// transport stubs. If `transcript` is non-null, records before/after-
/// obfuscation value pairs per round; this experimenter-side measurement
/// reads stored permutations and therefore requires an in-process
/// ModelProvider (fails with InvalidArgument on a remote stub).
Result<DoubleTensor> RunProtocolInference(ModelProviderApi& mp,
                                          DataProviderApi& dp,
                                          uint64_t request_id,
                                          const DoubleTensor& input,
                                          LeakageTranscript* transcript =
                                              nullptr);

/// Drives the full synchronous protocol for `inputs.size()` lanes riding
/// one packed wire (DESIGN.md §13). Per-lane outputs are bit-exact with
/// `inputs.size()` independent RunProtocolInference calls, while
/// encrypts, decrypts, scalar-muls, and wire words divide by the lane
/// count on packed rounds (scalar-fallback rounds interleave and pay full
/// price). Takes the concrete providers: lane batching is not on the
/// remote wire format yet.
Result<std::vector<DoubleTensor>> RunPackedBatchInference(
    ModelProvider& mp, DataProvider& dp, uint64_t request_id,
    const std::vector<DoubleTensor>& inputs, ThreadPool* pool = nullptr);

/// Bit-exact plaintext reference of the protocol: the same integer linear
/// algebra and the same quantization points, without encryption or
/// obfuscation. The protocol must produce EXACTLY this output.
Result<DoubleTensor> RunScaledPlainInference(const InferencePlan& plan,
                                             const DoubleTensor& input);

/// Classification accuracy of the scaled plain reference over a dataset.
Result<double> EvaluateScaledPlanAccuracy(const InferencePlan& plan,
                                          const Dataset& data);

}  // namespace ppstream
