// Request rate limiting — the paper's countermeasure against model
// stealing (§II-C): a compromised data provider could train a surrogate
// model from query/answer pairs, so the model provider bounds the number
// of requests it serves per data provider per time window.
//
// Token-bucket semantics: a bucket holds up to `burst` tokens and refills
// at `requests_per_second`; each admitted request consumes one token.

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

#include "util/status.h"

namespace ppstream {

class RequestRateLimiter {
 public:
  /// `requests_per_second` > 0; `burst` >= 1.
  RequestRateLimiter(double requests_per_second, double burst);

  /// Admits or rejects a request from `client_id`. Thread-safe.
  /// Returns ResourceExhausted when the client's bucket is empty.
  Status Admit(uint64_t client_id);

  /// Tokens currently available to a client (full bucket if unseen).
  double AvailableTokens(uint64_t client_id) const;

  /// Test hook: advance the limiter's clock without waiting.
  void AdvanceTimeForTesting(double seconds);

 private:
  struct Bucket {
    double tokens;
    double last_refill;  // limiter-clock seconds
  };

  double NowSeconds() const;
  void Refill(Bucket* bucket, double now) const;

  const double rate_;
  const double burst_;
  mutable std::mutex mutex_;
  std::map<uint64_t, Bucket> buckets_;
  std::chrono::steady_clock::time_point epoch_;
  double test_offset_ = 0;
};

}  // namespace ppstream
