// Inference-plan compilation (paper Section IV-B, "operation
// encapsulation").
//
// CompilePlan is a thin driver over the stage-graph IR (planner/ir.h):
// it imports the float model, runs the standard pass pipeline
// (planner/passes.h — MaxPool rewrite, mixed-layer decomposition,
// classification, integer lowering, affine-chain fusion, dead-tensor
// elimination, merge-adjacent, bound re-verification, optional Eq. 4-8
// placement) and emits the deployable plan below: the alternating stage
// structure of Figure 4, where linear stages run at the model provider on
// ciphertexts and non-linear segments run at the data provider on
// (obfuscated) plaintext. The wire format and provider contracts are
// unchanged by the IR — a plan compiled with every optimization disabled
// is identical to the pre-IR compiler's output, and fusion only replaces
// sequences of affine ops by their exact integer composition, so
// inference outputs stay bit-exact either way.

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/affine.h"
#include "nn/model.h"
#include "obs/cost.h"
#include "planner/passes.h"
#include "util/status.h"

namespace ppstream {

/// One merged linear primitive layer — a pipeline stage at the model
/// provider. The ops apply sequentially; the stage's output scale is
/// F^output_scale_power.
struct LinearStage {
  std::vector<IntegerAffineLayer> ops;
  Shape input_shape;
  Shape output_shape;
  int output_scale_power = 2;
  /// Worst-case |integer value| this stage can emit (for key sizing).
  BigInt magnitude_bound;
  std::string name;
  /// Slot layout covering this round's input and every op output, when
  /// the packing passes found one (DESIGN.md §13). Absent = scalar round.
  /// Present on data-provider views so both parties pack identically.
  std::optional<PackedLayout> packed_layout;
  /// Weight-value-dedup kernels, one per op, iff packed_layout is set.
  /// Model-provider side only (kernels derive from weights).
  std::vector<PackedAffineKernel> packed_kernels;
};

/// One merged non-linear primitive layer — a pipeline stage at the data
/// provider. Layers are element-wise activations, except that the final
/// segment may also hold SoftMax.
struct NonLinearSegment {
  std::vector<std::unique_ptr<Layer>> layers;
  Shape shape;  // element-wise: input shape == output shape
  bool is_final = false;
  std::string name;
};

/// The compiled plan. linear_stages[i] is followed by
/// nonlinear_segments[i]; counts are equal because a deployable model
/// starts with a linear layer and ends with a non-linear one (§III-A).
struct InferencePlan {
  int64_t scale = 1;  // F
  Shape input_shape;
  Shape output_shape;
  std::vector<LinearStage> linear_stages;
  std::vector<NonLinearSegment> nonlinear_segments;
  /// The rewritten float model the plan was compiled from (MaxPool
  /// replaced, mixed layers decomposed). Running it plainly gives the
  /// float reference the protocol approximates.
  Model prepared_model;

  /// True for plans reconstructed from a data-provider view: the linear
  /// stages carry shapes and scale powers but no weights, so such a plan
  /// can drive a DataProvider but never a ModelProvider.
  bool is_data_provider_view = false;

  /// What the optimizing passes did (op/scalar-mul counts before and
  /// after fusion, dead tensors reaped). In-memory only, not serialized.
  planner::PlanCompileStats compile_stats;

  /// Solved Eq. 4-8 server/thread assignment when CompileOptions
  /// requested placement. In-memory only, not serialized.
  std::optional<planner::PlanPlacement> placement;

  size_t NumRounds() const { return linear_stages.size(); }

  /// Elements the data provider encrypts per request: the input tensor
  /// plus every re-encrypted intermediate tensor. Sizes the
  /// RandomizerPool so one request's worth of randomizers is ready.
  /// Readable on a data-provider view (uses shapes only).
  int64_t EncryptionsPerRequest() const;

  /// Largest magnitude bound across stages; must stay below n/2.
  const BigInt& MaxMagnitude() const;

  /// Lanes a packed batch can carry end to end: the minimum `lanes` over
  /// packed stages (every lane must survive the narrowest round), or 0
  /// when no stage packs. Readable on a data-provider view.
  int64_t PackedBatchLanes() const;

  /// Verifies the plan fits a key with the given modulus. The bounds it
  /// checks are recomputed by the verify-bounds pass *after* every other
  /// pass has run (so no transform can silently invalidate them) and each
  /// stage's bound covers every op output inside the stage, not just the
  /// last. Returns kFailedPrecondition naming the offending stage.
  Status CheckFitsKey(const BigInt& n) const;

  /// Serializes exactly what the data provider needs for deployment:
  /// scale, shapes, per-round scale powers, and the non-linear segments.
  /// The model weights (linear stage ops) are NOT included — they stay
  /// with the model provider.
  void SerializeDataProviderView(BufferWriter* out) const;
  static Result<InferencePlan> DeserializeDataProviderView(BufferReader* in);
};

struct CompileOptions {
  /// Bound on |input element| in real units, used for magnitude analysis.
  double input_bound = 16.0;
  /// Whether (and when) FuseAffineChains folds adjacent linear ops.
  planner::FusionPolicy fusion = planner::FusionPolicy::kScalarMulCount;
  /// When set, the placement pass solves Eq. 4-8 over the merged rounds
  /// and the result lands in InferencePlan::placement.
  std::optional<planner::PlacementSpec> placement;
  /// When set, the packing passes choose per-round slot layouts and lower
  /// weight-value-dedup packed kernels (DESIGN.md §13). Plans become
  /// key-size specific: spec.key_bits must match the deployment key.
  std::optional<planner::PackingSpec> packing;
  /// Sees the IR after every pass (tools/plan_dump --pass-trace). Not
  /// owned; must outlive the CompilePlan call.
  planner::PassObserver* pass_observer = nullptr;
};

/// Compiles a trained model at scale F = `scale`.
Result<InferencePlan> CompilePlan(const Model& model, int64_t scale,
                                  const CompileOptions& options = {});

/// Expected per-request crypto cost of the scalar protocol path, priced
/// from the plan: encrypts = EncryptionsPerRequest(); scalar_muls = the
/// sum of every stage op's EncryptedScalarMuls() (exactly what
/// crypto.scalar_muls counts during ApplyEncryptedRows). On a
/// data-provider view the weights are absent, so scalar_muls prices to 0
/// ("unknown, don't reconcile") while encrypts stays exact.
obs::RequestCostBudget ExpectedRequestCost(const InferencePlan& plan);

/// Expected cost of one `lanes`-wide packed batch
/// (RunPackedBatchInference): packed rounds price one encrypt per word
/// (element) and GroupScalarMuls() per kernel; scalar-fallback rounds
/// price the scalar cost times `lanes`.
obs::RequestCostBudget ExpectedPackedBatchCost(const InferencePlan& plan,
                                               int64_t lanes);

/// Step 1+2 only: MaxPool rewrite + mixed-layer decomposition (the
/// rewrite-maxpool and decompose-mixed passes). Exposed for tests and for
/// the parameter-scaling search (which evaluates accuracy on the prepared
/// model).
Result<Model> PrepareModel(const Model& model);

}  // namespace ppstream
