// Parameter-scaling search (paper Section IV-A).
//
// Chooses the number of decimal places f (and hence the scaling factor
// F = 10^f) by rounding model parameters to f decimals, starting at f = 0,
// until the training-set accuracy of the rounded model is within a
// threshold (default 0.01%) of the original, or f reaches a maximum
// (default 6).

#pragma once

#include <vector>

#include "nn/dataset.h"
#include "nn/model.h"
#include "util/status.h"

namespace ppstream {

struct ScalingSelection {
  int f = 0;
  int64_t factor = 1;  // 10^f
  double original_accuracy = 0;
  double rounded_accuracy = 0;
  /// Training accuracy at every candidate f in [0, max_f] that was tested
  /// (the search stops early, so trailing entries may be absent).
  std::vector<double> accuracy_by_f;
};

struct ScalingOptions {
  /// |A - A'| threshold as a fraction (0.0001 == the paper's 0.01%).
  double accuracy_threshold = 0.0001;
  int max_f = 6;
};

/// Clone of `model` with every parameter rounded to `decimals` places.
Result<Model> RoundModelParameters(const Model& model, int decimals);

/// Runs the paper's Step 1-3 search on the training set.
Result<ScalingSelection> SelectScalingFactor(const Model& model,
                                             const Dataset& train_set,
                                             const ScalingOptions& options =
                                                 {});

}  // namespace ppstream
