#include "core/rate_limiter.h"

#include <algorithm>

#include "util/logging.h"

namespace ppstream {

RequestRateLimiter::RequestRateLimiter(double requests_per_second,
                                       double burst)
    : rate_(requests_per_second),
      burst_(burst),
      epoch_(std::chrono::steady_clock::now()) {
  PPS_CHECK_GT(requests_per_second, 0.0);
  PPS_CHECK_GE(burst, 1.0);
}

double RequestRateLimiter::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
             .count() +
         test_offset_;
}

void RequestRateLimiter::Refill(Bucket* bucket, double now) const {
  bucket->tokens = std::min(
      burst_, bucket->tokens + (now - bucket->last_refill) * rate_);
  bucket->last_refill = now;
}

Status RequestRateLimiter::Admit(uint64_t client_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = NowSeconds();
  auto [it, inserted] = buckets_.try_emplace(client_id, Bucket{burst_, now});
  if (!inserted) Refill(&it->second, now);
  if (it->second.tokens < 1.0) {
    return Status::ResourceExhausted(internal::StrCat(
        "client ", client_id,
        " exceeded the inference request rate limit (model-stealing "
        "countermeasure, paper §II-C)"));
  }
  it->second.tokens -= 1.0;
  return Status::OK();
}

double RequestRateLimiter::AvailableTokens(uint64_t client_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) return burst_;
  Bucket copy = it->second;
  Refill(&copy, NowSeconds());
  return copy.tokens;
}

void RequestRateLimiter::AdvanceTimeForTesting(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  test_offset_ += seconds;
}

}  // namespace ppstream
