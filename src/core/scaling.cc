#include "core/scaling.h"

#include <cmath>

#include "core/fixed_point.h"
#include "nn/trainer.h"

namespace ppstream {

Result<Model> RoundModelParameters(const Model& model, int decimals) {
  if (decimals < 0 || decimals > 18) {
    return Status::InvalidArgument("decimals must be in [0, 18]");
  }
  const double factor = static_cast<double>(PowerOfTen(decimals));
  Model rounded = model.Clone();
  for (size_t i = 0; i < rounded.NumLayers(); ++i) {
    rounded.layer(i).MutateParameters([factor](double v) {
      return std::round(v * factor) / factor;
    });
  }
  return rounded;
}

Result<ScalingSelection> SelectScalingFactor(const Model& model,
                                             const Dataset& train_set,
                                             const ScalingOptions& options) {
  if (options.max_f < 0) {
    return Status::InvalidArgument("max_f must be non-negative");
  }
  ScalingSelection sel;
  PPS_ASSIGN_OR_RETURN(sel.original_accuracy,
                       EvaluateAccuracy(model, train_set));

  for (int f = 0; f <= options.max_f; ++f) {
    PPS_ASSIGN_OR_RETURN(Model rounded, RoundModelParameters(model, f));
    PPS_ASSIGN_OR_RETURN(double acc, EvaluateAccuracy(rounded, train_set));
    sel.accuracy_by_f.push_back(acc);
    sel.f = f;
    sel.rounded_accuracy = acc;
    if (std::abs(sel.original_accuracy - acc) < options.accuracy_threshold) {
      break;  // paper Step 2 exit condition
    }
  }
  sel.factor = PowerOfTen(sel.f);
  return sel;
}

}  // namespace ppstream
