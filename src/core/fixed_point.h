// Fixed-point encoding conventions (paper Section IV-A).
//
// All values crossing the crypto boundary are integers at scale F = 10^f:
//   * activations enter a linear stage at scale F^1;
//   * every weighted linear layer multiplies the scale by F (weights are
//     quantized at F), so a merged linear stage of k weighted layers emits
//     values at scale F^(k+1);
//   * the data provider decrypts, divides by F^(k+1), applies non-linear
//     functions in double precision, and re-quantizes at F.
// Identity-like linear layers (Flatten) carry weight 1 and leave the scale
// unchanged.

#pragma once

#include <cmath>
#include <cstdint>

#include "bignum/bigint.h"
#include "tensor/tensor.h"

namespace ppstream {

/// round(v * F) as int64. F must be >= 1.
inline int64_t QuantizeValue(double v, int64_t scale) {
  return static_cast<int64_t>(std::llround(v * static_cast<double>(scale)));
}

/// v / F as double.
inline double DequantizeValue(int64_t v, double scale) {
  return static_cast<double>(v) / scale;
}

/// 10^f as int64 (f in [0, 18]).
inline int64_t PowerOfTen(int f) {
  int64_t out = 1;
  for (int i = 0; i < f; ++i) out *= 10;
  return out;
}

/// F^power as BigInt (for accumulated scales that exceed int64).
inline BigInt ScalePower(int64_t scale, int power) {
  BigInt out(1);
  const BigInt s(scale);
  for (int i = 0; i < power; ++i) out = out * s;
  return out;
}

/// Quantizes a double tensor at the given scale.
inline Tensor<int64_t> QuantizeTensor(const DoubleTensor& t, int64_t scale) {
  return t.Map<int64_t>(
      [scale](double v) { return QuantizeValue(v, scale); });
}

/// Dequantizes an integer tensor with a (possibly huge) BigInt scale.
inline DoubleTensor DequantizeTensor(const Tensor<BigInt>& t,
                                     const BigInt& scale) {
  const double s = scale.ToDouble();
  return t.Map<double>([s](const BigInt& v) { return v.ToDouble() / s; });
}

}  // namespace ppstream
