// Unified integer representation of linear layers.
//
// Every linear layer (Dense, Conv2D, BatchNorm, AvgPool, Flatten,
// ScalarScale) lowers to a sparse affine map over integers: output element
// j is  sum_t weight[t] * input[term[t].input_index] + bias_j.
//
// This single representation drives:
//   * homomorphic evaluation on Paillier ciphertexts (Eq. 3 of the paper:
//     prod_i E(m_i)^{w_i} * E(b));
//   * exact plaintext integer evaluation (the correctness reference);
//   * tensor partitioning — the receptive field of output j is exactly the
//     support of row j (paper Section IV-D).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"
#include "nn/layer.h"
#include "tensor/tensor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ppstream {

/// One weighted tap of an affine row. `weight` is the quantized integer
/// weight (at scale F, or the raw value 1 for identity layers).
struct AffineTerm {
  uint32_t input_index;
  int64_t weight;
};

/// One output element: sparse dot product plus bias.
struct AffineRow {
  std::vector<AffineTerm> terms;
  BigInt bias;  // already at the row's output scale
};

/// Per-evaluation cache of fixed-base exponent tables, one per input slot
/// whose fan-out (number of rows tapping it) crosses the break-even
/// threshold. Tables depend on the ciphertexts, so the cache is built once
/// per encrypted input tensor and shared read-only by every row slice /
/// worker thread of that evaluation. Slots below break-even stay null and
/// fall back to per-call ExpMont.
struct EncryptedStageCache {
  /// bases[i] covers input slot i, or null when no table was built for it.
  std::vector<std::shared_ptr<const FixedBaseExp>> bases;
  int64_t tables_built = 0;
};

/// A linear layer lowered to integer form.
class IntegerAffineLayer {
 public:
  /// Lowers a linear layer given its concrete input shape. `scale` is F;
  /// `input_scale_power` is the power of F carried by the stage input when
  /// this layer executes (1 for the first layer of a stage). Fails for
  /// non-linear layers or incompatible shapes.
  static Result<IntegerAffineLayer> FromLayer(const Layer& layer,
                                              const Shape& input_shape,
                                              int64_t scale,
                                              int input_scale_power);

  const Shape& input_shape() const { return in_shape_; }
  const Shape& output_shape() const { return out_shape_; }
  const std::vector<AffineRow>& rows() const { return rows_; }
  const std::string& name() const { return name_; }

  /// 0 for identity-like layers (Flatten), 1 for weighted layers: how much
  /// this layer raises the power of F.
  int weight_scale_power() const { return weight_scale_power_; }
  int input_scale_power() const { return input_scale_power_; }
  int output_scale_power() const {
    return input_scale_power_ + weight_scale_power_;
  }

  /// Exact integer evaluation (the plaintext reference path and the
  /// CipherBase-free fast path in tests).
  Result<Tensor<BigInt>> ApplyPlain(const Tensor<BigInt>& in) const;

  /// Fan-out at which building a fixed-base table for an input slot beats
  /// per-call ExpMont (profiled on 512-bit keys with quantized-weight
  /// exponents; see DESIGN.md §8 and bench_micro_crypto).
  static const int64_t kFixedBaseBreakEvenFanOut;

  /// Profiles the layer's fan-out per input slot and precomputes
  /// fixed-base tables for every slot tapped by at least `min_fan_out`
  /// rows (0 means kFixedBaseBreakEvenFanOut). Table builds parallelize
  /// over `pool` when given. The returned cache is read-only and safe to
  /// share across the threads evaluating this layer on `in`.
  Result<EncryptedStageCache> BuildEncryptedStageCache(
      const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
      ThreadPool* pool = nullptr, int64_t min_fan_out = 0) const;

  /// Homomorphic evaluation on ciphertexts (model-provider hot path).
  /// `row_begin`/`row_end` select a slice of output elements, enabling
  /// output-tensor partitioning across threads; pass 0, rows().size() for
  /// the whole output. Rows accumulate Montgomery-resident and convert
  /// back once per output element; with a `cache` (built on this exact
  /// `in`), high-fan-out slots use its fixed-base tables.
  Result<std::vector<Ciphertext>> ApplyEncryptedRows(
      const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
      size_t row_begin, size_t row_end,
      const EncryptedStageCache* cache = nullptr) const;

  /// Same, against an input sub-tensor: `sub` holds only the slots listed
  /// in `sub_indices` (sorted, unique — a ThreadWork::input_indices), and
  /// rows [row_begin, row_end) may only tap those slots. `cache` is still
  /// indexed by ORIGINAL input slot.
  Result<std::vector<Ciphertext>> ApplyEncryptedRowsSub(
      const PaillierPublicKey& pk, const std::vector<Ciphertext>& sub,
      const std::vector<uint32_t>& sub_indices, size_t row_begin,
      size_t row_end, const EncryptedStageCache* cache = nullptr) const;

  Result<Tensor<Ciphertext>> ApplyEncrypted(
      const PaillierPublicKey& pk, const Tensor<Ciphertext>& in) const;

  /// Worst-case |output| bound given a bound on |input| (both as integers
  /// at their respective scales). Used to verify values stay below n/2.
  BigInt OutputMagnitudeBound(const BigInt& input_bound) const;

  /// Total number of weighted taps (drives the profiler cost model).
  int64_t TotalTerms() const;

  /// Homomorphic cost of one evaluation: weighted taps that actually pay a
  /// ciphertext exponentiation. Mirrors EvalEncryptedRows exactly — identity
  /// rows (single weight-1 term, zero bias) forward the ciphertext for free,
  /// and zero-weight terms are skipped. The fusion pass optimizes this.
  int64_t EncryptedScalarMuls() const;

  /// Exact integer composition `second ∘ first`: the affine map that sends
  /// x to second(first(x)). Composed weights are Σ w2·w1 accumulated in
  /// BigInt; returns kOutOfRange if any composed weight overflows int64
  /// (callers treat that as "don't fuse"). Requires first's output to feed
  /// second elementwise (equal element counts, matching scale powers).
  /// Since both maps are exact over integers, evaluating the composite is
  /// bit-identical to evaluating the two layers in sequence.
  static Result<IntegerAffineLayer> Compose(const IntegerAffineLayer& first,
                                            const IntegerAffineLayer& second);

 private:
  Shape in_shape_, out_shape_;
  std::vector<AffineRow> rows_;
  std::string name_;
  int weight_scale_power_ = 1;
  int input_scale_power_ = 1;
};

/// One distinct nonzero quantized weight value of a row and every input
/// slot sharing it. The packed kernel multiplies the group's ciphertexts
/// together (slot-wise hom-adds) and applies the weight ONCE to the
/// product — one scalar-mul per (row, distinct weight value) instead of
/// one per term, which is where pruning/quantization pays off (Popcorn).
struct PackedWeightGroup {
  int64_t weight;
  std::vector<uint32_t> inputs;
};

/// Execution plan for one output row over packed inputs.
struct PackedRowPlan {
  bool identity = false;       // single weight-1 term, zero bias: forward
  uint32_t identity_input = 0;
  std::vector<PackedWeightGroup> groups;  // sorted by weight, deterministic
  BigInt packed_bias;  // row bias replicated into every lane's slot
};

/// A linear layer lowered for packed-ciphertext evaluation (DESIGN.md §13).
/// Input word t carries tensor element t for `layout.lanes` inference
/// lanes; the same row arithmetic then lands slot-parallel in all lanes.
class PackedAffineKernel {
 public:
  /// Groups the layer's rows by distinct weight value and pre-replicates
  /// biases. Fails (kOutOfRange) if the layer's worst-case output for
  /// `input_magnitude_bound` — which also bounds every partial sum the
  /// evaluation can form — does not fit the layout's slot capacity.
  static Result<PackedAffineKernel> Build(const IntegerAffineLayer& layer,
                                          const PackedLayout& layout,
                                          const BigInt& input_magnitude_bound);

  const PackedLayout& layout() const { return layout_; }
  const std::vector<PackedRowPlan>& rows() const { return rows_; }
  size_t num_inputs() const { return num_inputs_; }

  /// Scalar-muls one evaluation pays: one per non-identity (row, group).
  int64_t GroupScalarMuls() const;

  /// Homomorphic evaluation over packed words (same slicing contract as
  /// ApplyEncryptedRows; `cache` tables must be built on this exact `in`).
  /// Per-lane decoded outputs are bit-exact with the scalar path because
  /// ciphertext multiplication is commutative and slot arithmetic never
  /// overflows (guaranteed by the Build-time bound check).
  Result<std::vector<Ciphertext>> ApplyEncryptedRowsPacked(
      const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
      size_t row_begin, size_t row_end,
      const EncryptedStageCache* cache = nullptr) const;

 private:
  PackedLayout layout_;
  std::vector<PackedRowPlan> rows_;
  size_t num_inputs_ = 0;
};

}  // namespace ppstream
