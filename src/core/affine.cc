#include "core/affine.h"

#include <cmath>

#include "core/fixed_point.h"
#include "nn/layers.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// bias quantized at F^(input_scale_power + weight_scale_power).
BigInt QuantizeBias(double bias, int64_t scale, int out_power) {
  // Compute round(bias * F^out_power) without double overflow for large
  // powers: quantize at F once, then multiply by F^(out_power-1) exactly.
  if (bias == 0.0) return BigInt();
  const int64_t at_f = QuantizeValue(bias, scale);
  return BigInt(at_f) * ScalePower(scale, out_power - 1);
}

}  // namespace

Result<IntegerAffineLayer> IntegerAffineLayer::FromLayer(
    const Layer& layer, const Shape& input_shape, int64_t scale,
    int input_scale_power) {
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  if (input_scale_power < 1) {
    return Status::InvalidArgument("input_scale_power must be >= 1");
  }
  // Validates shape compatibility for every layer kind up front.
  PPS_ASSIGN_OR_RETURN(Shape output_shape, layer.OutputShape(input_shape));

  IntegerAffineLayer out;
  out.name_ = layer.name();
  out.input_scale_power_ = input_scale_power;
  out.weight_scale_power_ = 1;

  switch (layer.kind()) {
    case LayerKind::kDense: {
      const auto& dense = static_cast<const DenseLayer&>(layer);
      const int64_t in_f = dense.in_features(), out_f = dense.out_features();
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int out_power = input_scale_power + 1;
      out.rows_.resize(static_cast<size_t>(out_f));
      for (int64_t o = 0; o < out_f; ++o) {
        AffineRow& row = out.rows_[static_cast<size_t>(o)];
        row.terms.reserve(static_cast<size_t>(in_f));
        for (int64_t i = 0; i < in_f; ++i) {
          const int64_t w = QuantizeValue(dense.weights()[o * in_f + i],
                                          scale);
          if (w != 0) {
            row.terms.push_back({static_cast<uint32_t>(i), w});
          }
        }
        row.bias = QuantizeBias(dense.bias()[o], scale, out_power);
      }
      return out;
    }
    case LayerKind::kConv2D: {
      const auto& conv = static_cast<const Conv2DLayer&>(layer);
      const Conv2DGeometry& g = conv.geometry();
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int out_power = input_scale_power + 1;
      const int64_t oh = g.out_height(), ow = g.out_width();
      out.rows_.resize(static_cast<size_t>(g.out_channels * oh * ow));
      for (int64_t oc = 0; oc < g.out_channels; ++oc) {
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            AffineRow& row = out.rows_[static_cast<size_t>(
                (oc * oh + oy) * ow + ox)];
            const int64_t iy0 = oy * g.stride - g.padding;
            const int64_t ix0 = ox * g.stride - g.padding;
            for (int64_t ic = 0; ic < g.in_channels; ++ic) {
              for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
                const int64_t iy = iy0 + ky;
                if (iy < 0 || iy >= g.in_height) continue;
                for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
                  const int64_t ix = ix0 + kx;
                  if (ix < 0 || ix >= g.in_width) continue;
                  const int64_t w = QuantizeValue(
                      conv.filters()[((oc * g.in_channels + ic) * g.kernel_h +
                                      ky) *
                                         g.kernel_w +
                                     kx],
                      scale);
                  if (w != 0) {
                    row.terms.push_back(
                        {static_cast<uint32_t>((ic * g.in_height + iy) *
                                                   g.in_width +
                                               ix),
                         w});
                  }
                }
              }
            }
            row.bias = QuantizeBias(conv.bias()[oc], scale, out_power);
          }
        }
      }
      return out;
    }
    case LayerKind::kBatchNorm: {
      // Per-element affine: y = a_c x + b_c with a = gamma/sqrt(var+eps),
      // b = beta - gamma*mean/sqrt(var+eps).
      const auto& bn = static_cast<const BatchNormLayer&>(layer);
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int out_power = input_scale_power + 1;
      const int64_t n = input_shape.NumElements();
      const int64_t per_channel =
          input_shape.rank() == 3
              ? input_shape.dim(1) * input_shape.dim(2)
              : 1;
      out.rows_.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const int64_t c = i / per_channel;
        const double inv_std =
            1.0 / std::sqrt(bn.variance()[c] + bn.epsilon());
        const double a = bn.gamma()[c] * inv_std;
        const double b = bn.beta()[c] - bn.gamma()[c] * bn.mean()[c] * inv_std;
        AffineRow& row = out.rows_[static_cast<size_t>(i)];
        const int64_t w = QuantizeValue(a, scale);
        if (w != 0) row.terms.push_back({static_cast<uint32_t>(i), w});
        row.bias = QuantizeBias(b, scale, out_power);
      }
      return out;
    }
    case LayerKind::kAvgPool2D: {
      // A fixed depthwise convolution with weight 1/(k*k).
      const auto& pool = static_cast<const AvgPool2DLayer&>(layer);
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int64_t c = input_shape.dim(0), h = input_shape.dim(1),
                    w = input_shape.dim(2);
      const int64_t oh = output_shape.dim(1), ow = output_shape.dim(2);
      const int64_t wq =
          QuantizeValue(1.0 / static_cast<double>(pool.size() * pool.size()),
                        scale);
      out.rows_.resize(static_cast<size_t>(c * oh * ow));
      for (int64_t ch = 0; ch < c; ++ch) {
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            AffineRow& row =
                out.rows_[static_cast<size_t>((ch * oh + oy) * ow + ox)];
            for (int64_t ky = 0; ky < pool.size(); ++ky) {
              for (int64_t kx = 0; kx < pool.size(); ++kx) {
                row.terms.push_back(
                    {static_cast<uint32_t>(
                         (ch * h + oy * pool.stride() + ky) * w +
                         ox * pool.stride() + kx),
                     wq});
              }
            }
          }
        }
      }
      return out;
    }
    case LayerKind::kFlatten: {
      // Identity on the flat buffer: weight 1, no scale change.
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      out.weight_scale_power_ = 0;
      const int64_t n = input_shape.NumElements();
      out.rows_.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        out.rows_[static_cast<size_t>(i)].terms.push_back(
            {static_cast<uint32_t>(i), 1});
      }
      return out;
    }
    case LayerKind::kScalarScale: {
      const auto& ss = static_cast<const ScalarScaleLayer&>(layer);
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int64_t n = input_shape.NumElements();
      const int64_t wq = QuantizeValue(ss.alpha(), scale);
      out.rows_.resize(static_cast<size_t>(n));
      if (wq != 0) {
        for (int64_t i = 0; i < n; ++i) {
          out.rows_[static_cast<size_t>(i)].terms.push_back(
              {static_cast<uint32_t>(i), wq});
        }
      }
      return out;
    }
    default:
      return Status::InvalidArgument(
          internal::StrCat("layer ", layer.name(), " is not linear"));
  }
}

Result<Tensor<BigInt>> IntegerAffineLayer::ApplyPlain(
    const Tensor<BigInt>& in) const {
  if (in.NumElements() != in_shape_.NumElements()) {
    return Status::InvalidArgument(
        internal::StrCat(name_, ": plain input has ", in.NumElements(),
                         " elements, expected ", in_shape_.NumElements()));
  }
  Tensor<BigInt> out{out_shape_};
  for (size_t j = 0; j < rows_.size(); ++j) {
    BigInt acc = rows_[j].bias;
    for (const AffineTerm& t : rows_[j].terms) {
      acc = acc + in[t.input_index] * BigInt(t.weight);
    }
    out[static_cast<int64_t>(j)] = std::move(acc);
  }
  return out;
}

Result<std::vector<Ciphertext>> IntegerAffineLayer::ApplyEncryptedRows(
    const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
    size_t row_begin, size_t row_end) const {
  if (in.size() != static_cast<size_t>(in_shape_.NumElements())) {
    return Status::InvalidArgument(
        internal::StrCat(name_, ": encrypted input has ", in.size(),
                         " slots, expected ", in_shape_.NumElements()));
  }
  if (row_begin > row_end || row_end > rows_.size()) {
    return Status::OutOfRange("row slice out of range");
  }
  std::vector<Ciphertext> out;
  out.reserve(row_end - row_begin);
  for (size_t j = row_begin; j < row_end; ++j) {
    // Eq. (3): prod_i E(m_i)^{w_i} * E(b).
    Ciphertext acc = Paillier::EncryptZeroDeterministic(pk);
    for (const AffineTerm& t : rows_[j].terms) {
      PPS_ASSIGN_OR_RETURN(
          Ciphertext term,
          Paillier::ScalarMul(pk, in[t.input_index], BigInt(t.weight)));
      acc = Paillier::Add(pk, acc, term);
    }
    if (!rows_[j].bias.IsZero()) {
      PPS_ASSIGN_OR_RETURN(acc, Paillier::AddPlain(pk, acc, rows_[j].bias));
    }
    out.push_back(std::move(acc));
  }
  return out;
}

Result<Tensor<Ciphertext>> IntegerAffineLayer::ApplyEncrypted(
    const PaillierPublicKey& pk, const Tensor<Ciphertext>& in) const {
  PPS_ASSIGN_OR_RETURN(
      std::vector<Ciphertext> out,
      ApplyEncryptedRows(pk, in.data(), 0, rows_.size()));
  return Tensor<Ciphertext>(out_shape_, std::move(out));
}

BigInt IntegerAffineLayer::OutputMagnitudeBound(
    const BigInt& input_bound) const {
  BigInt worst;
  for (const AffineRow& row : rows_) {
    BigInt sum_abs_w;
    for (const AffineTerm& t : row.terms) {
      sum_abs_w = sum_abs_w + BigInt(t.weight < 0 ? -t.weight : t.weight);
    }
    BigInt bias_abs = row.bias.IsNegative() ? -row.bias : row.bias;
    BigInt bound = sum_abs_w * input_bound + bias_abs;
    if (bound.Compare(worst) > 0) worst = std::move(bound);
  }
  return worst;
}

int64_t IntegerAffineLayer::TotalTerms() const {
  int64_t total = 0;
  for (const AffineRow& row : rows_) {
    total += static_cast<int64_t>(row.terms.size());
  }
  return total;
}

}  // namespace ppstream
