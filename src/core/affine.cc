#include "core/affine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

#include "core/fixed_point.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace ppstream {

// Profiled on 512-bit keys (bench_micro_crypto, EXPERIMENTS.md): a
// minimal-window table build costs ~24.5us while each table-backed
// ScalarMul saves ~3us (4-bit weights) to ~15us (17-bit weights) over
// per-call ExpMont, putting break-even between 2 and 8 reuses. 4 is the
// measured middle for the 10-20-bit weights quantization produces.
const int64_t IntegerAffineLayer::kFixedBaseBreakEvenFanOut = 4;

namespace {

/// bias quantized at F^(input_scale_power + weight_scale_power).
BigInt QuantizeBias(double bias, int64_t scale, int out_power) {
  // Compute round(bias * F^out_power) without double overflow for large
  // powers: quantize at F once, then multiply by F^(out_power-1) exactly.
  if (bias == 0.0) return BigInt();
  const int64_t at_f = QuantizeValue(bias, scale);
  return BigInt(at_f) * ScalePower(scale, out_power - 1);
}

}  // namespace

Result<IntegerAffineLayer> IntegerAffineLayer::FromLayer(
    const Layer& layer, const Shape& input_shape, int64_t scale,
    int input_scale_power) {
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  if (input_scale_power < 1) {
    return Status::InvalidArgument("input_scale_power must be >= 1");
  }
  // Validates shape compatibility for every layer kind up front.
  PPS_ASSIGN_OR_RETURN(Shape output_shape, layer.OutputShape(input_shape));

  IntegerAffineLayer out;
  out.name_ = layer.name();
  out.input_scale_power_ = input_scale_power;
  out.weight_scale_power_ = 1;

  switch (layer.kind()) {
    case LayerKind::kDense: {
      const auto& dense = static_cast<const DenseLayer&>(layer);
      const int64_t in_f = dense.in_features(), out_f = dense.out_features();
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int out_power = input_scale_power + 1;
      out.rows_.resize(static_cast<size_t>(out_f));
      for (int64_t o = 0; o < out_f; ++o) {
        AffineRow& row = out.rows_[static_cast<size_t>(o)];
        row.terms.reserve(static_cast<size_t>(in_f));
        for (int64_t i = 0; i < in_f; ++i) {
          const int64_t w = QuantizeValue(dense.weights()[o * in_f + i],
                                          scale);
          if (w != 0) {
            row.terms.push_back({static_cast<uint32_t>(i), w});
          }
        }
        row.bias = QuantizeBias(dense.bias()[o], scale, out_power);
      }
      return out;
    }
    case LayerKind::kConv2D: {
      const auto& conv = static_cast<const Conv2DLayer&>(layer);
      const Conv2DGeometry& g = conv.geometry();
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int out_power = input_scale_power + 1;
      const int64_t oh = g.out_height(), ow = g.out_width();
      out.rows_.resize(static_cast<size_t>(g.out_channels * oh * ow));
      for (int64_t oc = 0; oc < g.out_channels; ++oc) {
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            AffineRow& row = out.rows_[static_cast<size_t>(
                (oc * oh + oy) * ow + ox)];
            const int64_t iy0 = oy * g.stride - g.padding;
            const int64_t ix0 = ox * g.stride - g.padding;
            for (int64_t ic = 0; ic < g.in_channels; ++ic) {
              for (int64_t ky = 0; ky < g.kernel_h; ++ky) {
                const int64_t iy = iy0 + ky;
                if (iy < 0 || iy >= g.in_height) continue;
                for (int64_t kx = 0; kx < g.kernel_w; ++kx) {
                  const int64_t ix = ix0 + kx;
                  if (ix < 0 || ix >= g.in_width) continue;
                  const int64_t w = QuantizeValue(
                      conv.filters()[((oc * g.in_channels + ic) * g.kernel_h +
                                      ky) *
                                         g.kernel_w +
                                     kx],
                      scale);
                  if (w != 0) {
                    row.terms.push_back(
                        {static_cast<uint32_t>((ic * g.in_height + iy) *
                                                   g.in_width +
                                               ix),
                         w});
                  }
                }
              }
            }
            row.bias = QuantizeBias(conv.bias()[oc], scale, out_power);
          }
        }
      }
      return out;
    }
    case LayerKind::kBatchNorm: {
      // Per-element affine: y = a_c x + b_c with a = gamma/sqrt(var+eps),
      // b = beta - gamma*mean/sqrt(var+eps).
      const auto& bn = static_cast<const BatchNormLayer&>(layer);
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int out_power = input_scale_power + 1;
      const int64_t n = input_shape.NumElements();
      const int64_t per_channel =
          input_shape.rank() == 3
              ? input_shape.dim(1) * input_shape.dim(2)
              : 1;
      out.rows_.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        const int64_t c = i / per_channel;
        const double inv_std =
            1.0 / std::sqrt(bn.variance()[c] + bn.epsilon());
        const double a = bn.gamma()[c] * inv_std;
        const double b = bn.beta()[c] - bn.gamma()[c] * bn.mean()[c] * inv_std;
        AffineRow& row = out.rows_[static_cast<size_t>(i)];
        const int64_t w = QuantizeValue(a, scale);
        if (w != 0) row.terms.push_back({static_cast<uint32_t>(i), w});
        row.bias = QuantizeBias(b, scale, out_power);
      }
      return out;
    }
    case LayerKind::kAvgPool2D: {
      // A fixed depthwise convolution with weight 1/(k*k).
      const auto& pool = static_cast<const AvgPool2DLayer&>(layer);
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int64_t c = input_shape.dim(0), h = input_shape.dim(1),
                    w = input_shape.dim(2);
      const int64_t oh = output_shape.dim(1), ow = output_shape.dim(2);
      const int64_t wq =
          QuantizeValue(1.0 / static_cast<double>(pool.size() * pool.size()),
                        scale);
      out.rows_.resize(static_cast<size_t>(c * oh * ow));
      for (int64_t ch = 0; ch < c; ++ch) {
        for (int64_t oy = 0; oy < oh; ++oy) {
          for (int64_t ox = 0; ox < ow; ++ox) {
            AffineRow& row =
                out.rows_[static_cast<size_t>((ch * oh + oy) * ow + ox)];
            for (int64_t ky = 0; ky < pool.size(); ++ky) {
              for (int64_t kx = 0; kx < pool.size(); ++kx) {
                row.terms.push_back(
                    {static_cast<uint32_t>(
                         (ch * h + oy * pool.stride() + ky) * w +
                         ox * pool.stride() + kx),
                     wq});
              }
            }
          }
        }
      }
      return out;
    }
    case LayerKind::kFlatten: {
      // Identity on the flat buffer: weight 1, no scale change.
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      out.weight_scale_power_ = 0;
      const int64_t n = input_shape.NumElements();
      out.rows_.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        out.rows_[static_cast<size_t>(i)].terms.push_back(
            {static_cast<uint32_t>(i), 1});
      }
      return out;
    }
    case LayerKind::kScalarScale: {
      const auto& ss = static_cast<const ScalarScaleLayer&>(layer);
      out.in_shape_ = input_shape;
      out.out_shape_ = output_shape;
      const int64_t n = input_shape.NumElements();
      const int64_t wq = QuantizeValue(ss.alpha(), scale);
      out.rows_.resize(static_cast<size_t>(n));
      if (wq != 0) {
        for (int64_t i = 0; i < n; ++i) {
          out.rows_[static_cast<size_t>(i)].terms.push_back(
              {static_cast<uint32_t>(i), wq});
        }
      }
      return out;
    }
    default:
      return Status::InvalidArgument(
          internal::StrCat("layer ", layer.name(), " is not linear"));
  }
}

Result<Tensor<BigInt>> IntegerAffineLayer::ApplyPlain(
    const Tensor<BigInt>& in) const {
  if (in.NumElements() != in_shape_.NumElements()) {
    return Status::InvalidArgument(
        internal::StrCat(name_, ": plain input has ", in.NumElements(),
                         " elements, expected ", in_shape_.NumElements()));
  }
  Tensor<BigInt> out{out_shape_};
  for (size_t j = 0; j < rows_.size(); ++j) {
    BigInt acc = rows_[j].bias;
    for (const AffineTerm& t : rows_[j].terms) {
      acc = acc + in[t.input_index] * BigInt(t.weight);
    }
    out[static_cast<int64_t>(j)] = std::move(acc);
  }
  return out;
}

namespace {

/// Lazily-built Montgomery residents (and inverses) of the input slots,
/// local to one row-slice evaluation (one thread).
class ResidentInputs {
 public:
  ResidentInputs(const MontgomeryContext& ctx,
                 const std::vector<Ciphertext>& in)
      : ctx_(ctx), in_(in), mont_(in.size()), inv_(in.size()) {}

  const MontgomeryContext::MontValue& Mont(size_t pos) {
    if (mont_[pos].empty()) mont_[pos] = ctx_.ToMontgomery(in_[pos].value);
    return mont_[pos];
  }

  Result<const MontgomeryContext::MontValue*> Inverse(size_t pos) {
    if (inv_[pos].empty()) {
      PPS_ASSIGN_OR_RETURN(
          BigInt v, BigInt::ModInverse(in_[pos].value, ctx_.modulus()));
      inv_[pos] = ctx_.ToMontgomery(v);
    }
    return &inv_[pos];
  }

 private:
  const MontgomeryContext& ctx_;
  const std::vector<Ciphertext>& in_;
  std::vector<MontgomeryContext::MontValue> mont_;
  std::vector<MontgomeryContext::MontValue> inv_;
};

/// Shared row-slice core for the whole-tensor and sub-tensor paths.
/// `sub_indices == nullptr` means `in` is the full input (slot i at
/// position i); otherwise `in[p]` holds slot (*sub_indices)[p].
Result<std::vector<Ciphertext>> EvalEncryptedRows(
    const PaillierPublicKey& pk, const std::vector<AffineRow>& rows,
    size_t row_begin, size_t row_end, const std::vector<Ciphertext>& in,
    const std::vector<uint32_t>* sub_indices,
    const EncryptedStageCache* cache) {
  const MontgomeryContext& ctx = pk.ctx_n2();
  ResidentInputs resident(ctx, in);
  auto position_of = [&](uint32_t slot) -> size_t {
    if (sub_indices == nullptr) return slot;
    return static_cast<size_t>(
        std::lower_bound(sub_indices->begin(), sub_indices->end(), slot) -
        sub_indices->begin());
  };

  std::vector<Ciphertext> out;
  out.reserve(row_end - row_begin);
  // Homomorphic weight applications (c^w in the Montgomery domain) count
  // as scalar muls even though they bypass Paillier::ScalarMul; batched
  // into one registry increment per call to keep the inner loop clean.
  static obs::Counter* scalar_muls =
      obs::MetricsRegistry::Global().GetCounter("crypto.scalar_muls");
  uint64_t muls_applied = 0;
  MontgomeryContext::MontValue acc, term;
  for (size_t j = row_begin; j < row_end; ++j) {
    const AffineRow& row = rows[j];
    // Identity rows (Flatten and friends) forward the ciphertext — the
    // same bits the generic path yields, since E(0; r=1) * c^1 = c.
    if (row.terms.size() == 1 && row.terms[0].weight == 1 &&
        row.bias.IsZero()) {
      out.push_back(in[position_of(row.terms[0].input_index)]);
      continue;
    }
    // Eq. (3): prod_i E(m_i)^{w_i} * E(b), accumulated in the Montgomery
    // domain; one conversion back per output element.
    acc = ctx.OneMont();  // E(0) with r = 1
    for (const AffineTerm& t : row.terms) {
      if (t.weight == 0) continue;  // c^0 = 1, the accumulation identity
      ++muls_applied;
      const FixedBaseExp* base =
          (cache != nullptr && t.input_index < cache->bases.size())
              ? cache->bases[t.input_index].get()
              : nullptr;
      if (base != nullptr) {
        PPS_RETURN_IF_ERROR(base->PowMont(BigInt(t.weight), &term));
      } else {
        const size_t pos = position_of(t.input_index);
        if (t.weight == 1) {
          ctx.MulMont(acc, resident.Mont(pos), &acc);
          continue;
        }
        const int64_t mag = t.weight < 0 ? -t.weight : t.weight;
        if (t.weight < 0) {
          PPS_ASSIGN_OR_RETURN(const MontgomeryContext::MontValue* inv,
                               resident.Inverse(pos));
          ctx.ExpMont(*inv, BigInt(mag), &term);
        } else {
          ctx.ExpMont(resident.Mont(pos), BigInt(mag), &term);
        }
      }
      ctx.MulMont(acc, term, &acc);
    }
    if (!row.bias.IsZero()) {
      PPS_ASSIGN_OR_RETURN(
          MontCiphertext with_bias,
          Paillier::AddPlainMont(pk, MontCiphertext{std::move(acc)},
                                 row.bias));
      acc = std::move(with_bias.m);
    }
    out.push_back(Ciphertext{ctx.FromMontgomery(acc)});
  }
  if (muls_applied != 0) scalar_muls->Increment(muls_applied);
  return out;
}

}  // namespace

Result<EncryptedStageCache> IntegerAffineLayer::BuildEncryptedStageCache(
    const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
    ThreadPool* pool, int64_t min_fan_out) const {
  if (in.size() != static_cast<size_t>(in_shape_.NumElements())) {
    return Status::InvalidArgument(
        internal::StrCat(name_, ": cache input has ", in.size(),
                         " slots, expected ", in_shape_.NumElements()));
  }
  if (min_fan_out <= 0) min_fan_out = kFixedBaseBreakEvenFanOut;

  struct SlotProfile {
    int64_t fan_out = 0;
    int max_weight_bits = 0;
    bool has_negative = false;
  };
  std::vector<SlotProfile> profile(in.size());
  for (const AffineRow& row : rows_) {
    for (const AffineTerm& t : row.terms) {
      SlotProfile& p = profile[t.input_index];
      ++p.fan_out;
      p.max_weight_bits =
          std::max(p.max_weight_bits, BigInt(t.weight).BitLength());
      p.has_negative |= t.weight < 0;
    }
  }

  EncryptedStageCache cache;
  cache.bases.resize(in.size());
  std::vector<size_t> to_build;
  for (size_t i = 0; i < profile.size(); ++i) {
    // Weight-(+/-)1 slots never pay squarings, so a table buys nothing.
    if (profile[i].fan_out >= min_fan_out && profile[i].max_weight_bits >= 2) {
      to_build.push_back(i);
    }
  }
  if (to_build.empty()) return cache;

  auto build_one = [&](size_t slot) -> Status {
    const SlotProfile& p = profile[slot];
    PPS_ASSIGN_OR_RETURN(
        FixedBaseExp base,
        Paillier::PrecomputeScalarMulBase(pk, in[slot], p.max_weight_bits,
                                          p.has_negative, p.fan_out));
    cache.bases[slot] = std::make_shared<const FixedBaseExp>(std::move(base));
    return Status::OK();
  };

  if (pool != nullptr && pool->num_threads() > 1 && to_build.size() > 1) {
    std::mutex error_mutex;
    Status first_error;
    pool->ParallelFor(0, to_build.size(), [&](size_t i) {
      Status st = build_one(to_build[i]);
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = std::move(st);
      }
    });
    PPS_RETURN_IF_ERROR(first_error);
  } else {
    for (size_t slot : to_build) {
      PPS_RETURN_IF_ERROR(build_one(slot));
    }
  }
  cache.tables_built = static_cast<int64_t>(to_build.size());
  return cache;
}

Result<std::vector<Ciphertext>> IntegerAffineLayer::ApplyEncryptedRows(
    const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
    size_t row_begin, size_t row_end,
    const EncryptedStageCache* cache) const {
  if (in.size() != static_cast<size_t>(in_shape_.NumElements())) {
    return Status::InvalidArgument(
        internal::StrCat(name_, ": encrypted input has ", in.size(),
                         " slots, expected ", in_shape_.NumElements()));
  }
  if (row_begin > row_end || row_end > rows_.size()) {
    return Status::OutOfRange("row slice out of range");
  }
  return EvalEncryptedRows(pk, rows_, row_begin, row_end, in,
                           /*sub_indices=*/nullptr, cache);
}

Result<std::vector<Ciphertext>> IntegerAffineLayer::ApplyEncryptedRowsSub(
    const PaillierPublicKey& pk, const std::vector<Ciphertext>& sub,
    const std::vector<uint32_t>& sub_indices, size_t row_begin,
    size_t row_end, const EncryptedStageCache* cache) const {
  if (sub.size() != sub_indices.size()) {
    return Status::InvalidArgument(
        internal::StrCat(name_, ": sub-tensor has ", sub.size(),
                         " slots but ", sub_indices.size(), " indices"));
  }
  if (row_begin > row_end || row_end > rows_.size()) {
    return Status::OutOfRange("row slice out of range");
  }
  for (size_t j = row_begin; j < row_end; ++j) {
    for (const AffineTerm& t : rows_[j].terms) {
      if (!std::binary_search(sub_indices.begin(), sub_indices.end(),
                              t.input_index)) {
        return Status::InvalidArgument(internal::StrCat(
            name_, ": row ", j, " taps slot ", t.input_index,
            " missing from the sub-tensor"));
      }
    }
  }
  return EvalEncryptedRows(pk, rows_, row_begin, row_end, sub, &sub_indices,
                           cache);
}

Result<Tensor<Ciphertext>> IntegerAffineLayer::ApplyEncrypted(
    const PaillierPublicKey& pk, const Tensor<Ciphertext>& in) const {
  PPS_ASSIGN_OR_RETURN(
      std::vector<Ciphertext> out,
      ApplyEncryptedRows(pk, in.data(), 0, rows_.size()));
  return Tensor<Ciphertext>(out_shape_, std::move(out));
}

BigInt IntegerAffineLayer::OutputMagnitudeBound(
    const BigInt& input_bound) const {
  BigInt worst;
  for (const AffineRow& row : rows_) {
    BigInt sum_abs_w;
    for (const AffineTerm& t : row.terms) {
      sum_abs_w = sum_abs_w + BigInt(t.weight < 0 ? -t.weight : t.weight);
    }
    BigInt bias_abs = row.bias.IsNegative() ? -row.bias : row.bias;
    BigInt bound = sum_abs_w * input_bound + bias_abs;
    if (bound.Compare(worst) > 0) worst = std::move(bound);
  }
  return worst;
}

int64_t IntegerAffineLayer::TotalTerms() const {
  int64_t total = 0;
  for (const AffineRow& row : rows_) {
    total += static_cast<int64_t>(row.terms.size());
  }
  return total;
}

int64_t IntegerAffineLayer::EncryptedScalarMuls() const {
  int64_t total = 0;
  for (const AffineRow& row : rows_) {
    if (row.terms.size() == 1 && row.terms[0].weight == 1 &&
        row.bias.IsZero()) {
      continue;  // identity fast path: ciphertext forwarded, no mul
    }
    for (const AffineTerm& t : row.terms) {
      if (t.weight != 0) ++total;
    }
  }
  return total;
}

Result<PackedAffineKernel> PackedAffineKernel::Build(
    const IntegerAffineLayer& layer, const PackedLayout& layout,
    const BigInt& input_magnitude_bound) {
  PPS_RETURN_IF_ERROR(layout.Validate());
  // One bound covers every accumulation point: partial sums of
  // sum_t w_t x_t + b are bounded by the full row's magnitude bound
  // (sum of |w_t| * bound + |b|), so checking the worst row suffices.
  const BigInt worst = layer.OutputMagnitudeBound(input_magnitude_bound);
  if (worst > layout.SlotCapacity()) {
    return Status::OutOfRange(internal::StrCat(
        layer.name(), ": output bound of ", worst.BitLength(),
        " bits overflows a ", layout.slot_bits, "-bit packed slot"));
  }
  PPS_RETURN_IF_ERROR(CheckSlotFits(layout, input_magnitude_bound));

  PackedAffineKernel kernel;
  kernel.layout_ = layout;
  kernel.num_inputs_ =
      static_cast<size_t>(layer.input_shape().NumElements());
  const BigInt replicate = layout.ReplicationConstant();
  kernel.rows_.reserve(layer.rows().size());
  std::map<int64_t, std::vector<uint32_t>> by_weight;
  for (const AffineRow& row : layer.rows()) {
    PackedRowPlan plan;
    if (row.terms.size() == 1 && row.terms[0].weight == 1 &&
        row.bias.IsZero()) {
      plan.identity = true;
      plan.identity_input = row.terms[0].input_index;
      kernel.rows_.push_back(std::move(plan));
      continue;
    }
    by_weight.clear();
    for (const AffineTerm& t : row.terms) {
      if (t.weight == 0) continue;
      by_weight[t.weight].push_back(t.input_index);
    }
    plan.groups.reserve(by_weight.size());
    for (auto& [weight, inputs] : by_weight) {
      plan.groups.push_back({weight, std::move(inputs)});
    }
    if (!row.bias.IsZero()) plan.packed_bias = row.bias * replicate;
    kernel.rows_.push_back(std::move(plan));
  }
  return kernel;
}

int64_t PackedAffineKernel::GroupScalarMuls() const {
  int64_t total = 0;
  for (const PackedRowPlan& row : rows_) {
    total += static_cast<int64_t>(row.groups.size());
  }
  return total;
}

Result<std::vector<Ciphertext>> PackedAffineKernel::ApplyEncryptedRowsPacked(
    const PaillierPublicKey& pk, const std::vector<Ciphertext>& in,
    size_t row_begin, size_t row_end, const EncryptedStageCache* cache) const {
  if (in.size() != num_inputs_) {
    return Status::InvalidArgument(
        internal::StrCat("packed input has ", in.size(), " words, expected ",
                         num_inputs_));
  }
  if (row_begin > row_end || row_end > rows_.size()) {
    return Status::OutOfRange("row slice out of range");
  }
  const MontgomeryContext& ctx = pk.ctx_n2();
  ResidentInputs resident(ctx, in);

  std::vector<Ciphertext> out;
  out.reserve(row_end - row_begin);
  // A group pays one weight application (counted under crypto.scalar_muls,
  // same semantics as the scalar path) after |group|-1 ciphertext
  // multiplications that fold its members together (crypto.pack.hom_adds).
  static obs::Counter* scalar_muls =
      obs::MetricsRegistry::Global().GetCounter("crypto.scalar_muls");
  static obs::Counter* hom_adds =
      obs::MetricsRegistry::Global().GetCounter("crypto.pack.hom_adds");
  uint64_t muls_applied = 0, adds_applied = 0;
  MontgomeryContext::MontValue acc, gacc, term;
  for (size_t j = row_begin; j < row_end; ++j) {
    const PackedRowPlan& row = rows_[j];
    if (row.identity) {
      out.push_back(in[row.identity_input]);
      continue;
    }
    acc = ctx.OneMont();  // E(0) with r = 1
    for (const PackedWeightGroup& group : row.groups) {
      ++muls_applied;
      const int64_t mag = group.weight < 0 ? -group.weight : group.weight;
      const bool negative = group.weight < 0;
      // Singleton groups with a cached fixed-base table skip the fold and
      // the resident conversion entirely.
      const FixedBaseExp* base =
          (group.inputs.size() == 1 && cache != nullptr &&
           group.inputs[0] < cache->bases.size())
              ? cache->bases[group.inputs[0]].get()
              : nullptr;
      if (base != nullptr) {
        PPS_RETURN_IF_ERROR(base->PowMont(BigInt(group.weight), &term));
        ctx.MulMont(acc, term, &acc);
        continue;
      }
      // Fold the group: E(sum of members), slot-parallel across lanes.
      // Negative weights fold inverses so gacc^|w| = (prod c_i)^w.
      bool first = true;
      for (uint32_t input : group.inputs) {
        const MontgomeryContext::MontValue* value;
        if (negative) {
          PPS_ASSIGN_OR_RETURN(value, resident.Inverse(input));
        } else {
          value = &resident.Mont(input);
        }
        if (first) {
          gacc = *value;
          first = false;
        } else {
          ctx.MulMont(gacc, *value, &gacc);
          ++adds_applied;
        }
      }
      if (mag == 1) {
        ctx.MulMont(acc, gacc, &acc);
      } else {
        ctx.ExpMont(gacc, BigInt(mag), &term);
        ctx.MulMont(acc, term, &acc);
      }
    }
    if (!row.packed_bias.IsZero()) {
      PPS_ASSIGN_OR_RETURN(
          MontCiphertext with_bias,
          Paillier::AddPlainMont(pk, MontCiphertext{std::move(acc)},
                                 row.packed_bias));
      acc = std::move(with_bias.m);
    }
    out.push_back(Ciphertext{ctx.FromMontgomery(acc)});
  }
  if (muls_applied != 0) scalar_muls->Increment(muls_applied);
  if (adds_applied != 0) hom_adds->Increment(adds_applied);
  return out;
}

Result<IntegerAffineLayer> IntegerAffineLayer::Compose(
    const IntegerAffineLayer& first, const IntegerAffineLayer& second) {
  if (first.out_shape_.NumElements() != second.in_shape_.NumElements()) {
    return Status::InvalidArgument(internal::StrCat(
        "cannot compose ", first.name_, " (", first.out_shape_.NumElements(),
        " outputs) with ", second.name_, " (",
        second.in_shape_.NumElements(), " inputs)"));
  }
  if (first.output_scale_power() != second.input_scale_power_) {
    return Status::InvalidArgument(internal::StrCat(
        "scale power mismatch composing ", first.name_, " (out F^",
        first.output_scale_power(), ") with ", second.name_, " (in F^",
        second.input_scale_power_, ")"));
  }

  IntegerAffineLayer out;
  out.name_ = first.name_ + "*" + second.name_;
  out.in_shape_ = first.in_shape_;
  out.out_shape_ = second.out_shape_;
  out.input_scale_power_ = first.input_scale_power_;
  out.weight_scale_power_ =
      first.weight_scale_power_ + second.weight_scale_power_;
  out.rows_.resize(second.rows_.size());

  // Sparse row-times-matrix: composed row j taps slot i with weight
  // Σ_k w2[j,k]·w1[k,i]; composed bias is b2[j] + Σ_k w2[j,k]·b1[k].
  // std::map keeps terms sorted by input slot for a deterministic layout.
  std::map<uint32_t, BigInt> acc;
  for (size_t j = 0; j < second.rows_.size(); ++j) {
    const AffineRow& r2 = second.rows_[j];
    AffineRow& dst = out.rows_[j];
    dst.bias = r2.bias;
    acc.clear();
    for (const AffineTerm& t2 : r2.terms) {
      if (t2.weight == 0) continue;
      const AffineRow& r1 = first.rows_[t2.input_index];
      const BigInt w2(t2.weight);
      if (!r1.bias.IsZero()) dst.bias = dst.bias + w2 * r1.bias;
      for (const AffineTerm& t1 : r1.terms) {
        if (t1.weight == 0) continue;
        BigInt& slot = acc[t1.input_index];
        slot = slot + w2 * BigInt(t1.weight);
      }
    }
    dst.terms.reserve(acc.size());
    for (const auto& [slot, weight] : acc) {
      if (weight.IsZero()) continue;  // cancellation across paths
      PPS_ASSIGN_OR_RETURN(int64_t w, weight.ToInt64());
      dst.terms.push_back({slot, w});
    }
  }
  return out;
}

}  // namespace ppstream
