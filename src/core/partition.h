// Tensor partitioning (paper Section IV-D).
//
// A linear op's output elements are split evenly across threads (output
// tensor partitioning, always applicable). Each thread's required input is
// the union of the receptive fields (row supports) of its output elements;
// sending only that sub-tensor is input tensor partitioning, which pays
// off for convolutions whose receptive fields are local. The "without
// partitioning" baseline of Exp#4 ships the whole input tensor to every
// thread and lets each produce one output element at a time.

#pragma once

#include <cstdint>
#include <vector>

#include "core/affine.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ppstream {

/// Work descriptor for one thread.
struct ThreadWork {
  size_t row_begin = 0;  // [row_begin, row_end) output elements
  size_t row_end = 0;
  /// Input elements this thread needs (sorted, unique). With input
  /// partitioning only these are shipped; without it, all inputs are.
  std::vector<uint32_t> input_indices;
};

/// Partitioning of one linear op across threads, plus the communication
/// volumes (in input elements) of the three shipping strategies:
///   * no partitioning (paper Exp#4 baseline): each thread receives the
///     whole input tensor for every output element it produces, i.e.
///     rows x input_size;
///   * output partitioning only: each thread receives the whole tensor
///     once and produces its block of output elements (threads x input);
///   * input + output partitioning: each thread receives only the union
///     of its rows' receptive fields (equal to the above for layers with
///     global receptive fields such as Dense — §IV-D).
struct PartitionPlan {
  std::vector<ThreadWork> threads;
  int64_t elements_no_partitioning = 0;
  int64_t elements_output_partitioning = 0;
  int64_t elements_with_input_partitioning = 0;
};

/// Splits `op` across `num_threads` threads.
Result<PartitionPlan> PartitionOp(const IntegerAffineLayer& op,
                                  size_t num_threads);

/// Applies `op` homomorphically with the given partitioning on `pool`.
/// If `input_partitioning` is set, each thread first materializes its
/// input sub-tensor (modelling the per-thread message of a distributed
/// deployment) and computes from it; otherwise each thread reads the whole
/// input. The two paths produce identical ciphertext outputs. `cache`
/// (built via op.BuildEncryptedStageCache on this exact `in`) shares
/// fixed-base tables across all threads; null evaluates without tables.
Result<std::vector<Ciphertext>> ApplyEncryptedPartitioned(
    const PaillierPublicKey& pk, const IntegerAffineLayer& op,
    const std::vector<Ciphertext>& in, const PartitionPlan& partition,
    bool input_partitioning, ThreadPool* pool,
    const EncryptedStageCache* cache = nullptr);

}  // namespace ppstream
