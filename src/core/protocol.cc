#include "core/protocol.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "core/fixed_point.h"
#include "core/partition.h"
#include "crypto/packing.h"
#include "nn/dataset.h"
#include "obs/cost.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// Probes the chaos injector at a protocol entry point (no-op when the
/// provider has no injector wired).
Status ProbeFault(const std::shared_ptr<FaultInjector>& fault,
                  std::string_view site) {
  if (fault == nullptr) return Status::OK();
  return fault->Fail(site);
}

/// Expands an element-level permutation to an interleaved scalar wire:
/// block p (the `lanes` consecutive positions of element p) moves as one
/// unit to block perm(p), so lanes never mix under obfuscation.
Result<Permutation> ExpandBlockwise(const Permutation& perm, int64_t lanes) {
  std::vector<uint32_t> mapping(perm.size() * static_cast<size_t>(lanes));
  for (size_t p = 0; p < perm.size(); ++p) {
    for (int64_t i = 0; i < lanes; ++i) {
      mapping[p * static_cast<size_t>(lanes) + static_cast<size_t>(i)] =
          perm.MapIndex(p) * static_cast<uint32_t>(lanes) +
          static_cast<uint32_t>(i);
    }
  }
  return Permutation::FromMapping(std::move(mapping));
}

}  // namespace

ModelProvider::ModelProvider(std::shared_ptr<const InferencePlan> plan,
                             PaillierPublicKey pk, uint64_t obf_seed)
    : ModelProvider(std::move(plan), std::move(pk), obf_seed, Options()) {}

ModelProvider::ModelProvider(std::shared_ptr<const InferencePlan> plan,
                             PaillierPublicKey pk, uint64_t obf_seed,
                             Options options)
    : plan_(std::move(plan)),
      pk_(std::move(pk)),
      options_(options),
      obf_rng_(SecureRng::FromSeed(obf_seed)) {
  PPS_CHECK(plan_ != nullptr);
  PPS_CHECK(!plan_->is_data_provider_view)
      << "a data-provider view carries no weights and cannot drive the "
         "model provider";
  if (options_.rerandomize_outputs) {
    RandomizerPool::Options pool_options;
    pool_options.capacity =
        std::max<size_t>(options_.randomizer_pool_capacity, 1);
    uint64_t pool_seed = obf_seed ^ 0xC2B2AE3D27D4EB4FULL;
    rerand_pool_ = std::make_unique<RandomizerPool>(
        pk_, SplitMix64(pool_seed), pool_options);
  }
}

Result<std::vector<Ciphertext>> ModelProvider::InverseObfuscate(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in) {
  obs::ScopedSpan span("inverse_obfuscate", "obf", request_id);
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "mp.InverseObfuscate"));
  Permutation perm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = permutations_.find({request_id, round - 1});
    if (it == permutations_.end()) {
      return Status::ProtocolError(internal::StrCat(
          "no stored permutation for request ", request_id, " round ",
          round - 1));
    }
    perm = it->second;  // kept until ReleaseRequestState (retry safety)
  }
  if (perm.size() != in.size()) {
    return Status::ProtocolError("tensor size changed across rounds");
  }
  return perm.ApplyInverse(in);
}

Result<std::vector<Ciphertext>> ModelProvider::ApplyLinearStage(
    size_t round, const std::vector<Ciphertext>& in, ThreadPool* pool,
    bool input_partitioning) {
  if (round >= plan_->linear_stages.size()) {
    return Status::OutOfRange("linear stage index out of range");
  }
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "mp.ApplyLinearStage"));
  const LinearStage& stage = plan_->linear_stages[round];
  std::vector<Ciphertext> current = in;
  for (const IntegerAffineLayer& op : stage.ops) {
    // Fixed-base tables for the high-fan-out input slots of this op,
    // shared by every worker thread evaluating it (DESIGN.md §8).
    Result<EncryptedStageCache> cache_result = [&] {
      obs::ScopedSpan cache_span("crypto.stage_cache_build", "crypto");
      return op.BuildEncryptedStageCache(pk_, current, pool);
    }();
    PPS_ASSIGN_OR_RETURN(EncryptedStageCache cache,
                         std::move(cache_result));
    obs::ScopedSpan mul_span("crypto.scalar_mul_batch", "crypto");
    if (pool != nullptr && pool->num_threads() > 1) {
      PPS_ASSIGN_OR_RETURN(PartitionPlan partition,
                           PartitionOp(op, pool->num_threads()));
      PPS_ASSIGN_OR_RETURN(
          current,
          ApplyEncryptedPartitioned(pk_, op, current, partition,
                                    input_partitioning, pool, &cache));
    } else {
      PPS_ASSIGN_OR_RETURN(
          current, op.ApplyEncryptedRows(pk_, current, 0, op.rows().size(),
                                         &cache));
    }
  }
  return current;
}

Result<std::vector<Ciphertext>> ModelProvider::Obfuscate(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in) {
  obs::ScopedSpan span("obfuscate", "obf", request_id);
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "mp.Obfuscate"));
  if (rerand_pool_ != nullptr) {
    // Fresh r^n per slot (one ModMul each) so the bits leaving the model
    // provider are unlinkable to the stage computation. The plaintexts —
    // and thus the decrypted protocol output — are untouched.
    for (Ciphertext& c : in) {
      c = rerand_pool_->Rerandomize(c);
    }
  }
  Permutation perm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    perm = Permutation::Random(in.size(), obf_rng_);
    permutations_[{request_id, round}] = perm;
  }
  return perm.Apply(in);
}

Result<std::vector<Ciphertext>> ModelProvider::ProcessRound(
    uint64_t request_id, size_t round, const std::vector<Ciphertext>& in) {
  if (round >= plan_->NumRounds()) {
    return Status::OutOfRange("round out of range");
  }
  std::vector<Ciphertext> current = in;
  if (round > 0) {
    PPS_ASSIGN_OR_RETURN(current,
                         InverseObfuscate(request_id, round,
                                          std::move(current)));
  }
  PPS_ASSIGN_OR_RETURN(current, ApplyLinearStage(round, current));
  if (round + 1 < plan_->NumRounds()) {
    PPS_ASSIGN_OR_RETURN(current,
                         Obfuscate(request_id, round, std::move(current)));
  }
  return current;
}

Result<std::vector<Ciphertext>> ModelProvider::ApplyLinearStagePacked(
    size_t round, const std::vector<Ciphertext>& in, int64_t lanes,
    ThreadPool* pool) {
  if (round >= plan_->linear_stages.size()) {
    return Status::OutOfRange("linear stage index out of range");
  }
  if (lanes < 1) return Status::InvalidArgument("lanes must be >= 1");
  const LinearStage& stage = plan_->linear_stages[round];

  if (!stage.packed_layout.has_value()) {
    // Scalar fallback: de-interleave the lanes, run the scalar stage per
    // lane, re-interleave element-major. Pays the full per-lane price —
    // exactly `lanes` independent scalar stage evaluations.
    if (in.size() % static_cast<size_t>(lanes) != 0) {
      return Status::ProtocolError(
          "interleaved tensor size is not a multiple of the lane count");
    }
    const size_t elements = in.size() / static_cast<size_t>(lanes);
    std::vector<Ciphertext> out;
    for (int64_t lane = 0; lane < lanes; ++lane) {
      std::vector<Ciphertext> lane_in;
      lane_in.reserve(elements);
      for (size_t p = 0; p < elements; ++p) {
        lane_in.push_back(in[p * static_cast<size_t>(lanes) +
                             static_cast<size_t>(lane)]);
      }
      PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> lane_out,
                           ApplyLinearStage(round, lane_in, pool));
      if (lane == 0) {
        out.resize(lane_out.size() * static_cast<size_t>(lanes));
      }
      for (size_t p = 0; p < lane_out.size(); ++p) {
        out[p * static_cast<size_t>(lanes) + static_cast<size_t>(lane)] =
            std::move(lane_out[p]);
      }
    }
    return out;
  }

  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "mp.ApplyLinearStage"));
  if (lanes > stage.packed_layout->lanes) {
    return Status::InvalidArgument("batch exceeds the stage's lane count");
  }
  if (stage.packed_kernels.size() != stage.ops.size()) {
    return Status::Internal(
        "packed stage is missing its lowered kernels");
  }
  std::vector<Ciphertext> current = in;
  for (size_t k = 0; k < stage.ops.size(); ++k) {
    // The fixed-base tables key off input fan-out, which is a property of
    // the op's term structure — identical for packed words and scalars.
    Result<EncryptedStageCache> cache_result = [&] {
      obs::ScopedSpan cache_span("crypto.stage_cache_build", "crypto");
      return stage.ops[k].BuildEncryptedStageCache(pk_, current, pool);
    }();
    PPS_ASSIGN_OR_RETURN(EncryptedStageCache cache, std::move(cache_result));
    obs::ScopedSpan mul_span("crypto.scalar_mul_batch", "crypto");
    const PackedAffineKernel& kernel = stage.packed_kernels[k];
    PPS_ASSIGN_OR_RETURN(
        current, kernel.ApplyEncryptedRowsPacked(pk_, current, 0,
                                                 kernel.rows().size(),
                                                 &cache));
  }
  return current;
}

Result<std::vector<Ciphertext>> ModelProvider::ObfuscatePackedBatch(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in,
    int64_t lanes) {
  obs::ScopedSpan span("obfuscate", "obf", request_id);
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "mp.Obfuscate"));
  if (rerand_pool_ != nullptr) {
    for (Ciphertext& c : in) {
      c = rerand_pool_->Rerandomize(c);
    }
  }
  const LinearStage& stage = plan_->linear_stages[round];
  const bool packed_round = stage.packed_layout.has_value();
  if (!packed_round && in.size() % static_cast<size_t>(lanes) != 0) {
    return Status::ProtocolError(
        "interleaved tensor size is not a multiple of the lane count");
  }
  const size_t elements =
      packed_round ? in.size() : in.size() / static_cast<size_t>(lanes);
  // Always store the ELEMENT-level permutation: the representation may
  // change between this round's output and the next round's input (the
  // data provider re-packs), and the element permutation converts to
  // either granularity.
  Permutation perm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    perm = Permutation::Random(elements, obf_rng_);
    permutations_[{request_id, round}] = perm;
  }
  if (packed_round) return perm.Apply(in);
  PPS_ASSIGN_OR_RETURN(Permutation expanded, ExpandBlockwise(perm, lanes));
  return expanded.Apply(in);
}

Result<std::vector<Ciphertext>> ModelProvider::InverseObfuscatePackedBatch(
    uint64_t request_id, size_t round, std::vector<Ciphertext> in,
    int64_t lanes) {
  obs::ScopedSpan span("inverse_obfuscate", "obf", request_id);
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "mp.InverseObfuscate"));
  Permutation perm;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = permutations_.find({request_id, round - 1});
    if (it == permutations_.end()) {
      return Status::ProtocolError(internal::StrCat(
          "no stored permutation for request ", request_id, " round ",
          round - 1));
    }
    perm = it->second;
  }
  // The stored permutation is element-level; the incoming vector is words
  // (packed round ahead) or interleaved scalars (fallback round ahead).
  if (in.size() == perm.size()) {
    return perm.ApplyInverse(in);
  }
  if (in.size() == perm.size() * static_cast<size_t>(lanes)) {
    PPS_ASSIGN_OR_RETURN(Permutation expanded, ExpandBlockwise(perm, lanes));
    return expanded.ApplyInverse(in);
  }
  return Status::ProtocolError("tensor size changed across rounds");
}

Result<std::vector<Ciphertext>> ModelProvider::ProcessRoundPackedBatch(
    uint64_t request_id, size_t round, const std::vector<Ciphertext>& in,
    int64_t lanes, ThreadPool* pool) {
  if (round >= plan_->NumRounds()) {
    return Status::OutOfRange("round out of range");
  }
  if (lanes < 1) return Status::InvalidArgument("lanes must be >= 1");
  std::vector<Ciphertext> current = in;
  if (round > 0) {
    PPS_ASSIGN_OR_RETURN(
        current, InverseObfuscatePackedBatch(request_id, round,
                                             std::move(current), lanes));
  }
  PPS_ASSIGN_OR_RETURN(current,
                       ApplyLinearStagePacked(round, current, lanes, pool));
  if (round + 1 < plan_->NumRounds()) {
    PPS_ASSIGN_OR_RETURN(
        current, ObfuscatePackedBatch(request_id, round, std::move(current),
                                      lanes));
  }
  return current;
}

Status ModelProvider::ReleaseRequestState(uint64_t request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = permutations_.lower_bound({request_id, 0});
  while (it != permutations_.end() && it->first.first == request_id) {
    it = permutations_.erase(it);
  }
  return Status::OK();
}

size_t ModelProvider::PendingRequestsForTesting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  uint64_t last = ~uint64_t{0};
  for (const auto& [key, perm] : permutations_) {
    if (key.first != last) {
      ++count;
      last = key.first;
    }
  }
  return count;
}

Result<Permutation> ModelProvider::GetStoredPermutationForTesting(
    uint64_t request_id, size_t round) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = permutations_.find({request_id, round});
  if (it == permutations_.end()) {
    return Status::NotFound("no stored permutation");
  }
  return it->second;
}

DataProvider::DataProvider(std::shared_ptr<const InferencePlan> plan,
                           PaillierKeyPair keys, uint64_t enc_seed)
    : DataProvider(std::move(plan), std::move(keys), enc_seed, Options()) {}

DataProvider::DataProvider(std::shared_ptr<const InferencePlan> plan,
                           PaillierKeyPair keys, uint64_t enc_seed,
                           Options options)
    : plan_(std::move(plan)), keys_(std::move(keys)) {
  PPS_CHECK(plan_ != nullptr);
  // Size the pool for the expected number of in-flight requests, not one:
  // concurrent requests drain a per-request-sized pool faster than the
  // background producer can refill it (~48% misses at 8-way in the seed
  // bench). Clamped to keep pathological plans from pinning unbounded
  // memory (each entry is a full n^2-width value). Packed batches only
  // ever need FEWER randomizers per logical request (word counts divide
  // by the lane count), so the scalar per-request count is a sound upper
  // bound either way.
  const int64_t concurrency =
      std::max<int64_t>(options.expected_concurrency, 1);
  RandomizerPool::Options pool_options;
  pool_options.capacity = static_cast<size_t>(std::min<int64_t>(
      std::max<int64_t>(plan_->EncryptionsPerRequest() * concurrency, 16),
      16384));
  // Default low_water (== capacity) keeps the background producer topping
  // up after every take; a lower trigger would let bursts race ahead.
  uint64_t pool_seed = enc_seed ^ 0x9E3779B97F4A7C15ULL;
  enc_pool_ = std::make_unique<RandomizerPool>(
      keys_.public_key, SplitMix64(pool_seed), pool_options);
  if (options.prefill) enc_pool_->Fill();
}

RandomizerPool::Stats DataProvider::PoolStatsForTesting() const {
  return enc_pool_->stats();
}

Result<std::vector<Ciphertext>> DataProvider::EncryptInput(
    const DoubleTensor& input) {
  obs::ScopedSpan span("crypto.encrypt_batch", "crypto");
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.EncryptInput"));
  if (input.shape() != plan_->input_shape) {
    return Status::InvalidArgument(
        internal::StrCat("input shape ", input.shape().ToString(),
                         " != plan input ", plan_->input_shape.ToString()));
  }
  // One batch take covers the tensor: pool-served randomizers make each
  // encryption a single ModMul, and slot i deterministically receives the
  // i-th randomizer of the batch.
  std::vector<BigInt> rns =
      enc_pool_->TakeMany(static_cast<size_t>(input.NumElements()));
  std::vector<Ciphertext> out;
  out.reserve(static_cast<size_t>(input.NumElements()));
  for (int64_t i = 0; i < input.NumElements(); ++i) {
    const int64_t q = QuantizeValue(input[i], plan_->scale);
    PPS_ASSIGN_OR_RETURN(
        Ciphertext c,
        Paillier::EncryptWithRandomizer(keys_.public_key, BigInt(q),
                                        rns[static_cast<size_t>(i)]));
    out.push_back(std::move(c));
  }
  return out;
}

Result<DoubleTensor> DataProvider::ApplySegment(
    size_t round, const DoubleTensor& values) const {
  const NonLinearSegment& segment = plan_->nonlinear_segments[round];
  DoubleTensor current = values;
  for (const auto& layer : segment.layers) {
    PPS_ASSIGN_OR_RETURN(current, layer->Forward(current));
  }
  return current;
}

namespace {

/// Runs fn(i) over [0, n) either inline or across a pool; fn returns a
/// Status, and the first failure (if any) is reported.
Status ForEachMaybeParallel(size_t n, ThreadPool* pool,
                            const std::function<Status(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      PPS_RETURN_IF_ERROR(fn(i));
    }
    return Status::OK();
  }
  std::mutex error_mutex;
  Status first_error;
  pool->ParallelFor(0, n, [&](size_t i) {
    Status st = fn(i);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = std::move(st);
    }
  });
  return first_error;
}

}  // namespace

Result<std::vector<Ciphertext>> DataProvider::ProcessIntermediate(
    size_t round, const std::vector<Ciphertext>& in,
    std::vector<double>* decrypted_view, ThreadPool* pool) {
  if (round + 1 >= plan_->NumRounds()) {
    return Status::OutOfRange(
        "intermediate round index must precede the final round");
  }
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.ProcessIntermediate"));
  const LinearStage& stage = plan_->linear_stages[round];
  const double scale =
      ScalePower(plan_->scale, stage.output_scale_power).ToDouble();

  // Decrypt + dequantize. The values are permuted; the non-linear segment
  // is element-wise, so order does not matter (§III-C).
  DoubleTensor values{Shape{static_cast<int64_t>(in.size())}};
  {
    obs::ScopedSpan decrypt_span("crypto.decrypt_batch", "crypto");
    PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
        in.size(), pool, [&](size_t i) -> Status {
          PPS_ASSIGN_OR_RETURN(
              BigInt m, Paillier::Decrypt(keys_.public_key,
                                          keys_.private_key, in[i]));
          values[static_cast<int64_t>(i)] = m.ToDouble() / scale;
          return Status::OK();
        }));
  }
  if (decrypted_view != nullptr) {
    decrypted_view->assign(values.data().begin(), values.data().end());
  }

  PPS_ASSIGN_OR_RETURN(DoubleTensor activated, ApplySegment(round, values));

  // Re-quantize at F and re-encrypt (Step 2.3). The batch take assigns
  // pool randomizers to slots in stream order; misses are raised across
  // `pool`, and the remaining per-element work is one ModMul.
  obs::ScopedSpan encrypt_span("crypto.encrypt_batch", "crypto");
  std::vector<BigInt> rns = enc_pool_->TakeMany(in.size(), pool);
  std::vector<Ciphertext> out(in.size());
  PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
      in.size(), pool, [&](size_t i) -> Status {
        const int64_t q =
            QuantizeValue(activated[static_cast<int64_t>(i)], plan_->scale);
        PPS_ASSIGN_OR_RETURN(
            out[i], Paillier::EncryptWithRandomizer(keys_.public_key,
                                                    BigInt(q), rns[i]));
        return Status::OK();
      }));
  return out;
}

Result<std::vector<Ciphertext>> DataProvider::EncryptInputParallel(
    const DoubleTensor& input, ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    return EncryptInput(input);
  }
  obs::ScopedSpan span("crypto.encrypt_batch", "crypto");
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.EncryptInput"));
  if (input.shape() != plan_->input_shape) {
    return Status::InvalidArgument("input shape mismatch");
  }
  std::vector<BigInt> rns =
      enc_pool_->TakeMany(static_cast<size_t>(input.NumElements()), pool);
  std::vector<Ciphertext> out(static_cast<size_t>(input.NumElements()));
  PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
      out.size(), pool, [&](size_t i) -> Status {
        const int64_t q =
            QuantizeValue(input[static_cast<int64_t>(i)], plan_->scale);
        PPS_ASSIGN_OR_RETURN(
            out[i], Paillier::EncryptWithRandomizer(keys_.public_key,
                                                    BigInt(q), rns[i]));
        return Status::OK();
      }));
  return out;
}

Result<DoubleTensor> DataProvider::ProcessFinal(
    const std::vector<Ciphertext>& in, ThreadPool* pool) {
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.ProcessFinal"));
  const size_t round = plan_->NumRounds() - 1;
  const LinearStage& stage = plan_->linear_stages[round];
  if (in.size() != static_cast<size_t>(stage.output_shape.NumElements())) {
    return Status::ProtocolError("final tensor size mismatch");
  }
  const double scale =
      ScalePower(plan_->scale, stage.output_scale_power).ToDouble();
  DoubleTensor values{stage.output_shape};
  {
    obs::ScopedSpan decrypt_span("crypto.decrypt_batch", "crypto");
    PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
        in.size(), pool, [&](size_t i) -> Status {
          PPS_ASSIGN_OR_RETURN(
              BigInt m, Paillier::Decrypt(keys_.public_key,
                                          keys_.private_key, in[i]));
          values[static_cast<int64_t>(i)] = m.ToDouble() / scale;
          return Status::OK();
        }));
  }
  return ApplySegment(round, values);
}

Result<std::vector<DoubleTensor>> DataProvider::DecodeStageOutput(
    size_t round, const std::vector<Ciphertext>& in, int64_t lanes,
    const Shape& shape, ThreadPool* pool) const {
  const LinearStage& stage = plan_->linear_stages[round];
  const double scale =
      ScalePower(plan_->scale, stage.output_scale_power).ToDouble();
  const size_t elements = static_cast<size_t>(shape.NumElements());
  std::vector<DoubleTensor> values(static_cast<size_t>(lanes),
                                   DoubleTensor{shape});
  obs::ScopedSpan decrypt_span("crypto.decrypt_batch", "crypto");
  if (stage.packed_layout.has_value()) {
    const PackedLayout& layout = *stage.packed_layout;
    if (lanes > layout.lanes) {
      return Status::InvalidArgument("batch exceeds the stage's lane count");
    }
    if (in.size() != elements) {
      return Status::ProtocolError("packed word count mismatch");
    }
    PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
        in.size(), pool, [&](size_t j) -> Status {
          PPS_ASSIGN_OR_RETURN(
              BigInt word, Paillier::Decrypt(keys_.public_key,
                                             keys_.private_key, in[j]));
          PPS_ASSIGN_OR_RETURN(std::vector<BigInt> slots,
                               UnpackSigned(layout, word));
          for (int64_t i = 0; i < lanes; ++i) {
            values[static_cast<size_t>(i)][static_cast<int64_t>(j)] =
                slots[static_cast<size_t>(i)].ToDouble() / scale;
          }
          return Status::OK();
        }));
    return values;
  }
  if (in.size() != elements * static_cast<size_t>(lanes)) {
    return Status::ProtocolError("interleaved tensor size mismatch");
  }
  PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
      in.size(), pool, [&](size_t p) -> Status {
        PPS_ASSIGN_OR_RETURN(
            BigInt m, Paillier::Decrypt(keys_.public_key, keys_.private_key,
                                        in[p]));
        values[p % static_cast<size_t>(lanes)]
              [static_cast<int64_t>(p / static_cast<size_t>(lanes))] =
            m.ToDouble() / scale;
        return Status::OK();
      }));
  return values;
}

Result<std::vector<Ciphertext>> DataProvider::EncodeForRound(
    size_t round, const std::vector<DoubleTensor>& values, ThreadPool* pool) {
  const LinearStage& stage = plan_->linear_stages[round];
  const int64_t lanes = static_cast<int64_t>(values.size());
  const size_t elements =
      static_cast<size_t>(stage.input_shape.NumElements());
  for (const DoubleTensor& lane : values) {
    if (static_cast<size_t>(lane.NumElements()) != elements) {
      return Status::ProtocolError("lane tensor size mismatch");
    }
  }
  obs::ScopedSpan encrypt_span("crypto.encrypt_batch", "crypto");
  if (stage.packed_layout.has_value()) {
    const PackedLayout& layout = *stage.packed_layout;
    if (lanes > layout.lanes) {
      return Status::InvalidArgument("batch exceeds the stage's lane count");
    }
    std::vector<BigInt> rns = enc_pool_->TakeMany(elements, pool);
    std::vector<Ciphertext> out(elements);
    PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
        elements, pool, [&](size_t j) -> Status {
          std::vector<BigInt> slots;
          slots.reserve(static_cast<size_t>(lanes));
          for (int64_t i = 0; i < lanes; ++i) {
            slots.emplace_back(QuantizeValue(
                values[static_cast<size_t>(i)][static_cast<int64_t>(j)],
                plan_->scale));
          }
          PPS_ASSIGN_OR_RETURN(BigInt word, PackSigned(layout, slots));
          PPS_ASSIGN_OR_RETURN(
              out[j], Paillier::EncryptWithRandomizer(keys_.public_key, word,
                                                      rns[j]));
          return Status::OK();
        }));
    return out;
  }
  const size_t total = elements * static_cast<size_t>(lanes);
  std::vector<BigInt> rns = enc_pool_->TakeMany(total, pool);
  std::vector<Ciphertext> out(total);
  PPS_RETURN_IF_ERROR(ForEachMaybeParallel(
      total, pool, [&](size_t p) -> Status {
        const size_t lane = p % static_cast<size_t>(lanes);
        const int64_t element =
            static_cast<int64_t>(p / static_cast<size_t>(lanes));
        const int64_t q = QuantizeValue(values[lane][element], plan_->scale);
        PPS_ASSIGN_OR_RETURN(
            out[p], Paillier::EncryptWithRandomizer(keys_.public_key,
                                                    BigInt(q), rns[p]));
        return Status::OK();
      }));
  return out;
}

Result<std::vector<Ciphertext>> DataProvider::EncryptInputPackedBatch(
    const std::vector<DoubleTensor>& inputs, ThreadPool* pool) {
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.EncryptInput"));
  if (inputs.empty()) {
    return Status::InvalidArgument("packed batch needs at least one lane");
  }
  for (const DoubleTensor& input : inputs) {
    if (input.shape() != plan_->input_shape) {
      return Status::InvalidArgument(
          internal::StrCat("input shape ", input.shape().ToString(),
                           " != plan input ", plan_->input_shape.ToString()));
    }
  }
  const int64_t max_lanes = plan_->PackedBatchLanes();
  if (max_lanes > 0 && static_cast<int64_t>(inputs.size()) > max_lanes) {
    return Status::InvalidArgument(internal::StrCat(
        "batch of ", inputs.size(), " lanes exceeds the plan's ", max_lanes,
        " packed lanes"));
  }
  return EncodeForRound(0, inputs, pool);
}

Result<std::vector<Ciphertext>> DataProvider::ProcessIntermediatePackedBatch(
    size_t round, const std::vector<Ciphertext>& in, int64_t lanes,
    ThreadPool* pool) {
  if (round + 1 >= plan_->NumRounds()) {
    return Status::OutOfRange(
        "intermediate round index must precede the final round");
  }
  if (lanes < 1) return Status::InvalidArgument("lanes must be >= 1");
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.ProcessIntermediate"));
  const LinearStage& stage = plan_->linear_stages[round];
  // Values arrive permuted at element granularity; the segment is
  // element-wise, so per-lane application commutes with the permutation
  // (§III-C), exactly as in the scalar path.
  const Shape flat{stage.output_shape.NumElements()};
  PPS_ASSIGN_OR_RETURN(std::vector<DoubleTensor> values,
                       DecodeStageOutput(round, in, lanes, flat, pool));
  for (auto& lane_values : values) {
    PPS_ASSIGN_OR_RETURN(lane_values, ApplySegment(round, lane_values));
  }
  // Re-encode in the NEXT round's representation — packed<->scalar
  // transitions happen here because only the key holder can re-pack.
  return EncodeForRound(round + 1, values, pool);
}

Result<std::vector<DoubleTensor>> DataProvider::ProcessFinalPackedBatch(
    const std::vector<Ciphertext>& in, int64_t lanes, ThreadPool* pool) {
  PPS_RETURN_IF_ERROR(ProbeFault(fault_, "dp.ProcessFinal"));
  if (lanes < 1) return Status::InvalidArgument("lanes must be >= 1");
  const size_t round = plan_->NumRounds() - 1;
  const LinearStage& stage = plan_->linear_stages[round];
  PPS_ASSIGN_OR_RETURN(
      std::vector<DoubleTensor> values,
      DecodeStageOutput(round, in, lanes, stage.output_shape, pool));
  for (auto& lane_values : values) {
    PPS_ASSIGN_OR_RETURN(lane_values, ApplySegment(round, lane_values));
  }
  return values;
}

Result<DoubleTensor> RunProtocolInference(ModelProviderApi& mp,
                                          DataProviderApi& dp,
                                          uint64_t request_id,
                                          const DoubleTensor& input,
                                          LeakageTranscript* transcript) {
  ModelProvider* local_mp = nullptr;
  if (transcript != nullptr) {
    // The leakage transcript reconstructs pre-obfuscation order from the
    // stored permutations — experimenter-only state that never crosses a
    // transport boundary.
    local_mp = dynamic_cast<ModelProvider*>(&mp);
    if (local_mp == nullptr) {
      return Status::InvalidArgument(
          "leakage transcripts require an in-process ModelProvider");
    }
  }
  const size_t rounds = mp.plan().NumRounds();
  // Root span for the whole synchronous inference; batch/crypto/net spans
  // below all parent (directly or transitively) under it.
  obs::ScopedSpan root = obs::ScopedSpan::Root("inference", "request",
                                               request_id);
  // Cost attribution: against a data-provider view (remote MP) the budget
  // prices encrypts only; in-process, scalar muls reconcile too. A failed
  // attempt finishes unreconciled via the ledger destructor.
  obs::RequestCostLedger ledger(request_id, ExpectedRequestCost(mp.plan()));
  PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> wire, dp.EncryptInput(input));
  for (size_t r = 0; r < rounds; ++r) {
    PPS_ASSIGN_OR_RETURN(wire, mp.ProcessRound(request_id, r, wire));
    if (r + 1 < rounds) {
      std::vector<double> decrypted;
      PPS_ASSIGN_OR_RETURN(
          wire, dp.ProcessIntermediate(
                    r, wire, transcript ? &decrypted : nullptr));
      if (transcript) {
        // Experimenter-side reconstruction: invert the stored permutation
        // to recover the original order for the dcor measurement.
        PPS_ASSIGN_OR_RETURN(
            Permutation perm,
            local_mp->GetStoredPermutationForTesting(request_id, r));
        LeakageTranscript::Round rec;
        rec.after_obfuscation = decrypted;
        rec.before_obfuscation = perm.ApplyInverse(decrypted);
        transcript->rounds.push_back(std::move(rec));
      }
    }
  }
  PPS_RETURN_IF_ERROR(mp.ReleaseRequestState(request_id));
  Result<DoubleTensor> out = dp.ProcessFinal(wire);
  ledger.Finish(out.ok());
  return out;
}

Result<std::vector<DoubleTensor>> RunPackedBatchInference(
    ModelProvider& mp, DataProvider& dp, uint64_t request_id,
    const std::vector<DoubleTensor>& inputs, ThreadPool* pool) {
  if (inputs.empty()) {
    return Status::InvalidArgument("packed batch needs at least one lane");
  }
  const int64_t lanes = static_cast<int64_t>(inputs.size());
  const size_t rounds = mp.plan().NumRounds();
  obs::ScopedSpan root =
      obs::ScopedSpan::Root("inference_packed", "request", request_id);
  obs::RequestCostLedger ledger(request_id,
                                ExpectedPackedBatchCost(mp.plan(), lanes));
  PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> wire,
                       dp.EncryptInputPackedBatch(inputs, pool));
  for (size_t r = 0; r < rounds; ++r) {
    PPS_ASSIGN_OR_RETURN(
        wire, mp.ProcessRoundPackedBatch(request_id, r, wire, lanes, pool));
    if (r + 1 < rounds) {
      PPS_ASSIGN_OR_RETURN(
          wire, dp.ProcessIntermediatePackedBatch(r, wire, lanes, pool));
    }
  }
  PPS_RETURN_IF_ERROR(mp.ReleaseRequestState(request_id));
  Result<std::vector<DoubleTensor>> out =
      dp.ProcessFinalPackedBatch(wire, lanes, pool);
  ledger.Finish(out.ok());
  return out;
}

Result<DoubleTensor> RunScaledPlainInference(const InferencePlan& plan,
                                             const DoubleTensor& input) {
  if (input.shape() != plan.input_shape) {
    return Status::InvalidArgument("input shape mismatch");
  }
  // Quantize at F.
  Tensor<BigInt> current{input.shape()};
  for (int64_t i = 0; i < input.NumElements(); ++i) {
    current[i] = BigInt(QuantizeValue(input[i], plan.scale));
  }

  DoubleTensor values;
  for (size_t r = 0; r < plan.NumRounds(); ++r) {
    const LinearStage& stage = plan.linear_stages[r];
    for (const IntegerAffineLayer& op : stage.ops) {
      PPS_ASSIGN_OR_RETURN(current, op.ApplyPlain(current));
    }
    const double scale =
        ScalePower(plan.scale, stage.output_scale_power).ToDouble();
    values = DoubleTensor{stage.output_shape};
    for (int64_t i = 0; i < values.NumElements(); ++i) {
      values[i] = current[i].ToDouble() / scale;
    }
    const NonLinearSegment& segment = plan.nonlinear_segments[r];
    for (const auto& layer : segment.layers) {
      PPS_ASSIGN_OR_RETURN(values, layer->Forward(values));
    }
    if (r + 1 < plan.NumRounds()) {
      current = Tensor<BigInt>{values.shape()};
      for (int64_t i = 0; i < values.NumElements(); ++i) {
        current[i] = BigInt(QuantizeValue(values[i], plan.scale));
      }
    }
  }
  return values;
}

Result<double> EvaluateScaledPlanAccuracy(const InferencePlan& plan,
                                          const Dataset& data) {
  if (data.samples.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  size_t correct = 0;
  for (size_t i = 0; i < data.samples.size(); ++i) {
    PPS_ASSIGN_OR_RETURN(DoubleTensor out,
                         RunScaledPlainInference(plan, data.samples[i]));
    if (ArgMax(out) == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace ppstream
