#include "core/plan.h"

#include <cmath>

#include "core/fixed_point.h"
#include "nn/layers.h"
#include "util/logging.h"

namespace ppstream {

const BigInt& InferencePlan::MaxMagnitude() const {
  static const BigInt kZero;
  const BigInt* max = &kZero;
  for (const LinearStage& stage : linear_stages) {
    if (stage.magnitude_bound.Compare(*max) > 0) {
      max = &stage.magnitude_bound;
    }
  }
  return *max;
}

int64_t InferencePlan::EncryptionsPerRequest() const {
  int64_t total = input_shape.NumElements();
  // Every non-final stage output comes back re-encrypted.
  for (size_t r = 0; r + 1 < linear_stages.size(); ++r) {
    total += linear_stages[r].output_shape.NumElements();
  }
  return total;
}

Status InferencePlan::CheckFitsKey(const BigInt& n) const {
  const BigInt half = n >> 1;
  const BigInt& max = MaxMagnitude();
  if (max.Compare(half) >= 0) {
    return Status::OutOfRange(internal::StrCat(
        "plan magnitude bound needs ", max.BitLength(),
        " bits but n/2 has only ", half.BitLength(),
        "; increase the Paillier key size or reduce the scaling factor"));
  }
  return Status::OK();
}

namespace {

void WriteShape(BufferWriter* out, const Shape& shape) {
  out->WriteU64(shape.rank());
  for (int64_t d : shape.dims()) out->WriteI64(d);
}

Result<Shape> ReadShape(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint64_t rank, in->ReadU64());
  if (rank > 8) return Status::OutOfRange("implausible shape rank");
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) {
    PPS_ASSIGN_OR_RETURN(d, in->ReadI64());
    if (d <= 0) return Status::OutOfRange("non-positive shape dim");
  }
  return Shape(std::move(dims));
}

}  // namespace

void InferencePlan::SerializeDataProviderView(BufferWriter* out) const {
  out->WriteI64(scale);
  WriteShape(out, input_shape);
  WriteShape(out, output_shape);
  out->WriteU64(NumRounds());
  for (size_t r = 0; r < NumRounds(); ++r) {
    const LinearStage& stage = linear_stages[r];
    out->WriteI64(stage.output_scale_power);
    WriteShape(out, stage.input_shape);
    WriteShape(out, stage.output_shape);
    const NonLinearSegment& segment = nonlinear_segments[r];
    out->WriteU8(segment.is_final ? 1 : 0);
    out->WriteString(segment.name);
    out->WriteU64(segment.layers.size());
    for (const auto& layer : segment.layers) layer->Serialize(out);
  }
}

Result<InferencePlan> InferencePlan::DeserializeDataProviderView(
    BufferReader* in) {
  InferencePlan plan;
  plan.is_data_provider_view = true;
  PPS_ASSIGN_OR_RETURN(plan.scale, in->ReadI64());
  if (plan.scale < 1) return Status::OutOfRange("bad plan scale");
  PPS_ASSIGN_OR_RETURN(plan.input_shape, ReadShape(in));
  PPS_ASSIGN_OR_RETURN(plan.output_shape, ReadShape(in));
  PPS_ASSIGN_OR_RETURN(uint64_t rounds, in->ReadU64());
  if (rounds == 0 || rounds > 4096) {
    return Status::OutOfRange("implausible round count");
  }
  for (uint64_t r = 0; r < rounds; ++r) {
    LinearStage stage;
    PPS_ASSIGN_OR_RETURN(int64_t power, in->ReadI64());
    if (power < 1 || power > 64) {
      return Status::OutOfRange("bad scale power");
    }
    stage.output_scale_power = static_cast<int>(power);
    PPS_ASSIGN_OR_RETURN(stage.input_shape, ReadShape(in));
    PPS_ASSIGN_OR_RETURN(stage.output_shape, ReadShape(in));
    stage.name = "view";
    plan.linear_stages.push_back(std::move(stage));

    NonLinearSegment segment;
    PPS_ASSIGN_OR_RETURN(uint8_t is_final, in->ReadU8());
    segment.is_final = is_final != 0;
    PPS_ASSIGN_OR_RETURN(segment.name, in->ReadString());
    PPS_ASSIGN_OR_RETURN(uint64_t n_layers, in->ReadU64());
    if (n_layers > 256) return Status::OutOfRange("implausible layer count");
    for (uint64_t l = 0; l < n_layers; ++l) {
      PPS_ASSIGN_OR_RETURN(std::unique_ptr<Layer> layer,
                           DeserializeLayer(in));
      segment.layers.push_back(std::move(layer));
    }
    segment.shape = plan.linear_stages.back().output_shape;
    plan.nonlinear_segments.push_back(std::move(segment));
  }
  return plan;
}

Result<Model> PrepareModel(const Model& model) {
  PPS_ASSIGN_OR_RETURN(Model no_pool, model.ReplaceMaxPooling());
  Model out(no_pool.input_shape(), no_pool.name());
  for (size_t i = 0; i < no_pool.NumLayers(); ++i) {
    const Layer& layer = no_pool.layer(i);
    if (layer.kind() == LayerKind::kScaledSigmoid) {
      const auto& mixed = static_cast<const ScaledSigmoidLayer&>(layer);
      PPS_RETURN_IF_ERROR(
          out.Add(std::make_unique<ScalarScaleLayer>(mixed.alpha())));
      PPS_RETURN_IF_ERROR(out.Add(std::make_unique<SigmoidLayer>()));
    } else {
      PPS_RETURN_IF_ERROR(out.Add(layer.Clone()));
    }
  }
  return out;
}

namespace {

/// Real-unit output bound of a non-linear layer given a real-unit input
/// bound (coarse interval analysis for key sizing).
double NonLinearBound(const Layer& layer, double in_bound) {
  switch (layer.kind()) {
    case LayerKind::kRelu:
      return in_bound;
    case LayerKind::kSigmoid:
    case LayerKind::kSoftmax:
      return 1.0;
    default:
      return in_bound;
  }
}

}  // namespace

Result<InferencePlan> CompilePlan(const Model& model, int64_t scale,
                                  const CompileOptions& options) {
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  PPS_ASSIGN_OR_RETURN(Model prepared, PrepareModel(model));
  if (prepared.NumLayers() == 0) {
    return Status::InvalidArgument("model has no layers");
  }

  // The deployable structure must start linear and end non-linear (§III-A).
  if (prepared.layer(0).op_class() != OpClass::kLinear) {
    return Status::FailedPrecondition(
        "model must start with a linear layer (paper §III-A assumption)");
  }
  if (prepared.layer(prepared.NumLayers() - 1).op_class() !=
      OpClass::kNonLinear) {
    return Status::FailedPrecondition(
        "model must end with a non-linear layer (paper §III-A assumption)");
  }

  InferencePlan plan;
  plan.scale = scale;
  plan.input_shape = prepared.input_shape();
  PPS_ASSIGN_OR_RETURN(plan.output_shape, prepared.OutputShape());

  Shape shape = prepared.input_shape();
  double real_bound = options.input_bound;

  size_t i = 0;
  while (i < prepared.NumLayers()) {
    // ---- Merge a maximal run of linear layers into one stage.
    LinearStage stage;
    stage.input_shape = shape;
    int scale_power = 1;
    BigInt int_bound =
        BigInt(QuantizeValue(real_bound, scale) + 1);  // |x_int| <= X*F
    while (i < prepared.NumLayers() &&
           prepared.layer(i).op_class() == OpClass::kLinear) {
      const Layer& layer = prepared.layer(i);
      PPS_ASSIGN_OR_RETURN(
          IntegerAffineLayer op,
          IntegerAffineLayer::FromLayer(layer, shape, scale, scale_power));
      scale_power = op.output_scale_power();
      int_bound = op.OutputMagnitudeBound(int_bound);
      PPS_ASSIGN_OR_RETURN(shape, layer.OutputShape(shape));
      if (!stage.name.empty()) stage.name += "+";
      stage.name += layer.name();
      stage.ops.push_back(std::move(op));
      ++i;
    }
    if (stage.ops.empty()) {
      return Status::Internal("empty linear stage during compilation");
    }
    stage.output_shape = shape;
    stage.output_scale_power = scale_power;
    stage.magnitude_bound = std::move(int_bound);
    // Real-unit bound after dequantization by F^scale_power.
    real_bound =
        stage.magnitude_bound.ToDouble() /
        ScalePower(scale, scale_power).ToDouble();
    plan.linear_stages.push_back(std::move(stage));

    // ---- Merge the following run of non-linear layers into one segment.
    if (i >= prepared.NumLayers()) {
      return Status::FailedPrecondition(
          "model ends with a linear stage; append a non-linear layer");
    }
    NonLinearSegment segment;
    segment.shape = shape;
    while (i < prepared.NumLayers() &&
           prepared.layer(i).op_class() == OpClass::kNonLinear) {
      const Layer& layer = prepared.layer(i);
      PPS_ASSIGN_OR_RETURN(Shape next, layer.OutputShape(shape));
      if (next != shape) {
        return Status::FailedPrecondition(internal::StrCat(
            "non-linear layer ", layer.name(),
            " changes the tensor shape; only element-wise non-linear "
            "operations are deployable (rewrite pooling first)"));
      }
      real_bound = NonLinearBound(layer, real_bound);
      if (!segment.name.empty()) segment.name += "+";
      segment.name += layer.name();
      segment.layers.push_back(layer.Clone());
      shape = next;
      ++i;
    }
    segment.is_final = i >= prepared.NumLayers();
    plan.nonlinear_segments.push_back(std::move(segment));
  }

  // SoftMax (position-dependent) may only appear in the final, never-
  // obfuscated segment (§III-C).
  for (size_t s = 0; s + 1 < plan.nonlinear_segments.size(); ++s) {
    for (const auto& layer : plan.nonlinear_segments[s].layers) {
      if (layer->kind() == LayerKind::kSoftmax) {
        return Status::FailedPrecondition(
            "SoftMax in a non-final segment would be obfuscated and is "
            "position-dependent");
      }
    }
  }

  plan.prepared_model = std::move(prepared);
  return plan;
}

}  // namespace ppstream
