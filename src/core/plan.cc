#include "core/plan.h"

#include "planner/pass.h"
#include "planner/passes.h"
#include "util/logging.h"

namespace ppstream {

const BigInt& InferencePlan::MaxMagnitude() const {
  static const BigInt kZero;
  const BigInt* max = &kZero;
  for (const LinearStage& stage : linear_stages) {
    if (stage.magnitude_bound.Compare(*max) > 0) {
      max = &stage.magnitude_bound;
    }
  }
  return *max;
}

int64_t InferencePlan::PackedBatchLanes() const {
  int64_t lanes = 0;
  for (const LinearStage& stage : linear_stages) {
    if (!stage.packed_layout.has_value()) continue;
    if (lanes == 0 || stage.packed_layout->lanes < lanes) {
      lanes = stage.packed_layout->lanes;
    }
  }
  return lanes;
}

int64_t InferencePlan::EncryptionsPerRequest() const {
  int64_t total = input_shape.NumElements();
  // Every non-final stage output comes back re-encrypted.
  for (size_t r = 0; r + 1 < linear_stages.size(); ++r) {
    total += linear_stages[r].output_shape.NumElements();
  }
  return total;
}

obs::RequestCostBudget ExpectedRequestCost(const InferencePlan& plan) {
  obs::RequestCostBudget budget;
  budget.encrypts = static_cast<uint64_t>(plan.EncryptionsPerRequest());
  int64_t muls = 0;
  for (const LinearStage& stage : plan.linear_stages) {
    for (const IntegerAffineLayer& op : stage.ops) {
      muls += op.EncryptedScalarMuls();
    }
  }
  budget.scalar_muls = static_cast<uint64_t>(muls);
  return budget;
}

obs::RequestCostBudget ExpectedPackedBatchCost(const InferencePlan& plan,
                                               int64_t lanes) {
  obs::RequestCostBudget budget;
  if (lanes < 1) return budget;
  int64_t encrypts = 0;
  int64_t muls = 0;
  for (size_t r = 0; r < plan.linear_stages.size(); ++r) {
    const LinearStage& stage = plan.linear_stages[r];
    // The data provider encrypts this round's input: one word per tensor
    // element when the round packs (all lanes share the word), one
    // ciphertext per element per lane on the scalar fallback.
    const int64_t elements = r == 0
                                 ? plan.input_shape.NumElements()
                                 : plan.linear_stages[r - 1]
                                       .output_shape.NumElements();
    const bool packed = stage.packed_layout.has_value();
    encrypts += packed ? elements : elements * lanes;
    if (!stage.packed_kernels.empty()) {
      for (const PackedAffineKernel& kernel : stage.packed_kernels) {
        muls += kernel.GroupScalarMuls();
      }
    } else {
      int64_t stage_muls = 0;
      for (const IntegerAffineLayer& op : stage.ops) {
        stage_muls += op.EncryptedScalarMuls();
      }
      muls += stage_muls * lanes;
    }
  }
  budget.encrypts = static_cast<uint64_t>(encrypts);
  budget.scalar_muls = static_cast<uint64_t>(muls);
  return budget;
}

Status InferencePlan::CheckFitsKey(const BigInt& n) const {
  const BigInt half = n >> 1;
  for (const LinearStage& stage : linear_stages) {
    if (stage.magnitude_bound.Compare(half) >= 0) {
      return Status::FailedPrecondition(internal::StrCat(
          "stage '", stage.name, "' magnitude bound needs ",
          stage.magnitude_bound.BitLength(), " bits but n/2 has only ",
          half.BitLength(),
          "; increase the Paillier key size or reduce the scaling factor"));
    }
  }
  return Status::OK();
}

namespace {

void WriteShape(BufferWriter* out, const Shape& shape) {
  out->WriteU64(shape.rank());
  for (int64_t d : shape.dims()) out->WriteI64(d);
}

Result<Shape> ReadShape(BufferReader* in) {
  PPS_ASSIGN_OR_RETURN(uint64_t rank, in->ReadU64());
  if (rank > 8) return Status::OutOfRange("implausible shape rank");
  std::vector<int64_t> dims(rank);
  for (auto& d : dims) {
    PPS_ASSIGN_OR_RETURN(d, in->ReadI64());
    if (d <= 0) return Status::OutOfRange("non-positive shape dim");
  }
  return Shape(std::move(dims));
}

}  // namespace

void InferencePlan::SerializeDataProviderView(BufferWriter* out) const {
  out->WriteI64(scale);
  WriteShape(out, input_shape);
  WriteShape(out, output_shape);
  out->WriteU64(NumRounds());
  for (size_t r = 0; r < NumRounds(); ++r) {
    const LinearStage& stage = linear_stages[r];
    out->WriteI64(stage.output_scale_power);
    WriteShape(out, stage.input_shape);
    WriteShape(out, stage.output_shape);
    out->WriteU8(stage.packed_layout.has_value() ? 1 : 0);
    if (stage.packed_layout.has_value()) {
      stage.packed_layout->Serialize(out);
    }
    const NonLinearSegment& segment = nonlinear_segments[r];
    out->WriteU8(segment.is_final ? 1 : 0);
    out->WriteString(segment.name);
    out->WriteU64(segment.layers.size());
    for (const auto& layer : segment.layers) layer->Serialize(out);
  }
}

Result<InferencePlan> InferencePlan::DeserializeDataProviderView(
    BufferReader* in) {
  InferencePlan plan;
  plan.is_data_provider_view = true;
  PPS_ASSIGN_OR_RETURN(plan.scale, in->ReadI64());
  if (plan.scale < 1) return Status::OutOfRange("bad plan scale");
  PPS_ASSIGN_OR_RETURN(plan.input_shape, ReadShape(in));
  PPS_ASSIGN_OR_RETURN(plan.output_shape, ReadShape(in));
  PPS_ASSIGN_OR_RETURN(uint64_t rounds, in->ReadU64());
  if (rounds == 0 || rounds > 4096) {
    return Status::OutOfRange("implausible round count");
  }
  for (uint64_t r = 0; r < rounds; ++r) {
    LinearStage stage;
    PPS_ASSIGN_OR_RETURN(int64_t power, in->ReadI64());
    if (power < 1 || power > 64) {
      return Status::OutOfRange("bad scale power");
    }
    stage.output_scale_power = static_cast<int>(power);
    PPS_ASSIGN_OR_RETURN(stage.input_shape, ReadShape(in));
    PPS_ASSIGN_OR_RETURN(stage.output_shape, ReadShape(in));
    stage.name = "view";
    PPS_ASSIGN_OR_RETURN(uint8_t has_packed, in->ReadU8());
    if (has_packed > 1) return Status::OutOfRange("bad packed-layout flag");
    if (has_packed != 0) {
      PPS_ASSIGN_OR_RETURN(PackedLayout layout,
                           PackedLayout::Deserialize(in));
      stage.packed_layout = layout;
    }
    plan.linear_stages.push_back(std::move(stage));

    NonLinearSegment segment;
    PPS_ASSIGN_OR_RETURN(uint8_t is_final, in->ReadU8());
    segment.is_final = is_final != 0;
    PPS_ASSIGN_OR_RETURN(segment.name, in->ReadString());
    PPS_ASSIGN_OR_RETURN(uint64_t n_layers, in->ReadU64());
    if (n_layers > 256) return Status::OutOfRange("implausible layer count");
    for (uint64_t l = 0; l < n_layers; ++l) {
      PPS_ASSIGN_OR_RETURN(std::unique_ptr<Layer> layer,
                           DeserializeLayer(in));
      segment.layers.push_back(std::move(layer));
    }
    segment.shape = plan.linear_stages.back().output_shape;
    plan.nonlinear_segments.push_back(std::move(segment));
  }
  return plan;
}

namespace {

/// Rebuilds a float model from the chain's concatenated layer sequences.
/// Fused nodes still carry every original layer, so this reconstructs the
/// prepared model no matter which optimizing passes ran.
Result<Model> EmitModel(const planner::StageGraph& graph) {
  PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph.ChainOrder());
  Model out(graph.tensor(graph.input()).shape, graph.model_name());
  for (int64_t id : order) {
    for (const auto& layer : graph.node(id).layers) {
      PPS_RETURN_IF_ERROR(out.Add(layer->Clone()));
    }
  }
  return out;
}

/// Lowers the merged, verified graph to the deployable plan structure.
Result<InferencePlan> EmitPlan(const planner::StageGraph& graph) {
  PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph.ChainOrder());

  InferencePlan plan;
  plan.scale = graph.scale();
  plan.input_shape = graph.tensor(graph.input()).shape;
  plan.output_shape = graph.tensor(graph.output()).shape;

  for (size_t i = 0; i < order.size();) {
    // ---- One linear stage: the round's run of (possibly fused) ops.
    LinearStage stage;
    stage.input_shape = graph.tensor(graph.node(order[i]).input).shape;
    while (i < order.size() &&
           graph.node(order[i]).op_class == OpClass::kLinear) {
      const planner::IrNode& n = graph.node(order[i]);
      if (!n.affine.has_value()) {
        return Status::Internal(internal::StrCat(
            "linear node ", n.name, " was never lowered"));
      }
      const planner::IrTensor& out = graph.tensor(n.output);
      stage.output_shape = out.shape;
      stage.output_scale_power = out.scale_power;
      // Soundness: the stage bound covers EVERY op output inside the
      // stage, not just the last — an intermediate can exceed the final.
      if (out.magnitude_bound.Compare(stage.magnitude_bound) > 0) {
        stage.magnitude_bound = out.magnitude_bound;
      }
      if (!stage.name.empty()) stage.name += "+";
      stage.name += n.name;
      stage.ops.push_back(*n.affine);
      if (n.packed_kernel.has_value()) {
        stage.packed_kernels.push_back(*n.packed_kernel);
      }
      ++i;
    }
    if (stage.ops.empty()) {
      return Status::Internal("empty linear stage during emission");
    }
    // A stage is packed only when EVERY op in the round lowered packed
    // (the analyze pass annotates whole rounds, so this is all-or-none).
    if (stage.packed_kernels.size() == stage.ops.size() &&
        !stage.packed_kernels.empty()) {
      stage.packed_layout = stage.packed_kernels.front().layout();
    } else {
      stage.packed_kernels.clear();
    }
    plan.linear_stages.push_back(std::move(stage));

    // ---- The non-linear segment that follows it.
    if (i >= order.size()) {
      return Status::FailedPrecondition(
          "model ends with a linear stage; append a non-linear layer");
    }
    NonLinearSegment segment;
    segment.shape = graph.tensor(graph.node(order[i]).input).shape;
    while (i < order.size() &&
           graph.node(order[i]).op_class == OpClass::kNonLinear) {
      const planner::IrNode& n = graph.node(order[i]);
      segment.is_final = n.final_segment;
      if (!segment.name.empty()) segment.name += "+";
      segment.name += n.name;
      for (const auto& layer : n.layers) {
        segment.layers.push_back(layer->Clone());
      }
      ++i;
    }
    plan.nonlinear_segments.push_back(std::move(segment));
  }

  PPS_ASSIGN_OR_RETURN(plan.prepared_model, EmitModel(graph));
  return plan;
}

}  // namespace

Result<Model> PrepareModel(const Model& model) {
  // Scale/bound are irrelevant to the two structural passes; use inert
  // values. (The model must still have at least one layer to import.)
  PPS_ASSIGN_OR_RETURN(
      planner::StageGraph graph,
      planner::StageGraph::FromModel(model, /*scale=*/1, /*input_bound=*/1));
  planner::PassManager pipeline;
  pipeline.Add(planner::MakeRewriteMaxPoolPass())
      .Add(planner::MakeDecomposeMixedPass());
  PPS_RETURN_IF_ERROR(pipeline.Run(&graph));
  return EmitModel(graph);
}

Result<InferencePlan> CompilePlan(const Model& model, int64_t scale,
                                  const CompileOptions& options) {
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  PPS_ASSIGN_OR_RETURN(
      planner::StageGraph graph,
      planner::StageGraph::FromModel(model, scale, options.input_bound));

  planner::PlanCompileStats stats;
  planner::PlanPlacement placement;
  planner::PassManager pipeline;
  pipeline.Add(planner::MakeRewriteMaxPoolPass())
      .Add(planner::MakeDecomposeMixedPass())
      .Add(planner::MakeClassifyPass())
      .Add(planner::MakeLowerToIntegerPass())
      .Add(planner::MakeFuseAffineChainsPass(options.fusion, &stats))
      .Add(planner::MakeDeadTensorElimPass(&stats))
      .Add(planner::MakeMergeAdjacentPass())
      .Add(planner::MakeVerifyBoundsPass());
  if (options.packing.has_value()) {
    pipeline.Add(
        planner::MakeAnalyzePackingLegalityPass(*options.packing, &stats));
    pipeline.Add(planner::MakeLowerToPackedKernelsPass(&stats));
  }
  if (options.placement.has_value()) {
    pipeline.Add(planner::MakePlacementPass(*options.placement, &placement));
  }
  PPS_RETURN_IF_ERROR(pipeline.Run(&graph, options.pass_observer));

  PPS_ASSIGN_OR_RETURN(InferencePlan plan, EmitPlan(graph));
  plan.compile_stats = stats;
  if (options.placement.has_value()) {
    plan.placement = std::move(placement);
  }
  return plan;
}

}  // namespace ppstream
