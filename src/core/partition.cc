#include "core/partition.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace ppstream {

Result<PartitionPlan> PartitionOp(const IntegerAffineLayer& op,
                                  size_t num_threads) {
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  const size_t rows = op.rows().size();
  const size_t threads = std::min(num_threads, std::max<size_t>(rows, 1));
  const size_t per_thread = (rows + threads - 1) / threads;

  PartitionPlan plan;
  const int64_t input_elements = op.input_shape().NumElements();
  for (size_t t = 0; t < threads; ++t) {
    ThreadWork work;
    work.row_begin = t * per_thread;
    work.row_end = std::min(rows, work.row_begin + per_thread);
    if (work.row_begin >= work.row_end) break;
    // Union of row supports = the thread's required input sub-tensor.
    std::vector<uint32_t>& indices = work.input_indices;
    for (size_t j = work.row_begin; j < work.row_end; ++j) {
      for (const AffineTerm& term : op.rows()[j].terms) {
        indices.push_back(term.input_index);
      }
    }
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()),
                  indices.end());
    plan.elements_with_input_partitioning +=
        static_cast<int64_t>(indices.size());
    plan.elements_output_partitioning += input_elements;
    plan.elements_no_partitioning +=
        static_cast<int64_t>(work.row_end - work.row_begin) * input_elements;
    plan.threads.push_back(std::move(work));
  }
  return plan;
}

Result<std::vector<Ciphertext>> ApplyEncryptedPartitioned(
    const PaillierPublicKey& pk, const IntegerAffineLayer& op,
    const std::vector<Ciphertext>& in, const PartitionPlan& partition,
    bool input_partitioning, ThreadPool* pool,
    const EncryptedStageCache* cache) {
  if (in.size() != static_cast<size_t>(op.input_shape().NumElements())) {
    return Status::InvalidArgument("partitioned apply: input size mismatch");
  }
  std::vector<Ciphertext> out(op.rows().size());
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;

  auto run_thread = [&](size_t t) {
    const ThreadWork& work = partition.threads[t];
    Result<std::vector<Ciphertext>> slice = Status::OK();
    if (input_partitioning) {
      // Materialize the thread's sub-tensor and remap row indices into it —
      // exactly the message a distributed worker would receive.
      std::vector<Ciphertext> sub;
      sub.reserve(work.input_indices.size());
      for (uint32_t idx : work.input_indices) sub.push_back(in[idx]);
      slice = op.ApplyEncryptedRowsSub(pk, sub, work.input_indices,
                                       work.row_begin, work.row_end, cache);
    } else {
      // Whole-tensor path (the Exp#4 baseline).
      slice = op.ApplyEncryptedRows(pk, in, work.row_begin, work.row_end,
                                    cache);
    }
    if (!slice.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = slice.status();
      failed = true;
      return;
    }
    for (size_t j = work.row_begin; j < work.row_end; ++j) {
      out[j] = std::move(slice.value()[j - work.row_begin]);
    }
  };

  if (pool != nullptr && partition.threads.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(partition.threads.size());
    for (size_t t = 0; t < partition.threads.size(); ++t) {
      futures.push_back(pool->Submit([&, t] { run_thread(t); }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t t = 0; t < partition.threads.size(); ++t) run_thread(t);
  }

  if (failed) return first_error;
  return out;
}

}  // namespace ppstream
