// Fault injection for chaos testing the stream runtime.
//
// A FaultInjector holds a set of rules, each matched by substring against a
// call-site name ("stage.mp-linear-0", "channel.send", "mp.ApplyLinearStage",
// ...). A rule fires probabilistically (seeded, reproducible) or
// deterministically on every nth matching call, and injects one of:
//   kError       the probed operation fails with a configurable Status code;
//   kLatency     the caller sleeps for a configured duration;
//   kCorruption  payload bytes are flipped (the caller passes the buffer).
//
// All methods are thread-safe; the injector is shared by every pipeline
// stage, channel, and protocol endpoint of an engine. Disabled (no rules)
// probes are a single relaxed atomic load, so a wired-but-idle injector
// costs nothing measurable on the hot path.
//
// Every fired injection additionally bumps a per-site registry counter
// "fault.injected.<kind>.<site>" (src/obs/metrics.h), so chaos runs can
// report what they actually injected alongside the aggregate FaultStats.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace ppstream {

enum class FaultKind : uint8_t {
  kError = 0,      // probe returns a non-OK Status
  kLatency = 1,    // probe sleeps latency_seconds
  kCorruption = 2  // payload bytes are flipped (Corrupt() sites only)
};

/// One injection rule. Fires when `site_pattern` is a substring of the
/// probed site ("" matches every site) and either the per-call coin lands
/// (probability) or the matching-call count hits a multiple of every_nth.
struct FaultRule {
  std::string site_pattern;
  FaultKind kind = FaultKind::kError;
  /// Per-call firing probability in [0, 1]. Evaluated independently of
  /// every_nth; either trigger fires the rule.
  double probability = 0;
  /// Deterministic trigger: fire on every nth matching call (1-based);
  /// 0 disables the counter trigger.
  uint64_t every_nth = 0;
  /// Status code injected by kError rules.
  StatusCode error_code = StatusCode::kInternal;
  /// Sleep injected by kLatency rules.
  double latency_seconds = 0;
  /// Number of byte positions flipped by kCorruption rules.
  size_t corrupt_bytes = 1;
};

/// Counters of what actually fired (for assertions in chaos tests).
struct FaultStats {
  uint64_t probes = 0;       // Fail/Delay/Corrupt calls while rules exist
  uint64_t errors = 0;
  uint64_t latencies = 0;
  uint64_t corruptions = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0xC4405EEDULL);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Adds a rule. Rules are evaluated in insertion order; the first one
  /// that fires wins for error/latency probes.
  void AddRule(FaultRule rule);

  /// Removes all rules (the injector becomes a no-op).
  void Clear();

  /// Reseeds the probability coin (does not reset per-rule call counts).
  void Seed(uint64_t seed);

  /// Error + latency probe: sleeps if a latency rule fires, then returns
  /// the injected Status if an error rule fires (OK otherwise). The Status
  /// message names the site so failures are attributable.
  Status Fail(std::string_view site);

  /// Latency-only probe (for call sites that cannot surface an error,
  /// e.g. channel send/recv). Error rules are ignored.
  void Delay(std::string_view site);

  /// Corruption probe: if a corruption rule fires, flips bytes of
  /// `payload` in place and returns true. Empty payloads are left alone.
  bool Corrupt(std::string_view site, std::vector<uint8_t>& payload);

  FaultStats stats() const;

  /// True when at least one rule is installed (cheap, lock-free).
  bool enabled() const {
    return num_rules_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t calls = 0;  // matching-call count for every_nth
  };

  /// Advances the rule's matching-call count and rolls its triggers.
  /// Must be called with mutex_ held.
  bool FiresLocked(RuleState& rs);

  mutable std::mutex mutex_;
  std::atomic<int> num_rules_{0};
  Rng rng_;
  std::vector<RuleState> rules_;
  FaultStats stats_;
};

}  // namespace ppstream
