// Fixed-size thread pool used by stages for intra-stage tensor parallelism.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ppstream {

/// A fixed set of worker threads draining a shared task queue.
///
/// Submit() returns a future; ParallelFor() blocks until a range has been
/// processed by all workers. Destruction joins all threads after draining.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end) across the pool, blocking until done.
  /// The range is split into contiguous chunks, one per worker.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ppstream
