#include "util/rng.h"

#include <cmath>

namespace ppstream {

double Rng::NextGaussian() {
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

}  // namespace ppstream
