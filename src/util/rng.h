// Deterministic pseudo-random number generation.
//
// Xoshiro256** seeded via SplitMix64 — used for everything that needs
// reproducible randomness (dataset synthesis, weight init, permutation
// seeds in tests). Cryptographic randomness lives in crypto/secure_rng.h.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ppstream {

/// SplitMix64 step; used to expand a single seed into a full state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** PRNG (Blackman & Vigna). Not cryptographically secure.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5EEDBA5EULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& s : state_) s = SplitMix64(sm);
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        m = static_cast<__uint128_t>(NextU64()) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box–Muller (cached second value discarded for
  /// simplicity; cost is negligible at our scales).
  double NextGaussian();

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace ppstream
