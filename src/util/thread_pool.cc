#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace ppstream {

ThreadPool::ThreadPool(size_t num_threads) {
  PPS_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunks = std::min(n, workers_.size());
  const size_t per_chunk = (n + chunks - 1) / chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * per_chunk;
    const size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace ppstream
