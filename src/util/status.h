// Status / Result error-handling primitives (Arrow/RocksDB idiom).
//
// Public PP-Stream APIs never throw across module boundaries; fallible
// operations return Status (no payload) or Result<T> (payload-or-error).

#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace ppstream {

/// Broad error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kCryptoError = 9,
  kProtocolError = 10,
  kIoError = 11,
  kInfeasible = 12,  // planner: ILP has no feasible assignment
  kDeadlineExceeded = 13,  // stream: request exceeded its retry deadline
  kUnavailable = 14,  // net: peer refuses work (drain, open circuit breaker)
  kCancelled = 15,    // net: wait interrupted by a local shutdown/drain wake
};

/// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a context message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Use `PPS_ASSIGN_OR_RETURN` to unwrap.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_or_status_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : value_or_status_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_or_status_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_or_status_);
  }

  /// Requires ok(). Undefined behaviour otherwise (checked in debug builds).
  T& value() & { return std::get<T>(value_or_status_); }
  const T& value() const& { return std::get<T>(value_or_status_); }
  T&& value() && { return std::move(std::get<T>(value_or_status_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> value_or_status_;
};

namespace internal {
/// Builds an error message from stream-style parts.
template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  return oss.str();
}
}  // namespace internal

}  // namespace ppstream

/// Propagates a non-OK Status out of the enclosing function.
#define PPS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ppstream::Status _pps_st = (expr);         \
    if (!_pps_st.ok()) return _pps_st;           \
  } while (0)

#define PPS_CONCAT_IMPL(a, b) a##b
#define PPS_CONCAT(a, b) PPS_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on failure returns the Status out of the enclosing function.
#define PPS_ASSIGN_OR_RETURN(lhs, expr)                       \
  PPS_ASSIGN_OR_RETURN_IMPL(PPS_CONCAT(_pps_res_, __LINE__), lhs, expr)

#define PPS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
