// Minimal leveled logging and CHECK macros.
//
// PPS_CHECK* abort on violation and are reserved for programmer errors
// (invariants); recoverable conditions use Status (see util/status.h).

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ppstream {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ppstream

#define PPS_LOG(level)                                                      \
  if (static_cast<int>(::ppstream::LogLevel::k##level) <                    \
      static_cast<int>(::ppstream::GetLogLevel())) {                        \
  } else                                                                    \
    ::ppstream::internal::LogMessage(::ppstream::LogLevel::k##level,        \
                                     __FILE__, __LINE__)                    \
        .stream()

#define PPS_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    ::ppstream::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define PPS_CHECK_EQ(a, b) PPS_CHECK((a) == (b))
#define PPS_CHECK_NE(a, b) PPS_CHECK((a) != (b))
#define PPS_CHECK_LT(a, b) PPS_CHECK((a) < (b))
#define PPS_CHECK_LE(a, b) PPS_CHECK((a) <= (b))
#define PPS_CHECK_GT(a, b) PPS_CHECK((a) > (b))
#define PPS_CHECK_GE(a, b) PPS_CHECK((a) >= (b))

/// Asserts that a Status-returning expression succeeds.
#define PPS_CHECK_OK(expr)                                                  \
  do {                                                                      \
    ::ppstream::Status _pps_chk = (expr);                                   \
    PPS_CHECK(_pps_chk.ok()) << _pps_chk.ToString();                        \
  } while (0)
