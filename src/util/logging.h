// Minimal leveled logging and CHECK macros.
//
// PPS_CHECK* abort on violation and are reserved for programmer errors
// (invariants); recoverable conditions use Status (see util/status.h).
//
// PPS_SLOG emits structured key=value lines and automatically prefixes
// the calling thread's active trace/span ids (see src/obs/trace.h), so
// a grep for one trace id collects every log line of that inference:
//
//   PPS_SLOG(Warn, "stage.retry").Kv("stage", name).Kv("attempt", 2);
//   -> [WARN stage.cc:48] stage.retry trace=1f3a... span=9c2b...
//      stage=mp-linear-0 attempt=2   (one line in the actual output)

#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ppstream {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// One structured log line: "<event> trace=<id> span=<id> k=v k=v ...".
/// The trace/span pair is read from the calling thread's TraceContext and
/// omitted when no trace is active. String values containing spaces,
/// quotes, or '=' are quoted and escaped; everything else prints bare.
class StructuredLogMessage {
 public:
  StructuredLogMessage(LogLevel level, const char* file, int line,
                       std::string_view event);
  ~StructuredLogMessage();

  template <typename T>
  StructuredLogMessage& Kv(std::string_view key, const T& value) {
    stream_ << ' ' << key << '=';
    WriteValue(value);
    return *this;
  }

 private:
  void WriteValue(const std::string& v) { WriteQuotable(v); }
  void WriteValue(std::string_view v) { WriteQuotable(v); }
  void WriteValue(const char* v) { WriteQuotable(v); }
  void WriteValue(bool v) { stream_ << (v ? "true" : "false"); }
  template <typename T>
  void WriteValue(const T& v) {
    stream_ << v;
  }
  void WriteQuotable(std::string_view v);

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ppstream

#define PPS_LOG(level)                                                      \
  if (static_cast<int>(::ppstream::LogLevel::k##level) <                    \
      static_cast<int>(::ppstream::GetLogLevel())) {                        \
  } else                                                                    \
    ::ppstream::internal::LogMessage(::ppstream::LogLevel::k##level,        \
                                     __FILE__, __LINE__)                    \
        .stream()

/// Structured logging: PPS_SLOG(Warn, "engine.start").Kv("stages", 5);
#define PPS_SLOG(level, event)                                              \
  if (static_cast<int>(::ppstream::LogLevel::k##level) <                    \
      static_cast<int>(::ppstream::GetLogLevel())) {                        \
  } else                                                                    \
    ::ppstream::internal::StructuredLogMessage(                             \
        ::ppstream::LogLevel::k##level, __FILE__, __LINE__, event)

#define PPS_CHECK(cond)                                                     \
  if (cond) {                                                               \
  } else                                                                    \
    ::ppstream::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define PPS_CHECK_EQ(a, b) PPS_CHECK((a) == (b))
#define PPS_CHECK_NE(a, b) PPS_CHECK((a) != (b))
#define PPS_CHECK_LT(a, b) PPS_CHECK((a) < (b))
#define PPS_CHECK_LE(a, b) PPS_CHECK((a) <= (b))
#define PPS_CHECK_GT(a, b) PPS_CHECK((a) > (b))
#define PPS_CHECK_GE(a, b) PPS_CHECK((a) >= (b))

/// Asserts that a Status-returning expression succeeds.
#define PPS_CHECK_OK(expr)                                                  \
  do {                                                                      \
    ::ppstream::Status _pps_chk = (expr);                                   \
    PPS_CHECK(_pps_chk.ok()) << _pps_chk.ToString();                        \
  } while (0)
