// Byte-buffer reader/writer for message serialization between stages.
//
// Little-endian fixed-width integers plus length-prefixed blobs. The stream
// substrate serializes tensors through these before handing them to a
// channel, mirroring what a real cross-server deployment would send on the
// wire (and letting the simulator account communication volume).

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace ppstream {

/// Append-only byte sink.
class BufferWriter {
 public:
  void WriteU8(uint8_t v) { bytes_.push_back(v); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  /// Length-prefixed byte blob.
  void WriteBytes(const uint8_t* data, size_t len) {
    WriteU64(static_cast<uint64_t>(len));
    WriteRaw(data, len);
  }
  void WriteBytes(const std::vector<uint8_t>& data) {
    WriteBytes(data.data(), data.size());
  }
  void WriteString(const std::string& s) {
    WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  void WriteRaw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }

  std::vector<uint8_t> bytes_;
};

/// Sequential reader over a byte span; all reads are bounds-checked.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& bytes)
      : BufferReader(bytes.data(), bytes.size()) {}

  // The = 0/0.0 initializers are dead stores on the success path but keep
  // GCC's -Wmaybe-uninitialized quiet when ReadRaw's error branch is
  // inlined into a Result construction.
  Result<uint8_t> ReadU8() {
    uint8_t v = 0;
    PPS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    PPS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    PPS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> ReadI64() {
    int64_t v = 0;
    PPS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> ReadDouble() {
    double v = 0.0;
    PPS_RETURN_IF_ERROR(ReadRaw(&v, sizeof(v)));
    return v;
  }

  Result<std::vector<uint8_t>> ReadBytes() {
    PPS_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
    if (len > Remaining()) {
      return Status::OutOfRange(
          internal::StrCat("blob length ", len, " exceeds remaining ",
                           Remaining(), " bytes"));
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
  }

  Result<std::string> ReadString() {
    PPS_ASSIGN_OR_RETURN(std::vector<uint8_t> b, ReadBytes());
    return std::string(b.begin(), b.end());
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status ReadRaw(void* out, size_t len) {
    if (len > Remaining()) {
      return Status::OutOfRange(
          internal::StrCat("read of ", len, " bytes past end (remaining ",
                           Remaining(), ")"));
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ppstream
