#include "util/logging.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "obs/flightrec.h"
#include "obs/trace.h"
#include "util/status.h"

namespace ppstream {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
}

StructuredLogMessage::StructuredLogMessage(LogLevel level, const char* file,
                                           int line, std::string_view event)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] "
          << event;
  const obs::TraceContext ctx = obs::CurrentTraceContext();
  if (ctx.active()) {
    char ids[48];
    std::snprintf(ids, sizeof(ids), " trace=%" PRIx64 " span=%" PRIx64,
                  ctx.trace_id, ctx.span_id);
    stream_ << ids;
  }
}

StructuredLogMessage::~StructuredLogMessage() {
  const std::string line = stream_.str();
  // Structured lines feed the flight recorder's ring (no-op while
  // disabled); they are secret-free by construction (ppslint R3).
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  if (recorder.enabled()) recorder.RecordLog(line);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << line << "\n";
}

void StructuredLogMessage::WriteQuotable(std::string_view v) {
  const bool needs_quotes =
      v.empty() || v.find_first_of(" =\"\n\t") != std::string_view::npos;
  if (!needs_quotes) {
    stream_ << v;
    return;
  }
  stream_ << '"';
  for (char c : v) {
    switch (c) {
      case '"': stream_ << "\\\""; break;
      case '\\': stream_ << "\\\\"; break;
      case '\n': stream_ << "\\n"; break;
      case '\t': stream_ << "\\t"; break;
      default: stream_ << c;
    }
  }
  stream_ << '"';
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace ppstream
