#include "util/logging.h"

#include <atomic>
#include <mutex>

#include "util/status.h"

namespace ppstream {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << stream_.str() << "\n";
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal
}  // namespace ppstream
