// Thread-safety annotation macros (DESIGN.md §15).
//
// Every mutex-guarded field and lock-requiring method in the tree
// carries one of these markers. They are consumed twice:
//
//   * ppslint R6 (lock discipline) checks, lexically, that each access
//     to a PPS_GUARDED_BY field happens inside a lock scope naming the
//     right mutex or inside a method annotated PPS_REQUIRES on it —
//     on every build of every compiler, including the gcc CI legs.
//   * Under Clang with an annotated standard library (libc++ built with
//     -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS, or an explicit
//     -DPPS_THREAD_SAFETY_ANALYSIS opt-in), the macros expand to the
//     native thread-safety attributes so -Wthread-safety performs the
//     same check flow-sensitively. The dedicated clang CI leg builds
//     the library targets this way with -Werror=thread-safety.
//
// The expansion is deliberately gated on the opt-in define and not just
// __clang__: with libstdc++ (whose std::mutex is not a Clang
// "capability"), expanding the attributes would only produce
// -Wthread-safety-attributes noise on every developer clang build.
//
// PPS_CAS_GUARDED_BY is ppslint-only and always expands to nothing:
// it documents fields protected by a CAS/seqlock discipline on a
// sibling atomic (exclusive session attachment, flight-recorder slot
// versions) — a protocol Clang's analysis cannot express, but whose
// *presence* ppslint R7 enforces on every non-atomic sibling of a
// CAS-owned atomic.

#pragma once

#if defined(__clang__) && (defined(PPS_THREAD_SAFETY_ANALYSIS) || \
                           defined(_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS))
#define PPS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPS_THREAD_ANNOTATION(x)
#endif

/// Field is protected by the given mutex: every read/write must hold it.
#define PPS_GUARDED_BY(x) PPS_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data (not the pointer itself) is protected by the mutex.
#define PPS_PT_GUARDED_BY(x) PPS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the mutex(es) before invoking this function.
#define PPS_REQUIRES(...) \
  PPS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the mutex(es) when invoking this function
/// (the function acquires them itself, or would self-deadlock).
#define PPS_EXCLUDES(...) PPS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define PPS_ACQUIRE(...) \
  PPS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es) it was called with held.
#define PPS_RELEASE(...) \
  PPS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Opt a function out of Clang's analysis (std::unique_lock juggling,
/// condition-variable loops — patterns the attributes cannot model).
/// ppslint R6 still checks the function lexically.
#define PPS_NO_THREAD_SAFETY_ANALYSIS \
  PPS_THREAD_ANNOTATION(no_thread_safety_analysis)

/// ppslint-only (always empty): field is protected by a CAS/seqlock
/// discipline on sibling atomic `x`, not by a mutex. See header comment.
#define PPS_CAS_GUARDED_BY(x)
