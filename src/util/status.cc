#include "util/status.h"

namespace ppstream {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ppstream
