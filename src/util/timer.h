// Wall-clock timing utilities used by the profiler and benchmarks.

#pragma once

#include <chrono>
#include <cstdint>

namespace ppstream {

/// Monotonic stopwatch. Starts on construction; Restart() resets.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppstream
