#include "util/fault.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace ppstream {

namespace {

bool SiteMatches(const std::string& pattern, std::string_view site) {
  return pattern.empty() || site.find(pattern) != std::string_view::npos;
}

/// Registry counters "fault.injected.<kind>.<site>" — chaos runs report
/// exactly what they injected and where. Only fired injections pay the
/// name lookup.
void CountInjection(const char* kind, std::string_view site) {
  obs::MetricsRegistry::Global()
      .GetCounter(internal::StrCat("fault.injected.", kind, ".", site))
      ->Increment();
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed) : rng_(seed) {}

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(RuleState{std::move(rule), 0});
  num_rules_.store(static_cast<int>(rules_.size()),
                   std::memory_order_relaxed);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
  num_rules_.store(0, std::memory_order_relaxed);
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_.Seed(seed);
}

bool FaultInjector::FiresLocked(RuleState& rs) {
  ++rs.calls;
  if (rs.rule.every_nth > 0 && rs.calls % rs.rule.every_nth == 0) {
    return true;
  }
  return rs.rule.probability > 0 && rng_.NextDouble() < rs.rule.probability;
}

Status FaultInjector::Fail(std::string_view site) {
  if (!enabled()) return Status::OK();
  double sleep_seconds = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.probes;
    for (RuleState& rs : rules_) {
      const FaultKind kind = rs.rule.kind;
      if (kind == FaultKind::kCorruption) continue;
      if (!SiteMatches(rs.rule.site_pattern, site)) continue;
      if (!FiresLocked(rs)) continue;
      if (kind == FaultKind::kLatency && sleep_seconds == 0) {
        sleep_seconds = rs.rule.latency_seconds;
        ++stats_.latencies;
        CountInjection("latency", site);
      } else if (kind == FaultKind::kError && injected.ok()) {
        injected = Status(rs.rule.error_code,
                          internal::StrCat("injected fault at ", site));
        ++stats_.errors;
        CountInjection("error", site);
      }
    }
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
  return injected;
}

void FaultInjector::Delay(std::string_view site) {
  if (!enabled()) return;
  double sleep_seconds = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.probes;
    for (RuleState& rs : rules_) {
      if (rs.rule.kind != FaultKind::kLatency) continue;
      if (!SiteMatches(rs.rule.site_pattern, site)) continue;
      if (!FiresLocked(rs)) continue;
      sleep_seconds = rs.rule.latency_seconds;
      ++stats_.latencies;
      CountInjection("latency", site);
      break;
    }
  }
  if (sleep_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
}

bool FaultInjector::Corrupt(std::string_view site,
                            std::vector<uint8_t>& payload) {
  if (!enabled() || payload.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.probes;
  for (RuleState& rs : rules_) {
    if (rs.rule.kind != FaultKind::kCorruption) continue;
    if (!SiteMatches(rs.rule.site_pattern, site)) continue;
    if (!FiresLocked(rs)) continue;
    const size_t flips = std::max<size_t>(1, rs.rule.corrupt_bytes);
    for (size_t i = 0; i < flips; ++i) {
      payload[rng_.NextBounded(payload.size())] ^= 0xFF;
    }
    ++stats_.corruptions;
    CountInjection("corruption", site);
    return true;
  }
  return false;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ppstream
