#include "planner/profiler.h"

#include <memory>

#include "obs/metrics.h"
#include "stream/message.h"
#include "util/logging.h"
#include "util/timer.h"

namespace ppstream {

Result<PlanProfile> ProfilePlan(ModelProviderApi& mp, DataProviderApi& dp,
                                const std::vector<DoubleTensor>& probes) {
  if (probes.empty()) {
    return Status::InvalidArgument("profiling needs at least one probe");
  }
  const InferencePlan& plan = mp.plan();
  const size_t rounds = plan.NumRounds();
  const size_t stages = 2 * rounds + 1;

  PlanProfile profile;
  profile.stage_names.resize(stages);
  profile.stage_seconds.assign(stages, 0);
  profile.stage_p95_seconds.assign(stages, 0);
  profile.stage_p99_seconds.assign(stages, 0);
  profile.stage_mean_seconds.assign(stages, 0);
  profile.stage_class.assign(stages, -1);
  profile.stage_bytes_out.assign(stages, 0);

  // One latency distribution per stage (local to this run: the global
  // registry would mix probes from earlier profiling calls).
  std::vector<std::unique_ptr<obs::Histogram>> stage_hist;
  stage_hist.reserve(stages);
  for (size_t s = 0; s < stages; ++s) {
    stage_hist.push_back(std::make_unique<obs::Histogram>());
  }

  profile.stage_names[0] = "dp-encrypt";
  profile.stage_class[0] = -1;
  for (size_t r = 0; r < rounds; ++r) {
    profile.stage_names[2 * r + 1] =
        internal::StrCat("mp-linear-", r, " [", plan.linear_stages[r].name,
                         "]");
    profile.stage_class[2 * r + 1] = +1;
    profile.stage_names[2 * r + 2] =
        r + 1 < rounds
            ? internal::StrCat("dp-nonlinear-", r, " [",
                               plan.nonlinear_segments[r].name, "]")
            : internal::StrCat("dp-final [",
                               plan.nonlinear_segments[r].name, "]");
    profile.stage_class[2 * r + 2] = -1;
  }

  uint64_t request_id = 0xD0D0'0000;
  for (const DoubleTensor& probe : probes) {
    WallTimer timer;
    PPS_ASSIGN_OR_RETURN(std::vector<Ciphertext> wire,
                         dp.EncryptInput(probe));
    stage_hist[0]->Record(timer.ElapsedSeconds());
    profile.stage_bytes_out[0] += SerializeCiphertexts(wire).size();

    for (size_t r = 0; r < rounds; ++r) {
      timer.Restart();
      PPS_ASSIGN_OR_RETURN(wire, mp.ProcessRound(request_id, r, wire));
      stage_hist[2 * r + 1]->Record(timer.ElapsedSeconds());
      profile.stage_bytes_out[2 * r + 1] += SerializeCiphertexts(wire).size();

      timer.Restart();
      if (r + 1 < rounds) {
        PPS_ASSIGN_OR_RETURN(wire, dp.ProcessIntermediate(r, wire));
        stage_hist[2 * r + 2]->Record(timer.ElapsedSeconds());
        profile.stage_bytes_out[2 * r + 2] +=
            SerializeCiphertexts(wire).size();
      } else {
        PPS_ASSIGN_OR_RETURN(DoubleTensor result, dp.ProcessFinal(wire));
        stage_hist[2 * r + 2]->Record(timer.ElapsedSeconds());
        profile.stage_bytes_out[2 * r + 2] +=
            SerializeDoubleTensor(result).size();
      }
    }
    (void)mp.ReleaseRequestState(request_id);
    ++request_id;
  }

  for (size_t s = 0; s < stages; ++s) {
    const obs::Histogram& h = *stage_hist[s];
    profile.stage_seconds[s] = h.Quantile(0.5);
    profile.stage_p95_seconds[s] = h.Quantile(0.95);
    profile.stage_p99_seconds[s] = h.Quantile(0.99);
    profile.stage_mean_seconds[s] = h.Mean();
    profile.stage_bytes_out[s] =
        static_cast<uint64_t>(profile.stage_bytes_out[s] / probes.size());
    // Zero-cost stages break the allocator's strictly-positive assumption.
    if (profile.stage_seconds[s] <= 0) profile.stage_seconds[s] = 1e-9;
  }
  return profile;
}

AllocationProblem BuildAllocationProblem(const PlanProfile& profile,
                                         int model_servers, int data_servers,
                                         int cores_per_server,
                                         bool hyper_threading) {
  AllocationProblem problem;
  problem.layer_times = profile.stage_seconds;
  problem.layer_class = profile.stage_class;
  problem.hyper_threading = hyper_threading;
  for (int j = 0; j < model_servers; ++j) {
    problem.server_cores.push_back(cores_per_server);
    problem.server_class.push_back(+1);
  }
  for (int j = 0; j < data_servers; ++j) {
    problem.server_cores.push_back(cores_per_server);
    problem.server_class.push_back(-1);
  }
  return problem;
}

std::vector<size_t> StageThreadsFromAllocation(const Allocation& allocation) {
  std::vector<size_t> threads;
  threads.reserve(allocation.threads_of_layer.size());
  for (int y : allocation.threads_of_layer) {
    threads.push_back(static_cast<size_t>(std::max(1, y)));
  }
  return threads;
}

}  // namespace ppstream
