// Stage-graph plan IR (paper §IV-B, "operation encapsulation").
//
// The planner's intermediate representation between an nn::Model and a
// deployable InferencePlan. Nodes are primitive operations (one float
// layer each, until fusion concatenates them); edges are tensors in
// SSA form — every tensor has exactly one definition and, in a
// sequential model, at most one use. The compilation pipeline
// (core/plan.cc) is a sequence of passes over this graph (planner/pass.h,
// planner/passes.h); each pass mutates the graph and the verifier checks
// the structural invariants after every pass.
//
// The graph deliberately keeps *both* views of an operation:
//   * `layers`   — the float layers the node stands for, used to emit the
//                  prepared reference model (and kept through fusion, so a
//                  fused node still replays the original float sequence);
//   * `affine`   — the lowered IntegerAffineLayer (linear nodes only,
//                  present after the lower-to-integer pass), the thing the
//                  model provider actually evaluates homomorphically.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bignum/bigint.h"
#include "core/affine.h"
#include "nn/model.h"
#include "util/status.h"

namespace ppstream {
namespace planner {

/// Edge of the stage graph: one tensor value. Analysis results (scale
/// power, magnitude bounds) live on tensors because they are properties
/// of the *value*, not of the op that produced it.
struct IrTensor {
  int64_t id = -1;
  Shape shape;
  /// Power of F this tensor carries when it crosses the crypto boundary:
  /// 1 entering a linear run, +1 per weighted linear layer. 0 = not yet
  /// assigned (before the lower-to-integer pass).
  int scale_power = 0;
  /// |value| bound in real units (coarse interval analysis).
  double real_bound = 0.0;
  /// Worst-case |integer| at scale F^scale_power (set by bound
  /// propagation; drives CheckFitsKey).
  BigInt magnitude_bound;
  /// Producing node id, or -1 for the graph input.
  int64_t def = -1;
  /// Consuming node ids. Orphan tensors (no uses, not the graph output)
  /// are tolerated by the verifier and reaped by DeadTensorElim.
  std::vector<int64_t> uses;
  /// Slot layout when this tensor crosses the crypto boundary packed
  /// (set by the analyze-packing-legality pass; absent = scalar).
  std::optional<PackedLayout> packed;
  bool live = true;
};

/// Node of the stage graph: one primitive operation.
struct IrNode {
  int64_t id = -1;
  std::string name;
  /// Operation class; meaningful once the classify pass has run (tracked
  /// by StageGraph::classified()).
  OpClass op_class = OpClass::kLinear;
  /// The float layer(s) this node represents. Exactly one until
  /// FuseAffineChains merges nodes, after which the fused node carries
  /// the concatenated original sequence (replaying them is bit-identical
  /// in float, and emitting them reconstructs the prepared model).
  std::vector<std::unique_ptr<Layer>> layers;
  /// Lowered integer form (linear nodes, after lower-to-integer).
  std::optional<IntegerAffineLayer> affine;
  int64_t input = -1;   // tensor id
  int64_t output = -1;  // tensor id
  /// Pipeline round this node was merged into (-1 before merge-adjacent):
  /// linear stage r and the non-linear segment that follows it share r.
  int round = -1;
  bool final_segment = false;
  /// Packed execution plan (linear nodes, set by lower-to-packed-kernels
  /// when the node's input/output layouts are legal; absent = scalar).
  std::optional<PackedAffineKernel> packed_kernel;
  /// Placement annotations (set by the placement pass).
  int server = -1;
  int threads = 1;
  bool live = true;
};

/// The stage graph. Models are sequential, so the live subgraph is always
/// a single chain from input() to output(); passes that rewrite it must
/// preserve that property (the verifier walks the chain to check).
class StageGraph {
 public:
  /// Imports a float model: one node per layer, one tensor per value.
  /// `input_bound` is the |input element| bound in real units.
  static Result<StageGraph> FromModel(const Model& model, int64_t scale,
                                      double input_bound);

  int64_t scale() const { return scale_; }
  double input_bound() const { return input_bound_; }
  const std::string& model_name() const { return model_name_; }
  int64_t input() const { return input_tensor_; }
  int64_t output() const { return output_tensor_; }
  void set_output(int64_t tensor_id) { output_tensor_ = tensor_id; }

  /// True once the classify pass has assigned op classes.
  bool classified() const { return classified_; }
  void set_classified(bool v) { classified_ = v; }
  /// True once merge-adjacent has assigned rounds.
  bool merged() const { return merged_; }
  void set_merged(bool v) { merged_ = v; }

  IrTensor& tensor(int64_t id) { return tensors_[static_cast<size_t>(id)]; }
  const IrTensor& tensor(int64_t id) const {
    return tensors_[static_cast<size_t>(id)];
  }
  IrNode& node(int64_t id) { return nodes_[static_cast<size_t>(id)]; }
  const IrNode& node(int64_t id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  size_t num_tensors() const { return tensors_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  int64_t NumLiveNodes() const;
  int64_t NumLiveTensors() const;

  /// Allocates a new tensor / node and returns its id.
  int64_t AddTensor(Shape shape);
  int64_t AddNode(std::string name, std::unique_ptr<Layer> layer,
                  int64_t input_tensor, int64_t output_tensor);

  /// Live node ids in dataflow order (input -> output). Fails if the live
  /// subgraph is not a single connected chain.
  Result<std::vector<int64_t>> ChainOrder() const;

  /// Structural invariants: chain connectivity, def/use symmetry, shape
  /// agreement between each node's float layers and its tensors, affine /
  /// scale-power consistency where lowered. Orphan (dead-use) tensors are
  /// tolerated — DeadTensorElim reaps them — but dangling references to
  /// dead objects are not.
  Status Verify() const;

  /// Stable textual dump (golden-tested; see tools/plan_dump). One line
  /// per live tensor and node, in dataflow order.
  std::string ToString() const;

 private:
  int64_t scale_ = 1;
  double input_bound_ = 0.0;
  std::string model_name_;
  int64_t input_tensor_ = -1;
  int64_t output_tensor_ = -1;
  bool classified_ = false;
  bool merged_ = false;
  std::vector<IrTensor> tensors_;
  std::vector<IrNode> nodes_;
};

/// Recomputes scale powers, real bounds and integer magnitude bounds for
/// every live tensor by walking the chain from the graph input (linear
/// nodes need `affine` set). Shared by the lower-to-integer pass (initial
/// propagation), FuseAffineChains (re-propagation through folded
/// matrices) and the final verify-bounds pass.
Status PropagateBounds(StageGraph* graph);

/// Real-unit output bound of a non-linear layer given a real-unit input
/// bound (coarse interval analysis for key sizing).
double NonLinearLayerBound(const Layer& layer, double in_bound);

}  // namespace planner
}  // namespace ppstream
