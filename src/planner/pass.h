// Pass pipeline over the stage-graph IR.
//
// A Pass is a named graph-to-graph transform; the PassManager runs an
// ordered pipeline, verifying the IR after every pass (a pass that leaves
// the graph structurally broken fails compilation with its name attached,
// instead of surfacing later as a corrupt plan) and exporting per-pass
// telemetry through the obs registry:
//
//   planner.pass.<name>.seconds   histogram  wall time per run
//   planner.pass.runs             counter    passes executed
//   planner.ir.nodes / .tensors   gauge      live sizes after the pipeline
//
// An optional PassObserver sees the graph after each pass — tools/plan_dump
// uses it for --pass-trace, and golden tests snapshot the dumps.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "planner/ir.h"
#include "util/status.h"

namespace ppstream {
namespace planner {

class Pass {
 public:
  virtual ~Pass() = default;
  /// Stable kebab-case identifier ("fuse-affine-chains"); used in error
  /// messages, metric names and --pass-trace headers.
  virtual std::string name() const = 0;
  virtual Status Run(StageGraph* graph) = 0;
};

/// Hook into the pipeline; AfterPass also fires once with pass_name
/// "initial" before any pass runs, so a trace shows the imported graph.
class PassObserver {
 public:
  virtual ~PassObserver() = default;
  virtual void AfterPass(const std::string& pass_name,
                         const StageGraph& graph) = 0;
};

class PassManager {
 public:
  /// `verify_each` controls the post-pass IR verification (on by default;
  /// tests switch it off to prove the verifier catches specific breaks).
  explicit PassManager(bool verify_each = true) : verify_each_(verify_each) {}

  PassManager& Add(std::unique_ptr<Pass> pass);

  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }

  /// Runs the pipeline in order. On failure the status message names the
  /// offending pass. The input graph must already verify.
  Status Run(StageGraph* graph, PassObserver* observer = nullptr) const;

 private:
  bool verify_each_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

}  // namespace planner
}  // namespace ppstream
