#include "planner/passes.h"

#include <algorithm>
#include <map>
#include <utility>

#include "nn/layers.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace ppstream {
namespace planner {

namespace {

/// Replaces a primitive node with the layer sequence its float layer
/// lowers to (Layer::DecomposeForDeployment). The node's input and output
/// tensors are reused at the boundaries; fresh tensors are minted in
/// between.
Status ReplaceWithDecomposition(StageGraph* graph, int64_t node_id) {
  // Decompose first; copy out the endpoints before any Add* call, which
  // can invalidate node/tensor references.
  const int64_t input = graph->node(node_id).input;
  const int64_t output = graph->node(node_id).output;
  PPS_ASSIGN_OR_RETURN(
      std::vector<std::unique_ptr<Layer>> layers,
      graph->node(node_id).layers[0]->DecomposeForDeployment(
          graph->tensor(input).shape));
  if (layers.empty()) {
    return Status::Internal(internal::StrCat(
        "layer ", graph->node(node_id).name, " decomposed to nothing"));
  }

  graph->node(node_id).live = false;
  graph->node(node_id).layers.clear();
  std::vector<int64_t>& uses = graph->tensor(input).uses;
  uses.erase(std::remove(uses.begin(), uses.end(), node_id), uses.end());
  graph->tensor(output).def = -1;

  int64_t current = input;
  Shape shape = graph->tensor(input).shape;
  for (size_t k = 0; k < layers.size(); ++k) {
    PPS_ASSIGN_OR_RETURN(Shape next_shape, layers[k]->OutputShape(shape));
    const bool last = k + 1 == layers.size();
    const int64_t out_tensor = last ? output : graph->AddTensor(next_shape);
    std::string name = layers[k]->name();
    graph->AddNode(std::move(name), std::move(layers[k]), current,
                   out_tensor);
    current = out_tensor;
    shape = std::move(next_shape);
  }
  return Status::OK();
}

class RewriteMaxPoolPass : public Pass {
 public:
  std::string name() const override { return "rewrite-maxpool"; }
  Status Run(StageGraph* graph) override {
    const size_t original = graph->num_nodes();
    for (size_t id = 0; id < original; ++id) {
      const IrNode& n = graph->node(static_cast<int64_t>(id));
      if (!n.live || n.layers.size() != 1) continue;
      if (n.layers[0]->kind() != LayerKind::kMaxPool2D) continue;
      PPS_RETURN_IF_ERROR(
          ReplaceWithDecomposition(graph, static_cast<int64_t>(id)));
    }
    return Status::OK();
  }
};

class DecomposeMixedPass : public Pass {
 public:
  std::string name() const override { return "decompose-mixed"; }
  Status Run(StageGraph* graph) override {
    const size_t original = graph->num_nodes();
    for (size_t id = 0; id < original; ++id) {
      const IrNode& n = graph->node(static_cast<int64_t>(id));
      if (!n.live || n.layers.size() != 1) continue;
      if (n.layers[0]->op_class() != OpClass::kMixed) continue;
      PPS_RETURN_IF_ERROR(
          ReplaceWithDecomposition(graph, static_cast<int64_t>(id)));
    }
    return Status::OK();
  }
};

class ClassifyPass : public Pass {
 public:
  std::string name() const override { return "classify"; }
  Status Run(StageGraph* graph) override {
    PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());
    for (int64_t id : order) {
      IrNode& n = graph->node(id);
      const OpClass c = n.layers[0]->op_class();
      if (c == OpClass::kMixed) {
        return Status::FailedPrecondition(internal::StrCat(
            "mixed layer ", n.name,
            " must be decomposed before classification"));
      }
      n.op_class = c;
    }
    if (graph->node(order.front()).op_class != OpClass::kLinear) {
      return Status::FailedPrecondition(
          "model must start with a linear layer (paper §III-A assumption)");
    }
    if (graph->node(order.back()).op_class != OpClass::kNonLinear) {
      return Status::FailedPrecondition(
          "model must end with a non-linear layer (paper §III-A assumption)");
    }
    graph->set_classified(true);
    return Status::OK();
  }
};

class LowerToIntegerPass : public Pass {
 public:
  std::string name() const override { return "lower-to-integer"; }
  Status Run(StageGraph* graph) override {
    if (!graph->classified()) {
      return Status::FailedPrecondition(
          "classify must run before lower-to-integer");
    }
    PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());
    int scale_power = 1;  // activations enter a linear run at F^1
    for (int64_t id : order) {
      IrNode& n = graph->node(id);
      if (n.op_class == OpClass::kNonLinear) {
        scale_power = 1;
        continue;
      }
      if (n.layers.size() != 1) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " is not primitive; lowering runs pre-fusion"));
      }
      PPS_ASSIGN_OR_RETURN(
          IntegerAffineLayer op,
          IntegerAffineLayer::FromLayer(*n.layers[0],
                                        graph->tensor(n.input).shape,
                                        graph->scale(), scale_power));
      scale_power = op.output_scale_power();
      n.affine.emplace(std::move(op));
    }
    return PropagateBounds(graph);
  }
};

bool FusableLinear(const IrNode& n) {
  return n.live && n.op_class == OpClass::kLinear && n.affine.has_value();
}

/// Counts lowered linear ops and their homomorphic cost over the chain.
Status CountLinearWork(const StageGraph& graph, int64_t* ops,
                       int64_t* scalar_muls) {
  *ops = 0;
  *scalar_muls = 0;
  PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph.ChainOrder());
  for (int64_t id : order) {
    const IrNode& n = graph.node(id);
    if (n.op_class != OpClass::kLinear) continue;
    ++*ops;
    if (n.affine.has_value()) *scalar_muls += n.affine->EncryptedScalarMuls();
  }
  return Status::OK();
}

class FuseAffineChainsPass : public Pass {
 public:
  FuseAffineChainsPass(FusionPolicy policy, PlanCompileStats* stats)
      : policy_(policy), stats_(stats) {}

  std::string name() const override { return "fuse-affine-chains"; }

  Status Run(StageGraph* graph) override {
    int64_t ops_before = 0, muls_before = 0;
    PPS_RETURN_IF_ERROR(CountLinearWork(*graph, &ops_before, &muls_before));

    int64_t fused = 0;
    if (policy_ != FusionPolicy::kNever) {
      bool changed = true;
      while (changed) {
        changed = false;
        PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order,
                             graph->ChainOrder());
        for (size_t i = 0; i + 1 < order.size(); ++i) {
          const int64_t a = order[i], b = order[i + 1];
          if (!FusableLinear(graph->node(a)) ||
              !FusableLinear(graph->node(b))) {
            continue;
          }
          Result<IntegerAffineLayer> composed = IntegerAffineLayer::Compose(
              *graph->node(a).affine, *graph->node(b).affine);
          if (!composed.ok()) continue;  // int64 overflow etc: keep split
          if (policy_ == FusionPolicy::kScalarMulCount &&
              composed->EncryptedScalarMuls() >
                  graph->node(a).affine->EncryptedScalarMuls() +
                      graph->node(b).affine->EncryptedScalarMuls()) {
            continue;  // fusing would densify; not worth it
          }
          Fuse(graph, a, b, std::move(*composed));
          ++fused;
          changed = true;
          break;  // the chain changed; rewalk
        }
      }
      if (fused > 0) PPS_RETURN_IF_ERROR(PropagateBounds(graph));
    }

    int64_t ops_after = 0, muls_after = 0;
    PPS_RETURN_IF_ERROR(CountLinearWork(*graph, &ops_after, &muls_after));
    if (stats_ != nullptr) {
      stats_->linear_ops_before_fusion = ops_before;
      stats_->linear_ops_after_fusion = ops_after;
      stats_->scalar_muls_before_fusion = muls_before;
      stats_->scalar_muls_after_fusion = muls_after;
      stats_->ops_fused = fused;
    }
    if (fused > 0) {
      obs::MetricsRegistry::Global()
          .GetCounter("planner.fuse.ops_fused")
          ->Increment(static_cast<uint64_t>(fused));
    }
    return Status::OK();
  }

 private:
  static void Fuse(StageGraph* graph, int64_t a, int64_t b,
                   IntegerAffineLayer composed) {
    IrNode& na = graph->node(a);
    IrNode& nb = graph->node(b);
    const int64_t mid = na.output;
    na.name = composed.name();
    na.affine.emplace(std::move(composed));
    for (auto& layer : nb.layers) na.layers.push_back(std::move(layer));
    na.output = nb.output;
    graph->tensor(nb.output).def = a;
    nb.live = false;
    nb.layers.clear();
    // The intermediate tensor is now an orphan; DeadTensorElim reaps it.
    IrTensor& m = graph->tensor(mid);
    m.def = -1;
    m.uses.clear();
  }

  FusionPolicy policy_;
  PlanCompileStats* stats_;
};

class DeadTensorElimPass : public Pass {
 public:
  explicit DeadTensorElimPass(PlanCompileStats* stats) : stats_(stats) {}
  std::string name() const override { return "dead-tensor-elim"; }
  Status Run(StageGraph* graph) override {
    int64_t removed = 0;
    for (size_t id = 0; id < graph->num_tensors(); ++id) {
      IrTensor& t = graph->tensor(static_cast<int64_t>(id));
      if (!t.live) continue;
      t.uses.erase(std::remove_if(t.uses.begin(), t.uses.end(),
                                  [&](int64_t use) {
                                    return !graph->node(use).live;
                                  }),
                   t.uses.end());
      if (t.id == graph->input() || t.id == graph->output()) continue;
      const bool defined = t.def != -1 && graph->node(t.def).live;
      if (!defined && t.uses.empty()) {
        t.live = false;
        ++removed;
      }
    }
    if (stats_ != nullptr) stats_->dead_tensors_removed += removed;
    if (removed > 0) {
      obs::MetricsRegistry::Global()
          .GetCounter("planner.dce.tensors_removed")
          ->Increment(static_cast<uint64_t>(removed));
    }
    return Status::OK();
  }

 private:
  PlanCompileStats* stats_;
};

class MergeAdjacentPass : public Pass {
 public:
  std::string name() const override { return "merge-adjacent"; }
  Status Run(StageGraph* graph) override {
    if (!graph->classified()) {
      return Status::FailedPrecondition(
          "classify must run before merge-adjacent");
    }
    PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());
    int round = -1;
    OpClass prev = OpClass::kNonLinear;  // first linear node opens round 0
    for (int64_t id : order) {
      IrNode& n = graph->node(id);
      if (n.op_class == OpClass::kLinear) {
        if (prev != OpClass::kLinear) ++round;
      } else {
        // Non-linear segments run element-wise on the obfuscated tensor,
        // so they may not change its shape.
        if (graph->tensor(n.input).shape != graph->tensor(n.output).shape) {
          return Status::FailedPrecondition(internal::StrCat(
              "non-linear layer ", n.name,
              " changes the tensor shape; only element-wise non-linear "
              "operations are deployable (rewrite pooling first)"));
        }
      }
      n.round = round;
      prev = n.op_class;
    }
    // Mark the trailing non-linear run; it is the only segment that is
    // never obfuscated, hence the only legal home for SoftMax (§III-C).
    for (auto it = order.rbegin();
         it != order.rend() &&
         graph->node(*it).op_class == OpClass::kNonLinear;
         ++it) {
      graph->node(*it).final_segment = true;
    }
    for (int64_t id : order) {
      const IrNode& n = graph->node(id);
      if (n.op_class == OpClass::kNonLinear && !n.final_segment &&
          n.layers[0]->kind() == LayerKind::kSoftmax) {
        return Status::FailedPrecondition(
            "SoftMax in a non-final segment would be obfuscated and is "
            "position-dependent");
      }
    }
    graph->set_merged(true);
    return Status::OK();
  }
};

class VerifyBoundsPass : public Pass {
 public:
  std::string name() const override { return "verify-bounds"; }
  Status Run(StageGraph* graph) override { return PropagateBounds(graph); }
};

class AnalyzePackingLegalityPass : public Pass {
 public:
  AnalyzePackingLegalityPass(PackingSpec spec, PlanCompileStats* stats)
      : spec_(spec), stats_(stats) {}

  std::string name() const override { return "analyze-packing-legality"; }

  Status Run(StageGraph* graph) override {
    if (!graph->merged()) {
      return Status::FailedPrecondition(
          "packing legality requires merge-adjacent to have grouped rounds");
    }
    PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());
    // Linear nodes of each round, in chain order. The layout must cover
    // the round's input AND every linear output (the DataProvider encrypts
    // once per round, and intermediate tensors of an unfused round stay
    // ciphertext), so the slot width is sized to the round's max bound.
    std::map<int, std::vector<int64_t>> rounds;
    for (int64_t id : order) {
      const IrNode& n = graph->node(id);
      if (n.op_class == OpClass::kLinear && n.affine.has_value()) {
        rounds[n.round].push_back(id);
      }
    }
    int64_t packed = 0, fallback = 0;
    for (const auto& [round, ids] : rounds) {
      BigInt max_bound = graph->tensor(graph->node(ids[0]).input)
                             .magnitude_bound;
      for (int64_t id : ids) {
        const BigInt& out_bound =
            graph->tensor(graph->node(id).output).magnitude_bound;
        if (out_bound > max_bound) max_bound = out_bound;
      }
      if (max_bound.IsZero()) {
        return Status::FailedPrecondition(
            "packing legality requires propagated bounds; run verify-bounds");
      }
      Result<PackedLayout> layout = ChoosePackedLayout(
          spec_.key_bits, max_bound, spec_.guard_bits, spec_.max_lanes);
      if (!layout.ok()) {
        ++fallback;  // this round runs the scalar path
        continue;
      }
      graph->tensor(graph->node(ids[0]).input).packed = *layout;
      for (int64_t id : ids) {
        graph->tensor(graph->node(id).output).packed = *layout;
      }
      ++packed;
    }
    if (stats_ != nullptr) {
      stats_->rounds_packed = packed;
      stats_->rounds_packing_fallback = fallback;
    }
    obs::MetricsRegistry::Global()
        .GetCounter("planner.pack.rounds_packed")
        ->Increment(static_cast<uint64_t>(packed));
    obs::MetricsRegistry::Global()
        .GetCounter("planner.pack.rounds_fallback")
        ->Increment(static_cast<uint64_t>(fallback));
    return Status::OK();
  }

 private:
  PackingSpec spec_;
  PlanCompileStats* stats_;
};

class LowerToPackedKernelsPass : public Pass {
 public:
  explicit LowerToPackedKernelsPass(PlanCompileStats* stats)
      : stats_(stats) {}

  std::string name() const override { return "lower-to-packed-kernels"; }

  Status Run(StageGraph* graph) override {
    PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());
    int64_t kernels = 0, group_muls = 0;
    for (int64_t id : order) {
      IrNode& n = graph->node(id);
      if (n.op_class != OpClass::kLinear || !n.affine.has_value()) continue;
      const IrTensor& in = graph->tensor(n.input);
      const IrTensor& out = graph->tensor(n.output);
      if (!in.packed.has_value() || !out.packed.has_value()) continue;
      if (*in.packed != *out.packed) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " straddles two slot layouts"));
      }
      PPS_ASSIGN_OR_RETURN(
          PackedAffineKernel kernel,
          PackedAffineKernel::Build(*n.affine, *out.packed,
                                    in.magnitude_bound));
      group_muls += kernel.GroupScalarMuls();
      n.packed_kernel.emplace(std::move(kernel));
      ++kernels;
    }
    if (stats_ != nullptr) stats_->packed_group_muls = group_muls;
    if (kernels > 0) {
      obs::MetricsRegistry::Global()
          .GetCounter("planner.pack.kernels_lowered")
          ->Increment(static_cast<uint64_t>(kernels));
    }
    return Status::OK();
  }

 private:
  PlanCompileStats* stats_;
};

class PlacementPass : public Pass {
 public:
  PlacementPass(PlacementSpec spec, PlanPlacement* result)
      : spec_(std::move(spec)), result_(result) {}

  std::string name() const override { return "placement"; }

  Status Run(StageGraph* graph) override {
    if (!graph->merged()) {
      return Status::FailedPrecondition(
          "placement requires merge-adjacent to have grouped rounds");
    }
    PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());
    int rounds = 0;
    for (int64_t id : order) {
      rounds = std::max(rounds, graph->node(id).round + 1);
    }
    if (rounds == 0) return Status::Internal("no rounds to place");

    // Analytic cost model per round: homomorphic scalar muls for the
    // linear stage, activated elements for the non-linear segment (both
    // in arbitrary-but-consistent units; Eq. 4 balances ratios).
    std::vector<double> lin_cost(rounds, 0), nonlin_cost(rounds, 0);
    for (int64_t id : order) {
      const IrNode& n = graph->node(id);
      if (n.op_class == OpClass::kLinear) {
        lin_cost[n.round] += n.affine.has_value()
                                 ? static_cast<double>(
                                       n.affine->EncryptedScalarMuls() + 1)
                                 : 1.0;
      } else {
        nonlin_cost[n.round] += static_cast<double>(
            graph->tensor(n.output).shape.NumElements());
      }
    }

    AllocationProblem problem;
    const bool measured =
        spec_.stage_seconds.size() == static_cast<size_t>(2 * rounds);
    for (int r = 0; r < rounds; ++r) {
      problem.layer_times.push_back(
          measured ? spec_.stage_seconds[2 * static_cast<size_t>(r)]
                   : lin_cost[r]);
      problem.layer_class.push_back(+1);
      problem.layer_times.push_back(
          measured ? spec_.stage_seconds[2 * static_cast<size_t>(r) + 1]
                   : std::max(nonlin_cost[r], 1.0));
      problem.layer_class.push_back(-1);
    }
    for (int s = 0; s < spec_.model_servers; ++s) {
      problem.server_cores.push_back(spec_.cores_per_server);
      problem.server_class.push_back(+1);
    }
    for (int s = 0; s < spec_.data_servers; ++s) {
      problem.server_cores.push_back(spec_.cores_per_server);
      problem.server_class.push_back(-1);
    }
    problem.hyper_threading = spec_.hyper_threading;

    PPS_ASSIGN_OR_RETURN(Allocation allocation,
                         IlpAllocator::Solve(problem, spec_.node_limit));
    for (int64_t id : order) {
      IrNode& n = graph->node(id);
      const size_t layer_index = static_cast<size_t>(
          2 * n.round + (n.op_class == OpClass::kLinear ? 0 : 1));
      n.server = allocation.server_of_layer[layer_index];
      n.threads = allocation.threads_of_layer[layer_index];
    }
    if (result_ != nullptr) {
      result_->server_of_stage = allocation.server_of_layer;
      result_->threads_of_stage = allocation.threads_of_layer;
      result_->objective = allocation.objective;
      result_->exact = allocation.exact;
    }
    return Status::OK();
  }

 private:
  PlacementSpec spec_;
  PlanPlacement* result_;
};

}  // namespace

std::unique_ptr<Pass> MakeRewriteMaxPoolPass() {
  return std::make_unique<RewriteMaxPoolPass>();
}
std::unique_ptr<Pass> MakeDecomposeMixedPass() {
  return std::make_unique<DecomposeMixedPass>();
}
std::unique_ptr<Pass> MakeClassifyPass() {
  return std::make_unique<ClassifyPass>();
}
std::unique_ptr<Pass> MakeLowerToIntegerPass() {
  return std::make_unique<LowerToIntegerPass>();
}
std::unique_ptr<Pass> MakeFuseAffineChainsPass(FusionPolicy policy,
                                               PlanCompileStats* stats) {
  return std::make_unique<FuseAffineChainsPass>(policy, stats);
}
std::unique_ptr<Pass> MakeDeadTensorElimPass(PlanCompileStats* stats) {
  return std::make_unique<DeadTensorElimPass>(stats);
}
std::unique_ptr<Pass> MakeMergeAdjacentPass() {
  return std::make_unique<MergeAdjacentPass>();
}
std::unique_ptr<Pass> MakeVerifyBoundsPass() {
  return std::make_unique<VerifyBoundsPass>();
}
std::unique_ptr<Pass> MakeAnalyzePackingLegalityPass(PackingSpec spec,
                                                     PlanCompileStats* stats) {
  return std::make_unique<AnalyzePackingLegalityPass>(spec, stats);
}
std::unique_ptr<Pass> MakeLowerToPackedKernelsPass(PlanCompileStats* stats) {
  return std::make_unique<LowerToPackedKernelsPass>(stats);
}
std::unique_ptr<Pass> MakePlacementPass(PlacementSpec spec,
                                        PlanPlacement* result) {
  return std::make_unique<PlacementPass>(std::move(spec), result);
}

}  // namespace planner
}  // namespace ppstream
