// The standard compilation passes (core/plan.cc assembles them into the
// CompilePlan pipeline; tests and tools compose them freely).
//
// Pipeline order used by CompilePlan:
//   rewrite-maxpool      MaxPool2D -> averaging conv + ReLU (§III-C)
//   decompose-mixed      mixed layers -> linear + non-linear primitives
//   classify             assign op classes, check §III-A structure
//   lower-to-integer     linear layers -> IntegerAffineLayer at scale F,
//                        scale powers + magnitude bounds onto tensors
//   fuse-affine-chains   fold consecutive linear ops into one affine op
//   dead-tensor-elim     reap tensors orphaned by fusion
//   merge-adjacent       group runs into alternating rounds (Figure 4)
//   verify-bounds        recompute all bounds from scratch post-transform
//   analyze-packing-legality  (optional) choose a slot layout per round
//   lower-to-packed-kernels   (optional) weight-value-dedup packed kernels
//   placement            (optional) Eq. 4-8 server/thread assignment

#pragma once

#include <memory>
#include <vector>

#include "planner/allocation.h"
#include "planner/ir.h"
#include "planner/pass.h"
#include "util/status.h"

namespace ppstream {
namespace planner {

/// When FuseAffineChains folds two adjacent linear ops into one.
enum class FusionPolicy : uint8_t {
  /// Fuse only when the fused op costs no more homomorphic scalar muls
  /// than the pair it replaces (the paper's end-to-end cost metric). This
  /// accepts Conv+BatchNorm, Dense+ScalarScale, Flatten+Dense and rejects
  /// Dense×Dense densification blow-ups. Note the fused op's *exponent
  /// bits* grow (composed weights multiply), so per-mul cost can rise
  /// slightly even as the count shrinks — see DESIGN.md §12.
  kScalarMulCount = 0,
  /// Fuse every composable pair (ablation / maximum stage shrink).
  kAlways = 1,
  /// Never fuse (the pre-IR behavior; also the bit-exactness baseline).
  kNever = 2,
};

/// Counters filled in by the optimizing passes; surfaced on the emitted
/// plan (InferencePlan::compile_stats) and by bench_pipeline.
struct PlanCompileStats {
  int64_t linear_ops_before_fusion = 0;
  int64_t linear_ops_after_fusion = 0;
  int64_t scalar_muls_before_fusion = 0;
  int64_t scalar_muls_after_fusion = 0;
  int64_t ops_fused = 0;
  int64_t dead_tensors_removed = 0;
  // Packing pass results (zero when the packing passes did not run).
  int64_t rounds_packed = 0;
  int64_t rounds_packing_fallback = 0;
  int64_t packed_group_muls = 0;  // muls one packed evaluation pays, total
};

/// Inputs for the packing passes (DESIGN.md §13). `key_bits` is the
/// Paillier key the plan will execute under — slot budgets derive from it,
/// so packed plans are key-size specific. `guard_bits` is per-slot
/// headroom on top of the propagated magnitude bound; `max_lanes` caps
/// slots per plaintext (also the largest useful inference batch).
struct PackingSpec {
  int key_bits = 512;
  int guard_bits = 2;
  int max_lanes = 64;
};

/// Inputs for the optional placement pass: the Table III style testbed
/// plus, optionally, measured per-stage seconds (2R entries ordered
/// lin0, nonlin0, lin1, ...). Without measurements an analytic cost model
/// is used: scalar muls for linear stages, elements for non-linear.
struct PlacementSpec {
  int model_servers = 1;
  int data_servers = 1;
  int cores_per_server = 4;
  bool hyper_threading = true;
  std::vector<double> stage_seconds;
  int64_t node_limit = 2'000'000;
};

/// Solved placement, round-major: entry 2r is linear stage r, entry 2r+1
/// the non-linear segment that follows it. Servers are numbered with the
/// model-provider servers first. In-memory only — never serialized.
struct PlanPlacement {
  std::vector<int> server_of_stage;
  std::vector<int> threads_of_stage;
  double objective = 0;
  bool exact = false;
};

/// Expands MaxPool2D nodes through Layer::DecomposeForDeployment.
std::unique_ptr<Pass> MakeRewriteMaxPoolPass();
/// Expands mixed-class nodes (ScaledSigmoid) the same way.
std::unique_ptr<Pass> MakeDecomposeMixedPass();
/// Assigns op classes and enforces the §III-A structure (starts linear,
/// ends non-linear, nothing mixed left).
std::unique_ptr<Pass> MakeClassifyPass();
/// Lowers linear nodes to IntegerAffineLayer and runs bound propagation.
std::unique_ptr<Pass> MakeLowerToIntegerPass();
/// Folds adjacent linear ops per `policy` (kNever yields a no-op pass);
/// re-propagates magnitude bounds through the folded matrices. `stats`
/// may be null; it must outlive the pipeline otherwise.
std::unique_ptr<Pass> MakeFuseAffineChainsPass(FusionPolicy policy,
                                               PlanCompileStats* stats);
/// Removes orphaned tensors and scrubs dead node ids from use lists.
std::unique_ptr<Pass> MakeDeadTensorElimPass(PlanCompileStats* stats);
/// Groups maximal same-class runs into alternating rounds and validates
/// the deployability rules (element-wise non-linear ops, SoftMax only in
/// the final segment).
std::unique_ptr<Pass> MakeMergeAdjacentPass();
/// Recomputes every scale power / magnitude bound from the graph input —
/// the post-pipeline soundness anchor CheckFitsKey relies on.
std::unique_ptr<Pass> MakeVerifyBoundsPass();
/// Chooses a packed slot layout per merged round from the propagated
/// magnitude bounds and `spec` (key bits, guard bits, lane cap), and
/// annotates the round's crypto-boundary tensors. Rounds whose bounds
/// leave fewer than 2 lanes stay scalar (per-round fallback). Requires
/// merge-adjacent and verify-bounds. `stats` may be null.
std::unique_ptr<Pass> MakeAnalyzePackingLegalityPass(PackingSpec spec,
                                                     PlanCompileStats* stats);
/// Builds a weight-value-dedup PackedAffineKernel for every linear node
/// whose tensors carry a slot layout (one scalar-mul per (row, distinct
/// weight value)). `stats` may be null.
std::unique_ptr<Pass> MakeLowerToPackedKernelsPass(PlanCompileStats* stats);
/// Wraps IlpAllocator: solves Eq. 4-8 over the merged rounds and writes
/// server/thread annotations onto the nodes and `*result`. Requires
/// merge-adjacent to have run. `result` must outlive the pipeline.
std::unique_ptr<Pass> MakePlacementPass(PlacementSpec spec,
                                        PlanPlacement* result);

}  // namespace planner
}  // namespace ppstream
