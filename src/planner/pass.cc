#include "planner/pass.h"

#include <chrono>

#include "obs/metrics.h"
#include "util/logging.h"

namespace ppstream {
namespace planner {

PassManager& PassManager::Add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
  return *this;
}

Status PassManager::Run(StageGraph* graph, PassObserver* observer) const {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* runs = registry.GetCounter("planner.pass.runs");

  if (verify_each_) {
    Status st = graph->Verify();
    if (!st.ok()) {
      return Status::Internal(internal::StrCat(
          "IR invalid before the pipeline: ", st.message()));
    }
  }
  if (observer != nullptr) observer->AfterPass("initial", *graph);

  for (const auto& pass : passes_) {
    const std::string pass_name = pass->name();
    const auto start = std::chrono::steady_clock::now();
    Status st = pass->Run(graph);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    registry.GetHistogram(
                internal::StrCat("planner.pass.", pass_name, ".seconds"))
        ->Record(seconds);
    runs->Increment();
    if (!st.ok()) {
      return Status(st.code(), internal::StrCat("pass ", pass_name, ": ",
                                                st.message()));
    }
    if (verify_each_) {
      st = graph->Verify();
      if (!st.ok()) {
        return Status::Internal(internal::StrCat(
            "pass ", pass_name, " left the IR invalid: ", st.message()));
      }
    }
    if (observer != nullptr) observer->AfterPass(pass_name, *graph);
  }

  registry.GetGauge("planner.ir.nodes")
      ->Set(static_cast<double>(graph->NumLiveNodes()));
  registry.GetGauge("planner.ir.tensors")
      ->Set(static_cast<double>(graph->NumLiveTensors()));
  return Status::OK();
}

}  // namespace planner
}  // namespace ppstream
