#include "planner/allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace ppstream {

double AllocationObjective(const std::vector<double>& times,
                           const std::vector<int>& threads) {
  PPS_CHECK_EQ(times.size(), threads.size());
  double sum = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    for (size_t j = i + 1; j < times.size(); ++j) {
      sum += std::abs(times[i] / threads[i] - times[j] / threads[j]);
    }
  }
  // The paper's Eq. (4) sums over ordered pairs; constant factor 2.
  return 2 * sum;
}

double MaxPairwiseDiffObjective(const std::vector<double>& times,
                                const std::vector<int>& threads) {
  PPS_CHECK_EQ(times.size(), threads.size());
  double worst = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    for (size_t j = i + 1; j < times.size(); ++j) {
      worst = std::max(worst,
                       std::abs(times[i] / threads[i] -
                                times[j] / threads[j]));
    }
  }
  return worst;
}

namespace {
double Evaluate(const AllocationProblem& p, const std::vector<int>& threads) {
  return p.objective == AllocationProblem::Objective::kMinMaxDiff
             ? MaxPairwiseDiffObjective(p.layer_times, threads)
             : AllocationObjective(p.layer_times, threads);
}
}  // namespace

namespace {

Status Validate(const AllocationProblem& p) {
  if (p.layer_times.empty()) {
    return Status::InvalidArgument("no layers to allocate");
  }
  if (p.layer_times.size() != p.layer_class.size()) {
    return Status::InvalidArgument("layer vectors size mismatch");
  }
  if (p.server_cores.size() != p.server_class.size()) {
    return Status::InvalidArgument("server vectors size mismatch");
  }
  for (double t : p.layer_times) {
    if (t <= 0) return Status::InvalidArgument("layer times must be > 0");
  }
  for (int c : p.layer_class) {
    if (c != 1 && c != -1) {
      return Status::InvalidArgument("layer class must be +1 or -1");
    }
  }
  for (int c : p.server_class) {
    if (c != 1 && c != -1) {
      return Status::InvalidArgument("server class must be +1 or -1");
    }
  }
  for (int cls : {+1, -1}) {
    size_t layers = 0;
    int capacity = 0;
    size_t servers = 0;
    for (size_t i = 0; i < p.layer_class.size(); ++i) {
      layers += p.layer_class[i] == cls;
    }
    for (size_t j = 0; j < p.server_class.size(); ++j) {
      if (p.server_class[j] == cls) {
        ++servers;
        capacity += p.server_cores[j] * (p.hyper_threading ? 2 : 1);
      }
    }
    if (layers > 0 && static_cast<size_t>(capacity) < layers) {
      return Status::Infeasible(internal::StrCat(
          "class ", cls, " has ", layers, " layers but only ", capacity,
          " thread slots across ", servers, " servers"));
    }
  }
  return Status::OK();
}

int ServerCap(const AllocationProblem& p, size_t j) {
  return p.server_cores[j] * (p.hyper_threading ? 2 : 1);
}

/// Longest-processing-time placement onto same-class servers.
Result<std::vector<int>> PlaceGreedy(const AllocationProblem& p) {
  const size_t n = p.layer_times.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return p.layer_times[a] > p.layer_times[b];
  });
  std::vector<double> load(p.server_cores.size(), 0);
  std::vector<int> used(p.server_cores.size(), 0);
  std::vector<int> placement(n, -1);
  for (size_t idx : order) {
    int best = -1;
    for (size_t j = 0; j < p.server_cores.size(); ++j) {
      if (p.server_class[j] != p.layer_class[idx]) continue;
      if (used[j] >= ServerCap(p, j)) continue;
      // Prefer the least-loaded feasible server, normalized by capacity.
      if (best < 0 || load[j] / ServerCap(p, j) <
                          load[best] / ServerCap(p, best)) {
        best = static_cast<int>(j);
      }
    }
    if (best < 0) {
      return Status::Infeasible(
          internal::StrCat("no server can host layer ", idx));
    }
    placement[idx] = best;
    load[best] += p.layer_times[idx];
    used[best] += 1;
  }
  return placement;
}

/// Greedy thread allocation for a fixed placement: start at 1 each, then
/// repeatedly give a thread to the layer with the largest per-thread time
/// whose server has spare slots.
std::vector<int> ThreadsGreedy(const AllocationProblem& p,
                               const std::vector<int>& placement) {
  const size_t n = p.layer_times.size();
  std::vector<int> threads(n, 1);
  std::vector<int> used(p.server_cores.size(), 0);
  for (size_t i = 0; i < n; ++i) used[placement[i]] += 1;
  for (;;) {
    int candidate = -1;
    double worst_rate = -1;
    for (size_t i = 0; i < n; ++i) {
      if (used[placement[i]] >= ServerCap(p, placement[i])) continue;
      const double rate = p.layer_times[i] / threads[i];
      if (rate > worst_rate) {
        worst_rate = rate;
        candidate = static_cast<int>(i);
      }
    }
    if (candidate < 0) break;
    threads[candidate] += 1;
    used[placement[candidate]] += 1;
  }
  // Local search: move a thread between two layers on the same server if
  // it improves Eq. (4).
  bool improved = true;
  int guard = 0;
  while (improved && guard++ < 1000) {
    improved = false;
    double best_obj = Evaluate(p, threads);
    for (size_t a = 0; a < n && !improved; ++a) {
      if (threads[a] <= 1) continue;
      for (size_t b = 0; b < n && !improved; ++b) {
        if (a == b || placement[a] != placement[b]) continue;
        threads[a] -= 1;
        threads[b] += 1;
        const double obj = Evaluate(p, threads);
        if (obj + 1e-12 < best_obj) {
          improved = true;
        } else {
          threads[a] += 1;
          threads[b] -= 1;
        }
      }
    }
  }
  return threads;
}

/// Exact thread search for a fixed placement (branch-and-bound).
struct ThreadSearch {
  const AllocationProblem& p;
  const std::vector<int>& placement;
  std::vector<size_t> order;        // layers by decreasing T
  std::vector<int> remaining;       // free slots per server
  std::vector<int> pending;         // unassigned layers per server
  std::vector<int> current;         // y under construction
  std::vector<double> fixed_rates;  // rates of already-fixed layers
  std::vector<int> best;
  double best_obj = std::numeric_limits<double>::infinity();
  int64_t nodes = 0;
  int64_t node_limit;
  bool aborted = false;

  ThreadSearch(const AllocationProblem& problem,
               const std::vector<int>& place, int64_t limit)
      : p(problem), placement(place), node_limit(limit) {
    const size_t n = p.layer_times.size();
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return p.layer_times[a] > p.layer_times[b];
    });
    remaining.assign(p.server_cores.size(), 0);
    pending.assign(p.server_cores.size(), 0);
    for (size_t j = 0; j < p.server_cores.size(); ++j) {
      remaining[j] = ServerCap(p, j);
    }
    for (size_t i = 0; i < n; ++i) pending[placement[i]] += 1;
    current.assign(n, 0);
  }

  /// Objective restricted to the already-fixed rates — admissible lower
  /// bound for both objectives (adding layers never removes a pair).
  double FixedPairsBound() const {
    if (p.objective == AllocationProblem::Objective::kMinMaxDiff) {
      double worst = 0;
      for (size_t i = 0; i < fixed_rates.size(); ++i) {
        for (size_t j = i + 1; j < fixed_rates.size(); ++j) {
          worst = std::max(worst, std::abs(fixed_rates[i] - fixed_rates[j]));
        }
      }
      return worst;
    }
    double sum = 0;
    for (size_t i = 0; i < fixed_rates.size(); ++i) {
      for (size_t j = i + 1; j < fixed_rates.size(); ++j) {
        sum += std::abs(fixed_rates[i] - fixed_rates[j]);
      }
    }
    return 2 * sum;
  }

  void Dfs(size_t depth) {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (depth == order.size()) {
      const double obj = Evaluate(p, current);
      if (obj < best_obj) {
        best_obj = obj;
        best = current;
      }
      return;
    }
    if (FixedPairsBound() >= best_obj) return;

    const size_t layer = order[depth];
    const int server = placement[layer];
    // Must leave one slot per still-unassigned layer on this server.
    const int max_threads = remaining[server] - (pending[server] - 1);
    if (max_threads < 1) return;

    // Try thread counts ordered by closeness to the current fixed-rate
    // mean (good solutions first tightens pruning).
    double target_rate = 0;
    if (!fixed_rates.empty()) {
      for (double r : fixed_rates) target_rate += r;
      target_rate /= static_cast<double>(fixed_rates.size());
    }
    std::vector<int> candidates(static_cast<size_t>(max_threads));
    std::iota(candidates.begin(), candidates.end(), 1);
    if (target_rate > 0) {
      std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        return std::abs(p.layer_times[layer] / a - target_rate) <
               std::abs(p.layer_times[layer] / b - target_rate);
      });
    }
    for (int y : candidates) {
      current[layer] = y;
      remaining[server] -= y;
      pending[server] -= 1;
      fixed_rates.push_back(p.layer_times[layer] / y);
      Dfs(depth + 1);
      fixed_rates.pop_back();
      pending[server] += 1;
      remaining[server] += y;
      if (aborted) return;
    }
    current[layer] = 0;
  }
};

/// Enumerates placements of layers onto same-class servers with symmetry
/// breaking (identical empty servers are interchangeable), running the
/// thread search on each complete placement.
struct PlacementSearch {
  const AllocationProblem& p;
  int64_t node_limit;
  int64_t nodes = 0;
  bool aborted = false;
  std::vector<int> placement;
  std::vector<int> used;
  Allocation best;
  double best_obj = std::numeric_limits<double>::infinity();

  PlacementSearch(const AllocationProblem& problem, int64_t limit)
      : p(problem), node_limit(limit) {
    placement.assign(p.layer_times.size(), -1);
    used.assign(p.server_cores.size(), 0);
  }

  void Dfs(size_t layer) {
    if (aborted) return;
    if (++nodes > node_limit) {
      aborted = true;
      return;
    }
    if (layer == p.layer_times.size()) {
      ThreadSearch ts(p, placement, node_limit - nodes);
      ts.Dfs(0);
      nodes += ts.nodes;
      if (ts.aborted) aborted = true;
      if (!ts.best.empty() && ts.best_obj < best_obj) {
        best_obj = ts.best_obj;
        best.server_of_layer = placement;
        best.threads_of_layer = ts.best;
        best.objective = ts.best_obj;
      }
      return;
    }
    bool tried_empty = false;
    for (size_t j = 0; j < p.server_cores.size(); ++j) {
      if (p.server_class[j] != p.layer_class[layer]) continue;
      if (used[j] >= ServerCap(p, j)) continue;
      if (used[j] == 0) {
        // All empty same-class servers with equal cores are equivalent.
        if (tried_empty) continue;
        tried_empty = true;
      }
      placement[layer] = static_cast<int>(j);
      used[j] += 1;
      Dfs(layer + 1);
      used[j] -= 1;
      placement[layer] = -1;
      if (aborted) return;
    }
  }
};

}  // namespace

Result<Allocation> IlpAllocator::Greedy(const AllocationProblem& problem) {
  PPS_RETURN_IF_ERROR(Validate(problem));
  PPS_ASSIGN_OR_RETURN(std::vector<int> placement, PlaceGreedy(problem));
  Allocation out;
  out.server_of_layer = placement;
  out.threads_of_layer = ThreadsGreedy(problem, placement);
  out.objective = Evaluate(problem, out.threads_of_layer);
  out.exact = false;
  return out;
}

Result<Allocation> IlpAllocator::EvenSplit(const AllocationProblem& problem) {
  PPS_RETURN_IF_ERROR(Validate(problem));
  const size_t n = problem.layer_times.size();
  // Round-robin placement per class.
  std::vector<int> placement(n, -1);
  for (int cls : {+1, -1}) {
    std::vector<size_t> layers, servers;
    for (size_t i = 0; i < n; ++i) {
      if (problem.layer_class[i] == cls) layers.push_back(i);
    }
    for (size_t j = 0; j < problem.server_cores.size(); ++j) {
      if (problem.server_class[j] == cls) servers.push_back(j);
    }
    if (layers.empty()) continue;
    std::vector<int> used(problem.server_cores.size(), 0);
    size_t next = 0;
    for (size_t idx : layers) {
      // Round-robin, skipping full servers.
      for (size_t attempts = 0; attempts < servers.size(); ++attempts) {
        size_t j = servers[next % servers.size()];
        ++next;
        if (used[j] < ServerCap(problem, j)) {
          placement[idx] = static_cast<int>(j);
          used[j] += 1;
          break;
        }
      }
      if (placement[idx] < 0) {
        return Status::Infeasible("even split cannot place all layers");
      }
    }
  }
  // Even thread split per server.
  Allocation out;
  out.server_of_layer = placement;
  out.threads_of_layer.assign(n, 1);
  for (size_t j = 0; j < problem.server_cores.size(); ++j) {
    std::vector<size_t> members;
    for (size_t i = 0; i < n; ++i) {
      if (placement[i] == static_cast<int>(j)) members.push_back(i);
    }
    if (members.empty()) continue;
    const int cap = ServerCap(problem, j);
    const int base = cap / static_cast<int>(members.size());
    int extra = cap % static_cast<int>(members.size());
    for (size_t idx : members) {
      out.threads_of_layer[idx] = std::max(1, base + (extra-- > 0 ? 1 : 0));
    }
  }
  out.objective = Evaluate(problem, out.threads_of_layer);
  out.exact = false;
  return out;
}

Result<Allocation> IlpAllocator::Solve(const AllocationProblem& problem,
                                       int64_t node_limit) {
  PPS_RETURN_IF_ERROR(Validate(problem));
  // Warm start with greedy so an aborted search still returns something
  // no worse.
  PPS_ASSIGN_OR_RETURN(Allocation greedy, Greedy(problem));

  PlacementSearch search(problem, node_limit);
  search.best_obj = greedy.objective + 1e-12;
  search.Dfs(0);

  if (search.best.server_of_layer.empty()) {
    greedy.exact = false;
    return greedy;
  }
  Allocation out = search.best;
  out.exact = !search.aborted;
  if (greedy.objective < out.objective) {
    out = greedy;
    out.exact = false;
  }
  return out;
}

}  // namespace ppstream
