#include "planner/ir.h"

#include <cinttypes>
#include <cstdio>

#include "core/fixed_point.h"
#include "util/logging.h"

namespace ppstream {
namespace planner {

namespace {

/// Doubles print with %.6g so the textual dump is stable across
/// platforms at the precision the bounds analysis is meaningful to.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double NonLinearLayerBound(const Layer& layer, double in_bound) {
  switch (layer.kind()) {
    case LayerKind::kRelu:
      return in_bound;
    case LayerKind::kSigmoid:
    case LayerKind::kSoftmax:
      return 1.0;
    default:
      return in_bound;
  }
}

Result<StageGraph> StageGraph::FromModel(const Model& model, int64_t scale,
                                         double input_bound) {
  if (scale < 1) return Status::InvalidArgument("scale must be >= 1");
  if (model.NumLayers() == 0) {
    return Status::InvalidArgument("model has no layers");
  }
  StageGraph graph;
  graph.scale_ = scale;
  graph.input_bound_ = input_bound;
  graph.model_name_ = model.name();

  int64_t current = graph.AddTensor(model.input_shape());
  graph.input_tensor_ = current;
  Shape shape = model.input_shape();
  for (size_t i = 0; i < model.NumLayers(); ++i) {
    const Layer& layer = model.layer(i);
    PPS_ASSIGN_OR_RETURN(Shape next_shape, layer.OutputShape(shape));
    const int64_t next = graph.AddTensor(next_shape);
    graph.AddNode(layer.name(), layer.Clone(), current, next);
    current = next;
    shape = std::move(next_shape);
  }
  graph.output_tensor_ = current;
  return graph;
}

int64_t StageGraph::AddTensor(Shape shape) {
  IrTensor t;
  t.id = static_cast<int64_t>(tensors_.size());
  t.shape = std::move(shape);
  tensors_.push_back(std::move(t));
  return tensors_.back().id;
}

int64_t StageGraph::AddNode(std::string name, std::unique_ptr<Layer> layer,
                            int64_t input_tensor, int64_t output_tensor) {
  IrNode n;
  n.id = static_cast<int64_t>(nodes_.size());
  n.name = std::move(name);
  n.layers.push_back(std::move(layer));
  n.input = input_tensor;
  n.output = output_tensor;
  tensor(input_tensor).uses.push_back(n.id);
  tensor(output_tensor).def = n.id;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int64_t StageGraph::NumLiveNodes() const {
  int64_t n = 0;
  for (const IrNode& node : nodes_) n += node.live ? 1 : 0;
  return n;
}

int64_t StageGraph::NumLiveTensors() const {
  int64_t n = 0;
  for (const IrTensor& t : tensors_) n += t.live ? 1 : 0;
  return n;
}

Result<std::vector<int64_t>> StageGraph::ChainOrder() const {
  std::vector<int64_t> order;
  int64_t current = input_tensor_;
  while (current != output_tensor_) {
    const IrTensor& t = tensor(current);
    int64_t next_node = -1;
    for (int64_t use : t.uses) {
      if (!node(use).live) continue;
      if (next_node != -1) {
        return Status::Internal(internal::StrCat(
            "tensor %", current, " has multiple live uses; not a chain"));
      }
      next_node = use;
    }
    if (next_node == -1) {
      return Status::Internal(internal::StrCat(
          "tensor %", current, " has no live use but is not the output"));
    }
    order.push_back(next_node);
    if (order.size() > nodes_.size()) {
      return Status::Internal("cycle in stage graph");
    }
    current = node(next_node).output;
  }
  return order;
}

Status StageGraph::Verify() const {
  auto tensor_ok = [&](int64_t id) {
    return id >= 0 && id < static_cast<int64_t>(tensors_.size()) &&
           tensor(id).live;
  };
  if (!tensor_ok(input_tensor_)) {
    return Status::Internal("graph input tensor is missing or dead");
  }
  if (!tensor_ok(output_tensor_)) {
    return Status::Internal("graph output tensor is missing or dead");
  }

  for (const IrNode& n : nodes_) {
    if (!n.live) continue;
    if (!tensor_ok(n.input) || !tensor_ok(n.output)) {
      return Status::Internal(internal::StrCat(
          "node n", n.id, " (", n.name, ") references a dead tensor"));
    }
    const IrTensor& in = tensor(n.input);
    const IrTensor& out = tensor(n.output);
    bool uses_me = false;
    for (int64_t use : in.uses) uses_me |= use == n.id;
    if (!uses_me) {
      return Status::Internal(internal::StrCat(
          "node n", n.id, " missing from the use list of tensor %", n.input));
    }
    if (out.def != n.id) {
      return Status::Internal(internal::StrCat(
          "tensor %", n.output, " def is n", out.def, ", expected n", n.id));
    }
    if (n.layers.empty()) {
      return Status::Internal(
          internal::StrCat("node n", n.id, " has no float layers"));
    }
    // Replaying the node's float layer sequence must transport the input
    // tensor's shape to the output tensor's shape (holds for fused nodes
    // too — intermediate shapes are internal to the walk).
    Shape shape = in.shape;
    for (const auto& layer : n.layers) {
      PPS_ASSIGN_OR_RETURN(shape, layer->OutputShape(shape));
    }
    if (shape != out.shape) {
      return Status::Internal(internal::StrCat(
          "node n", n.id, " (", n.name, ") layer walk yields ",
          shape.ToString(), " but output tensor %", n.output, " is ",
          out.shape.ToString()));
    }
    if (classified_ && n.op_class == OpClass::kMixed) {
      return Status::Internal(internal::StrCat(
          "mixed node n", n.id, " (", n.name,
          ") survived the decompose pass"));
    }
    if (n.affine.has_value()) {
      const IntegerAffineLayer& a = *n.affine;
      if (a.input_shape().NumElements() != in.shape.NumElements() ||
          a.output_shape().NumElements() != out.shape.NumElements()) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " affine shape disagrees with its tensors"));
      }
      if (in.scale_power > 0 && in.scale_power != a.input_scale_power()) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " input tensor carries F^", in.scale_power,
            " but the affine expects F^", a.input_scale_power()));
      }
      if (out.scale_power > 0 && out.scale_power != a.output_scale_power()) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " output tensor carries F^", out.scale_power,
            " but the affine emits F^", a.output_scale_power()));
      }
    }
    if (merged_ && n.round < 0) {
      return Status::Internal(internal::StrCat(
          "node n", n.id, " has no round after merge-adjacent"));
    }
    if (n.packed_kernel.has_value()) {
      if (!n.affine.has_value()) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " has a packed kernel but no affine form"));
      }
      if (!in.packed.has_value() || !out.packed.has_value() ||
          *in.packed != n.packed_kernel->layout() ||
          *out.packed != n.packed_kernel->layout()) {
        return Status::Internal(internal::StrCat(
            "node n", n.id,
            " packed kernel layout disagrees with its tensors"));
      }
      if (n.packed_kernel->rows().size() != n.affine->rows().size()) {
        return Status::Internal(internal::StrCat(
            "node n", n.id, " packed kernel row count disagrees with affine"));
      }
    }
  }

  for (const IrTensor& t : tensors_) {
    if (!t.live) continue;
    if (t.def != -1) {
      if (t.def < 0 || t.def >= static_cast<int64_t>(nodes_.size()) ||
          !node(t.def).live || node(t.def).output != t.id) {
        return Status::Internal(internal::StrCat(
            "tensor %", t.id, " has a dangling def n", t.def));
      }
    } else if (t.id != input_tensor_ && !t.uses.empty()) {
      // An undefined tensor may survive as a *fully* orphaned value
      // awaiting DeadTensorElim, but never with live consumers.
      for (int64_t use : t.uses) {
        if (node(use).live) {
          return Status::Internal(internal::StrCat(
              "live node n", use, " consumes undefined tensor %", t.id));
        }
      }
    }
    for (int64_t use : t.uses) {
      if (use < 0 || use >= static_cast<int64_t>(nodes_.size())) {
        return Status::Internal(
            internal::StrCat("tensor %", t.id, " lists an invalid use"));
      }
      if (node(use).live && node(use).input != t.id) {
        return Status::Internal(internal::StrCat(
            "tensor %", t.id, " lists n", use, " which reads %",
            node(use).input));
      }
    }
  }

  // The live subgraph must be one chain covering every live node, with
  // rounds non-decreasing along it once merge-adjacent has run.
  PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, ChainOrder());
  if (static_cast<int64_t>(order.size()) != NumLiveNodes()) {
    return Status::Internal(internal::StrCat(
        "chain covers ", order.size(), " nodes but ", NumLiveNodes(),
        " are live"));
  }
  if (merged_) {
    int prev_round = 0;
    for (int64_t id : order) {
      if (node(id).round < prev_round) {
        return Status::Internal(internal::StrCat(
            "round order violation at n", id, " (", node(id).name, ")"));
      }
      prev_round = node(id).round;
    }
  }
  return Status::OK();
}

std::string StageGraph::ToString() const {
  std::string out = internal::StrCat("graph ", model_name_, " scale=", scale_,
                                     " input_bound=",
                                     FormatDouble(input_bound_), "\n");
  auto append_tensor = [&](const IrTensor& t) {
    out += internal::StrCat("  %", t.id, ": ", t.shape.ToString());
    if (t.scale_power > 0) {
      out += internal::StrCat(" power=", t.scale_power);
    }
    if (t.real_bound > 0) {
      out += internal::StrCat(" |x|<=", FormatDouble(t.real_bound));
    }
    if (!t.magnitude_bound.IsZero()) {
      out += internal::StrCat(" bound_bits=", t.magnitude_bound.BitLength());
    }
    if (t.packed.has_value()) {
      out += internal::StrCat(" packed{lanes=", t.packed->lanes,
                              " slot_bits=", t.packed->slot_bits,
                              " guard=", t.packed->guard_bits, "}");
    }
    out += "\n";
  };

  append_tensor(tensor(input_tensor_));
  auto order = ChainOrder();
  if (!order.ok()) {
    out += internal::StrCat("  <broken chain: ", order.status().message(),
                            ">\n");
    return out;
  }
  for (int64_t id : *order) {
    const IrNode& n = node(id);
    out += internal::StrCat("  n", n.id, ": ", n.name, " (%", n.input,
                            ") -> %", n.output);
    if (classified_) {
      out += internal::StrCat(" class=", OpClassName(n.op_class));
    }
    if (n.round >= 0) {
      out += internal::StrCat(" round=", n.round);
      if (n.final_segment) out += " final";
    }
    if (n.affine.has_value()) {
      out += internal::StrCat(" affine{rows=", n.affine->rows().size(),
                              " terms=", n.affine->TotalTerms(),
                              " muls=", n.affine->EncryptedScalarMuls(),
                              " wpow=", n.affine->weight_scale_power(), "}");
    }
    if (n.packed_kernel.has_value()) {
      out += internal::StrCat(" packed{lanes=",
                              n.packed_kernel->layout().lanes,
                              " group_muls=",
                              n.packed_kernel->GroupScalarMuls(), "}");
    }
    if (n.server >= 0) {
      out += internal::StrCat(" server=", n.server, " threads=", n.threads);
    }
    out += "\n";
    append_tensor(tensor(n.output));
  }
  // Orphans last so the main listing stays in dataflow order.
  for (const IrTensor& t : tensors_) {
    if (!t.live || t.def != -1 || t.id == input_tensor_) continue;
    bool has_live_use = false;
    for (int64_t use : t.uses) has_live_use |= node(use).live;
    if (has_live_use) continue;
    out += internal::StrCat("  %", t.id, ": ", t.shape.ToString(),
                            " (orphan)\n");
  }
  out += internal::StrCat("  return %", output_tensor_, "\n");
  return out;
}

Status PropagateBounds(StageGraph* graph) {
  if (!graph->classified()) {
    return Status::FailedPrecondition(
        "bound propagation needs op classes; run the classify pass first");
  }
  const int64_t scale = graph->scale();
  PPS_ASSIGN_OR_RETURN(std::vector<int64_t> order, graph->ChainOrder());

  IrTensor& input = graph->tensor(graph->input());
  input.scale_power = 1;
  input.real_bound = graph->input_bound();
  input.magnitude_bound = BigInt(QuantizeValue(input.real_bound, scale) + 1);

  for (int64_t id : order) {
    IrNode& n = graph->node(id);
    const IrTensor& in = graph->tensor(n.input);
    IrTensor& out = graph->tensor(n.output);
    if (n.op_class == OpClass::kLinear) {
      if (!n.affine.has_value()) {
        return Status::FailedPrecondition(internal::StrCat(
            "linear node n", n.id, " (", n.name,
            ") is not lowered; run lower-to-integer first"));
      }
      out.scale_power = n.affine->output_scale_power();
      out.magnitude_bound =
          n.affine->OutputMagnitudeBound(in.magnitude_bound);
      out.real_bound = out.magnitude_bound.ToDouble() /
                       ScalePower(scale, out.scale_power).ToDouble();
    } else {
      // Data-provider side: decrypt, dequantize, apply the activations in
      // double precision, re-quantize at F^1.
      double bound = in.real_bound;
      for (const auto& layer : n.layers) {
        bound = NonLinearLayerBound(*layer, bound);
      }
      out.scale_power = 1;
      out.real_bound = bound;
      out.magnitude_bound = BigInt(QuantizeValue(bound, scale) + 1);
    }
  }
  return Status::OK();
}

}  // namespace planner
}  // namespace ppstream
