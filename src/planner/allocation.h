// Load-balanced resource allocation (paper Section IV-C, Eq. 4-8).
//
// Given per-primitive-layer execution times T_i (from offline profiling),
// assign each layer to a server (x_{i,j}) and give it y_i threads so that
// per-thread times T_i / y_i are balanced:
//
//   min  sum_{i,i'} | T_i/y_i - T_{i'}/y_{i'} |                      (4)
//   s.t. each layer on exactly one server                            (5)
//        a server hosts only linear or only non-linear layers        (6)
//        y_i >= 1                                                    (7)
//        threads per server <= 2 * cores (hyper-threading)           (8)
//
// Solved exactly by branch-and-bound: an outer search over server
// assignments (with symmetry breaking across identical servers) and an
// inner search over thread counts, pruned by the admissible bound that
// pairwise terms among already-fixed layers never decrease. Falls back to
// a greedy + local-search heuristic when the node budget is exhausted.

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ppstream {

/// +1 for a linear primitive layer (model provider), -1 for non-linear
/// (data provider) — the I_i indicator of the paper.
struct AllocationProblem {
  std::vector<double> layer_times;   // T_i, seconds
  std::vector<int> layer_class;     // I_i in {+1, -1}
  std::vector<int> server_cores;    // c_j
  std::vector<int> server_class;    // which side each server belongs to
  bool hyper_threading = true;       // cap = 2*c_j if true else c_j

  /// Eq. (4) minimizes the sum of pairwise |T_i/y_i - T_j/y_j|; the paper
  /// notes that "other objective functions (e.g., minimizing the maximum
  /// difference of execution times of a pair of primitive layers) are
  /// also applicable" — kMinMaxDiff implements that alternative.
  enum class Objective { kSumPairwiseDiff, kMinMaxDiff };
  Objective objective = Objective::kSumPairwiseDiff;
};

struct Allocation {
  std::vector<int> server_of_layer;   // x: index into servers
  std::vector<int> threads_of_layer;  // y
  double objective = 0;               // Eq. (4) value
  bool exact = false;                 // true if branch-and-bound completed
};

/// Eq. (4) for a given thread vector.
double AllocationObjective(const std::vector<double>& times,
                           const std::vector<int>& threads);

/// The alternative objective: max_{i,j} |T_i/y_i - T_j/y_j|.
double MaxPairwiseDiffObjective(const std::vector<double>& times,
                                const std::vector<int>& threads);

class IlpAllocator {
 public:
  /// Branch-and-bound; exact when the search completes within
  /// `node_limit` nodes, otherwise returns the best solution found
  /// (seeded by the greedy heuristic, so never worse than it).
  static Result<Allocation> Solve(const AllocationProblem& problem,
                                  int64_t node_limit = 2'000'000);

  /// The Exp#3 baseline: spread threads evenly over layers (each server's
  /// capacity divided evenly among the layers placed on it, placement by
  /// round-robin).
  static Result<Allocation> EvenSplit(const AllocationProblem& problem);

  /// Greedy warm start: longest-processing-time placement, then repeatedly
  /// give a thread to the layer with the largest per-thread time.
  static Result<Allocation> Greedy(const AllocationProblem& problem);
};

}  // namespace ppstream
