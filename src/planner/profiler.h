// Offline profiling (paper Section IV-C): measure each primitive layer's
// execution time T_i by running probe inputs through the protocol, then
// build the ILP instance for the allocator.

#pragma once

#include <string>
#include <vector>

#include "core/protocol.h"
#include "planner/allocation.h"
#include "util/status.h"

namespace ppstream {

/// Measured cost profile of a compiled plan's pipeline stages
/// (2R+1 stages: dp-encrypt, then alternating mp-linear / dp-nonlinear).
///
/// Per-probe timings feed an obs::Histogram per stage; T_i (stage_seconds)
/// is the median rather than the mean, so a single cold-start or
/// scheduler-noise outlier among the probes cannot inflate the ILP input.
/// The tail quantiles and mean are exported alongside for diagnostics.
struct PlanProfile {
  std::vector<std::string> stage_names;
  std::vector<double> stage_seconds;       // T_i: per-probe p50
  std::vector<double> stage_p95_seconds;
  std::vector<double> stage_p99_seconds;
  std::vector<double> stage_mean_seconds;
  std::vector<int> stage_class;            // +1 model provider, -1 data
  std::vector<uint64_t> stage_bytes_out;   // serialized output per request
};

/// Times each stage over the probe inputs (the paper uses 100 random
/// training samples; any non-empty set works) and averages. Profiling a
/// remote party through a transport stub measures wire latency too — use
/// in-process providers to profile pure compute.
Result<PlanProfile> ProfilePlan(ModelProviderApi& mp, DataProviderApi& dp,
                                const std::vector<DoubleTensor>& probes);

/// Builds the Eq. 4-8 instance from a profile and a homogeneous testbed:
/// `model_servers` / `data_servers` machines with `cores_per_server`
/// physical cores each (Table III's server split).
AllocationProblem BuildAllocationProblem(const PlanProfile& profile,
                                         int model_servers, int data_servers,
                                         int cores_per_server,
                                         bool hyper_threading = true);

/// Converts a solved allocation back into the engine's per-stage thread
/// vector (clamped to at least 1 thread per stage).
std::vector<size_t> StageThreadsFromAllocation(const Allocation& allocation);

}  // namespace ppstream
