// EzPC-style secure two-party inference baseline (Table VII comparator).
//
// EzPC [24] compiles models to a mix of additive secret sharing (linear
// layers) and Yao garbled circuits (comparisons/ReLU), paying a protocol
// transition at every boundary. This runner reproduces that structure:
//   * linear layers: Beaver-triple multiplications on Z_{2^64} shares with
//     fixed-point truncation;
//   * ReLU: per-element share->GC->share conversion through the circuit of
//     mpc/circuit.h;
//   * the final SoftMax runs in the clear at the data provider (as in the
//     paper's protocol, the data provider owns the result).
// Unlike PP-Stream there is no pipelining: each layer requires multiple
// rounds of interaction before the next can start — exactly the reason the
// paper's Table VII shows EzPC behind PP-Stream.

#pragma once

#include <memory>
#include <vector>

#include "core/affine.h"
#include "mpc/share.h"
#include "nn/model.h"
#include "util/status.h"

namespace ppstream {

struct EzPcConfig {
  uint64_t seed = 1;
  int frac_bits = kMpcFracBits;
};

class EzPcRunner {
 public:
  /// Lowers a trained float model. MaxPool is rewritten (conv + ReLU) and
  /// mixed layers are decomposed first; supported non-linear layers are
  /// ReLU anywhere and SoftMax as the final layer.
  static Result<EzPcRunner> Create(const Model& model,
                                   const EzPcConfig& config = {});

  /// Secure inference on one input. `metrics` (optional) accumulates the
  /// communication/transition costs of the run.
  Result<DoubleTensor> Infer(const DoubleTensor& input,
                             MpcMetrics* metrics = nullptr);

  /// Number of ReLU elements per inference (GC cost driver).
  int64_t TotalReluElements() const;

 private:
  struct Step {
    enum class Kind { kLinear, kRelu, kSoftmax };
    Kind kind;
    /// Valid for kLinear: affine op at fixed-point scale 2^frac_bits.
    std::shared_ptr<const IntegerAffineLayer> op;
    int64_t elements = 0;  // for kRelu
  };

  EzPcRunner(std::vector<Step> steps, Shape input_shape, Shape output_shape,
             const EzPcConfig& config);

  std::vector<Step> steps_;
  Shape input_shape_, output_shape_;
  EzPcConfig config_;
  Rng share_rng_;
  TripleDealer dealer_;
  SecureRng gc_rng_;
};

}  // namespace ppstream
