#include "mpc/share.h"

#include <cmath>

namespace ppstream {

Ring64 EncodeFixed(double v, int frac_bits) {
  const double scaled = v * static_cast<double>(int64_t{1} << frac_bits);
  return static_cast<Ring64>(static_cast<int64_t>(std::llround(scaled)));
}

double DecodeFixed(Ring64 v, int frac_bits) {
  return static_cast<double>(static_cast<int64_t>(v)) /
         static_cast<double>(int64_t{1} << frac_bits);
}

SharedValue MakeShares(Ring64 secret, Rng& rng) {
  SharedValue out;
  out.s0 = rng.NextU64();
  out.s1 = secret - out.s0;
  return out;
}

BeaverTriple TripleDealer::Next() {
  BeaverTriple t;
  const Ring64 a = rng_.NextU64();
  const Ring64 b = rng_.NextU64();
  const Ring64 c = a * b;
  t.a = MakeShares(a, rng_);
  t.b = MakeShares(b, rng_);
  t.c = MakeShares(c, rng_);
  return t;
}

SharedValue MulShares(const SharedValue& x, const SharedValue& y,
                      const BeaverTriple& triple, MpcMetrics* metrics) {
  // Open d = x - a and e = y - b: each party sends its share of both.
  const Ring64 d = SubShares(x, triple.a).Reconstruct();
  const Ring64 e = SubShares(y, triple.b).Reconstruct();
  if (metrics != nullptr) {
    metrics->bytes_sent += 4 * sizeof(Ring64);  // two elements each way
    metrics->triples_used += 1;
    // Rounds are counted by the caller: all openings of one layer batch
    // into a single round, as real 2PC implementations do.
  }
  // z = c + d*b + e*a + d*e (the constant d*e goes to party 0).
  SharedValue z = triple.c;
  z = AddShares(z, ScaleShares(triple.b, d));
  z = AddShares(z, ScaleShares(triple.a, e));
  z = AddConst(z, d * e);
  return z;
}

SharedValue TruncateShares(const SharedValue& x, int frac_bits) {
  // SecureML local truncation: party 0 shifts its share, party 1 shifts
  // the negated share and negates back. Arithmetic shift on signed views.
  SharedValue out;
  out.s0 = static_cast<Ring64>(static_cast<int64_t>(x.s0) >> frac_bits);
  out.s1 = static_cast<Ring64>(
      -(static_cast<int64_t>(-x.s1) >> frac_bits));
  return out;
}

}  // namespace ppstream
