// Yao garbled-circuit execution with point-and-permute.
//
// Classic 4-row garbling (no free-XOR/half-gates; documented simplicity
// over speed — the baseline is *supposed* to be slower than PP-Stream, as
// in the paper). The gate cipher is SHA-256(label_a || label_b || gate_id)
// truncated to 128 bits and XORed with the output label; the point-and-
// permute select bit (LSB of each label) picks the table row, so
// evaluation needs exactly one hash per gate.
//
// Oblivious transfer of the evaluator's input labels is simulated by a
// direct hand-over and *counted* in the metrics (a real deployment runs
// IKNP OT extension; its cost is bandwidth-comparable).

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/secure_rng.h"
#include "mpc/circuit.h"
#include "mpc/share.h"
#include "util/status.h"

namespace ppstream {

struct WireLabel {
  std::array<uint8_t, 16> bytes{};

  bool SelectBit() const { return bytes[0] & 1; }
  bool operator==(const WireLabel& o) const { return bytes == o.bytes; }
};

/// The garbler's output: tables plus the label material.
struct GarbledCircuit {
  /// One 4-row table per XOR/AND gate, indexed in gate order (NOT and
  /// const gates are table-free).
  std::vector<std::array<WireLabel, 4>> tables;
  /// labels[w][v] = label of wire w carrying bit v (garbler-private; the
  /// runner selects from it when handing inputs to the evaluator).
  std::vector<std::array<WireLabel, 2>> labels;
  /// Select bit of each output wire's 0-label (public decode info).
  std::vector<bool> output_decode;

  /// Bytes a real deployment would ship (tables + output map).
  uint64_t WireBytes() const {
    return tables.size() * 4 * sizeof(WireLabel) + output_decode.size();
  }
};

/// Garbles `circuit` with fresh labels from `rng`.
GarbledCircuit Garble(const Circuit& circuit, SecureRng& rng);

/// Evaluates with one active label per input wire; returns output labels.
Result<std::vector<WireLabel>> EvaluateGarbled(
    const Circuit& circuit, const GarbledCircuit& garbled,
    const std::vector<WireLabel>& garbler_input_labels,
    const std::vector<WireLabel>& evaluator_input_labels);

/// Full two-party run: garble, transfer labels ("OT" for evaluator bits),
/// evaluate, decode. Updates `metrics` with the bytes/OTs a deployment
/// would spend.
Result<std::vector<bool>> RunGarbledCircuit(
    const Circuit& circuit, const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits, SecureRng& rng,
    MpcMetrics* metrics);

}  // namespace ppstream
