// Additive secret sharing over Z_{2^64} with Beaver-triple multiplication —
// the arithmetic half of the EzPC-style 2PC baseline (Table VII).
//
// Values are fixed-point: v is encoded as round(v * 2^frac_bits) in two's
// complement on the 64-bit ring. A secret x is split as x = x0 + x1
// (mod 2^64); party 0 (the model provider) holds x0, party 1 (the data
// provider) holds x1. Multiplication consumes one Beaver triple and opens
// two masked ring elements per operand pair; after each multiplication the
// shares are truncated locally (SecureML-style, off-by-one error with
// negligible probability for our value ranges).
//
// Both parties run in one process here; the metrics struct counts the
// bytes and rounds a real deployment would spend, which is what the
// Table VII comparison needs.

#pragma once

#include <cstdint>

#include "util/rng.h"
#include "util/status.h"

namespace ppstream {

using Ring64 = uint64_t;

/// Default fixed-point precision of the MPC baseline.
inline constexpr int kMpcFracBits = 16;

/// round(v * 2^frac_bits) on the two's-complement ring.
Ring64 EncodeFixed(double v, int frac_bits = kMpcFracBits);
/// Inverse of EncodeFixed (interprets the ring element as signed).
double DecodeFixed(Ring64 v, int frac_bits = kMpcFracBits);

/// Both shares of one secret (the simulation holds both sides).
struct SharedValue {
  Ring64 s0 = 0;
  Ring64 s1 = 0;

  Ring64 Reconstruct() const { return s0 + s1; }
};

/// Communication/round accounting for the baseline protocols.
struct MpcMetrics {
  uint64_t bytes_sent = 0;
  uint64_t rounds = 0;
  uint64_t triples_used = 0;
  uint64_t gc_gates_garbled = 0;
  uint64_t gc_bytes = 0;
  uint64_t ot_transfers = 0;
  /// Share<->garbled-circuit conversions (EzPC's protocol transitions).
  uint64_t protocol_transitions = 0;
};

/// Splits a secret into uniformly random shares.
SharedValue MakeShares(Ring64 secret, Rng& rng);

/// A multiplication triple a*b = c, secret-shared.
struct BeaverTriple {
  SharedValue a, b, c;
};

/// Trusted dealer for triples (standing in for an OT-based offline phase;
/// EzPC likewise assumes a preprocessing phase).
class TripleDealer {
 public:
  explicit TripleDealer(uint64_t seed) : rng_(seed) {}
  BeaverTriple Next();

 private:
  Rng rng_;
};

// ---- Linear operations are local on additive shares.

inline SharedValue AddShares(const SharedValue& x, const SharedValue& y) {
  return {x.s0 + y.s0, x.s1 + y.s1};
}
inline SharedValue SubShares(const SharedValue& x, const SharedValue& y) {
  return {x.s0 - y.s0, x.s1 - y.s1};
}
/// Public constant times a shared value.
inline SharedValue ScaleShares(const SharedValue& x, Ring64 c) {
  return {x.s0 * c, x.s1 * c};
}
/// Public constant added to a shared value (party 0 absorbs it).
inline SharedValue AddConst(const SharedValue& x, Ring64 c) {
  return {x.s0 + c, x.s1};
}

/// Beaver multiplication: opens d = x - a and e = y - b (four ring
/// elements on the wire; openings of a whole layer batch into one round,
/// counted by the caller), then z = c + d*b + e*a + d*e.
SharedValue MulShares(const SharedValue& x, const SharedValue& y,
                      const BeaverTriple& triple, MpcMetrics* metrics);

/// Local truncation by `frac_bits` (arithmetic shift of the signed value,
/// applied to the shares à la SecureML).
SharedValue TruncateShares(const SharedValue& x,
                           int frac_bits = kMpcFracBits);

}  // namespace ppstream
