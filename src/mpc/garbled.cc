#include "mpc/garbled.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"
#include "util/logging.h"

namespace ppstream {

namespace {

/// H(a, b, gate_id) truncated to a label.
WireLabel GateHash(const WireLabel& a, const WireLabel& b,
                   uint64_t gate_id) {
  uint8_t buf[16 + 16 + 8];
  std::memcpy(buf, a.bytes.data(), 16);
  std::memcpy(buf + 16, b.bytes.data(), 16);
  std::memcpy(buf + 32, &gate_id, 8);
  const Sha256::Digest digest = Sha256::Hash(buf, sizeof(buf));
  WireLabel out;
  std::memcpy(out.bytes.data(), digest.data(), 16);
  return out;
}

WireLabel XorLabels(const WireLabel& a, const WireLabel& b) {
  WireLabel out;
  for (size_t i = 0; i < out.bytes.size(); ++i) {
    out.bytes[i] = a.bytes[i] ^ b.bytes[i];
  }
  return out;
}

WireLabel RandomLabel(SecureRng& rng) {
  WireLabel out;
  rng.Fill(out.bytes.data(), out.bytes.size());
  return out;
}

bool GateTruth(Gate::Kind kind, bool va, bool vb) {
  switch (kind) {
    case Gate::Kind::kXor:
      return va != vb;
    case Gate::Kind::kAnd:
      return va && vb;
    default:
      PPS_CHECK(false) << "tabled gate expected";
      return false;
  }
}

}  // namespace

GarbledCircuit Garble(const Circuit& circuit, SecureRng& rng) {
  GarbledCircuit out;
  out.labels.resize(static_cast<size_t>(circuit.num_wires));

  auto fresh_pair = [&rng](std::array<WireLabel, 2>* pair) {
    (*pair)[0] = RandomLabel(rng);
    (*pair)[1] = RandomLabel(rng);
    // Point-and-permute: the two labels must carry opposite select bits.
    if ((*pair)[0].SelectBit() == (*pair)[1].SelectBit()) {
      (*pair)[1].bytes[0] ^= 1;
    }
  };

  for (int w : circuit.garbler_inputs) fresh_pair(&out.labels[w]);
  for (int w : circuit.evaluator_inputs) fresh_pair(&out.labels[w]);

  uint64_t gate_id = 0;
  for (const Gate& gate : circuit.gates) {
    switch (gate.kind) {
      case Gate::Kind::kNot:
        // Free: swap the meaning of the input labels.
        out.labels[gate.out][0] = out.labels[gate.a][1];
        out.labels[gate.out][1] = out.labels[gate.a][0];
        break;
      case Gate::Kind::kConstOne:
        fresh_pair(&out.labels[gate.out]);
        break;
      case Gate::Kind::kXor:
      case Gate::Kind::kAnd: {
        fresh_pair(&out.labels[gate.out]);
        std::array<WireLabel, 4> table;
        for (int va = 0; va < 2; ++va) {
          for (int vb = 0; vb < 2; ++vb) {
            const WireLabel& la = out.labels[gate.a][va];
            const WireLabel& lb = out.labels[gate.b][vb];
            const bool vo = GateTruth(gate.kind, va != 0, vb != 0);
            const int row = (la.SelectBit() << 1) | lb.SelectBit();
            table[row] = XorLabels(GateHash(la, lb, gate_id),
                                   out.labels[gate.out][vo ? 1 : 0]);
          }
        }
        out.tables.push_back(table);
        break;
      }
    }
    ++gate_id;
  }

  out.output_decode.reserve(circuit.outputs.size());
  for (int w : circuit.outputs) {
    out.output_decode.push_back(out.labels[w][0].SelectBit());
  }
  return out;
}

Result<std::vector<WireLabel>> EvaluateGarbled(
    const Circuit& circuit, const GarbledCircuit& garbled,
    const std::vector<WireLabel>& garbler_input_labels,
    const std::vector<WireLabel>& evaluator_input_labels) {
  if (garbler_input_labels.size() != circuit.garbler_inputs.size() ||
      evaluator_input_labels.size() != circuit.evaluator_inputs.size()) {
    return Status::InvalidArgument("garbled input label count mismatch");
  }
  std::vector<WireLabel> active(static_cast<size_t>(circuit.num_wires));
  for (size_t i = 0; i < garbler_input_labels.size(); ++i) {
    active[circuit.garbler_inputs[i]] = garbler_input_labels[i];
  }
  for (size_t i = 0; i < evaluator_input_labels.size(); ++i) {
    active[circuit.evaluator_inputs[i]] = evaluator_input_labels[i];
  }

  uint64_t gate_id = 0;
  size_t table_index = 0;
  for (const Gate& gate : circuit.gates) {
    switch (gate.kind) {
      case Gate::Kind::kNot:
        active[gate.out] = active[gate.a];  // label pair is pre-swapped
        break;
      case Gate::Kind::kConstOne:
        // The garbler ships the active (value-1) label with the inputs;
        // by convention it rides in labels[...] via garbler handover. The
        // runner places it in `active` up front — see RunGarbledCircuit.
        if (std::all_of(active[gate.out].bytes.begin(),
                        active[gate.out].bytes.end(),
                        [](uint8_t b) { return b == 0; })) {
          return Status::ProtocolError("missing constant wire label");
        }
        break;
      case Gate::Kind::kXor:
      case Gate::Kind::kAnd: {
        if (table_index >= garbled.tables.size()) {
          return Status::ProtocolError("garbled table underrun");
        }
        const WireLabel& la = active[gate.a];
        const WireLabel& lb = active[gate.b];
        const int row = (la.SelectBit() << 1) | lb.SelectBit();
        active[gate.out] = XorLabels(GateHash(la, lb, gate_id),
                                     garbled.tables[table_index][row]);
        ++table_index;
        break;
      }
    }
    ++gate_id;
  }

  std::vector<WireLabel> out;
  out.reserve(circuit.outputs.size());
  for (int w : circuit.outputs) out.push_back(active[w]);
  return out;
}

Result<std::vector<bool>> RunGarbledCircuit(
    const Circuit& circuit, const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits, SecureRng& rng,
    MpcMetrics* metrics) {
  if (garbler_bits.size() != circuit.garbler_inputs.size() ||
      evaluator_bits.size() != circuit.evaluator_inputs.size()) {
    return Status::InvalidArgument("circuit input size mismatch");
  }
  GarbledCircuit garbled = Garble(circuit, rng);

  std::vector<WireLabel> g_labels(garbler_bits.size());
  for (size_t i = 0; i < garbler_bits.size(); ++i) {
    g_labels[i] =
        garbled.labels[circuit.garbler_inputs[i]][garbler_bits[i] ? 1 : 0];
  }
  // Simulated OT: the evaluator obtains exactly the label matching its
  // private bit, nothing else.
  std::vector<WireLabel> e_labels(evaluator_bits.size());
  for (size_t i = 0; i < evaluator_bits.size(); ++i) {
    e_labels[i] =
        garbled
            .labels[circuit.evaluator_inputs[i]][evaluator_bits[i] ? 1 : 0];
  }

  // Constant wires: the garbler ships their active labels too. We patch
  // them into the evaluator's view by extending the garbler label list —
  // EvaluateGarbled reads them from `active`, so pre-populate via a local
  // copy of the circuit input mechanism: easiest is to pass them through
  // a dedicated vector. Rebuild active inside EvaluateGarbled by treating
  // const wires as garbler-provided: append below.
  Circuit with_consts = circuit;
  std::vector<WireLabel> g_all = g_labels;
  for (const Gate& gate : circuit.gates) {
    if (gate.kind == Gate::Kind::kConstOne) {
      with_consts.garbler_inputs.push_back(gate.out);
      g_all.push_back(garbled.labels[gate.out][1]);
    }
  }

  PPS_ASSIGN_OR_RETURN(
      std::vector<WireLabel> out_labels,
      EvaluateGarbled(with_consts, garbled, g_all, e_labels));

  if (metrics != nullptr) {
    metrics->gc_gates_garbled += garbled.tables.size();
    metrics->gc_bytes += garbled.WireBytes() +
                         (g_all.size() + e_labels.size()) * sizeof(WireLabel);
    metrics->ot_transfers += e_labels.size();
    // Rounds are counted per layer by the caller (all elements of a ReLU
    // layer garble and transfer together).
    metrics->bytes_sent += garbled.WireBytes();
  }

  std::vector<bool> bits;
  bits.reserve(out_labels.size());
  for (size_t i = 0; i < out_labels.size(); ++i) {
    bits.push_back(out_labels[i].SelectBit() != garbled.output_decode[i]);
  }
  return bits;
}

}  // namespace ppstream
