#include "mpc/circuit.h"

#include "util/logging.h"

namespace ppstream {

std::vector<int> Circuit::AddWires(int n) {
  std::vector<int> wires(static_cast<size_t>(n));
  for (auto& w : wires) w = AddWire();
  return wires;
}

int Circuit::Xor(int a, int b) {
  const int out = AddWire();
  gates.push_back({Gate::Kind::kXor, a, b, out});
  return out;
}

int Circuit::And(int a, int b) {
  const int out = AddWire();
  gates.push_back({Gate::Kind::kAnd, a, b, out});
  return out;
}

int Circuit::Not(int a) {
  const int out = AddWire();
  gates.push_back({Gate::Kind::kNot, a, -1, out});
  return out;
}

int Circuit::ConstOne() {
  const int out = AddWire();
  gates.push_back({Gate::Kind::kConstOne, -1, -1, out});
  return out;
}

int64_t Circuit::AndCount() const {
  int64_t count = 0;
  for (const Gate& g : gates) count += g.kind == Gate::Kind::kAnd;
  return count;
}

std::vector<int> BuildAdder(Circuit* c, const std::vector<int>& a,
                            const std::vector<int>& b, bool carry_in) {
  PPS_CHECK_EQ(a.size(), b.size());
  std::vector<int> sum(a.size());
  int carry = carry_in ? c->ConstOne() : -1;
  for (size_t i = 0; i < a.size(); ++i) {
    const int axb = c->Xor(a[i], b[i]);
    if (carry < 0) {
      // Half adder for the first bit without carry-in.
      sum[i] = axb;
      carry = c->And(a[i], b[i]);
    } else {
      sum[i] = c->Xor(axb, carry);
      // carry' = (a & b) XOR (carry & (a ^ b)) — the two terms are
      // mutually exclusive, so XOR realizes OR.
      const int t1 = c->And(a[i], b[i]);
      const int t2 = c->And(carry, axb);
      carry = c->Xor(t1, t2);
    }
  }
  return sum;
}

std::vector<int> BuildSubtractor(Circuit* c, const std::vector<int>& a,
                                 const std::vector<int>& b) {
  std::vector<int> not_b(b.size());
  for (size_t i = 0; i < b.size(); ++i) not_b[i] = c->Not(b[i]);
  return BuildAdder(c, a, not_b, /*carry_in=*/true);
}

Circuit BuildReluShareCircuit(int bits) {
  PPS_CHECK_GT(bits, 1);
  Circuit c;
  std::vector<int> x0 = c.AddWires(bits);
  std::vector<int> r = c.AddWires(bits);
  std::vector<int> x1 = c.AddWires(bits);
  c.garbler_inputs = x0;
  c.garbler_inputs.insert(c.garbler_inputs.end(), r.begin(), r.end());
  c.evaluator_inputs = x1;

  std::vector<int> sum = BuildAdder(&c, x0, x1, /*carry_in=*/false);
  const int not_sign = c.Not(sum[static_cast<size_t>(bits) - 1]);
  std::vector<int> relu(sum.size());
  for (size_t i = 0; i < sum.size(); ++i) {
    relu[i] = c.And(sum[i], not_sign);
  }
  c.outputs = BuildSubtractor(&c, relu, r);
  return c;
}

Result<std::vector<bool>> EvaluateCircuitPlain(
    const Circuit& circuit, const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits) {
  if (garbler_bits.size() != circuit.garbler_inputs.size() ||
      evaluator_bits.size() != circuit.evaluator_inputs.size()) {
    return Status::InvalidArgument("circuit input size mismatch");
  }
  std::vector<bool> wires(static_cast<size_t>(circuit.num_wires), false);
  for (size_t i = 0; i < garbler_bits.size(); ++i) {
    wires[circuit.garbler_inputs[i]] = garbler_bits[i];
  }
  for (size_t i = 0; i < evaluator_bits.size(); ++i) {
    wires[circuit.evaluator_inputs[i]] = evaluator_bits[i];
  }
  for (const Gate& g : circuit.gates) {
    switch (g.kind) {
      case Gate::Kind::kXor:
        wires[g.out] = wires[g.a] != wires[g.b];
        break;
      case Gate::Kind::kAnd:
        wires[g.out] = wires[g.a] && wires[g.b];
        break;
      case Gate::Kind::kNot:
        wires[g.out] = !wires[g.a];
        break;
      case Gate::Kind::kConstOne:
        wires[g.out] = true;
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(circuit.outputs.size());
  for (int w : circuit.outputs) out.push_back(wires[w]);
  return out;
}

std::vector<bool> ToBits(uint64_t v, int bits) {
  std::vector<bool> out(static_cast<size_t>(bits));
  for (int i = 0; i < bits; ++i) out[i] = (v >> i) & 1;
  return out;
}

uint64_t FromBits(const std::vector<bool>& bits) {
  uint64_t out = 0;
  for (size_t i = 0; i < bits.size() && i < 64; ++i) {
    if (bits[i]) out |= uint64_t{1} << i;
  }
  return out;
}

}  // namespace ppstream
