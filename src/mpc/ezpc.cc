#include "mpc/ezpc.h"

#include "core/plan.h"
#include "mpc/garbled.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace ppstream {

EzPcRunner::EzPcRunner(std::vector<Step> steps, Shape input_shape,
                       Shape output_shape, const EzPcConfig& config)
    : steps_(std::move(steps)),
      input_shape_(std::move(input_shape)),
      output_shape_(std::move(output_shape)),
      config_(config),
      share_rng_(config.seed),
      dealer_(config.seed ^ 0xBEA7E12ULL),
      gc_rng_(SecureRng::FromSeed(config.seed ^ 0x6C6ABE11ULL)) {}

Result<EzPcRunner> EzPcRunner::Create(const Model& model,
                                      const EzPcConfig& config) {
  if (config.frac_bits < 1 || config.frac_bits > 30) {
    return Status::InvalidArgument("frac_bits must be in [1, 30]");
  }
  PPS_ASSIGN_OR_RETURN(Model prepared, PrepareModel(model));
  const int64_t scale = int64_t{1} << config.frac_bits;

  std::vector<Step> steps;
  Shape shape = prepared.input_shape();
  for (size_t i = 0; i < prepared.NumLayers(); ++i) {
    const Layer& layer = prepared.layer(i);
    switch (layer.op_class()) {
      case OpClass::kLinear: {
        PPS_ASSIGN_OR_RETURN(
            IntegerAffineLayer op,
            IntegerAffineLayer::FromLayer(layer, shape, scale, 1));
        Step step;
        step.kind = Step::Kind::kLinear;
        step.op = std::make_shared<IntegerAffineLayer>(std::move(op));
        steps.push_back(std::move(step));
        break;
      }
      case OpClass::kNonLinear: {
        if (layer.kind() == LayerKind::kRelu) {
          Step step;
          step.kind = Step::Kind::kRelu;
          step.elements = shape.NumElements();
          steps.push_back(std::move(step));
        } else if (layer.kind() == LayerKind::kSoftmax) {
          if (i + 1 != prepared.NumLayers()) {
            return Status::Unimplemented(
                "EzPC baseline supports SoftMax only as the final layer");
          }
          Step step;
          step.kind = Step::Kind::kSoftmax;
          steps.push_back(std::move(step));
        } else {
          return Status::Unimplemented(internal::StrCat(
              "EzPC baseline does not implement non-linear layer ",
              layer.name()));
        }
        break;
      }
      case OpClass::kMixed:
        return Status::Internal("mixed layer survived PrepareModel");
    }
    PPS_ASSIGN_OR_RETURN(shape, layer.OutputShape(shape));
  }
  PPS_ASSIGN_OR_RETURN(Shape out_shape, prepared.OutputShape());
  return EzPcRunner(std::move(steps), prepared.input_shape(),
                    std::move(out_shape), config);
}

int64_t EzPcRunner::TotalReluElements() const {
  int64_t total = 0;
  for (const Step& step : steps_) {
    if (step.kind == Step::Kind::kRelu) total += step.elements;
  }
  return total;
}

Result<DoubleTensor> EzPcRunner::Infer(const DoubleTensor& input,
                                       MpcMetrics* metrics) {
  if (input.shape() != input_shape_) {
    return Status::InvalidArgument("EzPC input shape mismatch");
  }
  const int frac = config_.frac_bits;

  // The data provider shares its input (one round of share distribution).
  std::vector<SharedValue> state(static_cast<size_t>(input.NumElements()));
  for (int64_t i = 0; i < input.NumElements(); ++i) {
    state[static_cast<size_t>(i)] =
        MakeShares(EncodeFixed(input[i], frac), share_rng_);
  }
  if (metrics != nullptr) {
    metrics->bytes_sent += state.size() * sizeof(Ring64);
    metrics->rounds += 1;
  }

  // Pre-built ReLU circuit, reused for every element.
  const Circuit relu_circuit = BuildReluShareCircuit(64);

  for (const Step& step : steps_) {
    switch (step.kind) {
      case Step::Kind::kLinear: {
        const IntegerAffineLayer& op = *step.op;
        if (state.size() !=
            static_cast<size_t>(op.input_shape().NumElements())) {
          return Status::Internal("EzPC state size mismatch");
        }
        std::vector<SharedValue> next(op.rows().size());
        for (size_t j = 0; j < op.rows().size(); ++j) {
          const AffineRow& row = op.rows()[j];
          SharedValue acc{0, 0};
          for (const AffineTerm& term : row.terms) {
            // The weight is the model provider's PRIVATE input: share it
            // trivially and Beaver-multiply.
            const SharedValue w{static_cast<Ring64>(term.weight), 0};
            acc = AddShares(acc, MulShares(w, state[term.input_index],
                                           dealer_.Next(), metrics));
          }
          auto bias64 = row.bias.ToInt64();
          if (!bias64.ok()) {
            return Status::OutOfRange(
                "EzPC bias exceeds the 64-bit ring; lower frac_bits");
          }
          acc = AddConst(acc, static_cast<Ring64>(bias64.value()));
          next[j] = op.weight_scale_power() == 1
                        ? TruncateShares(acc, frac)
                        : acc;
        }
        state = std::move(next);
        // One batched opening round for the whole layer.
        if (metrics != nullptr) metrics->rounds += 1;
        break;
      }
      case Step::Kind::kRelu: {
        // A2Y + Y2A transitions; the layer's circuits ship in one round
        // each way (label transfer, masked-output return).
        if (metrics != nullptr) {
          metrics->protocol_transitions += 2;
          metrics->rounds += 2;
        }
        for (SharedValue& v : state) {
          const Ring64 r = share_rng_.NextU64();
          std::vector<bool> g_bits = ToBits(v.s0, 64);
          std::vector<bool> r_bits = ToBits(r, 64);
          g_bits.insert(g_bits.end(), r_bits.begin(), r_bits.end());
          PPS_ASSIGN_OR_RETURN(
              std::vector<bool> out_bits,
              RunGarbledCircuit(relu_circuit, g_bits, ToBits(v.s1, 64),
                                gc_rng_, metrics));
          v = SharedValue{r, FromBits(out_bits)};
        }
        break;
      }
      case Step::Kind::kSoftmax: {
        // Final step: reconstruct toward the data provider and finish in
        // the clear (the result belongs to it).
        if (metrics != nullptr) {
          metrics->bytes_sent += state.size() * sizeof(Ring64);
          metrics->rounds += 1;
        }
        DoubleTensor logits{output_shape_};
        for (size_t i = 0; i < state.size(); ++i) {
          logits[static_cast<int64_t>(i)] =
              DecodeFixed(state[i].Reconstruct(), frac);
        }
        return Softmax(logits);
      }
    }
  }
  return Status::Internal("EzPC model had no final SoftMax step");
}

}  // namespace ppstream
