// Boolean circuits for the garbled-circuit half of the EzPC baseline.
//
// EzPC evaluates non-linear functions (ReLU) in Yao garbled circuits,
// switching from additive shares and back each time — the protocol
// transitions whose cost Table VII attributes its slowdown to. The
// share->GC->share conversion works as in ABY: the parties feed their
// additive shares x0, x1 into a circuit that computes
//      out = ReLU(x0 + x1) - r   (mod 2^64)
// where r is a fresh random mask chosen by the garbler. The evaluator
// learns `out` (its new share); the garbler's new share is r.

#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ppstream {

struct Gate {
  enum class Kind : uint8_t { kXor, kAnd, kNot, kConstOne };
  Kind kind;
  int a = -1;  // input wire (unused for kConstOne)
  int b = -1;  // second input (kXor / kAnd only)
  int out = -1;
};

/// A boolean circuit with two input owners.
struct Circuit {
  int num_wires = 0;
  std::vector<int> garbler_inputs;
  std::vector<int> evaluator_inputs;
  std::vector<int> outputs;
  std::vector<Gate> gates;

  int AddWire() { return num_wires++; }
  std::vector<int> AddWires(int n);

  int Xor(int a, int b);
  int And(int a, int b);
  int Not(int a);
  int ConstOne();

  /// Number of AND gates (the garbling-cost driver).
  int64_t AndCount() const;
};

/// Ripple-carry addition of two little-endian wire vectors (equal width);
/// the final carry is dropped (mod-2^width arithmetic).
std::vector<int> BuildAdder(Circuit* c, const std::vector<int>& a,
                            const std::vector<int>& b, bool carry_in);

/// a - b (mod 2^width) via a + ~b + 1.
std::vector<int> BuildSubtractor(Circuit* c, const std::vector<int>& a,
                                 const std::vector<int>& b);

/// The baseline's ReLU conversion circuit over `bits`-wide two's-complement
/// ring values. Garbler inputs: x0 bits then mask r bits; evaluator
/// inputs: x1 bits; outputs: ReLU(x0 + x1) - r.
Circuit BuildReluShareCircuit(int bits = 64);

/// Reference plaintext evaluation (tests and documentation).
Result<std::vector<bool>> EvaluateCircuitPlain(
    const Circuit& circuit, const std::vector<bool>& garbler_bits,
    const std::vector<bool>& evaluator_bits);

/// Little-endian bit (de)composition of ring elements.
std::vector<bool> ToBits(uint64_t v, int bits = 64);
uint64_t FromBits(const std::vector<bool>& bits);

}  // namespace ppstream
