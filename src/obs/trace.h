// Request-scoped tracing (DESIGN.md §9 "Observability").
//
// A trace is one inference request; a span is one timed operation inside
// it (a stage execution, a crypto batch, a network round trip). The
// active span is tracked per thread, so nested ScopedSpans parent
// automatically; crossing the wire, the (trace id, span id) pair rides a
// reserved field of the PPS wire header and the server side resumes the
// trace with an explicit parent — client and server spans stitch into a
// single trace viewable in chrome://tracing.
//
// Cost discipline: the tracer is disabled by default. A ScopedSpan on a
// disabled tracer (or outside any active trace) is one relaxed atomic
// load plus a thread-local read — no allocation, no lock — which keeps
// instrumented-but-idle hot paths within the repo's ≤2% overhead budget
// (bench_transport).

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.h"

namespace ppstream {
namespace obs {

/// Monotonic seconds (steady_clock). The same epoch as the stream
/// engine's StreamClockSeconds, so spans recorded from engine timestamps
/// and RAII spans line up on one timeline.
double MonotonicSeconds();

/// The ambient trace position of the current thread. trace_id == 0 means
/// "not tracing"; span_id is the would-be parent of a new child span.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool active() const { return trace_id != 0; }
};

/// The current thread's context (installed by ScopedSpan /
/// ScopedTraceContext; inactive by default).
TraceContext CurrentTraceContext();

/// One finished span. start/duration are MonotonicSeconds-based;
/// thread_ordinal is a small per-process thread number for trace
/// rendering.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;
  std::string category;
  uint64_t request_id = 0;
  double start_seconds = 0;
  double duration_seconds = 0;
  uint32_t thread_ordinal = 0;
};

/// Process-wide span collector and id source.
class Tracer {
 public:
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch. Off (default): ScopedSpans are no-ops and Record()
  /// drops. Flipping it on mid-process is safe.
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fresh nonzero ids, unique within the process and salted per process
  /// so two parties' locally-rooted traces do not collide when merged.
  uint64_t NewTraceId();
  uint64_t NewSpanId();

  /// Appends a finished span (bounded buffer; drops beyond capacity and
  /// counts the drops). No-op while disabled.
  void Record(SpanRecord span);

  std::vector<SpanRecord> Snapshot() const;
  void Clear();
  uint64_t dropped() const;
  /// Caps the span buffer (default 1<<16 spans).
  void SetCapacity(size_t capacity);

  /// Chrome trace-event JSON ({"traceEvents":[...]} with "X" complete
  /// events, microsecond timestamps) — load in chrome://tracing or
  /// Perfetto. Events carry trace/span/parent ids in args, so merged
  /// multi-process dumps remain stitchable.
  void WriteChromeJson(std::ostream& out) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  // Immutable after construction: read lock-free by every NewTraceId.
  const uint64_t id_salt_;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_ PPS_GUARDED_BY(mutex_);
  size_t capacity_ PPS_GUARDED_BY(mutex_) = size_t{1} << 16;
  uint64_t dropped_ PPS_GUARDED_BY(mutex_) = 0;
};

/// Installs `ctx` as the current thread's context, restoring the
/// previous one on destruction. Stages use this to adopt the trace of
/// the message they picked off a channel.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span. Active only when the global tracer (or the flight
/// recorder, which captures spans into its ring) is enabled AND the
/// parent context is active; otherwise every operation is a no-op. While
/// active it installs itself as the thread's current context so nested
/// spans parent to it. `name_suffix` is appended to `name` (lets hot
/// call sites pass "net." + method without allocating when idle).
class ScopedSpan {
 public:
  /// Child of the current thread's context.
  explicit ScopedSpan(std::string_view name, std::string_view category = "",
                      uint64_t request_id = 0,
                      std::string_view name_suffix = {});
  /// Child of an explicit (typically wire-carried) parent context.
  ScopedSpan(TraceContext parent, std::string_view name,
             std::string_view category = "", uint64_t request_id = 0,
             std::string_view name_suffix = {});

  /// Root-or-child: starts a new trace when no context is active on this
  /// thread, otherwise nests under it. The per-inference entry point.
  static ScopedSpan Root(std::string_view name, std::string_view category = "",
                         uint64_t request_id = 0);

  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  /// This span's position, for stamping onto outgoing wire frames.
  TraceContext context() const;

 private:
  ScopedSpan(TraceContext parent, bool force_new_trace, std::string_view name,
             std::string_view category, uint64_t request_id,
             std::string_view name_suffix);

  bool active_ = false;
  SpanRecord record_;
  TraceContext saved_;
};

}  // namespace obs
}  // namespace ppstream
