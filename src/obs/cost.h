// Per-request crypto cost attribution (DESIGN.md §14): snapshots of the
// process-wide crypto counters taken around one request, reconciled
// against the plan-derived budget — the runtime generalization of the
// bench-time measured==expected checks (PR 8).
//
// Attribution model. The crypto counters are process-global, so a delta
// across a request is only attributable to that request when no other
// mutator of the same counters ran concurrently. CostInterval therefore
// tracks, per priced component (encrypts / scalar muls), a global
// mutator count + overlap epoch: a component whose window overlapped
// another mutator of that component is contended, and reconciliation
// skips it (counted under cost.contended_skips) rather than reporting a
// ratio polluted by a neighbor's work. Tracking per component keeps the
// common loopback topology fully attributable: a data-provider-side
// ledger mutates only encrypts while the in-process server's dispatch
// intervals mutate only scalar muls, so neither poisons the other even
// though their windows nest. Uncontended samples — every single-stream
// client, the saturation bench's concurrency-1 level, and any serving
// lull — reconcile exactly.
//
// Exported families (all through MetricsRegistry):
//   cost.scalar_mul_ratio   histogram of measured/expected scalar muls
//   cost.encrypt_ratio      histogram of measured/expected encrypts
//   cost.reconciled         requests whose sample reconciled
//   cost.contended_skips    samples skipped for overlap
//   cost.overrun            measured > 1.05 x expected on any component
// With a session label, the ratio histograms gain a per-session series
// (cost.scalar_mul_ratio{session="3"}) so a tenant's overruns are
// attributable from /metrics.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace ppstream {
namespace obs {

/// Point-in-time reading of the global crypto + wire counters.
struct CryptoCostSnapshot {
  uint64_t encrypts = 0;
  uint64_t decrypts = 0;
  uint64_t scalar_muls = 0;
  uint64_t pack_hom_adds = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  static CryptoCostSnapshot Capture();

  CryptoCostSnapshot operator-(const CryptoCostSnapshot& rhs) const;
};

/// Plan-derived expected cost of one request. A zero component means
/// "unknown on this side, do not reconcile it" — a data-provider view
/// plan prices encrypts but not scalar muls (the weights live with the
/// model provider); the model-provider side prices the reverse.
struct RequestCostBudget {
  uint64_t encrypts = 0;
  uint64_t scalar_muls = 0;
};

/// Bitmask of priced counter components an interval's owner mutates
/// (and may reconcile). Contention is tracked per component.
enum CostComponent : uint32_t {
  kCostEncrypts = 1u << 0,
  kCostScalarMuls = 1u << 1,
};
constexpr uint32_t kAllCostComponents = kCostEncrypts | kCostScalarMuls;

/// The components a budget prices (the ledger's mutation declaration:
/// in practice a party only reconciles counters its own work drives).
constexpr uint32_t CostComponentsOf(const RequestCostBudget& budget) {
  return (budget.encrypts != 0 ? kCostEncrypts : 0u) |
         (budget.scalar_muls != 0 ? kCostScalarMuls : 0u);
}

/// Measures the global counter delta across a scope and detects, per
/// component, whether any other mutator of that component overlapped it
/// (making that component's delta unattributable).
class CostInterval {
 public:
  /// `mutates_mask` declares which priced components this scope's work
  /// drives (CostComponent bits).
  explicit CostInterval(uint32_t mutates_mask = kAllCostComponents);
  ~CostInterval();

  CostInterval(const CostInterval&) = delete;
  CostInterval& operator=(const CostInterval&) = delete;

  /// Freezes the delta and leaves the in-flight sets. Idempotent.
  void End();

  /// Counter delta since construction (frozen after End()).
  CryptoCostSnapshot Delta() const;

  /// Components that overlapped a foreign mutator (CostComponent bits).
  uint32_t contended_mask() const;

  /// True when any declared component was contended.
  bool contended() const { return contended_mask() != 0; }

 private:
  const uint32_t mask_;
  CryptoCostSnapshot begin_;
  uint64_t epochs_[2] = {0, 0};
  mutable std::atomic<uint32_t> contended_{0};
  bool ended_ = false;
  CryptoCostSnapshot frozen_delta_;
};

/// RAII reconciliation of one request against its budget. Construct at
/// request start, Finish(success) at the end (the destructor finishes
/// with success=false, which records nothing). `session_label` (may be
/// empty) adds a per-session series to the ratio histograms.
class RequestCostLedger {
 public:
  explicit RequestCostLedger(uint64_t request_id,
                             RequestCostBudget budget,
                             std::string_view session_label = {});
  ~RequestCostLedger();

  RequestCostLedger(const RequestCostLedger&) = delete;
  RequestCostLedger& operator=(const RequestCostLedger&) = delete;

  /// Ends the interval; on success and an uncontended sample, records the
  /// measured/expected ratios and fires cost.overrun past the tolerance.
  /// Idempotent (later calls are no-ops).
  void Finish(bool success);

  /// Ratio tolerance: measured > expected * (1 + kOverrunTolerance) on a
  /// priced component counts as an overrun.
  static constexpr double kOverrunTolerance = 0.05;

  /// Test accessors, valid after Finish (0 for unpriced components).
  double scalar_mul_ratio() const { return scalar_mul_ratio_; }
  double encrypt_ratio() const { return encrypt_ratio_; }
  bool contended() const { return interval_.contended(); }
  const CryptoCostSnapshot& measured() const { return measured_; }

 private:
  const uint64_t request_id_;
  const RequestCostBudget budget_;
  const std::string session_label_;
  CostInterval interval_;
  bool finished_ = false;
  CryptoCostSnapshot measured_;
  double scalar_mul_ratio_ = 0;
  double encrypt_ratio_ = 0;
};

/// Reconciles an externally-measured delta (e.g. the server's per-frame
/// accumulation across one request's dispatches) against a budget,
/// recording the same families as RequestCostLedger::Finish.
/// `contended_mask` names the components whose delta is polluted
/// (CostComponent bits); those are skipped. When every priced component
/// is contended the sample counts under cost.contended_skips instead.
void ReconcileRequestCost(uint64_t request_id, const RequestCostBudget& budget,
                          const CryptoCostSnapshot& measured,
                          uint32_t contended_mask,
                          std::string_view session_label);

}  // namespace obs
}  // namespace ppstream
