// Process-wide metrics: lock-cheap counters, gauges, and log-bucketed
// latency histograms (DESIGN.md §9 "Observability").
//
// Every metric is named by a dotted path ("stage.dp-encrypt.messages",
// "crypto.encrypts", "net.bytes_sent"). Handles returned by the registry
// are stable for the life of the process — callers fetch them once (at
// construction or via a function-local static) and then update them with
// relaxed atomics, so a hot-path increment is one uncontended atomic add.
//
// Histograms use log2 buckets: bucket i covers values up to
// kHistogramMinBound * 2^i, and the last bucket is +Inf. Quantiles are
// resolved to the upper bound of the containing bucket, clamped to the
// exact tracked maximum — so Quantile() never under-reports against the
// bucketed distribution and p100 is exact. Reset() zeroes values but
// keeps every handle valid.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace ppstream {
namespace obs {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Lower bound of the histogram's log2 bucket ladder, in recorded units
/// (seconds for latency histograms): bucket 0 holds everything at or
/// below 100ns.
constexpr double kHistogramMinBound = 1e-7;

class Histogram {
 public:
  /// 40 finite buckets span [1e-7, 1e-7 * 2^39 ≈ 5.5e4]; bucket 40 is
  /// the +Inf overflow bucket.
  static constexpr size_t kNumBuckets = 41;

  /// Inclusive upper bound of bucket i (+Inf for the last bucket).
  static double BucketUpperBound(size_t i);
  /// Index of the bucket that holds `v`.
  static size_t BucketIndex(double v);

  void Record(double v);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Exact maximum recorded value (0 when empty).
  double Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  uint64_t BucketCount(size_t i) const;

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th sample, clamped to Max(). 0 when empty.
  double Quantile(double q) const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
};

/// Point-in-time histogram snapshot (used by exporters and metrics()
/// deltas).
struct HistogramSnapshot {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  uint64_t count = 0;
  double sum = 0;
  double max = 0;
};

HistogramSnapshot SnapshotHistogram(const Histogram& h);

/// Named metric families. Get* registers on first use and returns a
/// pointer that stays valid (and keeps its identity) for the registry's
/// lifetime; concurrent Get* of the same name return the same handle.
///
/// A name may carry a Prometheus-style label suffix —
/// `serving.requests{session="3"}` — in which case each distinct label
/// set is its own series under one family. Always build labeled names
/// through LabeledMetricName so label values are escaped; the exposition
/// passes the label block through verbatim and CheckPrometheusText
/// rejects unescaped quotes/backslashes.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all instrumented subsystems.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Sorted name/value lists, optionally filtered to names starting with
  /// `prefix`.
  std::vector<std::pair<std::string, uint64_t>> CounterValues(
      std::string_view prefix = "") const;
  std::vector<std::pair<std::string, double>> GaugeValues(
      std::string_view prefix = "") const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms(
      std::string_view prefix = "") const;

  /// Zeroes every metric without invalidating handles.
  void Reset();

  /// Prometheus text exposition (metric names sanitized to
  /// [a-zA-Z0-9_:] and prefixed "pps_"; histograms expose cumulative
  /// _bucket{le=...}, _sum, and _count series).
  std::string PrometheusText() const;

 private:
  mutable std::mutex mutex_;
  // The maps (not the pointed-to metrics, which are internally atomic)
  // are what the mutex protects: handles stay lock-free after lookup.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      PPS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      PPS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      PPS_GUARDED_BY(mutex_);
};

/// "stage.dp-encrypt.attempt_seconds" -> "pps_stage_dp_encrypt_attempt_seconds".
/// A `{...}` label suffix (built by LabeledMetricName) is preserved
/// verbatim; only the base name is sanitized.
std::string PrometheusMetricName(std::string_view name);

/// Escapes a label value for the Prometheus text exposition: `\` -> `\\`,
/// `"` -> `\"`, newline -> `\n`. Everything else passes through.
std::string PrometheusLabelEscape(std::string_view value);

/// Builds a registry name carrying a label set:
///   LabeledMetricName("serving.requests", {{"session", "3"}})
///     -> serving.requests{session="3"}
/// Label keys are sanitized like metric names; values are escaped via
/// PrometheusLabelEscape. With an empty list, returns `base` unchanged.
std::string LabeledMetricName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Structural check of a Prometheus text exposition: every non-comment
/// line must be `name{labels} value` with a sane name and a numeric
/// value, label blocks must be well-formed `key="value"` lists whose
/// values contain no unescaped `"` / `\` (raw newlines terminate the
/// line and surface as an unterminated label set), and every series must
/// be preceded by a # TYPE line. Backs the bench driver's export linter
/// and the admin endpoint's live scrape.
Status CheckPrometheusText(std::string_view text);

/// The single exposition path shared by the benches' metrics.prom dumps
/// and the admin endpoint's live /metrics: renders `registry` and
/// structurally validates the result before handing it out, so a file
/// dump and a live scrape can never disagree on format.
Result<std::string> CheckedPrometheusText(
    const MetricsRegistry& registry = MetricsRegistry::Global());

}  // namespace obs
}  // namespace ppstream
