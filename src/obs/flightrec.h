// Failure flight recorder (DESIGN.md §14 "Observability plane").
//
// A fixed-size lock-free ring of the most recent spans, PPS_SLOG lines,
// and discrete events (reconnects, breaker opens, deadline sheds, replay
// refusals, fault injections). Disabled it costs one relaxed atomic load
// per would-be record; enabled, a record is a seqlock-protected write of
// fixed-size atomic fields — no allocation, no lock, safe from any
// thread including span destructors inside the serving hot path.
//
// On a trigger event (or on demand via the admin endpoint's
// /debug/flightrec) the ring is dumped as Chrome-trace-compatible JSON:
// spans become "X" complete events, logs and events become "i" instant
// events, so the last few thousand things the process did before a
// failure load directly into chrome://tracing / Perfetto next to any
// full trace dumps.
//
// Readers never block writers: each slot carries a version stamped
// 2*seq+1 while being written and 2*seq+2 when complete; a dump skips
// slots whose version is odd or no longer matches the sequence window it
// is iterating (torn or already overwritten) — so a scrape during a
// storm yields a consistent, possibly slightly shorter, history.
//
// Writers never block each other either: a slot is claimed by CAS on its
// version, so when two writers a full ring apart collide on one slot
// (one stalled mid-write while the ring lapped it), the loser drops its
// record (counted under dropped_records) instead of interleaving field
// writes with the holder's — a published version always stamps one
// writer's complete record.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/thread_annotations.h"

namespace ppstream {
namespace obs {

class FlightRecorder {
 public:
  /// Ring capacity (entries). ~1MiB resident for the whole recorder.
  static constexpr size_t kCapacity = 4096;
  static constexpr size_t kNameWords = 6;     // 48 bytes, NUL-padded
  static constexpr size_t kDetailWords = 14;  // 112 bytes, NUL-padded

  /// The process-wide recorder (leaked singleton, same lifetime policy
  /// as the metrics registry).
  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Master switch. Off (default): every Record* is one relaxed load.
  /// Enabling also arms span capture: ScopedSpan records into the ring
  /// even when the full Tracer is disabled.
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Where TriggerDump writes. Empty (default) disables file dumps;
  /// DumpJson() still serves the admin endpoint.
  void SetDumpPath(std::string path);
  std::string dump_path() const;

  void RecordSpan(std::string_view name, std::string_view category,
                  uint64_t trace_id, uint64_t span_id, uint64_t request_id,
                  double start_seconds, double duration_seconds,
                  uint32_t thread_ordinal);
  /// A rendered structured-log line (already secret-free by ppslint R3).
  void RecordLog(std::string_view line);
  /// A discrete named event ("net.reconnect", "breaker.open", ...).
  void RecordEvent(std::string_view kind, std::string_view detail,
                   uint64_t request_id = 0);

  /// Chrome-trace JSON of the ring's current consistent contents.
  std::string DumpJson() const;

  /// Records a "flightrec.dump" event carrying `reason`, then writes
  /// DumpJson() to the configured path. Serialized; a write failure is
  /// logged, never thrown — the serving path must survive its own
  /// observability. No-op while disabled or without a dump path.
  void TriggerDump(std::string_view reason);

  /// Completed file dumps since process start.
  uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Records dropped because their slot was still claimed by a writer a
  /// full ring behind/ahead (only possible when ~kCapacity records land
  /// during one stalled write). Bounded collateral of wait-free writers.
  uint64_t dropped_records() const {
    return drops_.load(std::memory_order_relaxed);
  }

  /// Clears the ring (handles and enablement survive). Test helper.
  void Reset();

 private:
  enum class Kind : uint8_t { kEmpty = 0, kSpan = 1, kLog = 2, kEvent = 3 };

  struct Slot {
    std::atomic<uint64_t> version{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint32_t> thread_ordinal{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> request_id{0};
    std::atomic<double> start_seconds{0};
    std::atomic<double> duration_seconds{0};
    std::array<std::atomic<uint64_t>, kNameWords> name{};
    std::array<std::atomic<uint64_t>, kDetailWords> detail{};
  };

  /// Claims the next slot by CAS, stamps it write-locked (odd version),
  /// fills common fields, and returns it; the caller finishes field
  /// writes and must call Publish. Returns nullptr (record dropped) when
  /// the slot is still held by a lapped writer.
  Slot* BeginWrite(Kind kind, uint64_t* publish_version);
  static void Publish(Slot& slot, uint64_t publish_version) {
    slot.version.store(publish_version, std::memory_order_release);
  }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_{0};
  std::atomic<uint64_t> dumps_{0};
  std::atomic<uint64_t> drops_{0};
  // Slot contents are seqlock-protected by each slot's own version word
  // (odd = write-locked), not by any mutex: BeginWrite's CAS and
  // Publish's release store bracket every field write.
  std::array<Slot, kCapacity> slots_ PPS_CAS_GUARDED_BY(version){};

  mutable std::mutex dump_mutex_;  // guards dump_path_ + file writes only
  std::string dump_path_ PPS_GUARDED_BY(dump_mutex_);
};

}  // namespace obs
}  // namespace ppstream
