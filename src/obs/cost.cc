#include "obs/cost.h"

#include <atomic>
#include <utility>

#include "obs/metrics.h"

namespace ppstream {
namespace obs {

namespace {

struct CostCounters {
  Counter* encrypts;
  Counter* decrypts;
  Counter* scalar_muls;
  Counter* pack_hom_adds;
  Counter* bytes_sent;
  Counter* bytes_received;

  static const CostCounters& Get() {
    static const CostCounters counters = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return CostCounters{r.GetCounter("crypto.encrypts"),
                          r.GetCounter("crypto.decrypts"),
                          r.GetCounter("crypto.scalar_muls"),
                          r.GetCounter("crypto.pack.hom_adds"),
                          r.GetCounter("net.bytes_sent"),
                          r.GetCounter("net.bytes_received")};
    }();
    return counters;
  }
};

struct CostMetrics {
  Histogram* scalar_mul_ratio;
  Histogram* encrypt_ratio;
  Counter* reconciled;
  Counter* contended_skips;
  Counter* overrun;

  static const CostMetrics& Get() {
    static const CostMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return CostMetrics{r.GetHistogram("cost.scalar_mul_ratio"),
                         r.GetHistogram("cost.encrypt_ratio"),
                         r.GetCounter("cost.reconciled"),
                         r.GetCounter("cost.contended_skips"),
                         r.GetCounter("cost.overrun")};
    }();
    return metrics;
  }
};

// Overlap detection, per priced component: a mutator count plus an
// epoch that bumps whenever a second mutator of the component begins
// while one is live. An interval whose component epoch moved between
// Begin and End shared that component's counter with a neighbor.
struct ComponentState {
  std::atomic<uint64_t> mutators{0};
  std::atomic<uint64_t> epoch{0};
};
ComponentState g_components[2];

constexpr uint32_t kComponentBits[2] = {kCostEncrypts, kCostScalarMuls};

}  // namespace

CryptoCostSnapshot CryptoCostSnapshot::Capture() {
  const CostCounters& c = CostCounters::Get();
  CryptoCostSnapshot snap;
  snap.encrypts = c.encrypts->Value();
  snap.decrypts = c.decrypts->Value();
  snap.scalar_muls = c.scalar_muls->Value();
  snap.pack_hom_adds = c.pack_hom_adds->Value();
  snap.bytes_sent = c.bytes_sent->Value();
  snap.bytes_received = c.bytes_received->Value();
  return snap;
}

CryptoCostSnapshot CryptoCostSnapshot::operator-(
    const CryptoCostSnapshot& rhs) const {
  CryptoCostSnapshot d;
  d.encrypts = encrypts - rhs.encrypts;
  d.decrypts = decrypts - rhs.decrypts;
  d.scalar_muls = scalar_muls - rhs.scalar_muls;
  d.pack_hom_adds = pack_hom_adds - rhs.pack_hom_adds;
  d.bytes_sent = bytes_sent - rhs.bytes_sent;
  d.bytes_received = bytes_received - rhs.bytes_received;
  return d;
}

CostInterval::CostInterval(uint32_t mutates_mask) : mask_(mutates_mask) {
  for (size_t c = 0; c < 2; ++c) {
    if ((mask_ & kComponentBits[c]) == 0) continue;
    // Baseline the epoch BEFORE joining the mutator set: a neighbor
    // whose bump landed between our join and a later baseline load would
    // be absorbed into the baseline and the overlap missed. Taken first,
    // any bump concurrent with this interval moves the epoch past the
    // baseline — conservatively flagging, never missing, an overlap
    // (the worst case is an extra cost.contended_skips, never a
    // mispriced sample).
    epochs_[c] = g_components[c].epoch.load(std::memory_order_acquire);
    const uint64_t prior =
        g_components[c].mutators.fetch_add(1, std::memory_order_acq_rel);
    if (prior > 0) {
      // A neighbor mutating the same counter is live: both it (via the
      // epoch move) and we are contended on this component.
      g_components[c].epoch.fetch_add(1, std::memory_order_acq_rel);
      contended_.fetch_or(kComponentBits[c], std::memory_order_relaxed);
    }
  }
  begin_ = CryptoCostSnapshot::Capture();
}

CostInterval::~CostInterval() { End(); }

void CostInterval::End() {
  if (ended_) return;
  frozen_delta_ = CryptoCostSnapshot::Capture() - begin_;
  (void)contended_mask();  // latch epoch moves before leaving the sets
  for (size_t c = 0; c < 2; ++c) {
    if ((mask_ & kComponentBits[c]) == 0) continue;
    g_components[c].mutators.fetch_sub(1, std::memory_order_acq_rel);
  }
  ended_ = true;
}

CryptoCostSnapshot CostInterval::Delta() const {
  if (ended_) return frozen_delta_;
  return CryptoCostSnapshot::Capture() - begin_;
}

uint32_t CostInterval::contended_mask() const {
  if (!ended_) {
    for (size_t c = 0; c < 2; ++c) {
      if ((mask_ & kComponentBits[c]) == 0) continue;
      if (g_components[c].epoch.load(std::memory_order_acquire) !=
          epochs_[c]) {
        contended_.fetch_or(kComponentBits[c], std::memory_order_relaxed);
      }
    }
  }
  return contended_.load(std::memory_order_relaxed);
}

void ReconcileRequestCost(uint64_t request_id, const RequestCostBudget& budget,
                          const CryptoCostSnapshot& measured,
                          uint32_t contended_mask,
                          std::string_view session_label) {
  (void)request_id;
  const uint32_t priced = CostComponentsOf(budget);
  if (priced == 0) return;
  const CostMetrics& m = CostMetrics::Get();
  if ((priced & ~contended_mask) == 0) {
    // Every priced component overlapped a foreign mutator; nothing in
    // this sample is attributable.
    m.contended_skips->Increment();
    return;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  bool overrun = false;
  const double tolerance = 1.0 + RequestCostLedger::kOverrunTolerance;
  if ((priced & kCostScalarMuls) != 0 &&
      (contended_mask & kCostScalarMuls) == 0) {
    const double ratio = static_cast<double>(measured.scalar_muls) /
                         static_cast<double>(budget.scalar_muls);
    m.scalar_mul_ratio->Record(ratio);
    if (!session_label.empty()) {
      registry
          .GetHistogram(LabeledMetricName("cost.scalar_mul_ratio",
                                          {{"session", session_label}}))
          ->Record(ratio);
    }
    overrun |= ratio > tolerance;
  }
  if ((priced & kCostEncrypts) != 0 &&
      (contended_mask & kCostEncrypts) == 0) {
    const double ratio = static_cast<double>(measured.encrypts) /
                         static_cast<double>(budget.encrypts);
    m.encrypt_ratio->Record(ratio);
    if (!session_label.empty()) {
      registry
          .GetHistogram(LabeledMetricName("cost.encrypt_ratio",
                                          {{"session", session_label}}))
          ->Record(ratio);
    }
    overrun |= ratio > tolerance;
  }
  m.reconciled->Increment();
  if (overrun) m.overrun->Increment();
}

RequestCostLedger::RequestCostLedger(uint64_t request_id,
                                     RequestCostBudget budget,
                                     std::string_view session_label)
    : request_id_(request_id),
      budget_(budget),
      session_label_(session_label),
      interval_(CostComponentsOf(budget)) {
  // Touch the family singletons so every instrumented process exports
  // the cost.* families (at zero) from its first exposition.
  (void)CostMetrics::Get();
}

RequestCostLedger::~RequestCostLedger() {
  if (!finished_) Finish(/*success=*/false);
}

void RequestCostLedger::Finish(bool success) {
  if (finished_) return;
  finished_ = true;
  interval_.End();
  measured_ = interval_.Delta();
  if (!success) return;  // failed requests have undefined partial cost
  if (budget_.scalar_muls != 0) {
    scalar_mul_ratio_ = static_cast<double>(measured_.scalar_muls) /
                        static_cast<double>(budget_.scalar_muls);
  }
  if (budget_.encrypts != 0) {
    encrypt_ratio_ = static_cast<double>(measured_.encrypts) /
                     static_cast<double>(budget_.encrypts);
  }
  ReconcileRequestCost(request_id_, budget_, measured_,
                       interval_.contended_mask(), session_label_);
}

}  // namespace obs
}  // namespace ppstream
