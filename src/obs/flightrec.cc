#include "obs/flightrec.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {
namespace obs {

namespace {

/// Packs a (truncated) string into NUL-padded atomic words; the final
/// byte is always NUL so readers can treat the unpacked bytes as a
/// C string regardless of torn interleavings.
template <size_t N>
void StoreString(std::array<std::atomic<uint64_t>, N>& words,
                 std::string_view s) {
  char buf[N * 8];
  std::memset(buf, 0, sizeof(buf));
  const size_t n = std::min(s.size(), sizeof(buf) - 1);
  std::memcpy(buf, s.data(), n);
  for (size_t i = 0; i < N; ++i) {
    uint64_t w = 0;
    std::memcpy(&w, buf + i * 8, 8);
    words[i].store(w, std::memory_order_relaxed);
  }
}

template <size_t N>
std::string LoadString(const std::array<std::atomic<uint64_t>, N>& words) {
  char buf[N * 8];
  for (size_t i = 0; i < N; ++i) {
    const uint64_t w = words[i].load(std::memory_order_relaxed);
    std::memcpy(buf + i * 8, &w, 8);
  }
  buf[sizeof(buf) - 1] = '\0';
  return std::string(buf);
}

void WriteJsonEscaped(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::string HexId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, id);
  return buf;
}

int FlightPid() {
#ifdef _WIN32
  return 0;
#else
  return static_cast<int>(getpid());
#endif
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  // ppslint:allow(R5 intentionally leaked singleton: spans and log lines may record during static destruction)
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::SetDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(dump_mutex_);
  return dump_path_;
}

FlightRecorder::Slot* FlightRecorder::BeginWrite(Kind kind,
                                                 uint64_t* publish_version) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  // Claim by CAS so two writers a full ring apart can never interleave
  // field writes in one slot: if the slot is still write-locked by a
  // lapped writer (odd version) or the ring already moved past this
  // sequence, drop this record rather than corrupt the holder's.
  uint64_t expected = slot.version.load(std::memory_order_relaxed);
  if (expected % 2 != 0 || expected >= 2 * seq + 1 ||
      !slot.version.compare_exchange_strong(expected, 2 * seq + 1,
                                            std::memory_order_acq_rel)) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  *publish_version = 2 * seq + 2;
  return &slot;
}

void FlightRecorder::RecordSpan(std::string_view name,
                                std::string_view category, uint64_t trace_id,
                                uint64_t span_id, uint64_t request_id,
                                double start_seconds, double duration_seconds,
                                uint32_t thread_ordinal) {
  if (!enabled()) return;
  uint64_t publish = 0;
  Slot* slot = BeginWrite(Kind::kSpan, &publish);
  if (slot == nullptr) return;
  slot->trace_id.store(trace_id, std::memory_order_relaxed);
  slot->span_id.store(span_id, std::memory_order_relaxed);
  slot->request_id.store(request_id, std::memory_order_relaxed);
  slot->start_seconds.store(start_seconds, std::memory_order_relaxed);
  slot->duration_seconds.store(duration_seconds, std::memory_order_relaxed);
  slot->thread_ordinal.store(thread_ordinal, std::memory_order_relaxed);
  StoreString(slot->name, name);
  StoreString(slot->detail, category);
  Publish(*slot, publish);
}

void FlightRecorder::RecordLog(std::string_view line) {
  if (!enabled()) return;
  uint64_t publish = 0;
  Slot* slot = BeginWrite(Kind::kLog, &publish);
  if (slot == nullptr) return;
  slot->trace_id.store(0, std::memory_order_relaxed);
  slot->span_id.store(0, std::memory_order_relaxed);
  slot->request_id.store(0, std::memory_order_relaxed);
  slot->start_seconds.store(MonotonicSeconds(), std::memory_order_relaxed);
  slot->duration_seconds.store(0, std::memory_order_relaxed);
  slot->thread_ordinal.store(0, std::memory_order_relaxed);
  StoreString(slot->name, "log");
  StoreString(slot->detail, line);
  Publish(*slot, publish);
}

void FlightRecorder::RecordEvent(std::string_view kind, std::string_view detail,
                                 uint64_t request_id) {
  if (!enabled()) return;
  uint64_t publish = 0;
  Slot* slot = BeginWrite(Kind::kEvent, &publish);
  if (slot == nullptr) return;
  slot->trace_id.store(0, std::memory_order_relaxed);
  slot->span_id.store(0, std::memory_order_relaxed);
  slot->request_id.store(request_id, std::memory_order_relaxed);
  slot->start_seconds.store(MonotonicSeconds(), std::memory_order_relaxed);
  slot->duration_seconds.store(0, std::memory_order_relaxed);
  slot->thread_ordinal.store(0, std::memory_order_relaxed);
  StoreString(slot->name, kind);
  StoreString(slot->detail, detail);
  Publish(*slot, publish);
}

std::string FlightRecorder::DumpJson() const {
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t begin = end > kCapacity ? end - kCapacity : 0;
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const int pid = FlightPid();
  bool first = true;
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq % kCapacity];
    if (slot.version.load(std::memory_order_acquire) != 2 * seq + 2) {
      continue;  // Torn mid-write or already overwritten — skip.
    }
    const Kind kind =
        static_cast<Kind>(slot.kind.load(std::memory_order_relaxed));
    const std::string name = LoadString(slot.name);
    const std::string detail = LoadString(slot.detail);
    const uint64_t trace_id = slot.trace_id.load(std::memory_order_relaxed);
    const uint64_t span_id = slot.span_id.load(std::memory_order_relaxed);
    const uint64_t request_id = slot.request_id.load(std::memory_order_relaxed);
    const double start = slot.start_seconds.load(std::memory_order_relaxed);
    const double dur = slot.duration_seconds.load(std::memory_order_relaxed);
    const uint32_t tid = slot.thread_ordinal.load(std::memory_order_relaxed);
    // Re-check before emitting: if the slot was overwritten while we read
    // its fields, drop the (possibly mixed) record.
    if (slot.version.load(std::memory_order_acquire) != 2 * seq + 2) continue;
    if (!first) out << ",";
    first = false;
    char numbers[96];
    if (kind == Kind::kSpan) {
      std::snprintf(numbers, sizeof(numbers),
                    "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                    "\"tid\":%u",
                    start * 1e6, dur * 1e6, pid, tid);
      out << "\n{\"name\":\"";
      WriteJsonEscaped(out, name);
      out << "\",\"cat\":\"";
      WriteJsonEscaped(out, detail.empty() ? "span" : detail);
      out << "\"," << numbers << ",\"args\":{\"trace_id\":\""
          << HexId(trace_id) << "\",\"span_id\":\"" << HexId(span_id)
          << "\",\"request_id\":" << request_id << "}}";
    } else {
      std::snprintf(numbers, sizeof(numbers),
                    "\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":%d,"
                    "\"tid\":%u",
                    start * 1e6, pid, tid);
      out << "\n{\"name\":\"";
      WriteJsonEscaped(out, name);
      out << "\",\"cat\":\"" << (kind == Kind::kLog ? "log" : "event") << "\","
          << numbers << ",\"args\":{\"detail\":\"";
      WriteJsonEscaped(out, detail);
      out << "\",\"request_id\":" << request_id << "}}";
    }
  }
  out << "\n]}\n";
  return out.str();
}

void FlightRecorder::TriggerDump(std::string_view reason) {
  if (!enabled()) return;
  RecordEvent("flightrec.dump", reason);
  std::lock_guard<std::mutex> lock(dump_mutex_);
  if (dump_path_.empty()) return;
  std::ofstream out(dump_path_, std::ios::trunc);
  if (!out) {
    PPS_SLOG(Warn, "flightrec.dump_failed").Kv("path", dump_path_);
    return;
  }
  out << DumpJson();
  out.flush();
  if (out.good()) {
    dumps_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().GetCounter("flightrec.dumps")->Increment();
    PPS_SLOG(Info, "flightrec.dumped")
        .Kv("path", dump_path_)
        .Kv("reason", reason);
  }
}

void FlightRecorder::Reset() {
  for (Slot& slot : slots_) {
    slot.kind.store(0, std::memory_order_relaxed);
    // Release, not relaxed: version is the seqlock publish word — a
    // reader that observes the zeroed version must not pair it with the
    // slot's pre-reset field values (the flightrec interleave bug shape).
    slot.version.store(0, std::memory_order_release);
  }
  next_.store(0, std::memory_order_release);
  drops_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace ppstream
