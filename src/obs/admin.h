// Admin/observability HTTP endpoint (DESIGN.md §14).
//
// A deliberately tiny HTTP/1.0 responder on top of net/socket, hosted by
// ModelProviderTcpServer on a side port so operators can scrape live
// state without speaking the binary frame protocol:
//
//   GET /metrics          Prometheus exposition of the MetricsRegistry
//   GET /healthz          "ok" while serving; 503 while draining or
//                         otherwise unhealthy (load balancers key on it)
//   GET /statusz          one JSON object of non-secret serving state:
//                         session-registry occupancy (ordinals only —
//                         never session ids, which gate replay), cache
//                         bytes, in-flight requests, build/plan info
//   GET /debug/flightrec  Chrome-trace JSON dump of the flight recorder
//
// The responder is synchronous and single-connection: one accept thread,
// one request per connection, bounded request-line read (no bodies, no
// keep-alive, no TLS). That is the right amount of HTTP for a scrape
// target on a loopback/management network; anything fancier belongs in a
// reverse proxy. Content callbacks run on the admin thread — they must be
// safe to call concurrently with the serving path (the registry and
// flight recorder are lock-free readers by design).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "net/socket.h"
#include "util/status.h"

namespace ppstream {
namespace obs {

/// Content providers wired by the hosting server. Every callback may be
/// invoked from the admin thread at any moment between Start and Stop.
struct AdminState {
  /// Prometheus exposition body (text/plain). Defaults to the global
  /// registry when unset.
  std::function<std::string()> metrics_text;
  /// JSON object for /statusz. Must contain no secret material (session
  /// ids, keys, randomizers, permutations). Unset → "{}".
  std::function<std::string()> statusz_json;
  /// Liveness for /healthz: false → 503 (draining / breaker floored).
  /// Unset → always healthy.
  std::function<bool()> healthy;
  /// Chrome-trace JSON for /debug/flightrec. Unset → 404.
  std::function<std::string()> flightrec_json;
};

/// Bounded HTTP/1.0 scrape endpoint. Start binds and spawns the accept
/// thread; Stop (or destruction) signals and joins it.
class AdminServer {
 public:
  AdminServer();
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral, read back with port()) and
  /// starts serving. Fails if already started or the bind fails.
  Status Start(uint16_t port, AdminState state);

  /// Signals the accept thread and joins it. Idempotent.
  void Stop();

  /// Bound port after a successful Start (0 before).
  uint16_t port() const { return port_; }

  /// Requests served so far (tests poll it).
  uint64_t requests_served() const;

  /// Pure request router, exposed for tests: maps one request line (e.g.
  /// "GET /metrics HTTP/1.0") to a full HTTP response byte string.
  /// `oversized` forces the 431 path for callers whose read overflowed.
  std::string RouteRequest(const std::string& request_line,
                           bool oversized = false) const;

  /// Longest request head (line + headers) accepted before replying 431.
  static constexpr size_t kMaxRequestBytes = 4096;

  /// Overall per-connection budget (read + reply combined, not per
  /// socket call): the responder is single-threaded, so a client
  /// trickling one byte at a time must not be able to occupy the accept
  /// thread — and starve /healthz — longer than one slow scrape would.
  /// Tests shrink it; operators shouldn't need to.
  void set_connection_deadline_seconds(double seconds) {
    connection_deadline_seconds_ = seconds;
  }

 private:
  void AcceptLoop();
  void ServeOne(TcpSocket socket);

  AdminState state_;
  TcpListener listener_;
  WakeupPipe stop_;
  std::thread thread_;
  uint16_t port_ = 0;
  bool started_ = false;
  double connection_deadline_seconds_ = 5.0;
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace obs
}  // namespace ppstream
