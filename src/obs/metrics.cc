#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <sstream>

namespace ppstream {
namespace obs {

namespace {

/// Shortest round-trippable decimal for doubles in the exposition.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it round-trips exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

// Caller holds the registry mutex (the accessors below lock inline so
// the lock scope is visible at the map-touching call site).
template <typename Map>
auto* GetOrCreateLocked(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return it->second.get();
}

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return kHistogramMinBound * static_cast<double>(uint64_t{1} << i);
}

size_t Histogram::BucketIndex(double v) {
  if (!(v > kHistogramMinBound)) return 0;  // NaN and negatives land here too
  const double ratio = v / kHistogramMinBound;
  // Smallest i with v <= kHistogramMinBound * 2^i.
  size_t i = static_cast<size_t>(std::ceil(std::log2(ratio)));
  // Guard the boundary against log2 rounding both ways.
  while (i > 0 && v <= BucketUpperBound(i - 1)) --i;
  while (i + 1 < kNumBuckets && v > BucketUpperBound(i)) ++i;
  return std::min(i, kNumBuckets - 1);
}

void Histogram::Record(double v) {
  if (std::isnan(v)) return;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const uint64_t n = Count();
  return n == 0 ? 0 : Sum() / static_cast<double>(n);
}

uint64_t Histogram::BucketCount(size_t i) const {
  return i < kNumBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

double Histogram::Quantile(double q) const {
  const HistogramSnapshot snap = SnapshotHistogram(*this);
  if (snap.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(snap.count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += snap.buckets[i];
    if (cumulative >= rank) return std::min(BucketUpperBound(i), snap.max);
  }
  return snap.max;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  // max_ is CAS-published by Record; reset with release so a racing
  // snapshot never pairs the zeroed max with pre-reset bucket reads.
  max_.store(0, std::memory_order_release);
}

HistogramSnapshot SnapshotHistogram(const Histogram& h) {
  HistogramSnapshot snap;
  // Bucket reads are individually atomic; a concurrent Record may land
  // between them, so derive the count from the buckets to keep the
  // snapshot internally consistent (sum/max stay approximate mid-run).
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    snap.buckets[i] = h.BucketCount(i);
    snap.count += snap.buckets[i];
  }
  snap.sum = h.Sum();
  snap.max = h.Max();
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  // ppslint:allow(R5 intentionally leaked singleton: worker threads may record metrics during static destruction)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetOrCreateLocked(counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetOrCreateLocked(gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetOrCreateLocked(histograms_, name);
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [name, counter] : counters_) {
    if (HasPrefix(name, prefix)) out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues(
    std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, gauge] : gauges_) {
    if (HasPrefix(name, prefix)) out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricsRegistry::Histograms(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  for (const auto& [name, histogram] : histograms_) {
    if (HasPrefix(name, prefix)) out.emplace_back(name, histogram.get());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string PrometheusMetricName(std::string_view name) {
  const size_t brace = name.find('{');
  const std::string_view base =
      name.substr(0, brace == std::string_view::npos ? name.size() : brace);
  std::string out = "pps_";
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (brace != std::string_view::npos) out.append(name.substr(brace));
  return out;
}

std::string PrometheusLabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string LabeledMetricName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    for (char c : key) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out.push_back(ok ? c : '_');
    }
    out += "=\"";
    out += PrometheusLabelEscape(value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

namespace {

/// Splits a rendered Prometheus name into the family name and the inner
/// label list (without braces, empty when unlabeled).
void SplitPromName(const std::string& prom, std::string* family,
                   std::string* inner_labels) {
  const size_t brace = prom.find('{');
  if (brace == std::string::npos) {
    *family = prom;
    inner_labels->clear();
    return;
  }
  *family = prom.substr(0, brace);
  // Everything between the braces; the trailing '}' is always last.
  *inner_labels = prom.substr(brace + 1, prom.size() - brace - 2);
}

/// Emits `# TYPE family type` once per family: labeled series of one
/// family share a single TYPE line.
void EmitType(std::ostringstream& out, std::map<std::string, bool>& typed,
              const std::string& family, const char* type) {
  if (typed.emplace(family, true).second) {
    out << "# TYPE " << family << " " << type << "\n";
  }
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  std::ostringstream out;
  std::map<std::string, bool> typed;
  std::string family, labels;
  for (const auto& [name, value] : CounterValues()) {
    SplitPromName(PrometheusMetricName(name), &family, &labels);
    EmitType(out, typed, family, "counter");
    out << family << (labels.empty() ? "" : "{" + labels + "}") << " " << value
        << "\n";
  }
  for (const auto& [name, value] : GaugeValues()) {
    SplitPromName(PrometheusMetricName(name), &family, &labels);
    EmitType(out, typed, family, "gauge");
    out << family << (labels.empty() ? "" : "{" + labels + "}") << " "
        << FormatDouble(value) << "\n";
  }
  for (const auto& [name, histogram] : Histograms()) {
    SplitPromName(PrometheusMetricName(name), &family, &labels);
    const HistogramSnapshot snap = SnapshotHistogram(*histogram);
    EmitType(out, typed, family, "histogram");
    // `le` joins any series labels inside one brace block.
    const std::string le_prefix =
        labels.empty() ? "{le=\"" : "{" + labels + ",le=\"";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += snap.buckets[i];
      const double bound = Histogram::BucketUpperBound(i);
      out << family << "_bucket" << le_prefix
          << (std::isinf(bound) ? "+Inf" : FormatDouble(bound)) << "\"} "
          << cumulative << "\n";
    }
    const std::string suffix_labels =
        labels.empty() ? "" : "{" + labels + "}";
    out << family << "_sum" << suffix_labels << " " << FormatDouble(snap.sum)
        << "\n";
    out << family << "_count" << suffix_labels << " " << snap.count << "\n";
  }
  return out.str();
}

namespace {

bool ValidPrometheusName(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

bool ValidPrometheusValue(std::string_view value) {
  if (value.empty()) return false;
  if (value == "+Inf" || value == "-Inf" || value == "NaN") return true;
  char* end = nullptr;
  const std::string copy(value);
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ValidPrometheusLabelName(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0]))) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Strictly parses a `{key="value",...}` block starting at s[0] == '{'.
/// Values must escape `\` and `"` (as `\\` / `\"`; `\n` is the only other
/// legal escape). On success sets *consumed to one past the closing '}'.
bool ParseLabelBlock(std::string_view s, size_t* consumed) {
  size_t i = 1;
  if (i < s.size() && s[i] == '}') {
    *consumed = i + 1;
    return true;
  }
  while (true) {
    // Label name.
    const size_t name_start = i;
    while (i < s.size() &&
           ((s[i] >= 'a' && s[i] <= 'z') || (s[i] >= 'A' && s[i] <= 'Z') ||
            (s[i] >= '0' && s[i] <= '9') || s[i] == '_')) {
      ++i;
    }
    if (i == name_start ||
        !ValidPrometheusLabelName(s.substr(name_start, i - name_start))) {
      return false;
    }
    if (i >= s.size() || s[i] != '=') return false;
    ++i;
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    // Label value: only \\, \", and \n escapes; no raw quote/backslash.
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        if (i + 1 >= s.size()) return false;
        const char escaped = s[i + 1];
        if (escaped != '\\' && escaped != '"' && escaped != 'n') return false;
        i += 2;
      } else {
        ++i;
      }
    }
    if (i >= s.size()) return false;  // Unterminated value.
    ++i;                              // Closing quote.
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') {
      *consumed = i + 1;
      return true;
    }
    return false;  // Unescaped quote ended the value early, or junk.
  }
}

}  // namespace

Status CheckPrometheusText(std::string_view text) {
  std::istringstream in{std::string(text)};
  std::string line;
  size_t line_no = 0;
  // Base metric names (histogram suffixes stripped) announced by # TYPE.
  std::map<std::string, std::string> typed;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, type;
      comment >> hash >> keyword >> name >> type;
      if (keyword == "TYPE") {
        if (!ValidPrometheusName(name) ||
            (type != "counter" && type != "gauge" && type != "histogram" &&
             type != "summary" && type != "untyped")) {
          return Status::InvalidArgument(internal::StrCat(
              "malformed # TYPE line ", line_no, ": ", line));
        }
        typed[name] = type;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      return Status::InvalidArgument(
          internal::StrCat("malformed sample line ", line_no, ": ", line));
    }
    std::string name = line.substr(0, name_end);
    std::string rest = line.substr(name_end);
    if (!rest.empty() && rest[0] == '{') {
      size_t consumed = 0;
      if (!ParseLabelBlock(rest, &consumed)) {
        return Status::InvalidArgument(internal::StrCat(
            "malformed label set on line ", line_no, ": ", line));
      }
      rest = rest.substr(consumed);
    }
    // Trim the separating spaces around the value.
    const size_t value_begin = rest.find_first_not_of(' ');
    if (value_begin == std::string::npos) {
      return Status::InvalidArgument(
          internal::StrCat("sample without value on line ", line_no));
    }
    const std::string value =
        rest.substr(value_begin, rest.find_last_not_of(" \r") + 1 -
                                     value_begin);
    if (!ValidPrometheusName(name) || !ValidPrometheusValue(value)) {
      return Status::InvalidArgument(
          internal::StrCat("malformed sample line ", line_no, ": ", line));
    }
    std::string base = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          typed.count(base.substr(0, base.size() - s.size()))) {
        base = base.substr(0, base.size() - s.size());
        break;
      }
    }
    if (!typed.count(base)) {
      return Status::InvalidArgument(internal::StrCat(
          "sample ", name, " on line ", line_no, " has no # TYPE line"));
    }
  }
  return Status::OK();
}

Result<std::string> CheckedPrometheusText(const MetricsRegistry& registry) {
  std::string text = registry.PrometheusText();
  Status check = CheckPrometheusText(text);
  if (!check.ok()) return check;
  return text;
}

}  // namespace obs
}  // namespace ppstream
