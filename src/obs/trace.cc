#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/flightrec.h"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace ppstream {
namespace obs {

namespace {

thread_local TraceContext t_context;

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  // Pure ticket counter; nothing is published under the ordinal.
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

uint64_t SplitMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

int ProcessId() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(getpid());
#endif
}

void WriteJsonEscaped(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

std::string HexId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, id);
  return buf;
}

// Salts ids per process so independently-rooted client and server traces
// never collide in a merged dump. Uniqueness, not secrecy, is the goal.
uint64_t MakeIdSalt() {
  const uint64_t nanos = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return SplitMix(nanos ^ (static_cast<uint64_t>(ProcessId()) << 32));
}

}  // namespace

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceContext CurrentTraceContext() { return t_context; }

Tracer& Tracer::Global() {
  // ppslint:allow(R5 intentionally leaked singleton: spans may close during static destruction)
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : id_salt_(MakeIdSalt()) {}

uint64_t Tracer::NewTraceId() {
  uint64_t id = 0;
  while (id == 0) {
    id = SplitMix(id_salt_ ^ next_id_.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

uint64_t Tracer::NewSpanId() { return NewTraceId(); }

void Tracer::Record(SpanRecord span) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_ = 0;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity > 0 ? capacity : 1;
}

void Tracer::WriteChromeJson(std::ostream& out) const {
  const std::vector<SpanRecord> spans = Snapshot();
  const int pid = ProcessId();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    char numbers[160];
    std::snprintf(numbers, sizeof(numbers),
                  "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,"
                  "\"tid\":%u",
                  span.start_seconds * 1e6, span.duration_seconds * 1e6, pid,
                  span.thread_ordinal);
    out << "\n{\"name\":\"";
    WriteJsonEscaped(out, span.name);
    out << "\",\"cat\":\"";
    WriteJsonEscaped(out, span.category.empty() ? "span" : span.category);
    out << "\"," << numbers << ",\"args\":{\"trace_id\":\""
        << HexId(span.trace_id) << "\",\"span_id\":\"" << HexId(span.span_id)
        << "\",\"parent_span_id\":\"" << HexId(span.parent_span_id)
        << "\",\"request_id\":" << span.request_id << "}}";
  }
  out << "\n]}\n";
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) : saved_(t_context) {
  t_context = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { t_context = saved_; }

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category,
                       uint64_t request_id, std::string_view name_suffix)
    : ScopedSpan(t_context, /*force_new_trace=*/false, name, category,
                 request_id, name_suffix) {}

ScopedSpan::ScopedSpan(TraceContext parent, std::string_view name,
                       std::string_view category, uint64_t request_id,
                       std::string_view name_suffix)
    : ScopedSpan(parent, /*force_new_trace=*/false, name, category, request_id,
                 name_suffix) {}

ScopedSpan ScopedSpan::Root(std::string_view name, std::string_view category,
                            uint64_t request_id) {
  // Nest under an already-active context (e.g. a stage span); otherwise
  // open a fresh trace.
  return ScopedSpan(t_context, /*force_new_trace=*/!t_context.active(), name,
                    category, request_id, {});
}

ScopedSpan::ScopedSpan(TraceContext parent, bool force_new_trace,
                       std::string_view name, std::string_view category,
                       uint64_t request_id, std::string_view name_suffix) {
  Tracer& tracer = Tracer::Global();
  // The flight recorder arms span capture on its own: a process with
  // tracing off but the recorder on still gets spans into the ring.
  if (!tracer.enabled() && !FlightRecorder::Global().enabled()) return;
  if (!parent.active() && !force_new_trace) return;
  active_ = true;
  record_.trace_id = parent.active() ? parent.trace_id : tracer.NewTraceId();
  record_.parent_span_id = parent.active() ? parent.span_id : 0;
  record_.span_id = tracer.NewSpanId();
  record_.name.reserve(name.size() + name_suffix.size());
  record_.name.assign(name);
  record_.name.append(name_suffix);
  record_.category.assign(category);
  record_.request_id = request_id;
  record_.thread_ordinal = ThreadOrdinal();
  saved_ = t_context;
  t_context = TraceContext{record_.trace_id, record_.span_id};
  record_.start_seconds = MonotonicSeconds();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  record_.duration_seconds = MonotonicSeconds() - record_.start_seconds;
  t_context = saved_;
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    recorder.RecordSpan(record_.name, record_.category, record_.trace_id,
                        record_.span_id, record_.request_id,
                        record_.start_seconds, record_.duration_seconds,
                        record_.thread_ordinal);
  }
  Tracer::Global().Record(std::move(record_));
}

TraceContext ScopedSpan::context() const {
  if (!active_) return {};
  return TraceContext{record_.trace_id, record_.span_id};
}

}  // namespace obs
}  // namespace ppstream
