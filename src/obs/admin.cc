#include "obs/admin.h"

#include <cstring>
#include <string_view>
#include <utility>

#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ppstream {
namespace obs {

namespace {

// Scrape clients are local and fast; generous but bounded waits.
constexpr double kAcceptPollSeconds = 0.2;

struct AdminMetrics {
  Counter* requests;
  Counter* bad_requests;

  static const AdminMetrics& Get() {
    static const AdminMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return AdminMetrics{r.GetCounter("admin.requests"),
                          r.GetCounter("admin.bad_requests")};
    }();
    return metrics;
  }
};

std::string HttpResponse(int code, std::string_view reason,
                         std::string_view content_type,
                         std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " ";
  out.append(reason);
  out += "\r\nContent-Type: ";
  out.append(content_type);
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out.append(body);
  return out;
}

}  // namespace

AdminServer::AdminServer() = default;

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start(uint16_t port, AdminState state) {
  if (started_) {
    return Status::FailedPrecondition("admin server already started");
  }
  PPS_ASSIGN_OR_RETURN(listener_, TcpListener::Bind(port));
  port_ = listener_.port();
  state_ = std::move(state);
  started_ = true;
  thread_ = std::thread([this] { AcceptLoop(); });
  PPS_SLOG(Info, "admin.started").Kv("port", port_);
  return Status::OK();
}

void AdminServer::Stop() {
  if (!started_) return;
  stop_.Signal();
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  started_ = false;
}

uint64_t AdminServer::requests_served() const {
  return requests_served_.load(std::memory_order_relaxed);
}

std::string AdminServer::RouteRequest(const std::string& request_line,
                                      bool oversized) const {
  if (oversized) {
    AdminMetrics::Get().bad_requests->Increment();
    return HttpResponse(431, "Request Header Fields Too Large", "text/plain",
                        "request too large\n");
  }
  // "GET <path> HTTP/x.y" — anything else (garbage bytes, other methods,
  // missing version) is a 400.
  std::string_view line(request_line);
  if (line.substr(0, 4) != "GET ") {
    AdminMetrics::Get().bad_requests->Increment();
    return HttpResponse(400, "Bad Request", "text/plain", "bad request\n");
  }
  line.remove_prefix(4);
  const size_t space = line.find(' ');
  if (space == std::string_view::npos ||
      line.substr(space + 1, 5) != "HTTP/") {
    AdminMetrics::Get().bad_requests->Increment();
    return HttpResponse(400, "Bad Request", "text/plain", "bad request\n");
  }
  const std::string_view path = line.substr(0, space);

  if (path == "/metrics") {
    // Same render-and-validate path as the benches' metrics.prom dumps
    // (CheckedPrometheusText): a live scrape and a file dump can never
    // disagree on format, and a malformed exposition is a loud 500
    // instead of a quietly broken scrape.
    std::string body;
    if (state_.metrics_text) {
      body = state_.metrics_text();
    } else {
      auto checked = CheckedPrometheusText();
      if (!checked.ok()) {
        return HttpResponse(500, "Internal Server Error", "text/plain",
                            checked.status().ToString() + "\n");
      }
      body = std::move(checked).value();
    }
    return HttpResponse(200, "OK", "text/plain; version=0.0.4", body);
  }
  if (path == "/healthz") {
    const bool healthy = !state_.healthy || state_.healthy();
    if (healthy) return HttpResponse(200, "OK", "text/plain", "ok\n");
    return HttpResponse(503, "Service Unavailable", "text/plain",
                        "draining\n");
  }
  if (path == "/statusz") {
    std::string body = state_.statusz_json ? state_.statusz_json() : "{}";
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (path == "/debug/flightrec") {
    if (!state_.flightrec_json) {
      return HttpResponse(404, "Not Found", "text/plain", "not found\n");
    }
    return HttpResponse(200, "OK", "application/json",
                        state_.flightrec_json());
  }
  return HttpResponse(404, "Not Found", "text/plain", "not found\n");
}

void AdminServer::AcceptLoop() {
  while (!stop_.signalled()) {
    Result<TcpSocket> conn =
        listener_.Accept(kAcceptPollSeconds, stop_.read_fd());
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kCancelled) break;
      continue;  // poll timeout or transient accept error: keep waiting
    }
    ServeOne(std::move(conn).value());
  }
}

void AdminServer::ServeOne(TcpSocket socket) {
  // One overall deadline for the whole connection, not per socket call:
  // a client trickling one byte per recv would otherwise hold the
  // single accept thread for kMaxRequestBytes * timeout — hours — and
  // starve every other scrape (including /healthz).
  const double deadline = MonotonicSeconds() + connection_deadline_seconds_;
  // Read until the end of the request line, a bounded number of bytes.
  // HTTP/1.0 GETs have no body, so everything past the first CR/LF is
  // ignorable headers; we stop at the line or the cap.
  std::string head;
  bool oversized = false;
  uint8_t chunk[512];
  while (head.find('\n') == std::string::npos) {
    if (head.size() >= kMaxRequestBytes) {
      oversized = true;
      break;
    }
    const double remaining = deadline - MonotonicSeconds();
    if (remaining <= 0) {
      // Slow client: drop without reply so the accept thread moves on.
      AdminMetrics::Get().bad_requests->Increment();
      return;
    }
    Result<size_t> n = socket.RecvSome(chunk, sizeof(chunk), remaining);
    if (!n.ok()) return;  // slow/broken client: drop without reply
    head.append(reinterpret_cast<const char*>(chunk), n.value());
  }
  std::string line = head.substr(0, head.find('\n'));
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.pop_back();
  }
  AdminMetrics::Get().requests->Increment();
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const std::string response = RouteRequest(line, oversized);
  const double send_remaining = deadline - MonotonicSeconds();
  if (send_remaining <= 0) return;
  // Best effort: a scrape client that vanished mid-reply is not an error
  // worth surfacing.
  (void)socket.SendAll(reinterpret_cast<const uint8_t*>(response.data()),
                       response.size(), send_remaining);
}

}  // namespace obs
}  // namespace ppstream
