// Distance correlation (Székely, Rizzo & Bakirov 2007) — the paper's
// information-leakage metric (Exp#5, Table VI). dCor is 1 for identical
// sequences and near 0 for independent ones; the paper measures it between
// a tensor before and after obfuscation.

#pragma once

#include <vector>

#include "util/status.h"

namespace ppstream {

/// Distance correlation between paired scalar samples x and y.
/// O(n^2) time, O(n) memory. Requires n >= 2 and equal sizes.
Result<double> DistanceCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Confusion-matrix accuracy (TP+TN)/(TP+TN+FP+FN) for binary labels —
/// the paper's accuracy definition (Section IV-A).
Result<double> BinaryConfusionAccuracy(const std::vector<int64_t>& predicted,
                                       const std::vector<int64_t>& actual);

/// Mean of a sample.
double Mean(const std::vector<double>& v);
/// Population standard deviation.
double StdDev(const std::vector<double>& v);

}  // namespace ppstream
