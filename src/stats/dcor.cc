#include "stats/dcor.h"

#include <cmath>

namespace ppstream {

namespace {

/// Row means, grand mean of the distance matrix a_jk = |v_j - v_k|,
/// computed without materializing the matrix.
void DistanceMoments(const std::vector<double>& v,
                     std::vector<double>* row_means, double* grand_mean) {
  const size_t n = v.size();
  row_means->assign(n, 0);
  double total = 0;
  for (size_t j = 0; j < n; ++j) {
    double sum = 0;
    for (size_t k = 0; k < n; ++k) {
      sum += std::abs(v[j] - v[k]);
    }
    (*row_means)[j] = sum / static_cast<double>(n);
    total += sum;
  }
  *grand_mean = total / static_cast<double>(n * n);
}

}  // namespace

Result<double> DistanceCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("dCor needs equal-length samples");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("dCor needs at least 2 samples");
  }
  const size_t n = x.size();
  std::vector<double> ax, ay;
  double gx = 0, gy = 0;
  DistanceMoments(x, &ax, &gx);
  DistanceMoments(y, &ay, &gy);

  double cov = 0, var_x = 0, var_y = 0;
  for (size_t j = 0; j < n; ++j) {
    for (size_t k = 0; k < n; ++k) {
      const double a = std::abs(x[j] - x[k]) - ax[j] - ax[k] + gx;
      const double b = std::abs(y[j] - y[k]) - ay[j] - ay[k] + gy;
      cov += a * b;
      var_x += a * a;
      var_y += b * b;
    }
  }
  const double denom = std::sqrt(var_x * var_y);
  if (denom <= 0) return 0.0;  // a constant sequence is independent of all
  const double dcor2 = cov / denom;
  return dcor2 > 0 ? std::sqrt(dcor2) : 0.0;
}

Result<double> BinaryConfusionAccuracy(const std::vector<int64_t>& predicted,
                                       const std::vector<int64_t>& actual) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    return Status::InvalidArgument("mismatched or empty label vectors");
  }
  int64_t tp = 0, tn = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] != 0 && predicted[i] != 1) {
      return Status::InvalidArgument("labels must be binary");
    }
    if (actual[i] != 0 && actual[i] != 1) {
      return Status::InvalidArgument("labels must be binary");
    }
    if (predicted[i] == 1 && actual[i] == 1) ++tp;
    if (predicted[i] == 0 && actual[i] == 0) ++tn;
    if (predicted[i] == 1 && actual[i] == 0) ++fp;
    if (predicted[i] == 0 && actual[i] == 1) ++fn;
  }
  return static_cast<double>(tp + tn) /
         static_cast<double>(tp + tn + fp + fn);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0;
  const double m = Mean(v);
  double sum = 0;
  for (double x : v) sum += (x - m) * (x - m);
  return std::sqrt(sum / static_cast<double>(v.size()));
}

}  // namespace ppstream
