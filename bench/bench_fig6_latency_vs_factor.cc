// Figure 6 (Exp#1) — inference latency versus scaling factor.
//
// Paper: the full PP-Stream pipeline (encapsulation + load balancing +
// partitioning) on the MNIST and CIFAR models, F = 10^0..10^6; latency
// rises with F (bigger scalar exponents in Eq. 2) — about +29% (MNIST) /
// +23% (CIFAR) from 10^0 to 10^6.
//
// Here: measured end-to-end protocol latency on MNIST-2 and MNIST-3 (the
// CIFAR stacks cannot run under single-core Paillier in bench time; the
// trend is scale-driven and model-independent — see EXPERIMENTS.md).

#include "bench/bench_common.h"

#include "core/fixed_point.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Figure 6 (Exp#1): latency vs scaling factor ==\n\n");
  constexpr int kKeyBits = 512;
  std::printf("key size: %d bits; one inference per point\n\n", kKeyBits);
  std::printf("%-10s", "F");
  for (int f = 0; f <= 6; ++f) std::printf("     10^%d", f);
  std::printf("\n");
  PrintRule();

  for (ZooModelId id : {ZooModelId::kMnist2, ZooModelId::kMnist3}) {
    TrainedEntry entry = Train(id);
    std::printf("%-10s", GetZooInfo(id).dataset_name);
    double first = 0;
    double second = 0;
    double last = 0;
    for (int f = 0; f <= 6; ++f) {
      ProtocolSetup setup =
          Setup(entry.model, PowerOfTen(f), kKeyBits, 100 + f);
      WallTimer timer;
      auto out = RunProtocolInference(*setup.mp, *setup.dp, /*request=*/f,
                                      entry.data.test.samples[0]);
      PPS_CHECK_OK(out.status());
      const double seconds = timer.ElapsedSeconds();
      if (f == 0) first = seconds;
      if (f == 1) second = seconds;
      last = seconds;
      std::printf(" %8.2fs", seconds);
      std::fflush(stdout);
    }
    std::printf("  (+%.0f%% from 10^0, +%.0f%% from 10^1)\n",
                100 * (last - first) / first,
                100 * (last - second) / second);
  }
  std::printf("\nshape check vs paper: latency grows with F (larger scalar "
              "exponents);\npaper reports +29%% (MNIST) and +23%% (CIFAR). "
              "Our 10^0 point is additionally cheap\nbecause rounding at "
              "F=1 zeroes most weights and the sparse affine representation "
              "skips\nzero-weight terms; the 10^1..10^6 trend isolates the "
              "exponent-size effect.\n");
  return 0;
}
