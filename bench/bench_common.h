// Shared helpers for the experiment harnesses (one binary per paper
// table/figure; see DESIGN.md §4 and EXPERIMENTS.md).
//
// Every harness prints the same rows/series as the corresponding paper
// artifact. Sizes are sandbox-scaled (documented per harness); the paper's
// numbers are quoted in EXPERIMENTS.md for shape comparison.

#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "core/plan.h"
#include "core/protocol.h"
#include "core/scaling.h"
#include "crypto/paillier.h"
#include "nn/model_zoo.h"
#include "planner/profiler.h"
#include "sim/bridge.h"
#include "sim/cluster_sim.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ppstream {
namespace bench {

/// Dataset scale factors that keep training tractable in this sandbox
/// (healthcare rows are small enough for paper-sized data).
inline double DatasetScale(ZooModelId id) {
  switch (id) {
    case ZooModelId::kBreast:
    case ZooModelId::kHeart:
      return 1.0;
    case ZooModelId::kCardio:
      return 0.02;  // 1200 / 200
    case ZooModelId::kMnist1:
    case ZooModelId::kMnist2:
    case ZooModelId::kMnist3:
      return 0.02;  // 1200 / 200
    case ZooModelId::kCifar1:
    case ZooModelId::kCifar2:
    case ZooModelId::kCifar3:
      return 0.016;  // 800 / 160
  }
  return 0.01;
}

/// A trained zoo entry with its data.
struct TrainedEntry {
  ZooModelId id;
  DatasetSplit data;
  Model model;
};

inline TrainedEntry Train(ZooModelId id, uint64_t seed = 1000) {
  TrainedEntry entry{id, MakeZooDataset(id, DatasetScale(id), seed),
                     Model{}};
  // From-scratch training of the deep VGG stacks is initialization-
  // sensitive; retry with fresh seeds when a run plateaus near chance
  // (keeping the best attempt).
  // A run counts as plateaued if it fails to clearly beat chance; 0.6 is
  // far above 10-class chance and below every model's achievable train
  // accuracy (Cardio's noise ceiling is ~0.75).
  const double plateau_threshold = 0.6;
  double best_acc = -1;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto model =
        MakeTrainedZooModel(id, entry.data.train, seed + 1 + 17 * attempt);
    PPS_CHECK_OK(model.status());
    auto acc = EvaluateAccuracy(model.value(), entry.data.train);
    PPS_CHECK_OK(acc.status());
    if (acc.value() > best_acc) {
      best_acc = acc.value();
      entry.model = std::move(model).value();
    }
    if (best_acc >= plateau_threshold) break;
    PPS_LOG(Warn) << GetZooInfo(id).dataset_name
                  << " training plateaued (train acc " << acc.value()
                  << "); retrying with a fresh seed";
  }
  return entry;
}

/// One shared key pair per key size (keygen is expensive at 2048 bits).
inline const PaillierKeyPair& SharedKeys(int bits) {
  static std::map<int, PaillierKeyPair> cache_storage;
  auto* cache = &cache_storage;
  auto it = cache->find(bits);
  if (it == cache->end()) {
    Rng rng(0xC0FFEE + static_cast<uint64_t>(bits));
    auto pair = Paillier::GenerateKeyPair(bits, rng);
    PPS_CHECK_OK(pair.status());
    it = cache->emplace(bits, std::move(pair).value()).first;
  }
  return it->second;
}

/// Compiles and wires both parties for a model at scale F.
struct ProtocolSetup {
  std::shared_ptr<InferencePlan> plan;
  std::shared_ptr<ModelProvider> mp;
  std::shared_ptr<DataProvider> dp;
};

inline ProtocolSetup Setup(const Model& model, int64_t scale, int key_bits,
                           uint64_t seed = 1,
                           DataProvider::Options dp_options = {}) {
  auto plan_or = CompilePlan(model, scale);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  const PaillierKeyPair& keys = SharedKeys(key_bits);
  PPS_CHECK_OK(plan->CheckFitsKey(keys.public_key.n()));
  return ProtocolSetup{
      plan,
      std::make_shared<ModelProvider>(plan, keys.public_key, seed),
      std::make_shared<DataProvider>(plan, keys, seed + 1, dp_options)};
}

/// The paper's testbed constants (§VI-A): nine servers, 24-core Xeons,
/// 10 GbE — reproduced inside the calibrated simulator.
inline constexpr int kTestbedCoresPerServer = 24;

/// Builds the Table III allocation problem for `total_cores` spread over
/// the model/data servers, raising per-server capacity minimally when the
/// core count is too small to give every stage one thread (Eq. 7).
inline AllocationProblem BuildProblemForCores(const PlanProfile& profile,
                                              const ZooInfo& info,
                                              int total_cores) {
  const int servers = info.paper_model_servers + info.paper_data_servers;
  const int per_server = std::max(1, total_cores / servers);
  AllocationProblem problem = BuildAllocationProblem(
      profile, info.paper_model_servers, info.paper_data_servers, per_server,
      /*hyper_threading=*/false);
  for (int cls : {+1, -1}) {
    size_t stages_of_class = 0;
    for (int c : profile.stage_class) stages_of_class += c == cls;
    const int servers_of_class = cls > 0 ? info.paper_model_servers
                                         : info.paper_data_servers;
    const int needed = static_cast<int>(
        (stages_of_class + servers_of_class - 1) / servers_of_class);
    for (size_t j = 0; j < problem.server_cores.size(); ++j) {
      if (problem.server_class[j] == cls) {
        problem.server_cores[j] = std::max(problem.server_cores[j], needed);
      }
    }
  }
  return problem;
}

inline void PrintRule() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

}  // namespace bench
}  // namespace ppstream
