// Fault-tolerance bench — latency/throughput degradation under injected
// faults, on both the real stream engine and the calibrated simulator.
//
// Part 1 runs the live pipeline (small dense model, 256-bit keys so the
// run stays in milliseconds) at per-stage fault rates 0–10% and reports
// drained outcomes, retries, and throughput. Every submitted request must
// yield exactly one outcome at every rate — the engine's failure contract.
//
// Part 2 sweeps the cluster simulator's per-stage failure probability with
// the paper-scale stage costs, showing the steady-state latency inflation
// the retry model predicts for the 9-server deployment.

#include <cstdio>

#include "core/plan.h"
#include "core/protocol.h"
#include "crypto/paillier.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "obs/metrics.h"
#include "sim/cluster_sim.h"
#include "stream/engine.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ppstream;

namespace {

struct EngineRow {
  double fault_rate = 0;
  size_t ok = 0;
  size_t failed = 0;
  uint64_t retries = 0;
  double seconds = 0;
};

EngineRow RunEngineAtRate(const std::shared_ptr<InferencePlan>& plan,
                          const PaillierKeyPair& keys, double rate,
                          size_t requests) {
  auto mp = std::make_shared<ModelProvider>(plan, keys.public_key, 7);
  auto dp = std::make_shared<DataProvider>(plan, keys, 8);
  EngineConfig config;
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_backoff_seconds = 0.0002;
  policy.max_backoff_seconds = 0.002;
  config.retry_policy = policy;
  if (rate > 0) {
    auto injector = std::make_shared<FaultInjector>(
        0xFA17 + static_cast<uint64_t>(rate * 1e4));
    FaultRule rule;
    rule.site_pattern = "stage.";
    rule.probability = rate;
    injector->AddRule(rule);
    config.fault_injector = injector;
  }
  PpStreamEngine engine(mp, dp, config);
  PPS_CHECK_OK(engine.Start());

  Rng rng(17);
  WallTimer timer;
  for (size_t i = 0; i < requests; ++i) {
    DoubleTensor x{Shape{4}};
    for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
    PPS_CHECK_OK(engine.Submit(i, x));
  }
  EngineRow row;
  row.fault_rate = rate;
  for (size_t i = 0; i < requests; ++i) {
    auto result = engine.NextResult();
    if (result.ok()) {
      ++row.ok;
    } else {
      ++row.failed;
    }
  }
  row.seconds = timer.ElapsedSeconds();
  engine.Shutdown();
  for (size_t s = 0; s < engine.pipeline().NumStages(); ++s) {
    row.retries += engine.pipeline().stage(s).metrics().retries;
  }
  PPS_CHECK(mp->PendingRequestsForTesting() == 0)
      << "obfuscation state leaked";
  return row;
}

}  // namespace

int main() {
  std::printf("== Fault tolerance: engine + simulator degradation under "
              "injected faults ==\n\n");

  // A 2-round plan (Dense-ReLU-Dense-Softmax), the smallest shape that
  // exercises obfuscation state and all five stage kinds.
  Rng mrng(5);
  Model model(Shape{4}, "chaos-bench");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 8, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(8, 3, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto plan_or = CompilePlan(model, 1000);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  Rng krng(6);
  auto keys = Paillier::GenerateKeyPair(256, krng);
  PPS_CHECK_OK(keys.status());

  constexpr size_t kRequests = 24;
  std::printf("-- live engine, %zu requests, retry budget 3 --\n", kRequests);
  std::printf("%-12s %8s %8s %8s %12s %14s\n", "fault rate", "ok", "failed",
              "retries", "seconds", "throughput/s");
  for (double rate : {0.0, 0.01, 0.05, 0.10}) {
    const EngineRow row =
        RunEngineAtRate(plan, keys.value(), rate, kRequests);
    PPS_CHECK(row.ok + row.failed == kRequests)
        << "lost outcomes at rate " << rate;
    std::printf("%-12.2f %8zu %8zu %8llu %12.3f %14.1f\n", row.fault_rate,
                row.ok, row.failed,
                static_cast<unsigned long long>(row.retries), row.seconds,
                static_cast<double>(kRequests) / row.seconds);
  }

  // Every fired injection across the rate sweep, by kind and site, from
  // the registry's "fault.injected.<kind>.<site>" counters — the ground
  // truth for what the chaos run actually did to the pipeline.
  const auto injected =
      obs::MetricsRegistry::Global().CounterValues("fault.injected.");
  std::printf("\n-- injected faults by kind and site --\n");
  if (injected.empty()) {
    std::printf("(none fired)\n");
  } else {
    std::printf("%-48s %8s\n", "counter", "count");
    for (const auto& [name, value] : injected) {
      std::printf("%-48s %8llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  // Simulator sweep: paper-scale stage costs (10GbE, 5 stages, ~100ms
  // linear stages, 5ms non-linear stages).
  std::printf("\n-- simulator, 5 paper-scale stages, 200 requests, "
              "2 retries --\n");
  std::printf("%-12s %14s %14s %10s %10s\n", "failure p", "avg lat (s)",
              "thruput/s", "retries", "failed");
  for (double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    std::vector<SimStageSpec> stages(5);
    for (size_t i = 0; i < stages.size(); ++i) {
      stages[i].single_thread_seconds = (i % 2 == 1) ? 0.100 : 0.005;
      stages[i].threads = 4;
      stages[i].server = static_cast<int>(i % 2);
      stages[i].bytes_out = 64 * 1024;
      stages[i].failure_prob = p;
    }
    SimWorkload fault_model;
    fault_model.max_retries = 2;
    fault_model.retry_backoff_seconds = 0.002;
    auto report =
        SimulateStablePipeline(stages, SimNetwork{}, 200, 1.05, fault_model);
    PPS_CHECK_OK(report.status());
    std::printf("%-12.2f %14.4f %14.2f %10llu %10llu\n", p,
                report.value().avg_latency_seconds,
                report.value().throughput_rps,
                static_cast<unsigned long long>(report.value().total_retries),
                static_cast<unsigned long long>(
                    report.value().failed_requests));
  }
  std::printf("\nfault tolerance bench OK\n");
  return 0;
}
