// Ablation — operation encapsulation (paper §IV-B).
//
// The paper rejects two extremes: one stage per primitive layer (extra
// serialization/transfer per hop) and one stage for everything (breaks
// privacy). This ablation quantifies the first: latency of the merged
// pipeline versus a per-primitive-layer pipeline in which every linear op
// is its own stage with its own serialization hop.

#include "bench/bench_common.h"

#include "stream/message.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Ablation: merged stages vs per-primitive-layer stages "
              "==\n\n");
  constexpr int kKeyBits = 512;

  std::printf("%-12s %10s %8s %8s %14s %14s %10s\n", "model", "net",
              "merged", "unmerged", "merged lat(s)", "unmerged lat",
              "overhead");
  PrintRule();

  for (ZooModelId id : {ZooModelId::kHeart, ZooModelId::kMnist2,
                        ZooModelId::kMnist3}) {
    TrainedEntry entry = Train(id);
    ProtocolSetup setup = Setup(entry.model, 10000, kKeyBits);
    const InferencePlan& plan = *setup.plan;
    std::vector<DoubleTensor> probes = {entry.data.test.samples[0]};
    auto profile = ProfilePlan(*setup.mp, *setup.dp, probes);
    PPS_CHECK_OK(profile.status());

    // Merged: the plan as compiled.
    Allocation merged_alloc;
    const size_t merged_stages = profile.value().stage_seconds.size();
    merged_alloc.threads_of_layer.assign(merged_stages, 2);
    merged_alloc.server_of_layer.resize(merged_stages);
    for (size_t s = 0; s < merged_stages; ++s) {
      merged_alloc.server_of_layer[s] =
          profile.value().stage_class[s] > 0 ? 0 : 1;
    }

    // Unmerged topology: split every linear stage into one stage per
    // affine op,
    // each op paying a full serialization/transfer hop. The op costs are
    // apportioned from the measured stage time by term counts; every hop
    // ships the op's output tensor.
    const size_t ct_bytes =
        setup.mp->public_key().n_squared().BitLength() / 8 + 17;
    std::vector<SimStageSpec> unmerged;
    size_t unmerged_count = 0;
    int server_tick = 0;
    for (size_t s = 0; s < merged_stages; ++s) {
      if (profile.value().stage_class[s] < 0) {  // data-provider stage
        SimStageSpec spec;
        spec.single_thread_seconds = profile.value().stage_seconds[s];
        spec.threads = 2;
        spec.server = 1000;  // data side
        spec.bytes_out = profile.value().stage_bytes_out[s];
        unmerged.push_back(spec);
        ++unmerged_count;
        continue;
      }
      const size_t round = (s - 1) / 2;
      const LinearStage& stage = plan.linear_stages[round];
      int64_t total_terms = 0;
      for (const auto& op : stage.ops) total_terms += op.TotalTerms() + 1;
      for (const auto& op : stage.ops) {
        SimStageSpec spec;
        spec.single_thread_seconds =
            profile.value().stage_seconds[s] *
            static_cast<double>(op.TotalTerms() + 1) /
            static_cast<double>(total_terms);
        spec.threads = 2;
        spec.server = server_tick++;  // every op hop crosses servers
        spec.bytes_out = static_cast<uint64_t>(
            op.output_shape().NumElements()) * ct_bytes;
        unmerged.push_back(spec);
        ++unmerged_count;
      }
    }
    // Compare under LAN (10 GbE), slow LAN (1 Gbps), and WAN-ish
    // (100 Mbps, 5 ms latency) conditions: hop overhead grows as the
    // network gets slower — the effect §IV-B's merging avoids.
    struct NetCase {
      const char* name;
      SimNetwork net;
    };
    const NetCase nets[] = {
        {"10 Gbps", {10.0, 50e-6}},
        {"1 Gbps", {1.0, 200e-6}},
        {"100 Mbps", {0.1, 5e-3}},
    };
    for (const NetCase& nc : nets) {
      auto merged_report = SimulateStablePipeline(
          BuildSimStages(profile.value(), merged_alloc), nc.net, 20);
      auto unmerged_report = SimulateStablePipeline(unmerged, nc.net, 20);
      PPS_CHECK_OK(merged_report.status());
      PPS_CHECK_OK(unmerged_report.status());
      const double merged_lat = merged_report.value().avg_latency_seconds;
      const double unmerged_lat =
          unmerged_report.value().avg_latency_seconds;
      std::printf("%-12s %10s %8zu %8zu %14.3f %14.3f %9.1f%%\n",
                  GetZooInfo(id).dataset_name, nc.name, merged_stages,
                  unmerged_count, merged_lat, unmerged_lat,
                  100 * (unmerged_lat - merged_lat) / merged_lat);
    }
  }
  std::printf("\nmerging adjacent same-class primitive layers avoids "
              "per-hop serialization and transfer\n(the first extreme of "
              "paper §IV-B); the second extreme — one stage for everything "
              "—\nis rejected structurally: linear and non-linear ops may "
              "not share a server (Eq. 6).\n");
  return 0;
}
