// End-to-end pipeline telemetry bench (DESIGN.md §9).
//
// Runs a stream of MNIST inferences through the full pipelined engine
// with the model provider behind the framed transport (the same wire
// path the TCP deployment uses, minus the socket), then distills the
// metrics registry into bench/BENCH_pipeline.json:
//
//   - per-stage latency distributions (count, p50/p95/p99/max/mean ms)
//     and byte volumes from the "stage.*" histograms/counters;
//   - crypto totals (encrypts, decrypts, scalar muls, randomizer-pool
//     hits/misses/produced/refills);
//   - wire totals (frames and bytes each way, round trips).
//
// The Prometheus exposition of the same registry is written next to it
// (bench/metrics.prom) and self-checked with the exporter linter; a
// malformed exposition fails the run.
//
//   bench_pipeline [--smoke] [--trace FILE]
//                  [--out bench/BENCH_pipeline.json]
//                  [--prom bench/metrics.prom]

#include <cstring>
#include <fstream>

#include "bench/bench_common.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/engine.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

double Ms(double seconds) { return seconds * 1e3; }

/// Strips the "stage." prefix and ".attempt_seconds" suffix.
std::string StageOf(const std::string& histogram_name) {
  const std::string prefix = "stage.";
  const std::string suffix = ".attempt_seconds";
  return histogram_name.substr(
      prefix.size(), histogram_name.size() - prefix.size() - suffix.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* trace_path = nullptr;
  const char* out_path = "bench/BENCH_pipeline.json";
  const char* prom_path = "bench/metrics.prom";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    }
  }
  const size_t num_requests = smoke ? 3 : 8;
  const int key_bits = smoke ? 256 : 512;

  std::printf("== pipeline telemetry (MNIST-2, %zu requests, %d-bit keys%s) "
              "==\n\n",
              num_requests, key_bits, smoke ? ", smoke" : "");

  TrainedEntry entry = Train(ZooModelId::kMnist2);
  ProtocolSetup setup = Setup(entry.model, /*scale=*/10000, key_bits);

  // Clean slate so the report covers exactly this run; tracing on for the
  // stitched per-request spans.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);

  // Model provider behind the framed dispatcher — the full wire encode/
  // decode path, so net.* metrics and rpc spans are exercised.
  auto local_mp = setup.mp;
  auto channel = std::make_shared<InProcessFrameChannel>(
      [local_mp](const WireFrame& request) {
        return DispatchModelProviderFrame(*local_mp, request);
      });
  auto remote_mp =
      std::make_shared<RemoteModelProvider>(channel, setup.plan);

  EngineConfig config;
  config.stage_threads.assign(NumPipelineStages(*setup.plan), 1);
  PpStreamEngine engine(remote_mp, setup.dp, config);
  PPS_CHECK_OK(engine.Start());

  WallTimer timer;
  for (size_t i = 0; i < num_requests; ++i) {
    PPS_CHECK_OK(engine.Submit(
        i + 1, entry.data.test.samples[i % entry.data.test.samples.size()]));
  }
  for (size_t i = 0; i < num_requests; ++i) {
    PPS_CHECK_OK(engine.NextResult().status());
  }
  const double elapsed = timer.ElapsedSeconds();
  engine.Shutdown();
  obs::Tracer::Global().SetEnabled(false);

  std::printf("%zu inferences in %.2f s (%.2f s/req pipelined)\n\n",
              num_requests, elapsed, elapsed / num_requests);

  // Snapshot the engine run's counters before the fusion probe below
  // adds its own crypto traffic: the report covers exactly the run.
  const auto crypto_counters = registry.CounterValues("crypto.");
  const auto net_counters = registry.CounterValues("net.");

  // ---- fusion comparison: each probe model compiled with the default
  // FuseAffineChains policy vs. --fusion never, one encrypted inference
  // each, reading the live crypto.scalar_muls counter. Outputs must be
  // bit-identical (fusion is exact integer composition). MNIST-2's
  // Flatten+Dense fold shrinks the op count; Heart's Dense+ScalarScale
  // chains (from ScaledSigmoid decomposition) also shrink scalar muls.
  const PaillierKeyPair& keys = SharedKeys(key_bits);
  struct FusionRecord {
    std::string model;
    int64_t ops_before = 0, ops_after = 0;
    planner::PlanCompileStats stats;
    uint64_t muls_unfused = 0, muls_fused = 0;
  };
  auto compare_fusion = [&](const std::string& name, const Model& model,
                            const DoubleTensor& probe, uint64_t request_id) {
    auto fused_or = CompilePlan(model, /*scale=*/10000);
    CompileOptions unfused_opts;
    unfused_opts.fusion = planner::FusionPolicy::kNever;
    auto unfused_or = CompilePlan(model, /*scale=*/10000, unfused_opts);
    PPS_CHECK_OK(fused_or.status());
    PPS_CHECK_OK(unfused_or.status());
    FusionRecord rec;
    rec.model = name;
    rec.stats = fused_or.value().compile_stats;
    DoubleTensor outs[2];
    const std::shared_ptr<InferencePlan> plans[2] = {
        std::make_shared<InferencePlan>(std::move(fused_or).value()),
        std::make_shared<InferencePlan>(std::move(unfused_or).value())};
    for (int p = 0; p < 2; ++p) {
      PPS_CHECK_OK(plans[p]->CheckFitsKey(keys.public_key.n()));
      ModelProvider mp(plans[p], keys.public_key, /*obf_seed=*/91);
      DataProvider dp(plans[p], keys, /*enc_seed=*/92);
      obs::Counter* muls = registry.GetCounter("crypto.scalar_muls");
      const uint64_t before = muls->Value();
      auto result = RunProtocolInference(mp, dp, request_id + p, probe);
      PPS_CHECK_OK(result.status());
      outs[p] = std::move(result).value();
      (p == 0 ? rec.muls_fused : rec.muls_unfused) = muls->Value() - before;
    }
    PPS_CHECK_EQ(outs[0].NumElements(), outs[1].NumElements());
    for (int64_t i = 0; i < outs[0].NumElements(); ++i) {
      PPS_CHECK(outs[0][i] == outs[1][i])
          << name << ": fused plan diverged at element " << i;
    }
    for (const auto& s : plans[0]->linear_stages)
      rec.ops_after += s.ops.size();
    for (const auto& s : plans[1]->linear_stages)
      rec.ops_before += s.ops.size();
    std::printf("fusion[%s]: %lld -> %lld linear ops, measured scalar "
                "muls %llu -> %llu (bit-identical outputs)\n",
                name.c_str(), static_cast<long long>(rec.ops_before),
                static_cast<long long>(rec.ops_after),
                static_cast<unsigned long long>(rec.muls_unfused),
                static_cast<unsigned long long>(rec.muls_fused));
    return rec;
  };
  std::vector<FusionRecord> fusion;
  fusion.push_back(compare_fusion("MNIST-2", entry.model,
                                  entry.data.test.samples[0], 9001));
  {
    auto heart = MakeZooModel(ZooModelId::kHeart, /*seed=*/5);
    PPS_CHECK_OK(heart.status());
    DoubleTensor probe(Shape{13});
    for (int64_t i = 0; i < probe.NumElements(); ++i) {
      probe.data()[static_cast<size_t>(i)] = 0.125 * static_cast<double>(i % 8) - 0.5;
    }
    fusion.push_back(compare_fusion("Heart", *heart, probe, 9003));
  }
  std::printf("\n");

  // ---- JSON report.
  std::ofstream json(out_path);
  PPS_CHECK(json.good()) << "cannot write " << out_path;
  json << "{\n  \"model\": \"MNIST-2\",\n";
  json << "  \"requests\": " << num_requests << ",\n";
  json << "  \"key_bits\": " << key_bits << ",\n";
  json << "  \"wall_seconds\": " << elapsed << ",\n";
  json << "  \"stages\": [\n";
  const auto histograms = registry.Histograms("stage.");
  std::printf("%-16s %6s %10s %10s %10s %10s %12s\n", "stage", "count",
              "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "bytes_out");
  PrintRule();
  bool first = true;
  for (const auto& [name, histogram] : histograms) {
    const std::string stage = StageOf(name);
    const uint64_t bytes_out =
        registry.GetCounter("stage." + stage + ".bytes_out")->Value();
    if (!first) json << ",\n";
    first = false;
    json << "    {\"name\": \"" << stage << "\""
         << ", \"count\": " << histogram->Count()
         << ", \"p50_ms\": " << Ms(histogram->Quantile(0.5))
         << ", \"p95_ms\": " << Ms(histogram->Quantile(0.95))
         << ", \"p99_ms\": " << Ms(histogram->Quantile(0.99))
         << ", \"max_ms\": " << Ms(histogram->Max())
         << ", \"mean_ms\": " << Ms(histogram->Mean())
         << ", \"bytes_out\": " << bytes_out << "}";
    std::printf("%-16s %6llu %10.2f %10.2f %10.2f %10.2f %12llu\n",
                stage.c_str(),
                static_cast<unsigned long long>(histogram->Count()),
                Ms(histogram->Quantile(0.5)), Ms(histogram->Quantile(0.95)),
                Ms(histogram->Quantile(0.99)), Ms(histogram->Max()),
                static_cast<unsigned long long>(bytes_out));
  }
  json << "\n  ],\n  \"fusion\": [\n";
  for (size_t i = 0; i < fusion.size(); ++i) {
    const FusionRecord& rec = fusion[i];
    json << "    {\"model\": \"" << rec.model << "\""
         << ", \"policy\": \"scalar-mul-count\""
         << ", \"linear_ops_before\": " << rec.ops_before
         << ", \"linear_ops_after\": " << rec.ops_after
         << ", \"ops_fused\": " << rec.stats.ops_fused
         << ", \"dead_tensors_removed\": " << rec.stats.dead_tensors_removed
         << ", \"plan_scalar_muls_before\": "
         << rec.stats.scalar_muls_before_fusion
         << ", \"plan_scalar_muls_after\": "
         << rec.stats.scalar_muls_after_fusion
         << ", \"measured_scalar_muls_unfused\": " << rec.muls_unfused
         << ", \"measured_scalar_muls_fused\": " << rec.muls_fused
         << ", \"outputs_bit_identical\": true}"
         << (i + 1 < fusion.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"counters\": {\n";
  std::printf("\ncounter totals:\n");
  first = true;
  for (const auto* counters : {&crypto_counters, &net_counters}) {
    for (const auto& [name, value] : *counters) {
      if (!first) json << ",\n";
      first = false;
      json << "    \"" << name << "\": " << value;
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  json << "\n  }\n}\n";
  json.close();
  std::printf("\nwrote %s\n", out_path);

  // ---- Prometheus exposition + self-lint.
  const std::string prom = registry.PrometheusText();
  const Status lint = obs::CheckPrometheusText(prom);
  PPS_CHECK(lint.ok()) << "Prometheus exposition failed its own linter: "
                       << lint.ToString();
  std::ofstream prom_out(prom_path);
  PPS_CHECK(prom_out.good()) << "cannot write " << prom_path;
  prom_out << prom;
  prom_out.close();
  std::printf("wrote %s (lint OK)\n", prom_path);

  if (trace_path != nullptr) {
    std::ofstream trace_out(trace_path);
    obs::Tracer::Global().WriteChromeJson(trace_out);
    std::printf("wrote %zu span(s) to %s\n",
                obs::Tracer::Global().Snapshot().size(), trace_path);
  }
  std::printf("\nbench_pipeline OK\n");
  return 0;
}
