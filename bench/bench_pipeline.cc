// End-to-end pipeline telemetry bench (DESIGN.md §9).
//
// Runs a stream of MNIST inferences through the full pipelined engine
// with the model provider behind the framed transport (the same wire
// path the TCP deployment uses, minus the socket), then distills the
// metrics registry into bench/BENCH_pipeline.json:
//
//   - per-stage latency distributions (count, p50/p95/p99/max/mean ms)
//     and byte volumes from the "stage.*" histograms/counters;
//   - crypto totals (encrypts, decrypts, scalar muls, randomizer-pool
//     hits/misses/produced/refills);
//   - wire totals (frames and bytes each way, round trips).
//
// The Prometheus exposition of the same registry is written next to it
// (bench/metrics.prom) and self-checked with the exporter linter; a
// malformed exposition fails the run.
//
//   bench_pipeline [--smoke] [--trace FILE]
//                  [--out bench/BENCH_pipeline.json]
//                  [--prom bench/metrics.prom]

#include <cstring>
#include <fstream>

#include "bench/bench_common.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/engine.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

double Ms(double seconds) { return seconds * 1e3; }

/// Strips the "stage." prefix and ".attempt_seconds" suffix.
std::string StageOf(const std::string& histogram_name) {
  const std::string prefix = "stage.";
  const std::string suffix = ".attempt_seconds";
  return histogram_name.substr(
      prefix.size(), histogram_name.size() - prefix.size() - suffix.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* trace_path = nullptr;
  const char* out_path = "bench/BENCH_pipeline.json";
  const char* prom_path = "bench/metrics.prom";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    }
  }
  const size_t num_requests = smoke ? 3 : 8;
  const int key_bits = smoke ? 256 : 512;

  std::printf("== pipeline telemetry (MNIST-2, %zu requests, %d-bit keys%s) "
              "==\n\n",
              num_requests, key_bits, smoke ? ", smoke" : "");

  TrainedEntry entry = Train(ZooModelId::kMnist2);
  ProtocolSetup setup = Setup(entry.model, /*scale=*/10000, key_bits);

  // Clean slate so the report covers exactly this run; tracing on for the
  // stitched per-request spans.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);

  // Model provider behind the framed dispatcher — the full wire encode/
  // decode path, so net.* metrics and rpc spans are exercised.
  auto local_mp = setup.mp;
  auto channel = std::make_shared<InProcessFrameChannel>(
      [local_mp](const WireFrame& request) {
        return DispatchModelProviderFrame(*local_mp, request);
      });
  auto remote_mp =
      std::make_shared<RemoteModelProvider>(channel, setup.plan);

  EngineConfig config;
  config.stage_threads.assign(NumPipelineStages(*setup.plan), 1);
  PpStreamEngine engine(remote_mp, setup.dp, config);
  PPS_CHECK_OK(engine.Start());

  WallTimer timer;
  for (size_t i = 0; i < num_requests; ++i) {
    PPS_CHECK_OK(engine.Submit(
        i + 1, entry.data.test.samples[i % entry.data.test.samples.size()]));
  }
  for (size_t i = 0; i < num_requests; ++i) {
    PPS_CHECK_OK(engine.NextResult().status());
  }
  const double elapsed = timer.ElapsedSeconds();
  engine.Shutdown();
  obs::Tracer::Global().SetEnabled(false);

  std::printf("%zu inferences in %.2f s (%.2f s/req pipelined)\n\n",
              num_requests, elapsed, elapsed / num_requests);

  // ---- JSON report.
  std::ofstream json(out_path);
  PPS_CHECK(json.good()) << "cannot write " << out_path;
  json << "{\n  \"model\": \"MNIST-2\",\n";
  json << "  \"requests\": " << num_requests << ",\n";
  json << "  \"key_bits\": " << key_bits << ",\n";
  json << "  \"wall_seconds\": " << elapsed << ",\n";
  json << "  \"stages\": [\n";
  const auto histograms = registry.Histograms("stage.");
  std::printf("%-16s %6s %10s %10s %10s %10s %12s\n", "stage", "count",
              "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "bytes_out");
  PrintRule();
  bool first = true;
  for (const auto& [name, histogram] : histograms) {
    const std::string stage = StageOf(name);
    const uint64_t bytes_out =
        registry.GetCounter("stage." + stage + ".bytes_out")->Value();
    if (!first) json << ",\n";
    first = false;
    json << "    {\"name\": \"" << stage << "\""
         << ", \"count\": " << histogram->Count()
         << ", \"p50_ms\": " << Ms(histogram->Quantile(0.5))
         << ", \"p95_ms\": " << Ms(histogram->Quantile(0.95))
         << ", \"p99_ms\": " << Ms(histogram->Quantile(0.99))
         << ", \"max_ms\": " << Ms(histogram->Max())
         << ", \"mean_ms\": " << Ms(histogram->Mean())
         << ", \"bytes_out\": " << bytes_out << "}";
    std::printf("%-16s %6llu %10.2f %10.2f %10.2f %10.2f %12llu\n",
                stage.c_str(),
                static_cast<unsigned long long>(histogram->Count()),
                Ms(histogram->Quantile(0.5)), Ms(histogram->Quantile(0.95)),
                Ms(histogram->Quantile(0.99)), Ms(histogram->Max()),
                static_cast<unsigned long long>(bytes_out));
  }
  json << "\n  ],\n  \"counters\": {\n";
  std::printf("\ncounter totals:\n");
  first = true;
  for (const char* prefix : {"crypto.", "net."}) {
    for (const auto& [name, value] : registry.CounterValues(prefix)) {
      if (!first) json << ",\n";
      first = false;
      json << "    \"" << name << "\": " << value;
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  json << "\n  }\n}\n";
  json.close();
  std::printf("\nwrote %s\n", out_path);

  // ---- Prometheus exposition + self-lint.
  const std::string prom = registry.PrometheusText();
  const Status lint = obs::CheckPrometheusText(prom);
  PPS_CHECK(lint.ok()) << "Prometheus exposition failed its own linter: "
                       << lint.ToString();
  std::ofstream prom_out(prom_path);
  PPS_CHECK(prom_out.good()) << "cannot write " << prom_path;
  prom_out << prom;
  prom_out.close();
  std::printf("wrote %s (lint OK)\n", prom_path);

  if (trace_path != nullptr) {
    std::ofstream trace_out(trace_path);
    obs::Tracer::Global().WriteChromeJson(trace_out);
    std::printf("wrote %zu span(s) to %s\n",
                obs::Tracer::Global().Snapshot().size(), trace_path);
  }
  std::printf("\nbench_pipeline OK\n");
  return 0;
}
