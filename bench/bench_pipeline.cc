// End-to-end pipeline telemetry bench (DESIGN.md §9).
//
// Runs a stream of MNIST inferences through the full pipelined engine
// with the model provider behind the framed transport (the same wire
// path the TCP deployment uses, minus the socket), then distills the
// metrics registry into bench/BENCH_pipeline.json:
//
//   - per-stage latency distributions (count, p50/p95/p99/max/mean ms)
//     and byte volumes from the "stage.*" histograms/counters;
//   - crypto totals (encrypts, decrypts, scalar muls, randomizer-pool
//     hits/misses/produced/refills);
//   - wire totals (frames and bytes each way, round trips).
//
// The Prometheus exposition of the same registry is written next to it
// (bench/metrics.prom) and self-checked with the exporter linter; a
// malformed exposition fails the run.
//
//   bench_pipeline [--smoke] [--trace FILE]
//                  [--out bench/BENCH_pipeline.json]
//                  [--prom bench/metrics.prom]

#include <cstring>
#include <fstream>

#include "bench/bench_common.h"
#include "net/transport.h"
#include "nn/compress.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "planner/passes.h"
#include "stream/engine.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

double Ms(double seconds) { return seconds * 1e3; }

/// Strips the "stage." prefix and ".attempt_seconds" suffix.
std::string StageOf(const std::string& histogram_name) {
  const std::string prefix = "stage.";
  const std::string suffix = ".attempt_seconds";
  return histogram_name.substr(
      prefix.size(), histogram_name.size() - prefix.size() - suffix.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* trace_path = nullptr;
  const char* out_path = "bench/BENCH_pipeline.json";
  const char* prom_path = "bench/metrics.prom";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    }
  }
  const size_t num_requests = smoke ? 3 : 8;
  const int key_bits = smoke ? 256 : 512;

  std::printf("== pipeline telemetry (MNIST-2, %zu requests, %d-bit keys%s) "
              "==\n\n",
              num_requests, key_bits, smoke ? ", smoke" : "");

  TrainedEntry entry = Train(ZooModelId::kMnist2);
  // Size the randomizer pool for the whole burst (capacity scales with
  // expected concurrency) and prefill it before the timer starts; the
  // per-request default used to run ~48% misses at 8 concurrent requests.
  DataProvider::Options dp_options;
  dp_options.expected_concurrency = static_cast<int>(num_requests);
  dp_options.prefill = true;
  ProtocolSetup setup =
      Setup(entry.model, /*scale=*/10000, key_bits, /*seed=*/1, dp_options);

  // Clean slate so the report covers exactly this run; tracing on for the
  // stitched per-request spans.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  obs::Tracer::Global().Clear();
  obs::Tracer::Global().SetEnabled(true);

  // Model provider behind the framed dispatcher — the full wire encode/
  // decode path, so net.* metrics and rpc spans are exercised.
  auto local_mp = setup.mp;
  auto channel = std::make_shared<InProcessFrameChannel>(
      [local_mp](const WireFrame& request) {
        return DispatchModelProviderFrame(*local_mp, request);
      });
  auto remote_mp =
      std::make_shared<RemoteModelProvider>(channel, setup.plan);

  EngineConfig config;
  config.stage_threads.assign(NumPipelineStages(*setup.plan), 1);
  PpStreamEngine engine(remote_mp, setup.dp, config);
  PPS_CHECK_OK(engine.Start());

  WallTimer timer;
  for (size_t i = 0; i < num_requests; ++i) {
    PPS_CHECK_OK(engine.Submit(
        i + 1, entry.data.test.samples[i % entry.data.test.samples.size()]));
  }
  for (size_t i = 0; i < num_requests; ++i) {
    PPS_CHECK_OK(engine.NextResult().status());
  }
  const double elapsed = timer.ElapsedSeconds();
  engine.Shutdown();
  obs::Tracer::Global().SetEnabled(false);

  std::printf("%zu inferences in %.2f s (%.2f s/req pipelined)\n\n",
              num_requests, elapsed, elapsed / num_requests);

  // Snapshot the engine run's counters before the fusion probe below
  // adds its own crypto traffic: the report covers exactly the run.
  const auto crypto_counters = registry.CounterValues("crypto.");
  const auto net_counters = registry.CounterValues("net.");

  // The sized-and-prefilled pool must serve the burst almost entirely
  // from precomputed randomizers.
  const RandomizerPool::Stats pool_stats = setup.dp->PoolStatsForTesting();
  const double pool_miss_rate =
      pool_stats.hits + pool_stats.misses == 0
          ? 0.0
          : static_cast<double>(pool_stats.misses) /
                static_cast<double>(pool_stats.hits + pool_stats.misses);
  std::printf("randomizer pool: %llu hits, %llu misses (%.1f%% miss rate)\n\n",
              static_cast<unsigned long long>(pool_stats.hits),
              static_cast<unsigned long long>(pool_stats.misses),
              100.0 * pool_miss_rate);
  PPS_CHECK(pool_miss_rate < 0.10)
      << "randomizer pool miss rate " << pool_miss_rate
      << " >= 10%: pool sizing regressed";

  // ---- fusion comparison: each probe model compiled with the default
  // FuseAffineChains policy vs. --fusion never, one encrypted inference
  // each, reading the live crypto.scalar_muls counter. Outputs must be
  // bit-identical (fusion is exact integer composition). MNIST-2's
  // Flatten+Dense fold shrinks the op count; Heart's Dense+ScalarScale
  // chains (from ScaledSigmoid decomposition) also shrink scalar muls.
  const PaillierKeyPair& keys = SharedKeys(key_bits);
  struct FusionRecord {
    std::string model;
    int64_t ops_before = 0, ops_after = 0;
    planner::PlanCompileStats stats;
    uint64_t muls_unfused = 0, muls_fused = 0;
  };
  auto compare_fusion = [&](const std::string& name, const Model& model,
                            const DoubleTensor& probe, uint64_t request_id) {
    auto fused_or = CompilePlan(model, /*scale=*/10000);
    CompileOptions unfused_opts;
    unfused_opts.fusion = planner::FusionPolicy::kNever;
    auto unfused_or = CompilePlan(model, /*scale=*/10000, unfused_opts);
    PPS_CHECK_OK(fused_or.status());
    PPS_CHECK_OK(unfused_or.status());
    FusionRecord rec;
    rec.model = name;
    rec.stats = fused_or.value().compile_stats;
    DoubleTensor outs[2];
    const std::shared_ptr<InferencePlan> plans[2] = {
        std::make_shared<InferencePlan>(std::move(fused_or).value()),
        std::make_shared<InferencePlan>(std::move(unfused_or).value())};
    for (int p = 0; p < 2; ++p) {
      PPS_CHECK_OK(plans[p]->CheckFitsKey(keys.public_key.n()));
      ModelProvider mp(plans[p], keys.public_key, /*obf_seed=*/91);
      DataProvider dp(plans[p], keys, /*enc_seed=*/92);
      obs::Counter* muls = registry.GetCounter("crypto.scalar_muls");
      const uint64_t before = muls->Value();
      auto result = RunProtocolInference(mp, dp, request_id + p, probe);
      PPS_CHECK_OK(result.status());
      outs[p] = std::move(result).value();
      (p == 0 ? rec.muls_fused : rec.muls_unfused) = muls->Value() - before;
    }
    PPS_CHECK_EQ(outs[0].NumElements(), outs[1].NumElements());
    for (int64_t i = 0; i < outs[0].NumElements(); ++i) {
      PPS_CHECK(outs[0][i] == outs[1][i])
          << name << ": fused plan diverged at element " << i;
    }
    for (const auto& s : plans[0]->linear_stages)
      rec.ops_after += s.ops.size();
    for (const auto& s : plans[1]->linear_stages)
      rec.ops_before += s.ops.size();
    // The cost model's own prediction of what fusion saves. MNIST-2's
    // Flatten+Dense fold is structural only — expected savings 0 — and
    // the record says so instead of implying a crypto win.
    const int64_t expected_savings = rec.stats.scalar_muls_before_fusion -
                                     rec.stats.scalar_muls_after_fusion;
    std::printf("fusion[%s]: %lld -> %lld linear ops, measured scalar "
                "muls %llu -> %llu, expected savings %lld "
                "(bit-identical outputs)\n",
                name.c_str(), static_cast<long long>(rec.ops_before),
                static_cast<long long>(rec.ops_after),
                static_cast<unsigned long long>(rec.muls_unfused),
                static_cast<unsigned long long>(rec.muls_fused),
                static_cast<long long>(expected_savings));
    PPS_CHECK_EQ(static_cast<int64_t>(rec.muls_unfused) -
                     static_cast<int64_t>(rec.muls_fused),
                 expected_savings)
        << name << ": fusion cost model disagrees with measured scalar muls";
    return rec;
  };
  std::vector<FusionRecord> fusion;
  fusion.push_back(compare_fusion("MNIST-2", entry.model,
                                  entry.data.test.samples[0], 9001));
  {
    auto heart = MakeZooModel(ZooModelId::kHeart, /*seed=*/5);
    PPS_CHECK_OK(heart.status());
    DoubleTensor probe(Shape{13});
    for (int64_t i = 0; i < probe.NumElements(); ++i) {
      probe.data()[static_cast<size_t>(i)] = 0.125 * static_cast<double>(i % 8) - 0.5;
    }
    fusion.push_back(compare_fusion("Heart", *heart, probe, 9003));
  }
  std::printf("\n");

  // ---- packing probe: the same trained MNIST-2 compiled through the
  // packing passes, then ONE packed batch vs the same inputs through the
  // scalar protocol. Encrypts and scalar-muls are live counter deltas;
  // ciphertext payload bytes (the wire cost, each ciphertext lives mod
  // n^2) are derived from the per-round vector sizes the two paths move.
  // Decoded packed outputs must be bit-exact with the scalar protocol.
  CompileOptions pack_opts;
  pack_opts.packing = planner::PackingSpec{};
  pack_opts.packing->key_bits = key_bits;
  auto packed_or = CompilePlan(entry.model, /*scale=*/10000, pack_opts);
  PPS_CHECK_OK(packed_or.status());
  auto packed_plan =
      std::make_shared<InferencePlan>(std::move(packed_or).value());
  PPS_CHECK_OK(packed_plan->CheckFitsKey(keys.public_key.n()));
  const planner::PlanCompileStats& pack_stats = packed_plan->compile_stats;
  const int64_t plan_lanes = packed_plan->PackedBatchLanes();
  PPS_CHECK(plan_lanes >= 4)
      << "MNIST-2 at " << key_bits << "-bit keys packs only " << plan_lanes
      << " lanes; the >=4x reduction target is unreachable";
  const int64_t batch = std::min<int64_t>(plan_lanes, smoke ? 4 : 8);
  std::vector<DoubleTensor> lane_inputs;
  for (int64_t l = 0; l < batch; ++l) {
    lane_inputs.push_back(entry.data.test.samples[static_cast<size_t>(l) %
                                                  entry.data.test.samples
                                                      .size()]);
  }

  obs::Counter* muls_counter = registry.GetCounter("crypto.scalar_muls");
  obs::Counter* enc_counter = registry.GetCounter("crypto.encrypts");
  uint64_t scalar_muls = 0, scalar_encrypts = 0;
  std::vector<DoubleTensor> scalar_outs;
  {
    ModelProvider mp(packed_plan, keys.public_key, /*obf_seed=*/95);
    DataProvider dp(packed_plan, keys, /*enc_seed=*/96);
    const uint64_t m0 = muls_counter->Value(), e0 = enc_counter->Value();
    for (int64_t l = 0; l < batch; ++l) {
      auto out = RunProtocolInference(mp, dp, 9100 + static_cast<uint64_t>(l),
                                      lane_inputs[static_cast<size_t>(l)]);
      PPS_CHECK_OK(out.status());
      scalar_outs.push_back(std::move(out).value());
    }
    scalar_muls = muls_counter->Value() - m0;
    scalar_encrypts = enc_counter->Value() - e0;
  }
  uint64_t packed_muls = 0, packed_encrypts = 0;
  std::vector<DoubleTensor> packed_outs;
  {
    ModelProvider mp(packed_plan, keys.public_key, /*obf_seed=*/97);
    DataProvider dp(packed_plan, keys, /*enc_seed=*/98);
    const uint64_t m0 = muls_counter->Value(), e0 = enc_counter->Value();
    auto outs = RunPackedBatchInference(mp, dp, 9200, lane_inputs);
    PPS_CHECK_OK(outs.status());
    packed_outs = std::move(outs).value();
    packed_muls = muls_counter->Value() - m0;
    packed_encrypts = enc_counter->Value() - e0;
  }
  PPS_CHECK_EQ(packed_outs.size(), scalar_outs.size());
  for (size_t l = 0; l < packed_outs.size(); ++l) {
    for (int64_t i = 0; i < packed_outs[l].NumElements(); ++i) {
      PPS_CHECK(packed_outs[l][i] == scalar_outs[l][i])
          << "packed lane " << l << " diverged from the scalar protocol at "
          << "element " << i;
    }
  }

  // Wire cost: every protocol round moves the round's input vector to the
  // model provider and its output vector back.
  const uint64_t ct_bytes = static_cast<uint64_t>(key_bits) / 4;
  uint64_t scalar_payload = 0, packed_payload = 0;
  for (const LinearStage& stage : packed_plan->linear_stages) {
    const uint64_t round_elems =
        static_cast<uint64_t>(stage.input_shape.NumElements()) +
        static_cast<uint64_t>(stage.output_shape.NumElements());
    scalar_payload += round_elems * static_cast<uint64_t>(batch) * ct_bytes;
    packed_payload += round_elems * ct_bytes *
                      (stage.packed_layout.has_value()
                           ? 1
                           : static_cast<uint64_t>(batch));
  }
  const double muls_factor = static_cast<double>(scalar_muls) /
                             static_cast<double>(packed_muls);
  const double enc_factor = static_cast<double>(scalar_encrypts) /
                            static_cast<double>(packed_encrypts);
  const double bytes_factor = static_cast<double>(scalar_payload) /
                              static_cast<double>(packed_payload);
  std::printf("packing[MNIST-2]: %lld lanes/word, batch of %lld\n",
              static_cast<long long>(plan_lanes),
              static_cast<long long>(batch));
  std::printf("  scalar_muls %llu -> %llu (%.1fx), encrypts %llu -> %llu "
              "(%.1fx), payload %llu -> %llu bytes (%.1fx)\n",
              static_cast<unsigned long long>(scalar_muls),
              static_cast<unsigned long long>(packed_muls), muls_factor,
              static_cast<unsigned long long>(scalar_encrypts),
              static_cast<unsigned long long>(packed_encrypts), enc_factor,
              static_cast<unsigned long long>(scalar_payload),
              static_cast<unsigned long long>(packed_payload), bytes_factor);
  PPS_CHECK(muls_factor >= 4.0)
      << "packing cut scalar muls only " << muls_factor << "x (target 4x)";
  PPS_CHECK(enc_factor >= 4.0)
      << "packing cut encrypts only " << enc_factor << "x (target 4x)";
  PPS_CHECK(bytes_factor >= 3.0)
      << "packing cut payload bytes only " << bytes_factor << "x (target 3x)";

  // Compression-aware kernels: prune + quantize the same model, re-check
  // plaintext accuracy, and recount the packed group muls (one scalar-mul
  // per distinct quantized weight value per row).
  CompressionSpec comp_spec;
  comp_spec.prune_fraction = 0.25;
  comp_spec.weight_bits = 6;
  CompressionReport comp_report;
  auto compressed = CompressModel(entry.model, comp_spec, &comp_report);
  PPS_CHECK_OK(compressed.status());
  auto base_acc = EvaluateAccuracy(entry.model, entry.data.test);
  auto comp_acc = EvaluateAccuracy(compressed.value(), entry.data.test);
  PPS_CHECK_OK(base_acc.status());
  PPS_CHECK_OK(comp_acc.status());
  auto comp_plan_or = CompilePlan(compressed.value(), /*scale=*/10000,
                                  pack_opts);
  PPS_CHECK_OK(comp_plan_or.status());
  const int64_t comp_group_muls =
      comp_plan_or.value().compile_stats.packed_group_muls;
  std::printf("  compressed (prune 0.25, 6-bit): %lld -> %lld packed group "
              "muls, accuracy %.3f -> %.3f\n\n",
              static_cast<long long>(pack_stats.packed_group_muls),
              static_cast<long long>(comp_group_muls), *base_acc, *comp_acc);
  PPS_CHECK(comp_group_muls < pack_stats.packed_group_muls)
      << "quantization failed to shrink the packed group-mul count";

  // ---- JSON report.
  std::ofstream json(out_path);
  PPS_CHECK(json.good()) << "cannot write " << out_path;
  json << "{\n  \"model\": \"MNIST-2\",\n";
  json << "  \"requests\": " << num_requests << ",\n";
  json << "  \"key_bits\": " << key_bits << ",\n";
  json << "  \"wall_seconds\": " << elapsed << ",\n";
  json << "  \"stages\": [\n";
  const auto histograms = registry.Histograms("stage.");
  std::printf("%-16s %6s %10s %10s %10s %10s %12s\n", "stage", "count",
              "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "bytes_out");
  PrintRule();
  bool first = true;
  for (const auto& [name, histogram] : histograms) {
    const std::string stage = StageOf(name);
    const uint64_t bytes_out =
        registry.GetCounter("stage." + stage + ".bytes_out")->Value();
    if (!first) json << ",\n";
    first = false;
    json << "    {\"name\": \"" << stage << "\""
         << ", \"count\": " << histogram->Count()
         << ", \"p50_ms\": " << Ms(histogram->Quantile(0.5))
         << ", \"p95_ms\": " << Ms(histogram->Quantile(0.95))
         << ", \"p99_ms\": " << Ms(histogram->Quantile(0.99))
         << ", \"max_ms\": " << Ms(histogram->Max())
         << ", \"mean_ms\": " << Ms(histogram->Mean())
         << ", \"bytes_out\": " << bytes_out << "}";
    std::printf("%-16s %6llu %10.2f %10.2f %10.2f %10.2f %12llu\n",
                stage.c_str(),
                static_cast<unsigned long long>(histogram->Count()),
                Ms(histogram->Quantile(0.5)), Ms(histogram->Quantile(0.95)),
                Ms(histogram->Quantile(0.99)), Ms(histogram->Max()),
                static_cast<unsigned long long>(bytes_out));
  }
  json << "\n  ],\n  \"fusion\": [\n";
  for (size_t i = 0; i < fusion.size(); ++i) {
    const FusionRecord& rec = fusion[i];
    json << "    {\"model\": \"" << rec.model << "\""
         << ", \"policy\": \"scalar-mul-count\""
         << ", \"linear_ops_before\": " << rec.ops_before
         << ", \"linear_ops_after\": " << rec.ops_after
         << ", \"ops_fused\": " << rec.stats.ops_fused
         << ", \"dead_tensors_removed\": " << rec.stats.dead_tensors_removed
         << ", \"plan_scalar_muls_before\": "
         << rec.stats.scalar_muls_before_fusion
         << ", \"plan_scalar_muls_after\": "
         << rec.stats.scalar_muls_after_fusion
         << ", \"expected_savings\": "
         << (rec.stats.scalar_muls_before_fusion -
             rec.stats.scalar_muls_after_fusion)
         << ", \"measured_scalar_muls_unfused\": " << rec.muls_unfused
         << ", \"measured_scalar_muls_fused\": " << rec.muls_fused
         << ", \"outputs_bit_identical\": true}"
         << (i + 1 < fusion.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"packing\": {\n";
  json << "    \"key_bits\": " << key_bits << ",\n";
  json << "    \"lanes\": " << plan_lanes << ",\n";
  json << "    \"batch\": " << batch << ",\n";
  json << "    \"rounds_packed\": " << pack_stats.rounds_packed << ",\n";
  json << "    \"rounds_fallback\": " << pack_stats.rounds_packing_fallback
       << ",\n";
  json << "    \"stages\": [\n";
  for (size_t i = 0; i < packed_plan->linear_stages.size(); ++i) {
    const LinearStage& stage = packed_plan->linear_stages[i];
    int64_t stage_muls = 0, stage_group_muls = 0;
    for (const auto& op : stage.ops) stage_muls += op.EncryptedScalarMuls();
    for (const auto& kernel : stage.packed_kernels) {
      stage_group_muls += kernel.GroupScalarMuls();
    }
    json << "      {\"name\": \"" << stage.name << "\""
         << ", \"packed\": "
         << (stage.packed_layout.has_value() ? "true" : "false");
    if (stage.packed_layout.has_value()) {
      json << ", \"lanes\": " << stage.packed_layout->lanes
           << ", \"slot_bits\": " << stage.packed_layout->slot_bits
           << ", \"guard_bits\": " << stage.packed_layout->guard_bits;
    }
    // Per-batch cost: the scalar path pays per lane, a packed round once.
    json << ", \"scalar_muls_per_batch\": " << stage_muls * batch
         << ", \"packed_group_muls_per_batch\": "
         << (stage.packed_layout.has_value() ? stage_group_muls
                                             : stage_muls * batch)
         << "}" << (i + 1 < packed_plan->linear_stages.size() ? ",\n" : "\n");
  }
  json << "    ],\n";
  json << "    \"measured\": {\"scalar_muls_scalar\": " << scalar_muls
       << ", \"scalar_muls_packed\": " << packed_muls
       << ", \"encrypts_scalar\": " << scalar_encrypts
       << ", \"encrypts_packed\": " << packed_encrypts
       << ", \"payload_bytes_scalar\": " << scalar_payload
       << ", \"payload_bytes_packed\": " << packed_payload
       << ", \"outputs_bit_identical\": true},\n";
  json << "    \"compression\": {\"prune_fraction\": "
       << comp_spec.prune_fraction
       << ", \"weight_bits\": " << comp_spec.weight_bits
       << ", \"weights_pruned\": " << comp_report.weights_pruned
       << ", \"distinct_values_before\": " << comp_report.distinct_before
       << ", \"distinct_values_after\": " << comp_report.distinct_after
       << ", \"packed_group_muls_base\": " << pack_stats.packed_group_muls
       << ", \"packed_group_muls_compressed\": " << comp_group_muls
       << ", \"accuracy_base\": " << *base_acc
       << ", \"accuracy_compressed\": " << *comp_acc << "}\n";
  json << "  },\n  \"counters\": {\n";
  std::printf("\ncounter totals:\n");
  first = true;
  for (const auto* counters : {&crypto_counters, &net_counters}) {
    for (const auto& [name, value] : *counters) {
      if (!first) json << ",\n";
      first = false;
      json << "    \"" << name << "\": " << value;
      std::printf("  %-24s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  json << "\n  }\n}\n";
  json.close();
  std::printf("\nwrote %s\n", out_path);

  // ---- Prometheus exposition through the shared render-and-validate
  // path (the admin endpoint's live /metrics uses the same one, so the
  // file dump can never drift from what a scraper sees).
  auto prom_or = obs::CheckedPrometheusText(registry);
  PPS_CHECK(prom_or.ok()) << "Prometheus exposition failed its own linter: "
                          << prom_or.status().ToString();
  const std::string& prom = prom_or.value();
  std::ofstream prom_out(prom_path);
  PPS_CHECK(prom_out.good()) << "cannot write " << prom_path;
  prom_out << prom;
  prom_out.close();
  std::printf("wrote %s (lint OK)\n", prom_path);

  if (trace_path != nullptr) {
    std::ofstream trace_out(trace_path);
    obs::Tracer::Global().WriteChromeJson(trace_out);
    std::printf("wrote %zu span(s) to %s\n",
                obs::Tracer::Global().Snapshot().size(), trace_path);
  }
  std::printf("\nbench_pipeline OK\n");
  return 0;
}
