// Tables IV & V (Exp#1) — inference accuracy versus scaling factor on the
// training and testing sets, for all nine models, F = 10^0 .. 10^6.
//
// The paper's headline behaviours to reproduce:
//   * accuracy at F = 10^0 is near-random (weights round to 0);
//   * accuracy climbs with F and plateaus at the original accuracy;
//   * the selection rule (0.01% threshold on the training set, f <= 6)
//     picks a factor whose TEST accuracy matches the unscaled model.

// The compressed-variant table extends Exp#1 to the packing path's
// compression lever: per model, magnitude pruning and k-bit weight
// quantization (nn/compress.h) with the accuracy delta re-checked the
// same way — the deltas must stay bounded, since every distinct weight
// value removed is a homomorphic scalar-mul saved per packed row.

#include "bench/bench_common.h"
#include "nn/compress.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Tables IV & V (Exp#1): accuracy vs scaling factor ==\n\n");

  struct Row {
    const char* name;
    std::vector<double> train_acc;  // per f = 0..6
    std::vector<double> test_acc;
    double train_orig, test_orig;
    int selected_f;
    // Compressed variants (prune 0.3 / 5-bit quant / both), test set.
    std::vector<double> comp_acc;
    std::vector<double> comp_distinct_ratio;  // distinct values kept
  };
  std::vector<Row> rows;

  const struct {
    const char* label;
    CompressionSpec spec;
  } kVariants[] = {
      {"prune30", {0.3, 0}},
      {"quant5b", {0.0, 5}},
      {"both", {0.3, 5}},
  };

  for (const ZooInfo& info : AllZooInfos()) {
    TrainedEntry entry = Train(info.id);
    Row row;
    row.name = info.dataset_name;

    auto train_orig = EvaluateAccuracy(entry.model, entry.data.train);
    auto test_orig = EvaluateAccuracy(entry.model, entry.data.test);
    PPS_CHECK_OK(train_orig.status());
    PPS_CHECK_OK(test_orig.status());
    row.train_orig = train_orig.value();
    row.test_orig = test_orig.value();

    for (int f = 0; f <= 6; ++f) {
      auto rounded = RoundModelParameters(entry.model, f);
      PPS_CHECK_OK(rounded.status());
      auto tr = EvaluateAccuracy(rounded.value(), entry.data.train);
      auto te = EvaluateAccuracy(rounded.value(), entry.data.test);
      PPS_CHECK_OK(tr.status());
      PPS_CHECK_OK(te.status());
      row.train_acc.push_back(tr.value());
      row.test_acc.push_back(te.value());
    }
    auto selection = SelectScalingFactor(entry.model, entry.data.train);
    PPS_CHECK_OK(selection.status());
    row.selected_f = selection.value().f;

    for (const auto& variant : kVariants) {
      CompressionReport report;
      auto compressed = CompressModel(entry.model, variant.spec, &report);
      PPS_CHECK_OK(compressed.status());
      auto acc = EvaluateAccuracy(compressed.value(), entry.data.test);
      PPS_CHECK_OK(acc.status());
      row.comp_acc.push_back(acc.value());
      row.comp_distinct_ratio.push_back(
          report.distinct_before == 0
              ? 1.0
              : static_cast<double>(report.distinct_after) /
                    static_cast<double>(report.distinct_before));
    }
    rows.push_back(std::move(row));
    std::printf("trained %s\n", info.dataset_name);
  }

  auto print_table = [&](const char* title, bool train) {
    std::printf("\n%s\n", title);
    std::printf("%-12s", "Model");
    for (int f = 0; f <= 6; ++f) std::printf("   10^%d", f);
    std::printf("   Orig.  selected\n");
    PrintRule();
    for (const Row& row : rows) {
      std::printf("%-12s", row.name);
      const auto& acc = train ? row.train_acc : row.test_acc;
      for (int f = 0; f <= 6; ++f) {
        std::printf(" %6.2f", 100 * acc[f]);
      }
      std::printf(" %7.2f     10^%d\n",
                  100 * (train ? row.train_orig : row.test_orig),
                  row.selected_f);
    }
  };
  print_table("Table IV: accuracy (%) on the TRAINING set", true);
  print_table("Table V: accuracy (%) on the TESTING set", false);

  std::printf("\nCompressed variants: TEST accuracy (%%) and distinct weight "
              "values kept\n");
  std::printf("%-12s %7s", "Model", "Orig.");
  for (const auto& variant : kVariants) {
    std::printf(" %9s %6s", variant.label, "kept");
  }
  std::printf("\n");
  PrintRule();
  double worst_delta = 0;
  for (const Row& row : rows) {
    std::printf("%-12s %7.2f", row.name, 100 * row.test_orig);
    for (size_t v = 0; v < row.comp_acc.size(); ++v) {
      std::printf(" %9.2f %5.1f%%", 100 * row.comp_acc[v],
                  100 * row.comp_distinct_ratio[v]);
      worst_delta = std::max(worst_delta, row.test_orig - row.comp_acc[v]);
    }
    std::printf("\n");
  }
  std::printf("\nworst compressed-variant test accuracy drop: %.2f%%\n",
              100 * worst_delta);
  // Bounded-delta shape check: moderate pruning + 5-bit quantization must
  // not collapse any model toward chance.
  PPS_CHECK(worst_delta < 0.20)
      << "a compressed variant lost " << 100 * worst_delta
      << "% test accuracy; compression defaults are too aggressive";

  std::printf("\nshape checks: low-F accuracy collapses toward chance; "
              "accuracy is monotone-ish in F;\nthe selected factor's test "
              "accuracy equals the original (rightmost column);\ncompressed "
              "variants (packing's group-mul lever) stay within a bounded "
              "accuracy delta.\n");
  return 0;
}
