// Google-benchmark microbenchmarks for the crypto substrate: BigInt
// arithmetic, Montgomery exponentiation, Paillier primitives, SHA-256,
// permutation. These are the constants behind Figure 1 and the profiler.

#include <benchmark/benchmark.h>

#include "bignum/fixed_base.h"
#include "bignum/montgomery.h"
#include "bignum/prime.h"
#include "crypto/paillier.h"
#include "crypto/permutation.h"
#include "crypto/randomizer_pool.h"
#include "crypto/sha256.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppstream {
namespace {

BigInt RandomOdd(int bits, uint64_t seed) {
  Rng rng(seed);
  BigInt v = BigInt::RandomBits(rng, bits);
  if (!v.IsOdd()) v = v + BigInt(1);
  return v;
}

void BM_BigIntMul(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(1);
  BigInt a = BigInt::RandomBits(rng, bits);
  BigInt b = BigInt::RandomBits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BigIntDivMod(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(2);
  BigInt a = BigInt::RandomBits(rng, 2 * bits);
  BigInt b = BigInt::RandomBits(rng, bits);
  for (auto _ : state) {
    BigInt q, r;
    benchmark::DoNotOptimize(BigInt::DivMod(a, b, &q, &r));
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MontgomeryModExp(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(3);
  BigInt m = RandomOdd(bits, 4);
  MontgomeryContext ctx(m);
  BigInt base = BigInt::RandomBelow(rng, m);
  BigInt exp = BigInt::RandomBits(rng, bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModExp(base, exp));
  }
}
BENCHMARK(BM_MontgomeryModExp)->Arg(512)->Arg(1024)->Arg(2048);

void BM_PaillierEncrypt(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(5);
  auto keys = Paillier::GenerateKeyPair(bits, rng);
  SecureRng srng = SecureRng::FromSeed(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::Encrypt(keys.value().public_key, BigInt(123456), srng));
  }
}
BENCHMARK(BM_PaillierEncrypt)->Arg(256)->Arg(512)->Arg(1024);

void BM_PaillierDecrypt(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(7);
  auto keys = Paillier::GenerateKeyPair(bits, rng);
  SecureRng srng = SecureRng::FromSeed(8);
  auto c = Paillier::Encrypt(keys.value().public_key, BigInt(-98765), srng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Paillier::Decrypt(
        keys.value().public_key, keys.value().private_key, c.value()));
  }
}
BENCHMARK(BM_PaillierDecrypt)->Arg(256)->Arg(512)->Arg(1024);

void BM_PaillierScalarMul(benchmark::State& state) {
  Rng rng(9);
  auto keys = Paillier::GenerateKeyPair(512, rng);
  SecureRng srng = SecureRng::FromSeed(10);
  auto c = Paillier::Encrypt(keys.value().public_key, BigInt(42), srng);
  const BigInt w(static_cast<int64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::ScalarMul(keys.value().public_key, c.value(), w));
  }
}
BENCHMARK(BM_PaillierScalarMul)->Arg(10)->Arg(100000)->Arg(10000000);

// The amortized hot path: the same ciphertext raised to many quantized
// weights through a precomputed fixed-base table. Compare against
// BM_PaillierScalarMul at the same weight magnitudes — the gap is what one
// Eq. (3) term saves once the table exists.
void BM_PaillierScalarMulFixedBase(benchmark::State& state) {
  Rng rng(9);
  auto keys = Paillier::GenerateKeyPair(512, rng);
  SecureRng srng = SecureRng::FromSeed(10);
  auto c = Paillier::Encrypt(keys.value().public_key, BigInt(42), srng);
  const BigInt w(static_cast<int64_t>(state.range(0)));
  auto base = Paillier::PrecomputeScalarMulBase(
      keys.value().public_key, c.value(), /*max_weight_bits=*/24,
      /*allow_negative=*/false, /*fan_out_hint=*/256);
  PPS_CHECK_OK(base.status());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::ScalarMulPrecomputed(base.value(), w));
  }
}
BENCHMARK(BM_PaillierScalarMulFixedBase)->Arg(10)->Arg(100000)->Arg(10000000);

// Table-build cost for one input slot (break-even: this divided by the
// per-call saving of BM_PaillierScalarMulFixedBase vs BM_PaillierScalarMul
// gives the fan-out where tables start paying off).
void BM_PaillierFixedBaseTableBuild(benchmark::State& state) {
  Rng rng(9);
  auto keys = Paillier::GenerateKeyPair(512, rng);
  SecureRng srng = SecureRng::FromSeed(10);
  auto c = Paillier::Encrypt(keys.value().public_key, BigInt(42), srng);
  const int64_t fan_out = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Paillier::PrecomputeScalarMulBase(
        keys.value().public_key, c.value(), /*max_weight_bits=*/24,
        /*allow_negative=*/false, fan_out));
  }
}
BENCHMARK(BM_PaillierFixedBaseTableBuild)->Arg(8)->Arg(64)->Arg(1024);

// Pool-backed encryption: r^n comes precomputed, the request path is one
// ModMul. Refills happen outside the timed region, mirroring a pool that
// refills between requests.
void BM_PaillierEncryptPooled(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  Rng rng(5);
  auto keys = Paillier::GenerateKeyPair(bits, rng);
  RandomizerPool::Options options;
  options.capacity = 512;
  options.background_refill = false;
  RandomizerPool pool(keys.value().public_key, 6, options);
  pool.Fill();
  for (auto _ : state) {
    if (pool.available() == 0) {
      state.PauseTiming();
      pool.Fill();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.Encrypt(BigInt(123456)));
  }
}
BENCHMARK(BM_PaillierEncryptPooled)->Arg(256)->Arg(512)->Arg(1024);

void BM_PaillierRerandomizePooled(benchmark::State& state) {
  Rng rng(5);
  auto keys = Paillier::GenerateKeyPair(512, rng);
  SecureRng srng = SecureRng::FromSeed(6);
  auto c = Paillier::Encrypt(keys.value().public_key, BigInt(7), srng);
  RandomizerPool::Options options;
  options.capacity = 512;
  options.background_refill = false;
  RandomizerPool pool(keys.value().public_key, 8, options);
  pool.Fill();
  for (auto _ : state) {
    if (pool.available() == 0) {
      state.PauseTiming();
      pool.Fill();
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.Rerandomize(c.value()));
  }
}
BENCHMARK(BM_PaillierRerandomizePooled);

// Small-exponent ModExp: the adaptive window keeps quantized-weight
// exponentiations from paying a full 16-entry table build per call.
void BM_MontgomeryModExpSmallExp(benchmark::State& state) {
  Rng rng(3);
  BigInt m = RandomOdd(1024, 4);  // n^2 width for a 512-bit key
  MontgomeryContext ctx(m);
  BigInt base = BigInt::RandomBelow(rng, m);
  BigInt exp(static_cast<int64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.ModExp(base, exp));
  }
}
BENCHMARK(BM_MontgomeryModExpSmallExp)->Arg(10)->Arg(1000)->Arg(100000);

void BM_PaillierHomAdd(benchmark::State& state) {
  Rng rng(11);
  auto keys = Paillier::GenerateKeyPair(512, rng);
  SecureRng srng = SecureRng::FromSeed(12);
  auto c1 = Paillier::Encrypt(keys.value().public_key, BigInt(1), srng);
  auto c2 = Paillier::Encrypt(keys.value().public_key, BigInt(2), srng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Paillier::Add(keys.value().public_key, c1.value(), c2.value()));
  }
}
BENCHMARK(BM_PaillierHomAdd);

void BM_Sha256(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096);

void BM_PermutationApply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SecureRng rng = SecureRng::FromSeed(13);
  Permutation p = Permutation::Random(n, rng);
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.Apply(v));
  }
}
BENCHMARK(BM_PermutationApply)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace ppstream

BENCHMARK_MAIN();
