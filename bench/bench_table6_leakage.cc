// Table VI (Exp#5) — information-leakage measurement.
//
// The obfuscation permutes positions but not values, so the permuted
// tensor still leaks some information; the paper quantifies it as the
// distance correlation between the tensor before and after obfuscation,
// bucketed by tensor length 2^5..2^13, averaged over the inference runs
// of all models (values within a bucket agree to <0.1%).
//
// We run privacy-preserving inferences with transcript capture on the
// healthcare and MNIST models, pool the pre-obfuscation activation values,
// and measure dCor(v, P(v)) with fresh random permutations for each
// power-of-two length.

#include "bench/bench_common.h"

#include "crypto/permutation.h"
#include "stats/dcor.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Table VI (Exp#5): information leakage (distance "
              "correlation) ==\n\n");
  constexpr int kKeyBits = 256;  // leakage is key-size independent

  // Pool activation values from real protocol transcripts.
  std::vector<double> pool;
  for (ZooModelId id :
       {ZooModelId::kBreast, ZooModelId::kCardio, ZooModelId::kMnist2}) {
    TrainedEntry entry = Train(id);
    ProtocolSetup setup = Setup(entry.model, 1000, kKeyBits);
    for (size_t i = 0; i < 2; ++i) {
      LeakageTranscript transcript;
      auto out = RunProtocolInference(*setup.mp, *setup.dp, i,
                                      entry.data.test.samples[i],
                                      &transcript);
      PPS_CHECK_OK(out.status());
      for (const auto& round : transcript.rounds) {
        pool.insert(pool.end(), round.before_obfuscation.begin(),
                    round.before_obfuscation.end());
      }
    }
    std::printf("collected %zu activation values after %s\n", pool.size(),
                GetZooInfo(id).dataset_name);
  }

  std::printf("\n%-14s %12s      %-14s %12s\n", "Tensor Length", "Distance",
              "Tensor Length", "Distance");
  PrintRule();
  SecureRng prng = SecureRng::FromSeed(0x0BF5CA7E);
  Rng pick(7);
  std::vector<std::pair<int, double>> rows;
  for (int k = 5; k <= 13; ++k) {
    const size_t len = size_t{1} << k;
    constexpr int kTrials = 5;
    double sum = 0;
    for (int t = 0; t < kTrials; ++t) {
      // Draw a chunk of real activations (wrapping the pool if needed).
      std::vector<double> v(len);
      const size_t start = pick.NextBounded(pool.size());
      for (size_t i = 0; i < len; ++i) {
        v[i] = pool[(start + i) % pool.size()];
      }
      Permutation p = Permutation::Random(len, prng);
      auto d = DistanceCorrelation(v, p.Apply(v));
      PPS_CHECK_OK(d.status());
      sum += d.value();
    }
    rows.emplace_back(k, sum / kTrials);
  }
  for (size_t i = 0; i < rows.size(); i += 2) {
    if (i + 1 < rows.size()) {
      std::printf("2^%-12d %12.4f      2^%-12d %12.4f\n", rows[i].first,
                  rows[i].second, rows[i + 1].first, rows[i + 1].second);
    } else {
      std::printf("2^%-12d %12.4f\n", rows[i].first, rows[i].second);
    }
  }
  std::printf("\nshape check vs paper Table VI: dCor decreases "
              "monotonically with tensor length\n(paper: 0.2898 at 2^5 "
              "down to 0.0200 at 2^13) — larger tensors leak less.\n");
  return 0;
}
