// Figure 1 — homomorphic encryption micro-benchmark.
//
// Paper setup: a 28x28 tensor is encrypted with Paillier, scalar-multiplied
// by 10^6, homomorphically added to itself, and decrypted; latency is
// reported per tensor versus key size. Encryption/decryption land in
// seconds, arithmetic in milliseconds — the motivation for PP-Stream's
// system-level optimizations.
//
// We measure per-element op latency over a sample of elements and report
// the per-tensor (784-element) figure, sweeping key sizes 256..2048.

#include <cstdlib>

#include "bench/bench_common.h"
#include "crypto/secure_rng.h"

using namespace ppstream;
using namespace ppstream::bench;

int main(int argc, char** argv) {
  // Optional cap on the key-size sweep (CI smoke mode skips the minutes of
  // 1024/2048-bit keygen): bench_fig1_paillier [max_key_bits].
  int max_bits = 2048;
  if (argc > 1) max_bits = std::atoi(argv[1]);

  std::printf("== Figure 1: Paillier micro-benchmark (28x28 tensor, scalar "
              "10^6) ==\n\n");
  std::printf("%-10s %14s %14s %14s %14s\n", "key bits", "encrypt (s)",
              "decrypt (s)", "scalar-mul (s)", "hom-add (s)");
  PrintRule();

  constexpr int64_t kTensorElems = 28 * 28;
  const BigInt kScalar(1000000);  // the paper's 10^6 multiplier

  for (int bits : {256, 512, 1024, 2048}) {
    if (bits > max_bits) continue;
    const PaillierKeyPair& keys = SharedKeys(bits);
    SecureRng rng = SecureRng::FromSeed(42);
    // Fewer sampled elements at larger (slower) key sizes.
    const int samples = bits >= 2048 ? 4 : bits >= 1024 ? 8 : 24;

    // Encrypt.
    std::vector<Ciphertext> cts;
    WallTimer timer;
    for (int i = 0; i < samples; ++i) {
      auto c = Paillier::Encrypt(keys.public_key, BigInt(i * 37 - 50), rng);
      PPS_CHECK_OK(c.status());
      cts.push_back(std::move(c).value());
    }
    const double enc = timer.ElapsedSeconds() / samples * kTensorElems;

    // Scalar multiplication by 10^6.
    timer.Restart();
    std::vector<Ciphertext> scaled;
    for (int i = 0; i < samples; ++i) {
      auto c = Paillier::ScalarMul(keys.public_key, cts[i], kScalar);
      PPS_CHECK_OK(c.status());
      scaled.push_back(std::move(c).value());
    }
    const double mul = timer.ElapsedSeconds() / samples * kTensorElems;

    // Homomorphic addition (original + scaled).
    timer.Restart();
    std::vector<Ciphertext> sums;
    for (int i = 0; i < samples; ++i) {
      sums.push_back(Paillier::Add(keys.public_key, cts[i], scaled[i]));
    }
    const double add = timer.ElapsedSeconds() / samples * kTensorElems;

    // Decrypt.
    timer.Restart();
    for (int i = 0; i < samples; ++i) {
      PPS_CHECK_OK(
          Paillier::Decrypt(keys.public_key, keys.private_key, sums[i])
              .status());
    }
    const double dec = timer.ElapsedSeconds() / samples * kTensorElems;

    std::printf("%-10d %14.3f %14.3f %14.4f %14.5f\n", bits, enc, dec, mul,
                add);
  }
  // Plaintext comparison (the paper quotes 2.1 / 1.7 us per tensor).
  {
    std::vector<int64_t> v(kTensorElems, 12345);
    WallTimer timer;
    volatile int64_t sink = 0;
    for (int rep = 0; rep < 1000; ++rep) {
      for (auto& x : v) sink = sink + x * 1000000;
    }
    const double mul_us = timer.ElapsedMicros() / 1000.0;
    timer.Restart();
    for (int rep = 0; rep < 1000; ++rep) {
      for (auto& x : v) sink = sink + x + 7;
    }
    const double add_us = timer.ElapsedMicros() / 1000.0;
    std::printf("measured plaintext per tensor: scalar-mul %.2f us, add "
                "%.2f us\n",
                mul_us, add_us);
  }
  std::printf("\nshape check vs paper: enc/dec in seconds, arithmetic in "
              "milliseconds,\nall growing superlinearly with key size.\n");
  return 0;
}
