// Serving-plane bench: concurrency sweep against a live TCP server with
// the observability plane on (DESIGN.md §14).
//
// One ModelProviderTcpServer (MNIST-2, thread-per-connection) is swept
// with 1 → 32 concurrent client sessions, each running scalar protocol
// inferences end-to-end over loopback TCP. Per level it reports exact
// p50/p95/p99 request latency (sorted samples, not bucketed), sustained
// throughput, the randomizer-pool miss rate, and the per-request cost
// attribution outcome (reconciled vs contention-skipped samples, and the
// measured/expected ratio means).
//
// Mid-sweep — while the highest level's inferences are in flight — the
// admin endpoint is scraped over a raw socket: /metrics must pass
// CheckPrometheusText and carry the serving + cost families, /statusz
// must be live JSON with the expected session occupancy, and /healthz
// must be 200. The scraped exposition body is the --prom output, so
// run_benchmarks.sh lints exactly what a scraper would see.
//
// Cost-ratio acceptance is asserted here, not just reported:
//   - at concurrency 1 every sample reconciles (nothing overlaps), and
//     both the client-side encrypt ratio and the server-side scalar-mul
//     ratio must average within ±5% of the plan-derived budget;
//   - a packed-batch probe (in-process, RunPackedBatchInference needs
//     concrete providers) must land its measured/expected ratios in the
//     same band against ExpectedPackedBatchCost.
// At higher levels same-component intervals overlap and those samples
// are skipped (cost.contended_skips) rather than mispriced — the bench
// reports how many survive per level.
//
//   bench_serving [--smoke] [--out bench/BENCH_serving.json]
//                 [--prom FILE]

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/cost.h"
#include "obs/metrics.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

double Ms(double seconds) { return seconds * 1e3; }

constexpr double kRatioLo = 0.95;
constexpr double kRatioHi = 1.05;

/// One-shot HTTP/1.0 GET against the admin endpoint; returns the whole
/// response (status line + headers + body). The endpoint closes after
/// one response, so EOF delimits it.
std::string AdminGet(uint16_t admin_port, const std::string& target) {
  auto sock = TcpSocket::Connect("127.0.0.1", admin_port, 5.0);
  PPS_CHECK_OK(sock.status());
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  PPS_CHECK_OK(sock->SendAll(reinterpret_cast<const uint8_t*>(request.data()),
                             request.size(), 5.0));
  std::string response;
  uint8_t buf[4096];
  for (;;) {
    auto n = sock->RecvSome(buf, sizeof(buf), 5.0);
    if (!n.ok()) break;  // clean close ends the response
    response.append(reinterpret_cast<const char*>(buf), *n);
  }
  return response;
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  PPS_CHECK(split != std::string::npos) << "admin response has no body";
  return response.substr(split + 4);
}

/// Mean of a histogram over a [before, after) window (exact: Sum() and
/// Count() are not bucketed).
struct HistWindow {
  uint64_t count0 = 0;
  double sum0 = 0;
  const obs::Histogram* hist = nullptr;

  static HistWindow Open(const char* name) {
    HistWindow w;
    w.hist = obs::MetricsRegistry::Global().GetHistogram(name);
    w.count0 = w.hist->Count();
    w.sum0 = w.hist->Sum();
    return w;
  }
  uint64_t Count() const { return hist->Count() - count0; }
  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : (hist->Sum() - sum0) / static_cast<double>(n);
  }
};

struct LevelReport {
  size_t concurrency = 0;
  size_t requests = 0;
  double wall_seconds = 0;
  double throughput_rps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0, max_ms = 0;
  double pool_miss_rate = 0;
  uint64_t cost_reconciled = 0;
  uint64_t cost_skipped = 0;
  uint64_t scalar_ratio_samples = 0;
  double scalar_ratio_mean = 0;
  uint64_t encrypt_ratio_samples = 0;
  double encrypt_ratio_mean = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "bench/BENCH_serving.json";
  const char* prom_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    }
  }
  const std::vector<size_t> levels =
      smoke ? std::vector<size_t>{1, 2, 4, 8}
            : std::vector<size_t>{1, 2, 4, 8, 16, 32};
  const size_t requests_per_client = smoke ? 2 : 4;
  const int key_bits = 256;  // the sweep measures serving, not key size

  std::printf("== serving sweep (MNIST-2, %zu..%zu sessions, %zu req/session, "
              "%d-bit keys%s) ==\n\n",
              levels.front(), levels.back(), requests_per_client, key_bits,
              smoke ? ", smoke" : "");

  // Same MNIST-2 model/plan the two-process example serves (mp_server).
  DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2,
                                     /*size_scale=*/0.005, /*seed=*/3);
  auto model = MakeTrainedZooModel(ZooModelId::kMnist2, data.train, 4);
  PPS_CHECK_OK(model.status());
  auto plan_or = CompilePlan(model.value(), /*scale=*/10000);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<const InferencePlan>(std::move(plan_or).value());
  const PaillierKeyPair& keys = SharedKeys(key_bits);
  PPS_CHECK_OK(plan->CheckFitsKey(keys.public_key.n()));

  // Plain-path references for bit-exactness (protocol output is a pure
  // function of plan + input).
  const size_t num_inputs = std::min<size_t>(data.test.samples.size(), 8);
  PPS_CHECK(num_inputs > 0) << "empty test split";
  std::vector<DoubleTensor> expected;
  for (size_t i = 0; i < num_inputs; ++i) {
    auto ref = RunScaledPlainInference(*plan, data.test.samples[i]);
    PPS_CHECK_OK(ref.status());
    expected.push_back(std::move(ref).value());
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  ModelProviderServerOptions options;
  options.admin_port = 0;  // ephemeral: read back below
  options.max_concurrent_connections = levels.back();
  options.session.max_sessions = levels.back() * 2;
  ModelProviderTcpServer server(plan, options);
  PPS_CHECK_OK(server.Listen(0));
  const uint16_t port = server.port();
  const uint16_t admin_port = server.admin_port();
  PPS_CHECK(admin_port != 0) << "admin endpoint did not start";
  std::thread server_thread([&server] { PPS_CHECK_OK(server.Serve()); });
  std::printf("server on 127.0.0.1:%u, admin on 127.0.0.1:%u\n\n", port,
              admin_port);

  obs::Counter* pool_hits = registry.GetCounter("crypto.pool.hits");
  obs::Counter* pool_misses = registry.GetCounter("crypto.pool.misses");
  obs::Counter* reconciled = registry.GetCounter("cost.reconciled");
  obs::Counter* skipped = registry.GetCounter("cost.contended_skips");

  std::vector<LevelReport> reports;
  std::string scraped_metrics, scraped_statusz;
  for (size_t level : levels) {
    const uint64_t hits0 = pool_hits->Value(), misses0 = pool_misses->Value();
    const uint64_t reconciled0 = reconciled->Value();
    const uint64_t skipped0 = skipped->Value();
    HistWindow scalar_ratio = HistWindow::Open("cost.scalar_mul_ratio");
    HistWindow encrypt_ratio = HistWindow::Open("cost.encrypt_ratio");

    std::vector<std::vector<double>> latencies(level);
    std::vector<std::thread> clients;
    WallTimer wall;
    for (size_t c = 0; c < level; ++c) {
      clients.emplace_back([&, c] {
        auto transport = TcpTransport::Connect("127.0.0.1", port,
                                               keys.public_key);
        PPS_CHECK_OK(transport.status());
        DataProvider dp(transport.value()->view_plan(), keys,
                        /*enc_seed=*/0x5E21 + level * 100 + c);
        ModelProviderApi& mp = *transport.value()->model_provider();
        for (size_t r = 0; r < requests_per_client; ++r) {
          const size_t input_idx = (c + r) % num_inputs;
          const uint64_t request_id =
              level * 100000 + c * 100 + r + 1;  // unique across the sweep
          WallTimer timer;
          auto out = RunProtocolInference(mp, dp, request_id,
                                          data.test.samples[input_idx]);
          latencies[c].push_back(timer.ElapsedSeconds());
          PPS_CHECK_OK(out.status());
          for (int64_t j = 0; j < out->NumElements(); ++j) {
            PPS_CHECK(out.value()[j] == expected[input_idx][j])
                << "level " << level << " client " << c
                << ": served inference diverged from the plain reference";
          }
        }
        transport.value()->Close();
      });
    }

    // Live scrape while the deepest level's inferences are in flight:
    // this is the exposition a real scraper would pull mid-load, and the
    // one run_benchmarks.sh lints.
    if (level == levels.back()) {
      const std::string metrics_response = AdminGet(admin_port, "/metrics");
      PPS_CHECK(metrics_response.rfind("HTTP/1.0 200", 0) == 0)
          << "/metrics scrape failed: " << metrics_response.substr(0, 64);
      scraped_metrics = BodyOf(metrics_response);
      PPS_CHECK_OK(obs::CheckPrometheusText(scraped_metrics));
      const std::string statusz_response = AdminGet(admin_port, "/statusz");
      PPS_CHECK(statusz_response.rfind("HTTP/1.0 200", 0) == 0)
          << "/statusz scrape failed";
      scraped_statusz = BodyOf(statusz_response);
      PPS_CHECK(scraped_statusz.find("\"sessions\":{\"live\":") !=
                std::string::npos)
          << "/statusz is missing the session section: " << scraped_statusz;
      PPS_CHECK(AdminGet(admin_port, "/healthz").rfind("HTTP/1.0 200", 0) == 0)
          << "/healthz not OK while serving";
    }

    for (std::thread& t : clients) t.join();
    const double elapsed = wall.ElapsedSeconds();

    std::vector<double> all;
    for (const auto& per_client : latencies) {
      all.insert(all.end(), per_client.begin(), per_client.end());
    }
    std::sort(all.begin(), all.end());
    const uint64_t hits = pool_hits->Value() - hits0;
    const uint64_t misses = pool_misses->Value() - misses0;

    LevelReport rep;
    rep.concurrency = level;
    rep.requests = all.size();
    rep.wall_seconds = elapsed;
    rep.throughput_rps = static_cast<double>(all.size()) / elapsed;
    rep.p50_ms = Ms(all[(all.size() - 1) * 50 / 100]);
    rep.p95_ms = Ms(all[(all.size() - 1) * 95 / 100]);
    rep.p99_ms = Ms(all[(all.size() - 1) * 99 / 100]);
    rep.max_ms = Ms(all.back());
    rep.pool_miss_rate =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(hits + misses);
    rep.cost_reconciled = reconciled->Value() - reconciled0;
    rep.cost_skipped = skipped->Value() - skipped0;
    rep.scalar_ratio_samples = scalar_ratio.Count();
    rep.scalar_ratio_mean = scalar_ratio.Mean();
    rep.encrypt_ratio_samples = encrypt_ratio.Count();
    rep.encrypt_ratio_mean = encrypt_ratio.Mean();
    reports.push_back(rep);

    std::printf("level %2zu: %3zu req in %6.2f s (%5.2f req/s) p50 %7.1f ms "
                "p99 %7.1f ms miss %4.1f%% reconciled %llu skipped %llu\n",
                level, rep.requests, rep.wall_seconds, rep.throughput_rps,
                rep.p50_ms, rep.p99_ms, 100.0 * rep.pool_miss_rate,
                static_cast<unsigned long long>(rep.cost_reconciled),
                static_cast<unsigned long long>(rep.cost_skipped));
  }

  // At concurrency 1 nothing overlaps, so every request must reconcile —
  // server-side scalar muls AND client-side encrypts — inside ±5%.
  const LevelReport& level1 = reports.front();
  PPS_CHECK(level1.scalar_ratio_samples > 0)
      << "no scalar-mul ratio samples reconciled at concurrency 1";
  PPS_CHECK(level1.scalar_ratio_mean >= kRatioLo &&
            level1.scalar_ratio_mean <= kRatioHi)
      << "scalar-mul measured/expected ratio " << level1.scalar_ratio_mean
      << " outside [" << kRatioLo << ", " << kRatioHi << "]";
  PPS_CHECK(level1.encrypt_ratio_samples > 0)
      << "no encrypt ratio samples reconciled at concurrency 1";
  PPS_CHECK(level1.encrypt_ratio_mean >= kRatioLo &&
            level1.encrypt_ratio_mean <= kRatioHi)
      << "encrypt measured/expected ratio " << level1.encrypt_ratio_mean
      << " outside [" << kRatioLo << ", " << kRatioHi << "]";

  // Required families on the live scrape: what a Prometheus server must
  // see while the sweep is hot.
  const char* required_families[] = {
      "pps_serving_requests",  "pps_serving_request_seconds",
      "pps_serving_frames",    "pps_serving_inflight",
      "pps_cost_reconciled",   "pps_cost_contended_skips",
      "pps_cost_overrun",      "pps_cost_scalar_mul_ratio",
      "pps_cost_encrypt_ratio", "pps_crypto_scalar_muls",
      "pps_crypto_encrypts",   "pps_crypto_pool_hits",
      "pps_net_session_created"};
  for (const char* family : required_families) {
    PPS_CHECK(scraped_metrics.find(family) != std::string::npos)
        << "live /metrics scrape is missing family: " << family;
  }
  // The non-secret contract, re-checked at the bench level: session rows
  // are named by ordinals only.
  PPS_CHECK(scraped_statusz.find("\"ordinal\":") != std::string::npos)
      << "/statusz has no session rows mid-sweep";
  PPS_CHECK(scraped_statusz.find("session_id") == std::string::npos)
      << "/statusz leaked a session id field";

  // ---- packed-batch probe (in-process: the packed driver needs the
  // concrete providers) against ExpectedPackedBatchCost.
  CompileOptions pack_opts;
  pack_opts.packing = planner::PackingSpec{};
  pack_opts.packing->key_bits = key_bits;
  auto packed_or = CompilePlan(model.value(), /*scale=*/10000, pack_opts);
  PPS_CHECK_OK(packed_or.status());
  auto packed_plan =
      std::make_shared<InferencePlan>(std::move(packed_or).value());
  PPS_CHECK_OK(packed_plan->CheckFitsKey(keys.public_key.n()));
  const int64_t batch =
      std::min<int64_t>(packed_plan->PackedBatchLanes(), 4);
  PPS_CHECK(batch >= 1);
  std::vector<DoubleTensor> lane_inputs;
  for (int64_t l = 0; l < batch; ++l) {
    lane_inputs.push_back(data.test.samples[static_cast<size_t>(l) %
                                            num_inputs]);
  }
  const obs::RequestCostBudget packed_budget =
      ExpectedPackedBatchCost(*packed_plan, batch);
  obs::Counter* muls_counter = registry.GetCounter("crypto.scalar_muls");
  obs::Counter* enc_counter = registry.GetCounter("crypto.encrypts");
  uint64_t m0 = 0, e0 = 0;
  {
    ModelProvider mp(packed_plan, keys.public_key, /*obf_seed=*/7001);
    DataProvider dp(packed_plan, keys, /*enc_seed=*/7002);
    // Snapshot after provider construction: the budget prices the
    // request, not pool prefill or obfuscation setup.
    m0 = muls_counter->Value();
    e0 = enc_counter->Value();
    auto outs = RunPackedBatchInference(mp, dp, 900001, lane_inputs);
    PPS_CHECK_OK(outs.status());
  }
  const double packed_mul_ratio =
      static_cast<double>(muls_counter->Value() - m0) /
      static_cast<double>(packed_budget.scalar_muls);
  const double packed_enc_ratio =
      static_cast<double>(enc_counter->Value() - e0) /
      static_cast<double>(packed_budget.encrypts);
  std::printf("\npacked probe: %lld lanes, scalar-mul ratio %.4f, encrypt "
              "ratio %.4f\n",
              static_cast<long long>(batch), packed_mul_ratio,
              packed_enc_ratio);
  PPS_CHECK(packed_mul_ratio >= kRatioLo && packed_mul_ratio <= kRatioHi)
      << "packed scalar-mul measured/expected ratio " << packed_mul_ratio
      << " outside [" << kRatioLo << ", " << kRatioHi << "]";
  PPS_CHECK(packed_enc_ratio >= kRatioLo && packed_enc_ratio <= kRatioHi)
      << "packed encrypt measured/expected ratio " << packed_enc_ratio
      << " outside [" << kRatioLo << ", " << kRatioHi << "]";

  // Drain the server; /healthz must flip to 503 before Serve() returns.
  server.BeginDrain(/*grace_seconds=*/2.0);
  const std::string drained = AdminGet(admin_port, "/healthz");
  PPS_CHECK(drained.rfind("HTTP/1.0 503", 0) == 0)
      << "/healthz not 503 during drain: " << drained.substr(0, 64);
  server_thread.join();

  PPS_CHECK(registry.GetCounter("cost.overrun")->Value() == 0)
      << "cost.overrun fired during a correctly-priced sweep";

  // ---- JSON report.
  std::ofstream json(out_path);
  PPS_CHECK(json.good()) << "cannot write " << out_path;
  json << "{\n  \"model\": \"MNIST-2\",\n";
  json << "  \"key_bits\": " << key_bits << ",\n";
  json << "  \"requests_per_client\": " << requests_per_client << ",\n";
  json << "  \"levels\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const LevelReport& p = reports[i];
    json << "    {\"concurrency\": " << p.concurrency
         << ", \"requests\": " << p.requests
         << ", \"wall_seconds\": " << p.wall_seconds
         << ", \"throughput_rps\": " << p.throughput_rps
         << ", \"p50_ms\": " << p.p50_ms << ", \"p95_ms\": " << p.p95_ms
         << ", \"p99_ms\": " << p.p99_ms << ", \"max_ms\": " << p.max_ms
         << ", \"pool_miss_rate\": " << p.pool_miss_rate
         << ", \"cost\": {\"reconciled\": " << p.cost_reconciled
         << ", \"contended_skips\": " << p.cost_skipped
         << ", \"scalar_mul_ratio_samples\": " << p.scalar_ratio_samples
         << ", \"scalar_mul_ratio_mean\": " << p.scalar_ratio_mean
         << ", \"encrypt_ratio_samples\": " << p.encrypt_ratio_samples
         << ", \"encrypt_ratio_mean\": " << p.encrypt_ratio_mean << "}}"
         << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"cost_ratio\": {\"tolerance\": 0.05"
       << ", \"scalar_mul_ratio_level1\": " << level1.scalar_ratio_mean
       << ", \"encrypt_ratio_level1\": " << level1.encrypt_ratio_mean
       << ", \"overruns\": "
       << registry.GetCounter("cost.overrun")->Value() << "},\n";
  json << "  \"packed_cost\": {\"batch\": " << batch
       << ", \"expected_scalar_muls\": " << packed_budget.scalar_muls
       << ", \"expected_encrypts\": " << packed_budget.encrypts
       << ", \"scalar_mul_ratio\": " << packed_mul_ratio
       << ", \"encrypt_ratio\": " << packed_enc_ratio << "},\n";
  json << "  \"admin\": {\"metrics_bytes\": " << scraped_metrics.size()
       << ", \"families_checked\": "
       << sizeof(required_families) / sizeof(required_families[0])
       << ", \"statusz_bytes\": " << scraped_statusz.size() << "}\n";
  json << "}\n";
  json.close();
  std::printf("wrote %s\n", out_path);

  if (prom_path != nullptr) {
    // The live mid-sweep scrape, verbatim — run_benchmarks.sh lints this
    // file, so the awk linter sees exactly what a scraper saw.
    std::ofstream prom_out(prom_path);
    PPS_CHECK(prom_out.good()) << "cannot write " << prom_path;
    prom_out << scraped_metrics;
    prom_out.close();
    std::printf("wrote %s (live scrape, lint OK)\n", prom_path);
  }
  std::printf("\nbench_serving OK\n");
  return 0;
}
