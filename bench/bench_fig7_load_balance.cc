// Figure 7 (Exp#3) — load-balanced resource allocation.
//
// Per model, sweep the total core count and compare inference latency with
// even core distribution versus the ILP allocation of §IV-C (both with
// pipelining and tensor partitioning enabled, as in the paper). Stage
// costs are measured on this host; the multi-core deployments run on the
// calibrated simulator (DESIGN.md §2). Expected shape: the ILP wins
// (up to ~65% in the paper, most on the largest model), with diminishing
// returns as cores grow.

#include "bench/bench_common.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

Allocation EvenCores(const PlanProfile& profile, int total_cores) {
  Allocation alloc;
  const size_t stages = profile.stage_seconds.size();
  alloc.server_of_layer.resize(stages);
  alloc.threads_of_layer.assign(stages,
                                total_cores / static_cast<int>(stages));
  int extra = total_cores % static_cast<int>(stages);
  for (size_t s = 0; s < stages; ++s) {
    if (extra > 0) {
      alloc.threads_of_layer[s] += 1;
      --extra;
    }
    if (alloc.threads_of_layer[s] < 1) alloc.threads_of_layer[s] = 1;
    alloc.server_of_layer[s] = profile.stage_class[s] > 0 ? 0 : 1;
  }
  return alloc;
}

}  // namespace

int main() {
  std::printf("== Figure 7 (Exp#3): load-balanced resource allocation ==\n\n");
  constexpr int kKeyBits = 512;
  const std::vector<int> core_counts = {10, 20, 30, 40, 50};

  double best_reduction = 0;
  const char* best_model = "";

  for (ZooModelId id :
       {ZooModelId::kBreast, ZooModelId::kHeart, ZooModelId::kCardio,
        ZooModelId::kMnist1, ZooModelId::kMnist2, ZooModelId::kMnist3}) {
    TrainedEntry entry = Train(id);
    ProtocolSetup setup = Setup(entry.model, 10000, kKeyBits);
    std::vector<DoubleTensor> probes = {entry.data.test.samples[0]};
    auto profile = ProfilePlan(*setup.mp, *setup.dp, probes);
    PPS_CHECK_OK(profile.status());

    std::printf("%s (avg latency, seconds):\n",
                GetZooInfo(id).dataset_name);
    std::printf("  %-12s", "cores");
    for (int c : core_counts) std::printf(" %9d", c);
    std::printf("\n");

    std::vector<double> even_lat, ilp_lat;
    for (int cores : core_counts) {
      // Even split baseline.
      Allocation even = EvenCores(profile.value(), cores);
      auto even_report = SimulateStablePipeline(
          BuildSimStages(profile.value(), even), SimNetwork{}, 20);
      PPS_CHECK_OK(even_report.status());
      even_lat.push_back(even_report.value().avg_latency_seconds);

      // ILP allocation: model/data servers per Table III, cores spread
      // over the servers (the solver sees the per-server budgets).
      AllocationProblem problem =
          BuildProblemForCores(profile.value(), GetZooInfo(id), cores);
      auto alloc = IlpAllocator::Solve(problem, /*node_limit=*/300000);
      PPS_CHECK_OK(alloc.status());
      auto ilp_report = SimulateStablePipeline(
          BuildSimStages(profile.value(), alloc.value()), SimNetwork{}, 20);
      PPS_CHECK_OK(ilp_report.status());
      ilp_lat.push_back(ilp_report.value().avg_latency_seconds);
    }

    std::printf("  %-12s", "even split");
    for (double v : even_lat) std::printf(" %9.3f", v);
    std::printf("\n  %-12s", "ILP (ours)");
    for (double v : ilp_lat) std::printf(" %9.3f", v);
    std::printf("\n");
    double model_best = 0;
    for (size_t i = 0; i < even_lat.size(); ++i) {
      model_best =
          std::max(model_best, 100 * (1 - ilp_lat[i] / even_lat[i]));
    }
    std::printf("  max latency reduction: %.2f%%\n\n", model_best);
    if (model_best > best_reduction) {
      best_reduction = model_best;
      best_model = GetZooInfo(id).dataset_name;
    }
  }
  std::printf("best reduction across models: %.2f%% on %s (paper: up to "
              "64.94%%, largest on MNIST-3)\n",
              best_reduction, best_model);
  return 0;
}
