// Table VII (Exp#6) — comparison with state-of-the-art systems on the
// MNIST models.
//
// SecureML / CryptoNets / CryptoDL rows use the numbers reported in their
// publications (their artifacts are unavailable — the paper does the
// same). EzPC runs in-repo via src/mpc (secret sharing + garbled
// circuits); PP-Stream runs in-repo via the hybrid protocol.
//
// Two views are reported:
//   compute(s)    single-core computation measured on this host;
//   deployed(s)   latency on the paper's testbed scale, from the
//                 calibrated simulator: PP-Stream pipelines across the
//                 Table III server split (24 cores each); EzPC adds its
//                 per-round network latency (LAN, 0.1 ms RTT) and GC/share
//                 bytes on 10 GbE — protocol transitions serialize and do
//                 not pipeline, which is exactly the paper's explanation
//                 for EzPC's slowdown.

#include "bench/bench_common.h"

#include "mpc/ezpc.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Table VII (Exp#6): comparison with state-of-the-arts "
              "==\n\n");
  constexpr int kKeyBits = 512;
  SimNetwork network;
  const double lan_rtt = 1e-4;  // 0.1 ms

  struct Reported {
    const char* system;
    const char* mnist1;
    const char* mnist2;
    const char* mnist3;
  };
  const Reported reported[] = {
      {"SecureML*", "4.88", "-", "-"},
      {"CryptoNets*", "-", "297.5", "-"},
      {"CryptoDL*", "-", "320", "-"},
  };

  double pp_compute[3] = {0, 0, 0}, pp_deployed[3] = {0, 0, 0};
  double ez_compute[3] = {0, 0, 0}, ez_deployed[3] = {0, 0, 0};

  const ZooModelId models[] = {ZooModelId::kMnist1, ZooModelId::kMnist2,
                               ZooModelId::kMnist3};
  for (int m = 0; m < 3; ++m) {
    TrainedEntry entry = Train(models[m]);
    const ZooInfo& info = GetZooInfo(models[m]);

    // --- PP-Stream: measured profile + simulated testbed deployment.
    ProtocolSetup setup = Setup(entry.model, 10000, kKeyBits);
    std::vector<DoubleTensor> probes = {entry.data.test.samples[0]};
    auto profile = ProfilePlan(*setup.mp, *setup.dp, probes);
    PPS_CHECK_OK(profile.status());
    for (double t : profile.value().stage_seconds) pp_compute[m] += t;

    AllocationProblem problem = BuildAllocationProblem(
        profile.value(), info.paper_model_servers, info.paper_data_servers,
        kTestbedCoresPerServer);
    auto alloc = IlpAllocator::Solve(problem, 300000);
    PPS_CHECK_OK(alloc.status());
    SimWorkload single;
    single.num_requests = 1;
    auto report = SimulatePipeline(
        BuildSimStages(profile.value(), alloc.value()), network, single);
    PPS_CHECK_OK(report.status());
    pp_deployed[m] = report.value().avg_latency_seconds;

    // --- EzPC: measured compute + per-round LAN latency + bytes.
    auto runner = EzPcRunner::Create(entry.model);
    PPS_CHECK_OK(runner.status());
    MpcMetrics metrics;
    WallTimer timer;
    auto out = runner.value().Infer(entry.data.test.samples[0], &metrics);
    PPS_CHECK_OK(out.status());
    ez_compute[m] = timer.ElapsedSeconds();
    // Deployed cost: compute + per-round LAN latency + online bytes + the
    // OT-extension traffic a real preprocessing phase pays per Beaver
    // triple (~2 KB with IKNP; our dealer hands them out for free).
    const double triple_bytes = 2048.0 * metrics.triples_used;
    ez_deployed[m] =
        ez_compute[m] +
        static_cast<double>(metrics.rounds) * lan_rtt +
        (static_cast<double>(metrics.bytes_sent + metrics.gc_bytes) +
         triple_bytes) * 8.0 / (network.bandwidth_gbps * 1e9);
    std::printf("measured %s (EzPC: %llu rounds, %llu transitions, %.1f MB "
                "GC)\n",
                info.dataset_name,
                static_cast<unsigned long long>(metrics.rounds),
                static_cast<unsigned long long>(metrics.protocol_transitions),
                metrics.gc_bytes / 1e6);
  }

  std::printf("\n%-14s %12s %12s %12s\n", "System", "MNIST-1", "MNIST-2",
              "MNIST-3");
  PrintRule();
  for (const Reported& r : reported) {
    std::printf("%-14s %12s %12s %12s\n", r.system, r.mnist1, r.mnist2,
                r.mnist3);
  }
  std::printf("%-14s %12.2f %12.2f %12.2f\n", "EzPC (ours)", ez_deployed[0],
              ez_deployed[1], ez_deployed[2]);
  std::printf("%-14s %12.2f %12.2f %12.2f\n", "PP-Stream", pp_deployed[0],
              pp_deployed[1], pp_deployed[2]);
  std::printf("\nsingle-core compute for reference: EzPC %.2f / %.2f / "
              "%.2f s; PP-Stream %.2f / %.2f / %.2f s\n",
              ez_compute[0], ez_compute[1], ez_compute[2], pp_compute[0],
              pp_compute[1], pp_compute[2]);
  std::printf("(* = numbers reported in the corresponding papers, as in "
              "the paper's Table VII)\n");
  std::printf("\nshape check vs paper: PP-Stream < EzPC << CryptoNets/"
              "CryptoDL on every model\n(paper: 0.72/1.14/12.20 s for "
              "PP-Stream vs 2.42/2.92/25.66 s for EzPC).\n");
  return 0;
}
